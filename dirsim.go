// Package dirsim is a trace-driven multiprocessor cache-coherence
// simulator reproducing "An Evaluation of Directory Schemes for Cache
// Coherence" (Agarwal, Simoni, Hennessy, Horowitz; ISCA 1988).
//
// The package is the public face of the library; it re-exports the pieces
// a user composes:
//
//   - traces: the Ref record, streaming readers/writers, binary and text
//     codecs, filters, and Table 3 statistics (internal/trace);
//   - synthetic workloads: parameterised generators with POPS/THOR/PERO
//     presets standing in for the paper's ATUM traces (internal/tracegen);
//   - protocol engines: the directory family Dir1NB / Dir_iNB / Dir_nNB /
//     Dir0B / Dir_iB / coded-set / Tang, the snoopy comparison points WTI
//     and Dragon, and the Berkeley cost model (internal/coherence);
//   - bus cost models: the Table 1 timings and the pipelined and
//     non-pipelined Table 2 models (internal/bus);
//   - the simulation driver with the paper's first-reference exclusion and
//     process-sharing attribution (internal/sim);
//   - directory storage organisations and their bit budgets
//     (internal/directory);
//   - bus-contention queueing models and the Section 7 distributed-machine
//     network (internal/queueing), plus the message-level NUMA directory
//     (internal/numa);
//   - replicated studies with confidence intervals (internal/study);
//   - report renderers for every table and figure, CSV and Markdown
//     output (internal/report).
//
// A minimal run:
//
//	gen, _ := dirsim.NewGenerator(dirsim.POPS(1_000_000))
//	engines, _ := dirsim.Section3Engines(dirsim.EngineConfig{Caches: 4})
//	results, _ := dirsim.Run(gen, engines, dirsim.Options{})
//	for _, r := range results {
//		fmt.Printf("%-8s %.4f bus cycles/ref\n", r.Scheme,
//			r.CyclesPerRef(dirsim.PipelinedBus()))
//	}
//
// See examples/ for complete programs and cmd/paper for the full
// reproduction of the paper's evaluation.
package dirsim

import (
	"context"
	"io"

	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/directory"
	"dirsim/internal/events"
	"dirsim/internal/numa"
	"dirsim/internal/queueing"
	"dirsim/internal/sim"
	"dirsim/internal/study"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// ---------------------------------------------------------------------------
// Traces.

// Ref is one memory reference in a multiprocessor trace.
type Ref = trace.Ref

// RefKind classifies a reference (instruction fetch, data read, data
// write).
type RefKind = trace.Kind

// Reference kinds.
const (
	Instr = trace.Instr
	Read  = trace.Read
	Write = trace.Write
)

// DefaultBlockBytes is the paper's 16-byte (4-word) coherence block.
const DefaultBlockBytes = trace.DefaultBlockBytes

// TraceReader yields references in trace order; TraceWriter consumes them.
type (
	TraceReader = trace.Reader
	TraceWriter = trace.Writer
)

// Trace is an in-memory reference sequence.
type Trace = trace.Slice

// TraceStats is the Table 3 summary of a trace.
type TraceStats = trace.Stats

// NewTraceReader replays an in-memory trace.
func NewTraceReader(refs []Ref) *trace.SliceReader { return trace.NewSliceReader(refs) }

// ReadTrace drains a reader into memory.
func ReadTrace(rd TraceReader) (Trace, error) { return trace.ReadAll(rd) }

// NewBinaryTraceWriter and NewBinaryTraceReader stream the compact binary
// trace format.
func NewBinaryTraceWriter(w io.Writer) *trace.BinaryWriter { return trace.NewBinaryWriter(w) }

// NewBinaryTraceReader reads the compact binary trace format.
func NewBinaryTraceReader(r io.Reader) *trace.BinaryReader { return trace.NewBinaryReader(r) }

// NewTextTraceWriter writes the human-readable trace format.
func NewTextTraceWriter(w io.Writer) *trace.TextWriter { return trace.NewTextWriter(w) }

// NewTextTraceReader reads the human-readable trace format.
func NewTextTraceReader(r io.Reader) *trace.TextReader { return trace.NewTextReader(r) }

// DropLockSpins removes test-and-test-and-set spin reads (the Section 5.2
// experiment).
func DropLockSpins(rd TraceReader) TraceReader { return trace.DropLockSpins(rd) }

// LimitTrace yields at most n references.
func LimitTrace(rd TraceReader, n int) TraceReader { return trace.Limit(rd, n) }

// CollectTraceStats computes Table 3 statistics for a trace.
func CollectTraceStats(rd TraceReader, blockBytes int) (TraceStats, error) {
	return trace.CollectStats(rd, blockBytes)
}

// SharingProfile measures a trace's sharing structure — static and dynamic
// sharing degrees and pointer sufficiency — with no protocol model
// (Section 2's demanded measurement).
type SharingProfile = trace.SharingProfile

// ProfileTrace computes the sharing profile of a trace.
func ProfileTrace(rd TraceReader, blockBytes int) (*SharingProfile, error) {
	return trace.Profile(rd, blockBytes)
}

// ---------------------------------------------------------------------------
// Synthetic workloads.

// WorkloadConfig parameterises a synthetic multiprocessor workload.
type WorkloadConfig = tracegen.Config

// POPS, THOR and PERO return workload presets modelled on the paper's
// three ATUM traces.
func POPS(refs int) WorkloadConfig { return tracegen.POPS(refs) }

// THOR returns the parallel-logic-simulator workload preset.
func THOR(refs int) WorkloadConfig { return tracegen.THOR(refs) }

// PERO returns the low-sharing VLSI-router workload preset.
func PERO(refs int) WorkloadConfig { return tracegen.PERO(refs) }

// Workloads returns all three presets at the given trace length.
func Workloads(refs int) []WorkloadConfig { return tracegen.Presets(refs) }

// LockKind selects the spin primitive a workload uses.
type LockKind = tracegen.LockKind

// Spin-lock primitives for WorkloadConfig.LockKind.
const (
	TestAndTestAndSet = tracegen.TestAndTestAndSet
	TestAndSet        = tracegen.TestAndSet
)

// NewGenerator returns a streaming TraceReader producing cfg's workload.
func NewGenerator(cfg WorkloadConfig) (*tracegen.Generator, error) { return tracegen.New(cfg) }

// GenerateTrace produces cfg's full trace in memory.
func GenerateTrace(cfg WorkloadConfig) (Trace, error) { return tracegen.Generate(cfg) }

// ---------------------------------------------------------------------------
// Bus cost models.

// BusTiming holds the Table 1 fundamental bus operation timings.
type BusTiming = bus.Timing

// CostModel prices bus operations (one Table 2 column).
type CostModel = bus.CostModel

// BusOp enumerates bus operations (Table 5's rows).
type BusOp = bus.Op

// DefaultBusTiming returns Table 1 exactly.
func DefaultBusTiming() BusTiming { return bus.DefaultTiming() }

// PipelinedBus returns the paper's pipelined-bus cost model.
func PipelinedBus() CostModel { return bus.Pipelined() }

// NonPipelinedBus returns the paper's non-pipelined-bus cost model.
func NonPipelinedBus() CostModel { return bus.NonPipelined() }

// EffectiveProcessors computes the closing single-bus scaling bound of
// Section 5.
func EffectiveProcessors(cyclesPerRef, refsPerInstr, mips, busCycleNs float64) float64 {
	return bus.EffectiveProcessors(cyclesPerRef, refsPerInstr, mips, busCycleNs)
}

// ---------------------------------------------------------------------------
// Protocol engines.

// Engine is a coherence protocol engine.
type Engine = coherence.Engine

// EngineConfig carries machine parameters (cache count; optional finite
// cache geometry).
type EngineConfig = coherence.Config

// EngineStats are the tallies an engine accumulates.
type EngineStats = coherence.Stats

// NewEngine constructs a protocol engine by scheme name: "dir1nb",
// "dir<i>nb", "dirnnb", "dir0b", "dir<i>b", "codedset", "tang", "wti",
// "dragon", "berkeley", "mesi", "writeonce" or "firefly".
func NewEngine(name string, cfg EngineConfig) (Engine, error) {
	return coherence.NewByName(name, cfg)
}

// Section3Engines returns the paper's head-to-head schemes in order:
// Dir1NB, WTI, Dir0B, Dragon.
func Section3Engines(cfg EngineConfig) ([]Engine, error) {
	return coherence.Section3Engines(cfg)
}

// SchemeNames lists the scheme names NewEngine accepts.
func SchemeNames() []string { return coherence.EngineNames() }

// ---------------------------------------------------------------------------
// Events and operations.

// EventType classifies a reference under a protocol's state-change model
// (the Table 4 taxonomy).
type EventType = events.Type

// The Table 4 event types.
const (
	EvInstr               = events.Instr
	EvReadHit             = events.ReadHit
	EvReadMissClean       = events.ReadMissClean
	EvReadMissDirty       = events.ReadMissDirty
	EvReadMissUncached    = events.ReadMissUncached
	EvReadMissFirst       = events.ReadMissFirst
	EvWriteHitDirty       = events.WriteHitDirty
	EvWriteHitCleanSole   = events.WriteHitCleanSole
	EvWriteHitCleanShared = events.WriteHitCleanShared
	EvWriteHitUpdate      = events.WriteHitUpdate
	EvWriteHitLocal       = events.WriteHitLocal
	EvWriteMissClean      = events.WriteMissClean
	EvWriteMissDirty      = events.WriteMissDirty
	EvWriteMissUncached   = events.WriteMissUncached
	EvWriteMissFirst      = events.WriteMissFirst
)

// The bus operations engines emit (Table 5's rows).
const (
	OpMemRead             = bus.OpMemRead
	OpCacheRead           = bus.OpCacheRead
	OpWriteBack           = bus.OpWriteBack
	OpWriteThrough        = bus.OpWriteThrough
	OpWriteUpdate         = bus.OpWriteUpdate
	OpDirCheck            = bus.OpDirCheck
	OpDirCheckOverlapped  = bus.OpDirCheckOverlapped
	OpInvalidate          = bus.OpInvalidate
	OpBroadcastInvalidate = bus.OpBroadcastInvalidate
)

// ---------------------------------------------------------------------------
// Simulation driver.

// Options configures a simulation run.
type Options = sim.Options

// Result is the outcome of one engine over one trace.
type Result = sim.Result

// Cache-attribution modes for Options.CacheBy.
const (
	ByCPU     = sim.ByCPU
	ByProcess = sim.ByProcess
)

// Run streams a trace through every engine in lockstep.
func Run(rd TraceReader, engines []Engine, opts Options) ([]Result, error) {
	return sim.Run(context.Background(), rd, engines, opts)
}

// RunContext is Run with a context that can cancel the simulation between
// reference batches. With opts.Parallel > 1 the engines run on worker
// goroutines; results are identical to the sequential driver.
func RunContext(ctx context.Context, rd TraceReader, engines []Engine, opts Options) ([]Result, error) {
	return sim.Run(ctx, rd, engines, opts)
}

// RunSchemes builds the named engines and runs the trace through them.
func RunSchemes(rd TraceReader, names []string, cfg EngineConfig, opts Options) ([]Result, error) {
	return sim.RunSchemes(context.Background(), rd, names, cfg, opts)
}

// RunSchemesContext is RunSchemes with a cancellation context.
func RunSchemesContext(ctx context.Context, rd TraceReader, names []string, cfg EngineConfig, opts Options) ([]Result, error) {
	return sim.RunSchemes(ctx, rd, names, cfg, opts)
}

// CombineResults merges per-trace results of one scheme, reference-
// weighted, the way the paper averages across its three traces.
func CombineResults(results []Result) (Result, error) { return sim.Combine(results) }

// VerifyAccounting cross-checks the event-frequency methodology against
// the direct operation tally for fixed-cost schemes.
func VerifyAccounting(r Result) error { return sim.VerifyAccounting(r) }

// ---------------------------------------------------------------------------
// Replicated studies.

// SchemeSummary is a scheme's metric across replicated runs (mean, stddev,
// 95% confidence interval).
type SchemeSummary = study.Summary

// PairedComparison is the seed-paired difference between two schemes.
type PairedComparison = study.PairedComparison

// SeedSweep replays a workload across the given seeds for every scheme and
// summarises the metric per scheme; comparisons between the returned
// summaries are seed-paired.
func SeedSweep(base WorkloadConfig, seeds []int64, schemes []string,
	cfg EngineConfig, opts Options, metric func(Result) float64) ([]SchemeSummary, error) {
	return study.SeedSweep(context.Background(), base, seeds, schemes, cfg, opts, metric)
}

// ParallelSeedSweep is SeedSweep with the replications run concurrently on
// a bounded worker pool; summaries are identical to SeedSweep's.
func ParallelSeedSweep(ctx context.Context, base WorkloadConfig, seeds []int64, schemes []string,
	cfg EngineConfig, opts Options, metric func(Result) float64) ([]SchemeSummary, error) {
	return study.ParallelSeedSweep(ctx, base, seeds, schemes, cfg, opts, metric)
}

// StudySeeds derives n deterministic, well-separated seeds.
func StudySeeds(base int64, n int) []int64 { return study.Seeds(base, n) }

// CompareSchemes computes the paired difference between two summaries from
// one SeedSweep.
func CompareSchemes(a, b SchemeSummary) (PairedComparison, error) { return study.Compare(a, b) }

// MetricCyclesPerRef is the standard SeedSweep metric.
func MetricCyclesPerRef(m CostModel) func(Result) float64 { return study.CyclesPerRef(m) }

// ---------------------------------------------------------------------------
// Bus contention.

// ContentionModel is the closed machine-repairman model of a shared bus:
// N processors alternating between local computation and bus transactions.
// Build one from a Result with Result.Contention, then solve with MVA,
// Simulate, Knee or Saturation.
type ContentionModel = queueing.Model

// ContentionMetrics is the steady-state outcome for one population size.
type ContentionMetrics = queueing.Metrics

// DistributedMachine is the Section 7 model: processors, an interconnect,
// and K memory/directory modules the address space interleaves across.
// With Modules = 1 it degenerates to the single-bus ContentionModel.
type DistributedMachine = queueing.Network

// ScalingCurve compares a centralised machine with one whose memory and
// directory are distributed one module per processor (the paper's Section 7
// remedy), returning processor-efficiency series for each population size.
func ScalingCurve(think, service, interconnect float64, sizes []int) (central, distributed []float64, err error) {
	return queueing.ScalingCurve(think, service, interconnect, sizes)
}

// ---------------------------------------------------------------------------
// Distributed (NUMA) machine.

// NUMAConfig describes the Section 7 distributed machine for message-level
// simulation: each node holds a processor, memory and its slice of the
// full-map directory.
type NUMAConfig = numa.Config

// NUMAEngine simulates the distributed full-map directory at the message
// level, counting protocol messages, critical-path hops, and home-locality.
type NUMAEngine = numa.Engine

// NUMAStats is the message-level accounting of a distributed run.
type NUMAStats = numa.Stats

// NUMAOptions configures a trace run on the distributed machine.
type NUMAOptions = numa.Options

// Home-assignment policies for NUMAConfig.Policy.
const (
	Interleaved = numa.Interleaved
	FirstTouch  = numa.FirstTouch
)

// NewNUMA returns a distributed-directory engine.
func NewNUMA(cfg NUMAConfig) (*NUMAEngine, error) { return numa.New(cfg) }

// RunNUMA streams a trace through the distributed machine.
func RunNUMA(rd TraceReader, e *NUMAEngine, opts NUMAOptions) (*NUMAStats, error) {
	return numa.Run(context.Background(), rd, e, opts)
}

// RunNUMAContext is RunNUMA with a cancellation context.
func RunNUMAContext(ctx context.Context, rd TraceReader, e *NUMAEngine, opts NUMAOptions) (*NUMAStats, error) {
	return numa.Run(ctx, rd, e, opts)
}

// ---------------------------------------------------------------------------
// Directory storage organisations.

// DirectoryStore is a directory organisation (full map, two-bit, limited
// pointers, coded set, Tang duplicate tags).
type DirectoryStore = directory.Store

// BlockID is the dense identifier an interned block address maps to. The
// simulator interns each distinct data-block address once during decode and
// engines index their per-block state arrays by it; directory stores and
// cache replacers are keyed by it as well.
type BlockID = blockid.ID

// StorageParams describes a machine for directory storage accounting.
type StorageParams = directory.StorageParams

// DefaultStorageParams returns a machine comparable to the paper's.
func DefaultStorageParams(caches int) StorageParams {
	return directory.DefaultStorageParams(caches)
}

// Directory store constructors, for storage studies and custom engines.
var (
	NewFullMapStore = directory.NewFullMap
	NewTwoBitStore  = directory.NewTwoBit
	NewTangStore    = directory.NewTang
)

// NewLimitedPointerStore returns a Dir_iB (broadcast=true) or Dir_iNB
// store with i pointers for n caches.
func NewLimitedPointerStore(i, n int, broadcast bool) (*directory.LimitedPointer, error) {
	return directory.NewLimitedPointer(i, n, broadcast)
}

// NewCodedSetStore returns the Section 6 superset-coded store.
func NewCodedSetStore(n int) (*directory.CodedSet, error) { return directory.NewCodedSet(n) }
