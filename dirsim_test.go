package dirsim_test

// Paper-shape integration tests: these assert the qualitative results of
// the paper's evaluation — orderings, ratios, crossovers — on the synthetic
// workloads. EXPERIMENTS.md records the quantitative paper-vs-measured
// comparison; these tests keep the shape from regressing.

import (
	"math"
	"testing"

	"dirsim"
)

const testRefs = 200_000

// combinedResults runs the given schemes over all three workloads and
// returns reference-weighted combined results, in scheme order.
func combinedResults(t testing.TB, schemes []string, refs int) []dirsim.Result {
	t.Helper()
	perScheme := make([][]dirsim.Result, len(schemes))
	for _, cfg := range dirsim.Workloads(refs) {
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(gen, schemes, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			perScheme[i] = append(perScheme[i], r)
		}
	}
	out := make([]dirsim.Result, len(schemes))
	for i, group := range perScheme {
		c, err := dirsim.CombineResults(group)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

// The paper's headline ordering (Figures 2 and 3): Dir1NB is by far the
// worst, WTI is clearly worse than Dir0B, and Dragon is the best — on both
// bus models.
func TestSchemeOrderingMatchesPaper(t *testing.T) {
	rs := combinedResults(t, []string{"dir1nb", "wti", "dir0b", "dragon"}, testRefs)
	for _, m := range []dirsim.CostModel{dirsim.PipelinedBus(), dirsim.NonPipelinedBus()} {
		d1 := rs[0].CyclesPerRef(m)
		wti := rs[1].CyclesPerRef(m)
		d0 := rs[2].CyclesPerRef(m)
		drg := rs[3].CyclesPerRef(m)
		if !(d1 > wti && wti > d0 && d0 > drg) {
			t.Errorf("%s bus ordering broken: Dir1NB %.4f, WTI %.4f, Dir0B %.4f, Dragon %.4f",
				m.Name, d1, wti, d0, drg)
		}
		if d1/d0 < 2.5 {
			t.Errorf("%s bus: Dir1NB/Dir0B = %.2f, want ≫1 (paper ≈6.5)", m.Name, d1/d0)
		}
		if wti/d0 < 1.15 {
			t.Errorf("%s bus: WTI/Dir0B = %.2f, want clearly >1 (paper ≈3)", m.Name, wti/d0)
		}
		if d0/drg > 2.5 {
			t.Errorf("%s bus: Dir0B/Dragon = %.2f, want ≲2 (paper ≈1.46: 'performance of Dir0B approaches Dragon')", m.Name, d0/drg)
		}
	}
}

// Table 4 shape: Dir1NB's read-miss rate towers over Dir0B's (read sharing
// is what single-copy schemes punish), and WTI's event frequencies equal
// Dir0B's exactly.
func TestTable4Shape(t *testing.T) {
	rs := combinedResults(t, []string{"dir1nb", "wti", "dir0b", "dragon"}, testRefs)
	rm := func(r dirsim.Result) float64 {
		return float64(r.Stats.Events.ReadMisses()) / float64(r.Stats.Refs)
	}
	if rm(rs[0]) < 3*rm(rs[2]) {
		t.Errorf("Dir1NB rm %.4f not ≫ Dir0B rm %.4f", rm(rs[0]), rm(rs[2]))
	}
	if rs[1].Stats.Events != rs[2].Stats.Events {
		t.Error("WTI and Dir0B event frequencies differ")
	}
	// Dragon misses only what sharing can never prefetch; its miss rate
	// is the smallest.
	if rm(rs[3]) > rm(rs[2]) {
		t.Errorf("Dragon rm %.4f above Dir0B %.4f", rm(rs[3]), rm(rs[2]))
	}
	// Write misses are rare in every scheme: "most data writes occur on
	// blocks which have first been brought into the cache via read
	// misses" — except Dir1NB where read-then-write still hits.
	for _, r := range rs {
		wm := float64(r.Stats.Events.WriteMisses()) / float64(r.Stats.Refs)
		if wm > 0.02 {
			t.Errorf("%s write-miss rate %.4f implausibly high", r.Scheme, wm)
		}
	}
}

// Figure 1: most writes to previously-clean blocks invalidate at most one
// other cache (paper: over 85%), making full broadcast wasteful.
func TestFigure1Shape(t *testing.T) {
	rs := combinedResults(t, []string{"dir0b"}, testRefs)
	h := &rs[0].Stats.InvalFanout
	if h.Total() == 0 {
		t.Fatal("no invalidation observations")
	}
	if f := h.CumulativeFraction(1); f < 0.80 {
		t.Errorf("fraction of clean-writes needing ≤1 invalidation = %.2f, want ≥0.80 (paper >0.85)", f)
	}
}

// Section 5 / Table 5: the Berkeley estimate lands between Dir0B and
// Dragon, and the non-overlapped directory traffic is a small share of
// Dir0B's cycles (the directory is not the bottleneck).
func TestBerkeleyAndDirectoryBandwidth(t *testing.T) {
	rs := combinedResults(t, []string{"dir0b", "dragon", "berkeley"}, testRefs)
	m := dirsim.PipelinedBus()
	d0, drg, brk := rs[0].CyclesPerRef(m), rs[1].CyclesPerRef(m), rs[2].CyclesPerRef(m)
	if !(brk < d0 && brk > drg) {
		t.Errorf("Berkeley %.4f not between Dragon %.4f and Dir0B %.4f", brk, drg, d0)
	}
	by := rs[0].CyclesByOp(m)
	var total float64
	for _, v := range by {
		total += v
	}
	if frac := by[dirsim.OpDirCheck] / total; frac > 0.25 {
		t.Errorf("directory share of Dir0B cycles = %.2f, want small (paper: dir is not a bottleneck)", frac)
	}
	// Directory bandwidth is comparable to memory bandwidth: the ratio
	// is near 1, not a multiple.
	if ratio := rs[0].DirToMemBandwidthRatio(); ratio > 4 {
		t.Errorf("dir/mem bandwidth ratio = %.2f, want 'only slightly higher'", ratio)
	}
}

// Section 5.1: adding a fixed per-transaction cost q narrows Dragon's
// advantage over Dir0B, because Dragon's average transaction is cheaper.
func TestSection51OverheadNarrowsGap(t *testing.T) {
	rs := combinedResults(t, []string{"dir0b", "dragon"}, testRefs)
	m := dirsim.PipelinedBus()
	gap := func(q float64) float64 {
		return rs[0].CyclesPerRefWithOverhead(m, q)/rs[1].CyclesPerRefWithOverhead(m, q) - 1
	}
	g0, g1 := gap(0), gap(1)
	if g0 <= 0 {
		t.Fatalf("Dragon not ahead at q=0 (gap %.2f)", g0)
	}
	if g1 >= g0 {
		t.Errorf("gap did not narrow: q=0 %.2f → q=1 %.2f (paper: 46%% → 12%%)", g0, g1)
	}
	// Dragon's cycles/transaction must be below Dir0B's for this effect
	// (Figure 5's point).
	if rs[1].CyclesPerTransaction(m) >= rs[0].CyclesPerTransaction(m) {
		t.Error("Dragon cycles/transaction not below Dir0B's")
	}
}

// Section 5.2: excluding spin-lock test reads improves Dir1NB markedly and
// leaves Dir0B essentially unchanged.
func TestSection52SpinLocks(t *testing.T) {
	m := dirsim.PipelinedBus()
	with := combinedResults(t, []string{"dir1nb", "dir0b"}, testRefs)
	// The filtered runs need fresh generators.
	perScheme := make([][]dirsim.Result, 2)
	for _, cfg := range dirsim.Workloads(testRefs) {
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(dirsim.DropLockSpins(gen),
			[]string{"dir1nb", "dir0b"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			perScheme[i] = append(perScheme[i], r)
		}
	}
	without := make([]dirsim.Result, 2)
	for i := range without {
		c, err := dirsim.CombineResults(perScheme[i])
		if err != nil {
			t.Fatal(err)
		}
		without[i] = c
	}
	d1Ratio := with[0].CyclesPerRef(m) / without[0].CyclesPerRef(m)
	if d1Ratio < 1.5 {
		t.Errorf("Dir1NB with/without locks = %.2f, want ≫1 (paper ≈2.7)", d1Ratio)
	}
	d0Ratio := with[1].CyclesPerRef(m) / without[1].CyclesPerRef(m)
	if math.Abs(d0Ratio-1) > 0.15 {
		t.Errorf("Dir0B with/without locks = %.2f, want ≈1 ('same performance as before')", d0Ratio)
	}
}

// Section 6: sequential invalidation (DirnNB) costs only slightly more
// than broadcast (Dir0B) — the paper measures 0.0491 → 0.0499, +1.6%.
func TestSection6SequentialInvalidation(t *testing.T) {
	rs := combinedResults(t, []string{"dir0b", "dirnnb"}, testRefs)
	m := dirsim.PipelinedBus()
	ratio := rs[1].CyclesPerRef(m) / rs[0].CyclesPerRef(m)
	if ratio < 1.0-1e-9 || ratio > 1.10 {
		t.Errorf("DirnNB/Dir0B = %.4f, want within [1.00, 1.10] (paper 1.016)", ratio)
	}
}

// Section 6: a Dir1B scheme pays linearly in the broadcast cost b, and
// adding pointers makes broadcasts rapidly rarer.
func TestSection6LimitedPointers(t *testing.T) {
	rs := combinedResults(t, []string{"dir1b", "dir2b", "dir4b"}, testRefs)
	m := dirsim.PipelinedBus()
	// Linearity in b: cycles(b) = base + slope·b with positive slope.
	c1 := rs[0].CyclesPerRef(m.WithBroadcastCost(1))
	c2 := rs[0].CyclesPerRef(m.WithBroadcastCost(2))
	c4 := rs[0].CyclesPerRef(m.WithBroadcastCost(4))
	if !(c2 > c1 && c4 > c2) {
		t.Errorf("not increasing in b: %v %v %v", c1, c2, c4)
	}
	if math.Abs((c4-c2)-2*(c2-c1)) > 1e-9 {
		t.Errorf("not linear in b: slopes %v vs %v", c4-c2, c2-c1)
	}
	// More pointers, fewer broadcasts.
	b1 := rs[0].Stats.BroadcastInvals
	b2 := rs[1].Stats.BroadcastInvals
	b4 := rs[2].Stats.BroadcastInvals
	if !(b1 > b2 && b2 > b4) {
		t.Errorf("broadcasts not decreasing with pointers: %d, %d, %d", b1, b2, b4)
	}
}

// Section 6: Dir_iNB trades a higher miss rate for never broadcasting.
func TestSection6DiriNBTradeoff(t *testing.T) {
	rs := combinedResults(t, []string{"dir2nb", "dir4nb", "dirnnb"}, testRefs)
	miss := func(r dirsim.Result) float64 { return r.Stats.Events.DataMissRate() }
	if !(miss(rs[0]) >= miss(rs[1]) && miss(rs[1]) >= miss(rs[2])) {
		t.Errorf("miss rates not monotone in i: %.4f, %.4f, %.4f",
			miss(rs[0]), miss(rs[1]), miss(rs[2]))
	}
	for _, r := range rs {
		if r.Stats.BroadcastInvals != 0 {
			t.Errorf("%s broadcast %d times", r.Scheme, r.Stats.BroadcastInvals)
		}
	}
}

// Section 6: the coded-set scheme wastes some directed invalidations on
// superset members but stays within a modest overhead of the full map.
func TestSection6CodedSet(t *testing.T) {
	rs := combinedResults(t, []string{"dirnnb", "codedset"}, testRefs)
	m := dirsim.PipelinedBus()
	if rs[1].Stats.WastedInvals == 0 {
		t.Error("coded set wasted no invalidations (suspicious)")
	}
	ratio := rs[1].CyclesPerRef(m) / rs[0].CyclesPerRef(m)
	if ratio < 1.0-1e-9 || ratio > 1.35 {
		t.Errorf("CodedSet/DirnNB = %.3f, want a small overhead", ratio)
	}
	if rs[1].Stats.BroadcastInvals != 0 {
		t.Error("coded set must never broadcast")
	}
}

// Figure 3 / Section 5: PERO, with far less sharing, is much cheaper than
// POPS and THOR under every scheme.
func TestPEROIsCheapest(t *testing.T) {
	m := dirsim.PipelinedBus()
	perWorkload := map[string]float64{}
	for _, cfg := range dirsim.Workloads(testRefs) {
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(gen, []string{"dir0b"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		perWorkload[cfg.Name] = rs[0].CyclesPerRef(m)
	}
	if !(perWorkload["PERO"] < perWorkload["POPS"]/1.5 && perWorkload["PERO"] < perWorkload["THOR"]/1.5) {
		t.Errorf("PERO %.4f not well below POPS %.4f and THOR %.4f",
			perWorkload["PERO"], perWorkload["POPS"], perWorkload["THOR"])
	}
}

// The closing estimate: with the best scheme, a 100 ns single bus supports
// on the order of ten 10-MIPS processors — the reason the paper argues
// for distributing memory and directory.
func TestEffectiveProcessorsBallpark(t *testing.T) {
	rs := combinedResults(t, []string{"dragon"}, testRefs)
	n := dirsim.EffectiveProcessors(rs[0].CyclesPerRef(dirsim.PipelinedBus()), 2, 10, 100)
	if n < 4 || n > 40 {
		t.Errorf("effective processors = %.1f, want order-10 (paper ≈15)", n)
	}
}

// The two accounting paths agree on the facade level too.
func TestAccountingCrossCheck(t *testing.T) {
	rs := combinedResults(t, []string{"dir1nb", "wti", "dir0b", "dragon", "berkeley"}, testRefs)
	for _, r := range rs {
		if err := dirsim.VerifyAccounting(r); err != nil {
			t.Error(err)
		}
	}
}

// --- extensions beyond the paper -------------------------------------------

// The wider snoopy zoo orders as the literature says it should: Write-Once
// improves on WTI by keeping repeat writes local; MESI improves on both by
// the Exclusive-state silent upgrade and cache-to-cache supply; the update
// protocols remain the cheapest on these workloads.
func TestExtensionProtocolZooOrdering(t *testing.T) {
	rs := combinedResults(t, []string{"wti", "writeonce", "mesi", "dragon", "firefly"}, testRefs)
	m := dirsim.PipelinedBus()
	wti, wo, mesi := rs[0].CyclesPerRef(m), rs[1].CyclesPerRef(m), rs[2].CyclesPerRef(m)
	dragon, firefly := rs[3].CyclesPerRef(m), rs[4].CyclesPerRef(m)
	if !(wo < wti) {
		t.Errorf("WriteOnce %.4f not below WTI %.4f", wo, wti)
	}
	if !(mesi < wo) {
		t.Errorf("MESI %.4f not below WriteOnce %.4f", mesi, wo)
	}
	if !(dragon < mesi && firefly < mesi) {
		t.Errorf("update protocols (%.4f, %.4f) not below MESI %.4f", dragon, firefly, mesi)
	}
	// Firefly and Dragon differ only in where updates land; they should
	// be close on the pipelined bus (updates cost the same cycle).
	if ratio := firefly / dragon; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("Firefly/Dragon = %.2f, want ≈1", ratio)
	}
}

// MESI shares Dir0B's state-change model, so its event frequencies match;
// its costs are strictly lower (free E-upgrades, no directory checks).
func TestExtensionMESIVersusDir0B(t *testing.T) {
	rs := combinedResults(t, []string{"mesi", "dir0b"}, testRefs)
	if rs[0].Stats.Events != rs[1].Stats.Events {
		t.Error("MESI and Dir0B event frequencies differ")
	}
	m := dirsim.PipelinedBus()
	if rs[0].CyclesPerRef(m) >= rs[1].CyclesPerRef(m) {
		t.Errorf("MESI %.4f not below Dir0B %.4f", rs[0].CyclesPerRef(m), rs[1].CyclesPerRef(m))
	}
}

// Plain test-and-set locks are dramatically worse than
// test-and-test-and-set under any invalidation scheme: every spin probe is
// an invalidating write.
func TestExtensionTestAndSetPenalty(t *testing.T) {
	m := dirsim.PipelinedBus()
	run := func(kind dirsim.LockKind) float64 {
		cfg := dirsim.POPS(testRefs)
		cfg.LockKind = kind
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
			dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0].CyclesPerRef(m)
	}
	tts, ts := run(dirsim.TestAndTestAndSet), run(dirsim.TestAndSet)
	if ts < 2*tts {
		t.Errorf("T&S %.4f not ≥2x T&T&S %.4f", ts, tts)
	}
}

// The contention model never credits more effective processors than the
// paper's naive bound, and less when the bus saturates.
func TestExtensionContentionBound(t *testing.T) {
	rs := combinedResults(t, []string{"dir0b", "dragon"}, testRefs)
	m := dirsim.PipelinedBus()
	for _, r := range rs {
		model, err := r.Contention(m, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		naive := dirsim.EffectiveProcessors(r.CyclesPerRef(m), 2, 10, 100)
		ms, err := model.MVA(64)
		if err != nil {
			t.Fatal(err)
		}
		for _, mt := range ms {
			if mt.EffectiveProcessors > naive*1.01 {
				t.Fatalf("%s pop %d: effective %.2f above naive bound %.2f",
					r.Scheme, mt.Processors, mt.EffectiveProcessors, naive)
			}
		}
		// Dragon's cheaper transactions must buy a later knee than Dir0B's
		// only when its total demand is lower — just require sane knees.
		knee, err := model.Knee(256, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if knee < 1 {
			t.Fatalf("%s: knee %d", r.Scheme, knee)
		}
	}
}

// The Section 7 machine at message level: on process-pinned workloads a
// first-touch home policy keeps most directory homes local and cuts
// critical-path hops relative to address interleaving.
func TestExtensionNUMAFirstTouchLocality(t *testing.T) {
	tr, err := dirsim.GenerateTrace(dirsim.POPS(testRefs))
	if err != nil {
		t.Fatal(err)
	}
	runPolicy := func(p dirsim.NUMAConfig) *dirsim.NUMAStats {
		e, err := dirsim.NewNUMA(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dirsim.RunNUMA(dirsim.NewTraceReader(tr), e, dirsim.NUMAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	inter := runPolicy(dirsim.NUMAConfig{Nodes: 4, Policy: dirsim.Interleaved})
	ft := runPolicy(dirsim.NUMAConfig{Nodes: 4, Policy: dirsim.FirstTouch})
	// Interleaving leaves ~1/4 of homes local; first-touch should do
	// far better on pinned processes.
	if inter.LocalHomeFraction() > 0.5 {
		t.Errorf("interleaved locality %.2f suspiciously high", inter.LocalHomeFraction())
	}
	// The bus traffic that remains after first-reference exclusion is
	// dominated by genuinely shared blocks, which no home placement can
	// make local to everyone — so the gain is real but moderate.
	if ft.LocalHomeFraction() < inter.LocalHomeFraction()*1.1 {
		t.Errorf("first-touch locality %.2f not above interleaved %.2f",
			ft.LocalHomeFraction(), inter.LocalHomeFraction())
	}
	if ft.CriticalHopsPerRef() >= inter.CriticalHopsPerRef() {
		t.Errorf("first-touch hops %.4f not below interleaved %.4f",
			ft.CriticalHopsPerRef(), inter.CriticalHopsPerRef())
	}
	// Message-level and bus-level views agree on the classification.
	if inter.Events != ft.Events {
		t.Error("home policy changed the event classification (it must not)")
	}
}

// Footnote 5's open question, answered: the single-invalidation dominance
// of Figure 1 survives on machines larger than the traced four processors,
// which is the condition the paper's conclusion rests on ("if this data
// holds for large-scale multiprocessors, directories will provide an
// efficient method of implementing shared memory").
func TestExtensionFigure1HoldsOnLargerMachines(t *testing.T) {
	for _, n := range []int{8, 16} {
		cfg := dirsim.POPS(testRefs)
		cfg.CPUs = n
		cfg.Locks = 1 + n/8
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
			dirsim.EngineConfig{Caches: n}, dirsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if f := rs[0].Stats.InvalFanout.CumulativeFraction(1); f < 0.8 {
			t.Errorf("%d processors: ≤1-invalidation fraction %.2f fell below 0.8", n, f)
		}
	}
}

// The protocol-free sharing profile agrees with the protocol-level Figure 1
// in spirit: almost all writes fit one directory pointer.
func TestSharingProfileMatchesFigure1(t *testing.T) {
	gen, err := dirsim.NewGenerator(dirsim.POPS(testRefs))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dirsim.ProfileTrace(gen, dirsim.DefaultBlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	if p1 := prof.PointerSufficiency(1); p1 < 0.9 {
		t.Errorf("one-pointer sufficiency = %.2f, want ≥0.9", p1)
	}
	if prof.SharedBlockFraction() <= 0 {
		t.Error("no sharing measured")
	}
	// Sufficiency is monotone in the pointer budget.
	if prof.PointerSufficiency(2) < prof.PointerSufficiency(1) {
		t.Error("pointer sufficiency not monotone")
	}
}
