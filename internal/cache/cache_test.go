package cache

import (
	"testing"
	"testing/quick"
)

func TestInfiniteNeverEvicts(t *testing.T) {
	c := NewInfinite()
	for b := uint64(0); b < 10000; b++ {
		if _, evicted := c.Insert(b); evicted {
			t.Fatal("infinite cache evicted")
		}
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Contains(42) {
		t.Fatal("Contains(42) = false")
	}
	c.Remove(42)
	if c.Contains(42) {
		t.Fatal("Contains(42) after Remove")
	}
	if c.Len() != 9999 {
		t.Fatalf("Len after Remove = %d", c.Len())
	}
	c.Touch(1) // no-op, must not panic
}

func TestNewSetAssocValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {3, 4}, {-2, 4}, {4, 0}, {4, -1}} {
		if _, err := NewSetAssoc(bad[0], bad[1]); err == nil {
			t.Errorf("NewSetAssoc(%d,%d) accepted", bad[0], bad[1])
		}
	}
	c, err := NewSetAssoc(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 8 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(1)
	c.Insert(2)
	c.Touch(1) // 2 is now least recent
	victim, evicted := c.Insert(3)
	if !evicted || victim != 2 {
		t.Fatalf("victim = %d,%v want 2,true", victim, evicted)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestInsertResidentRefreshes(t *testing.T) {
	c, _ := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	if _, evicted := c.Insert(1); evicted {
		t.Fatal("re-insert of resident block evicted")
	}
	// 2 is least recent now.
	if victim, _ := c.Insert(3); victim != 2 {
		t.Fatalf("victim = %d, want 2", victim)
	}
}

func TestSetAssocIsolatesSets(t *testing.T) {
	c, _ := NewSetAssoc(2, 1)
	c.Insert(0) // set 0
	c.Insert(1) // set 1
	// Inserting another even block evicts only from set 0.
	victim, evicted := c.Insert(2)
	if !evicted || victim != 0 {
		t.Fatalf("victim = %d,%v want 0,true", victim, evicted)
	}
	if !c.Contains(1) {
		t.Fatal("set 1 resident was evicted by a set 0 insert")
	}
}

func TestRemoveAbsent(t *testing.T) {
	c, _ := NewLRU(2)
	c.Remove(99) // must not panic
	c.Insert(1)
	c.Remove(1)
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Removed block frees a slot.
	c.Insert(2)
	c.Insert(3)
	if _, evicted := c.Insert(2); evicted {
		t.Fatal("duplicate insert evicted")
	}
}

func TestTouchAbsentIsNoop(t *testing.T) {
	c, _ := NewLRU(2)
	c.Touch(5)
	if c.Len() != 0 {
		t.Fatal("Touch inserted a block")
	}
}

// Property: a set-associative cache never exceeds its capacity, and every
// block reported Contains was inserted and not since evicted/removed.
func TestQuickSetAssocInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewSetAssoc(4, 2)
		if err != nil {
			return false
		}
		model := map[uint64]bool{}
		for _, op := range ops {
			b := uint64(op % 64)
			switch (op / 64) % 3 {
			case 0:
				victim, evicted := c.Insert(b)
				model[b] = true
				if evicted {
					if !model[victim] {
						return false // evicted something not present
					}
					delete(model, victim)
				}
			case 1:
				c.Remove(b)
				delete(model, b)
			case 2:
				c.Touch(b)
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		if c.Len() != len(model) {
			return false
		}
		for b := range model {
			if !c.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
