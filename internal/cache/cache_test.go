package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dirsim/internal/blockid"
)

// ins inserts a block whose id equals its block number — convenient for
// tests, where the identity interning keeps set selection (low block bits)
// and id-keyed membership trivially in sync.
func ins(c Replacer, b uint64) (blockid.ID, bool) {
	return c.Insert(b, blockid.ID(b))
}

func TestInfiniteNeverEvicts(t *testing.T) {
	c := NewInfinite()
	for b := uint64(0); b < 10_000; b++ {
		if _, evicted := ins(c, b); evicted {
			t.Fatalf("infinite cache evicted at block %d", b)
		}
	}
	if c.Len() != 10_000 {
		t.Errorf("Len = %d, want 10000", c.Len())
	}
	if !c.Contains(5) {
		t.Error("Contains(5) = false after insert")
	}
	c.Remove(5)
	if c.Contains(5) {
		t.Error("Contains(5) = true after remove")
	}
	if c.Len() != 9_999 {
		t.Errorf("Len = %d after remove, want 9999", c.Len())
	}
}

func TestNewSetAssocValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 2}, {-1, 2}, {3, 2}, {2, 0}, {2, -1}} {
		if _, err := NewSetAssoc(bad.sets, bad.ways); err == nil {
			t.Errorf("NewSetAssoc(%d, %d) succeeded, want error", bad.sets, bad.ways)
		}
	}
	if _, err := NewSetAssoc(4, 2); err != nil {
		t.Errorf("NewSetAssoc(4, 2): %v", err)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	ins(c, 1)
	ins(c, 2)
	c.Touch(1) // order now 1 (MRU), 2 (LRU)
	victim, evicted := ins(c, 3)
	if !evicted || victim != 2 {
		t.Errorf("Insert(3) = (%d, %v), want (2, true)", victim, evicted)
	}
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Errorf("residency after eviction: 1=%v 2=%v 3=%v", c.Contains(1), c.Contains(2), c.Contains(3))
	}
}

func TestInsertResidentRefreshes(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	ins(c, 1)
	ins(c, 2)
	ins(c, 1) // refresh, not a second copy
	if c.Len() != 2 {
		t.Fatalf("Len = %d after duplicate insert, want 2", c.Len())
	}
	victim, evicted := ins(c, 3)
	if !evicted || victim != 2 {
		t.Errorf("Insert(3) = (%d, %v), want (2, true)", victim, evicted)
	}
}

func TestSetAssocIsolatesSets(t *testing.T) {
	// 2 sets × 1 way: even and odd blocks never displace each other.
	c, err := NewSetAssoc(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ins(c, 0)
	ins(c, 1)
	victim, evicted := ins(c, 2) // even set: displaces 0, not 1
	if !evicted || victim != 0 {
		t.Errorf("Insert(2) = (%d, %v), want (0, true)", victim, evicted)
	}
	if !c.Contains(1) {
		t.Error("odd-set block 1 displaced by an even-set insert")
	}
}

func TestRemoveAbsentAndTouchAbsentAreNoops(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(7)
	c.Touch(7)
	ins(c, 1)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	c.Remove(1)
	c.Remove(1)
	if c.Len() != 0 {
		t.Errorf("Len = %d after double remove, want 0", c.Len())
	}
	// The freed frame is reusable.
	ins(c, 2)
	ins(c, 3)
	if _, evicted := ins(c, 4); !evicted {
		t.Error("full cache did not evict")
	}
}

// The set-associative cache must agree with a straightforward model (per-set
// MRU-ordered lists) across random operation streams.
func TestQuickSetAssocInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, ways = 4, 2
		c, err := NewSetAssoc(sets, ways)
		if err != nil {
			t.Fatal(err)
		}
		// Model: per set, ordered slice of resident blocks, MRU first.
		model := make([][]uint64, sets)
		find := func(s int, b uint64) int {
			for i, x := range model[s] {
				if x == b {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 2000; op++ {
			b := uint64(rng.Intn(32))
			s := int(b % sets)
			switch rng.Intn(3) {
			case 0: // Insert
				victim, evicted := ins(c, b)
				if i := find(s, b); i >= 0 {
					if evicted {
						t.Errorf("seed %d op %d: resident insert evicted", seed, op)
						return false
					}
					model[s] = append(model[s][:i], model[s][i+1:]...)
					model[s] = append([]uint64{b}, model[s]...)
				} else {
					if len(model[s]) == ways {
						wantVictim := model[s][len(model[s])-1]
						if !evicted || uint64(victim) != wantVictim {
							t.Errorf("seed %d op %d: victim = (%d, %v), want (%d, true)", seed, op, victim, evicted, wantVictim)
							return false
						}
						model[s] = model[s][:len(model[s])-1]
					} else if evicted {
						t.Errorf("seed %d op %d: eviction from non-full set", seed, op)
						return false
					}
					model[s] = append([]uint64{b}, model[s]...)
				}
			case 1: // Touch
				c.Touch(blockid.ID(b))
				if i := find(s, b); i >= 0 {
					model[s] = append(model[s][:i], model[s][i+1:]...)
					model[s] = append([]uint64{b}, model[s]...)
				}
			case 2: // Remove
				c.Remove(blockid.ID(b))
				if i := find(s, b); i >= 0 {
					model[s] = append(model[s][:i], model[s][i+1:]...)
				}
			}
			// Residency must agree after every operation.
			total := 0
			for s := range model {
				total += len(model[s])
				for _, x := range model[s] {
					if !c.Contains(blockid.ID(x)) {
						t.Errorf("seed %d op %d: model holds %d, cache does not", seed, op, x)
						return false
					}
				}
			}
			if c.Len() != total {
				t.Errorf("seed %d op %d: Len = %d, model %d", seed, op, c.Len(), total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The steady-state access path — hits, evictions, removes over an already
// sized id index — must be allocation-free: the intrusive frame pool never
// creates list nodes and the id index only grows on fresh ids.
func TestSetAssocSteadyStateAllocs(t *testing.T) {
	c, err := NewSetAssoc(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	const blocks = 256
	for b := uint64(0); b < blocks; b++ {
		ins(c, b) // size the id index and warm the frame pool
	}
	avg := testing.AllocsPerRun(100, func() {
		for b := uint64(0); b < blocks; b++ {
			ins(c, b)
			c.Touch(blockid.ID(b))
		}
		for b := uint64(0); b < blocks; b += 3 {
			c.Remove(blockid.ID(b))
		}
		for b := uint64(0); b < blocks; b += 3 {
			ins(c, b)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state operations allocated %.1f times per run, want 0", avg)
	}
}
