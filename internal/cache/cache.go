// Package cache models per-processor cache contents.
//
// The paper simulates infinite caches so that only the inherent cost of
// sharing is measured: "our simulations use infinite caches to eliminate
// the traffic caused by interference in finite caches". The protocol
// engines therefore default to an infinite cache, which needs no
// replacement tracking at all. This package additionally provides the
// finite set-associative LRU cache the paper invokes when it notes that
// "the performance of a system with smaller caches can be estimated to
// first order by adding the costs due to the finite cache size" — the
// simulator's finite mode measures that first-order addition directly.
package cache

import (
	"container/list"
	"fmt"
)

// Replacer tracks which blocks a single cache holds and decides victims.
//
// Touch records a reference to a resident block. Insert adds a block,
// returning a victim block that had to be evicted (evicted=true) to make
// room. Remove deletes a block (invalidation). Contains reports residency.
type Replacer interface {
	Touch(block uint64)
	Insert(block uint64) (victim uint64, evicted bool)
	Remove(block uint64)
	Contains(block uint64) bool
	Len() int
}

// Infinite is a cache that never evicts; it only remembers membership.
// The zero value is not usable; use NewInfinite.
type Infinite struct {
	blocks map[uint64]struct{}
}

// NewInfinite returns an infinite cache.
func NewInfinite() *Infinite {
	return &Infinite{blocks: map[uint64]struct{}{}}
}

// Touch implements Replacer (no recency to maintain).
func (c *Infinite) Touch(block uint64) {}

// Insert implements Replacer; it never evicts.
func (c *Infinite) Insert(block uint64) (uint64, bool) {
	c.blocks[block] = struct{}{}
	return 0, false
}

// Remove implements Replacer.
func (c *Infinite) Remove(block uint64) { delete(c.blocks, block) }

// Contains implements Replacer.
func (c *Infinite) Contains(block uint64) bool {
	_, ok := c.blocks[block]
	return ok
}

// Len implements Replacer.
func (c *Infinite) Len() int { return len(c.blocks) }

// SetAssoc is a set-associative cache with per-set LRU replacement. With
// Sets == 1 it degenerates to a fully associative LRU cache.
type SetAssoc struct {
	sets int
	ways int
	// Each set is an LRU list of block numbers (front = most recent)
	// plus an index for O(1) membership.
	lru   []*list.List
	index []map[uint64]*list.Element
}

// NewSetAssoc returns a cache of sets × ways blocks. Sets must be a power
// of two so the set index can be taken from the block number's low bits.
func NewSetAssoc(sets, ways int) (*SetAssoc, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets = %d must be a positive power of two", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: ways = %d must be positive", ways)
	}
	c := &SetAssoc{
		sets:  sets,
		ways:  ways,
		lru:   make([]*list.List, sets),
		index: make([]map[uint64]*list.Element, sets),
	}
	for i := range c.lru {
		c.lru[i] = list.New()
		c.index[i] = map[uint64]*list.Element{}
	}
	return c, nil
}

// NewLRU returns a fully associative LRU cache holding capacity blocks.
func NewLRU(capacity int) (*SetAssoc, error) {
	return NewSetAssoc(1, capacity)
}

func (c *SetAssoc) set(block uint64) int {
	return int(block & uint64(c.sets-1))
}

// Touch implements Replacer.
func (c *SetAssoc) Touch(block uint64) {
	s := c.set(block)
	if e, ok := c.index[s][block]; ok {
		c.lru[s].MoveToFront(e)
	}
}

// Insert implements Replacer. Inserting a resident block just refreshes
// its recency.
func (c *SetAssoc) Insert(block uint64) (uint64, bool) {
	s := c.set(block)
	if e, ok := c.index[s][block]; ok {
		c.lru[s].MoveToFront(e)
		return 0, false
	}
	var victim uint64
	evicted := false
	if c.lru[s].Len() >= c.ways {
		back := c.lru[s].Back()
		victim = back.Value.(uint64)
		c.lru[s].Remove(back)
		delete(c.index[s], victim)
		evicted = true
	}
	c.index[s][block] = c.lru[s].PushFront(block)
	return victim, evicted
}

// Remove implements Replacer.
func (c *SetAssoc) Remove(block uint64) {
	s := c.set(block)
	if e, ok := c.index[s][block]; ok {
		c.lru[s].Remove(e)
		delete(c.index[s], block)
	}
}

// Contains implements Replacer.
func (c *SetAssoc) Contains(block uint64) bool {
	_, ok := c.index[c.set(block)][block]
	return ok
}

// Len implements Replacer.
func (c *SetAssoc) Len() int {
	n := 0
	for _, m := range c.index {
		n += len(m)
	}
	return n
}

// Capacity returns the total number of blocks the cache can hold.
func (c *SetAssoc) Capacity() int { return c.sets * c.ways }
