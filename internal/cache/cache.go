// Package cache models per-processor cache contents.
//
// The paper simulates infinite caches so that only the inherent cost of
// sharing is measured: "our simulations use infinite caches to eliminate
// the traffic caused by interference in finite caches". The protocol
// engines therefore default to an infinite cache, which needs no
// replacement tracking at all. This package additionally provides the
// finite set-associative LRU cache the paper invokes when it notes that
// "the performance of a system with smaller caches can be estimated to
// first order by adding the costs due to the finite cache size" — the
// simulator's finite mode measures that first-order addition directly.
//
// Replacers are keyed by dense block ids (internal/blockid) rather than
// raw addresses: membership is a slice index, and the LRU structure is an
// intrusive array-linked list over a fixed frame pool, so the steady-state
// access path performs no allocation and no hashing. Set selection still
// uses the raw block number's low bits — the hardware indexing — so finite
// LRU behaviour is bit-identical to the address-keyed implementation this
// replaced.
package cache

import (
	"fmt"

	"dirsim/internal/blockid"
)

// Replacer tracks which blocks a single cache holds and decides victims.
// Blocks are identified by their dense id; Insert additionally takes the
// raw block number, whose low bits select the set.
//
// Touch records a reference to a resident block. Insert adds a block,
// returning the id of a victim block that had to be evicted
// (evicted=true) to make room. Remove deletes a block (invalidation).
// Contains reports residency.
type Replacer interface {
	Touch(id blockid.ID)
	Insert(block uint64, id blockid.ID) (victim blockid.ID, evicted bool)
	Remove(id blockid.ID)
	Contains(id blockid.ID) bool
	Len() int
}

// Infinite is a cache that never evicts; it only remembers membership.
type Infinite struct {
	held []bool // indexed by block id
	n    int
}

// NewInfinite returns an infinite cache.
func NewInfinite() *Infinite { return &Infinite{} }

// Touch implements Replacer (no recency to maintain).
func (c *Infinite) Touch(id blockid.ID) {}

// Insert implements Replacer; it never evicts.
func (c *Infinite) Insert(block uint64, id blockid.ID) (blockid.ID, bool) {
	if int(id) >= len(c.held) {
		grown := make([]bool, int(id)+1+len(c.held))
		copy(grown, c.held)
		c.held = grown
	}
	if !c.held[id] {
		c.held[id] = true
		c.n++
	}
	return 0, false
}

// Remove implements Replacer.
func (c *Infinite) Remove(id blockid.ID) {
	if int(id) < len(c.held) && c.held[id] {
		c.held[id] = false
		c.n--
	}
}

// Contains implements Replacer.
func (c *Infinite) Contains(id blockid.ID) bool {
	return int(id) < len(c.held) && c.held[id]
}

// Len implements Replacer.
func (c *Infinite) Len() int { return c.n }

// noFrame marks an empty link or an absent id.
const noFrame = int32(-1)

// SetAssoc is a set-associative cache with per-set LRU replacement. With
// Sets == 1 it degenerates to a fully associative LRU cache.
//
// The structure is a fixed pool of sets×ways frames. Each set owns the
// frames [s·ways, (s+1)·ways) and threads the resident ones on an
// intrusive doubly-linked LRU list (head = most recent) with a free list
// for the rest, all through the prev/next arrays — no list nodes are ever
// allocated. nodeOf maps a block id to its frame for O(1) membership; it
// grows only when a new id exceeds its length, which amortizes to zero.
type SetAssoc struct {
	sets   int
	ways   int
	prev   []int32      // per frame: previous frame in the set's LRU list
	next   []int32      // per frame: next frame (LRU list or free list)
	ids    []blockid.ID // per frame: resident block id
	fset   []int32      // per frame: owning set (frames never migrate)
	head   []int32      // per set: most-recently-used frame
	tail   []int32      // per set: least-recently-used frame
	free   []int32      // per set: free-list head, linked through next
	nodeOf []int32      // per block id: frame holding it, or noFrame
	n      int
}

// NewSetAssoc returns a cache of sets × ways blocks. Sets must be a power
// of two so the set index can be taken from the block number's low bits.
func NewSetAssoc(sets, ways int) (*SetAssoc, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets = %d must be a positive power of two", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: ways = %d must be positive", ways)
	}
	frames := sets * ways
	c := &SetAssoc{
		sets: sets,
		ways: ways,
		prev: make([]int32, frames),
		next: make([]int32, frames),
		ids:  make([]blockid.ID, frames),
		fset: make([]int32, frames),
		head: make([]int32, sets),
		tail: make([]int32, sets),
		free: make([]int32, sets),
	}
	for s := 0; s < sets; s++ {
		c.head[s] = noFrame
		c.tail[s] = noFrame
		// Free list in ascending frame order within the set.
		c.free[s] = int32(s * ways)
		for w := 0; w < ways; w++ {
			f := s*ways + w
			c.fset[f] = int32(s)
			if w+1 < ways {
				c.next[f] = int32(f + 1)
			} else {
				c.next[f] = noFrame
			}
		}
	}
	return c, nil
}

// NewLRU returns a fully associative LRU cache holding capacity blocks.
func NewLRU(capacity int) (*SetAssoc, error) {
	return NewSetAssoc(1, capacity)
}

// frame returns the frame holding id, or noFrame.
func (c *SetAssoc) frame(id blockid.ID) int32 {
	if int(id) >= len(c.nodeOf) {
		return noFrame
	}
	return c.nodeOf[id]
}

// ensureID grows the id→frame index to cover id.
func (c *SetAssoc) ensureID(id blockid.ID) {
	if int(id) < len(c.nodeOf) {
		return
	}
	grown := make([]int32, int(id)+1+len(c.nodeOf))
	copy(grown, c.nodeOf)
	for i := len(c.nodeOf); i < len(grown); i++ {
		grown[i] = noFrame
	}
	c.nodeOf = grown
}

// detach unlinks frame f from its set's LRU list.
func (c *SetAssoc) detach(f int32) {
	s := c.fset[f]
	if c.prev[f] != noFrame {
		c.next[c.prev[f]] = c.next[f]
	} else {
		c.head[s] = c.next[f]
	}
	if c.next[f] != noFrame {
		c.prev[c.next[f]] = c.prev[f]
	} else {
		c.tail[s] = c.prev[f]
	}
}

// pushFront links frame f at the most-recently-used end of its set.
func (c *SetAssoc) pushFront(f int32) {
	s := c.fset[f]
	c.prev[f] = noFrame
	c.next[f] = c.head[s]
	if c.head[s] != noFrame {
		c.prev[c.head[s]] = f
	} else {
		c.tail[s] = f
	}
	c.head[s] = f
}

// Touch implements Replacer.
func (c *SetAssoc) Touch(id blockid.ID) {
	f := c.frame(id)
	if f == noFrame || c.head[c.fset[f]] == f {
		return
	}
	c.detach(f)
	c.pushFront(f)
}

// Insert implements Replacer. Inserting a resident block just refreshes
// its recency.
func (c *SetAssoc) Insert(block uint64, id blockid.ID) (blockid.ID, bool) {
	c.ensureID(id)
	if f := c.nodeOf[id]; f != noFrame {
		if c.head[c.fset[f]] != f {
			c.detach(f)
			c.pushFront(f)
		}
		return 0, false
	}
	s := int(block & uint64(c.sets-1))
	var victim blockid.ID
	evicted := false
	f := c.free[s]
	if f != noFrame {
		c.free[s] = c.next[f]
	} else {
		// Set full: evict the least-recently-used frame and reuse it.
		f = c.tail[s]
		victim = c.ids[f]
		c.nodeOf[victim] = noFrame
		c.detach(f)
		evicted = true
		c.n--
	}
	c.ids[f] = id
	c.pushFront(f)
	c.nodeOf[id] = int32(f)
	c.n++
	return victim, evicted
}

// Remove implements Replacer.
func (c *SetAssoc) Remove(id blockid.ID) {
	f := c.frame(id)
	if f == noFrame {
		return
	}
	c.detach(f)
	s := c.fset[f]
	c.next[f] = c.free[s]
	c.free[s] = f
	c.nodeOf[id] = noFrame
	c.n--
}

// Contains implements Replacer.
func (c *SetAssoc) Contains(id blockid.ID) bool {
	return c.frame(id) != noFrame
}

// Len implements Replacer.
func (c *SetAssoc) Len() int { return c.n }

// Capacity returns the total number of blocks the cache can hold.
func (c *SetAssoc) Capacity() int { return c.sets * c.ways }
