package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health is the fleet's per-peer up/down state, shared between a
// Router (which sorts down peers last), a Prober (which maintains it
// from /readyz), and a Client (which marks peers down on transport
// failure so the very next cell skips them). All methods are safe for
// concurrent use and on a nil receiver (everything up, marks ignored).
type Health struct {
	mu   sync.Mutex
	down map[int]bool
}

// NewHealth returns a Health with every peer up.
func NewHealth() *Health { return &Health{down: map[int]bool{}} }

// SetDown marks peer i down (true) or up (false).
func (h *Health) SetDown(i int, down bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if down {
		h.down[i] = true
	} else {
		delete(h.down, i)
	}
}

// Down reports whether peer i is marked down.
func (h *Health) Down(i int) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[i]
}

// Prober maintains Health from each peer's /readyz endpoint. It is
// deliberately clock-free: the probe cadence comes from the injected
// Sleep (the cmd layer passes a ctx-aware time.Sleep), so tests drive
// probes synchronously with ProbeOnce and no timers.
//
// A peer is marked down after FailAfter consecutive failed probes and
// up again on the first success — a draining daemon (readyz 503) drops
// out of peering before it stops serving, which is exactly the order a
// graceful shutdown wants.
type Prober struct {
	// Source supplies the membership (lazily; probing is a no-op until
	// the membership file loads).
	Source *Source
	// Health receives the up/down marks.
	Health *Health
	// SelfAddr is this daemon's host:port; the matching peer is never
	// probed (a daemon is trivially reachable from itself).
	SelfAddr string
	// HTTP issues the probes. It must carry its own Timeout — a probe
	// hanging on a dead peer would otherwise stall the probe loop.
	HTTP *http.Client
	// Interval separates probe rounds in Run.
	Interval time.Duration
	// Sleep waits between rounds (nil: Run probes once and returns).
	Sleep func(time.Duration)
	// FailAfter is how many consecutive failures mark a peer down;
	// below 1 means 1 (first failure).
	FailAfter int

	fails map[int]int // consecutive failures per peer; Run-goroutine only
}

// Run probes until ctx is canceled, sleeping Interval between rounds.
func (p *Prober) Run(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		p.ProbeOnce(ctx)
		if p.Sleep == nil {
			return
		}
		p.Sleep(p.Interval)
	}
}

// ProbeOnce probes every non-self peer once and updates Health.
func (p *Prober) ProbeOnce(ctx context.Context) {
	mem, ok := p.Source.Get()
	if !ok {
		return
	}
	if p.fails == nil {
		p.fails = map[int]int{}
	}
	failAfter := p.FailAfter
	if failAfter < 1 {
		failAfter = 1
	}
	self := mem.IndexOfAddr(p.SelfAddr)
	for i, peer := range mem.Peers {
		if i == self {
			continue
		}
		if p.ready(ctx, peer.Addr) {
			p.fails[i] = 0
			p.Health.SetDown(i, false)
			continue
		}
		p.fails[i]++
		if p.fails[i] >= failAfter {
			p.Health.SetDown(i, true)
		}
	}
}

// ready reports whether one peer answers /readyz with 200.
func (p *Prober) ready(ctx context.Context, baseURL string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/readyz", trimSlash(baseURL)), nil)
	if err != nil {
		return false
	}
	resp, err := p.HTTP.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}
