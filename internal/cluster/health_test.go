package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A prober marks a peer down after FailAfter consecutive /readyz
// failures and up again on the first success; self is never probed.
func TestProberMarksDownAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probed %s, want /readyz", r.URL.Path)
		}
		probes.Add(1)
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	m := Membership{Peers: []Peer{
		{Addr: ts.URL},
		{Addr: "http://127.0.0.1:9"}, // self: must not be probed
	}}
	h := NewHealth()
	p := &Prober{
		Source:    StaticSource(m),
		Health:    h,
		SelfAddr:  m.Peers[1].Addr[len("http://"):],
		HTTP:      &http.Client{Timeout: time.Second},
		FailAfter: 2,
	}
	ctx := context.Background()

	p.ProbeOnce(ctx)
	if h.Down(0) {
		t.Fatal("healthy peer marked down")
	}
	healthy.Store(false)
	p.ProbeOnce(ctx)
	if h.Down(0) {
		t.Fatal("one failure marked the peer down before FailAfter=2")
	}
	p.ProbeOnce(ctx)
	if !h.Down(0) {
		t.Fatal("two consecutive failures did not mark the peer down")
	}
	healthy.Store(true)
	p.ProbeOnce(ctx)
	if h.Down(0) {
		t.Fatal("first success did not mark the peer back up")
	}
	if h.Down(1) {
		t.Fatal("self was marked down")
	}
	if probes.Load() != 4 {
		t.Errorf("server saw %d probes, want 4 (self skipped)", probes.Load())
	}
}

// With a nil Sleep, Run probes exactly once and returns — the hook
// tests use; and probing is a no-op until the membership source loads.
func TestProberRunOnceAndUnloadedSource(t *testing.T) {
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
	}))
	defer ts.Close()

	unloaded := &Prober{
		Source: FileSource("/nonexistent/peers.json"),
		Health: NewHealth(),
		HTTP:   &http.Client{Timeout: time.Second},
	}
	unloaded.Run(context.Background())
	if probes.Load() != 0 {
		t.Fatal("prober probed with no membership loaded")
	}

	p := &Prober{
		Source: StaticSource(Membership{Peers: []Peer{{Addr: ts.URL}}}),
		Health: NewHealth(),
		HTTP:   &http.Client{Timeout: time.Second},
	}
	p.Run(context.Background())
	if probes.Load() != 1 {
		t.Errorf("Run with nil Sleep probed %d times, want exactly 1", probes.Load())
	}

	// A canceled context stops Run before any probe.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Run(ctx)
	if probes.Load() != 1 {
		t.Error("Run probed despite a canceled context")
	}
}
