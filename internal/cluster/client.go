package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/remote"
	"dirsim/internal/runner"
	"dirsim/internal/spec"
)

// KeyHeader carries the shared cluster key on peer-to-peer cache
// requests. It is distinct from tenant Authorization: peering is
// fleet-internal traffic, exempt from tenant quotas and rate limits.
const KeyHeader = "X-Dirsim-Cluster-Key"

// Client runs cells against the fleet: each cell is routed to its HRW
// owner, hedged onto the next peer in HRW order after HedgeDelay, and
// failed over on transport errors. First success wins and cancels the
// losers — content addressing and the daemons' singleflight make the
// duplicated attempt harmless (both attach to the same job id).
type Client struct {
	// Membership is the fleet (the same file the daemons load).
	Membership Membership
	// Router orders peers per cell; build it over Membership and the
	// shared Health.
	Router *Router
	// Health records peers seen dead (transport errors); the router
	// then deprioritises them for every later cell.
	Health *Health
	// APIKey authenticates to daemons running with tenants configured.
	APIKey string
	// HTTP is the transport shared by every per-peer request; nil uses
	// the remote package's default (bounded dial, request lifetime from
	// the context).
	HTTP *http.Client
	// Retry and Sleep configure each per-peer attempt's 429/503 retry
	// policy, exactly as remote.Client takes them.
	Retry runner.RetryPolicy
	Sleep func(time.Duration)
	// HedgeDelay is how long the primary attempt runs alone before the
	// next peer in HRW order is tried concurrently. Zero (or nil After)
	// disables hedging — failover then happens only on error.
	HedgeDelay time.Duration
	// After is the injected hedge timer (cmd passes time.After); nil
	// disables hedging, which keeps internal packages clock-free and
	// lets tests fire hedges deterministically.
	After func(time.Duration) <-chan time.Time
	// Tracer, when set, records one "cell" span per RunCell and one
	// "attempt-<reason>" span per peer attempt (reason: primary, hedge,
	// failover), each carrying the peer address and a win/error/canceled
	// outcome. The trace id is the cell's content hash, and the context
	// is propagated to the daemons via X-Dirsim-Trace.
	Tracer *otrace.Tracer
	// Metrics, when set, receives hedge-outcome counters:
	// cluster_hedge_fired, cluster_hedge_win, cluster_failover,
	// cluster_attempt_canceled.
	Metrics *obs.Metrics
}

// count bumps one named counter when metrics are wired.
func (c *Client) count(name string) {
	if c.Metrics != nil {
		c.Metrics.AddCounter(name, 1)
	}
}

// attempt is one peer's outcome inside RunCell.
type attempt struct {
	peer   int
	reason string
	doc    *spec.ResultDoc
	err    error
}

// RunCell executes one cell on the fleet and returns its result
// document. Peers are tried in HRW order for the cell's content hash:
// the owner first, the next peer added after HedgeDelay (hedge) or
// immediately when an attempt fails (failover). The first success
// cancels every other attempt. The cell hash — not the request hash —
// is the routing key, so the daemon receiving the cell is the same
// node its checkpointed cell document homes to.
func (c *Client) RunCell(ctx context.Context, cell spec.Cell) (*spec.ResultDoc, error) {
	hash, err := cell.Hash()
	if err != nil {
		return nil, err
	}
	order := c.Router.Order(hash)
	if len(order) == 0 {
		return nil, errors.New("cluster: empty membership")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rootSp := c.Tracer.Start(otrace.Root(hash), "cell")
	rootSp.SetOutcome("error")
	defer rootSp.Finish()
	rootCtx := rootSp.Context()
	results := make(chan attempt, len(order))
	launched, outstanding := 0, 0
	launch := func(reason string) {
		pi := order[launched]
		launched++
		outstanding++
		addr := c.Membership.Peers[pi].Addr
		rc := &remote.Client{
			BaseURL: addr,
			HTTP:    c.HTTP,
			APIKey:  c.APIKey,
			Retry:   c.Retry,
			Sleep:   c.Sleep,
		}
		cellCopy := cell
		sp := c.Tracer.Start(rootCtx, "attempt-"+reason)
		sp.SetPeer(addr)
		actx := otrace.With(ctx, sp.Context())
		go func() {
			doc, err := rc.Run(actx, spec.Request{Cell: &cellCopy})
			switch {
			case err == nil:
				sp.SetOutcome("win")
			case ctx.Err() != nil:
				sp.SetOutcome("canceled")
				c.count("cluster_attempt_canceled")
			default:
				sp.SetOutcome("error")
			}
			sp.Finish()
			results <- attempt{peer: pi, reason: reason, doc: doc, err: err}
		}()
	}
	// hedge is armed only while another peer remains to launch.
	var hedge <-chan time.Time
	arm := func() {
		hedge = nil
		if c.After != nil && c.HedgeDelay > 0 && launched < len(order) {
			hedge = c.After(c.HedgeDelay)
		}
	}
	launch("primary")
	arm()
	var errs []error
	for {
		select {
		case a := <-results:
			outstanding--
			if a.err == nil {
				if a.reason == "hedge" {
					c.count("cluster_hedge_win")
				}
				rootSp.SetOutcome(a.reason)
				return a.doc, nil
			}
			if ctx.Err() != nil {
				rootSp.SetOutcome("canceled")
				return nil, context.Cause(ctx)
			}
			if IsTransportError(a.err) {
				c.Health.SetDown(a.peer, true)
			}
			errs = append(errs, fmt.Errorf("peer %s: %w", c.Membership.Peers[a.peer].Addr, a.err))
			if launched < len(order) {
				c.count("cluster_failover")
				launch("failover")
				arm()
			} else if outstanding == 0 {
				return nil, fmt.Errorf("cluster: cell %s failed on all peers: %w", cell.Label(), errors.Join(errs...))
			}
		case <-hedge:
			if launched < len(order) {
				c.count("cluster_hedge_fired")
				launch("hedge")
			}
			arm()
		case <-ctx.Done():
			rootSp.SetOutcome("canceled")
			return nil, context.Cause(ctx)
		}
	}
}

// RunCells fans cells out over a bounded worker pool, each cell through
// RunCell. onDone is called exactly once per cell, serialized (never
// concurrently), in completion order. The first cell failure cancels
// the remaining work and is returned; later cells then surface
// cancellation errors through onDone, which callers should ignore in
// favour of the returned error.
func (c *Client) RunCells(ctx context.Context, cells []spec.Cell, workers int, onDone func(i int, doc *spec.ResultDoc, err error)) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	idx := make(chan int)
	var wg sync.WaitGroup
	// The first failure is recorded by cancelling the shared context with
	// the wrapped error as its cause — context.Cause is the error slot, so
	// no goroutine ever assigns a captured variable. cancel is a no-op on
	// an already-cancelled context, which is exactly first-error-wins.
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				doc, err := c.RunCell(ctx, cells[i])
				mu.Lock()
				if err != nil {
					cancel(fmt.Errorf("cluster: cell %d (%s): %w", i, cells[i].Label(), err))
				}
				if onDone != nil {
					onDone(i, doc, err)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := context.Cause(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// IsTransportError reports whether err is a connection-level failure
// (dial refused, reset, timeout) as opposed to a daemon answering with
// an error status — the distinction between "mark the peer down" and
// "the fleet is fine, the request is not".
func IsTransportError(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// CacheClient is the daemon-side peering fetch: GET /v1/cache/{hash}
// against a sibling, authenticated by the shared cluster key.
type CacheClient struct {
	// HTTP must carry its own Timeout: a peer fetch is an optimisation,
	// and a hung peer must cost bounded time before the daemon falls
	// back to simulating locally.
	HTTP *http.Client
	// Key is the membership's shared cluster key (may be empty for
	// keyless fleets on trusted networks).
	Key string
}

// Fetch asks one peer for the completed document stored under hash.
// found is false on a clean miss (404); err is reserved for transport
// failures and unexpected statuses.
func (c *CacheClient) Fetch(ctx context.Context, baseURL, hash string) (data []byte, found bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, trimSlash(baseURL)+"/v1/cache/"+hash, nil)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: %w", err)
	}
	if c.Key != "" {
		req.Header.Set(KeyHeader, c.Key)
	}
	if tc, ok := otrace.From(ctx); ok {
		req.Header.Set(otrace.HeaderName, tc.String())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: reading peer response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: peer answered %d %s", resp.StatusCode, http.StatusText(resp.StatusCode))
	}
}
