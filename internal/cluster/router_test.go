package cluster

import (
	"fmt"
	"testing"
)

func mem(addrs ...string) Membership {
	m := Membership{}
	for _, a := range addrs {
		m.Peers = append(m.Peers, Peer{Addr: a})
	}
	return m
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i)
	}
	return keys
}

// Placement is a pure function of (key, membership): two routers over
// the same membership agree on every key, and the order is a
// permutation of the peer indices.
func TestOrderDeterministicPermutation(t *testing.T) {
	m := mem("http://a:1", "http://b:1", "http://c:1", "http://d:1")
	r1, r2 := NewRouter(m, nil), NewRouter(m, nil)
	for _, k := range testKeys(100) {
		o1, o2 := r1.Order(k), r2.Order(k)
		if len(o1) != len(m.Peers) {
			t.Fatalf("order has %d entries, want %d", len(o1), len(m.Peers))
		}
		seen := map[int]bool{}
		for i, p := range o1 {
			if p != o2[i] {
				t.Fatalf("key %s: routers disagree: %v vs %v", k, o1, o2)
			}
			if p < 0 || p >= len(m.Peers) || seen[p] {
				t.Fatalf("key %s: order %v is not a permutation", k, o1)
			}
			seen[p] = true
		}
	}
}

// The minimal-disruption property: removing one peer remaps only the
// keys that peer owned. Every other key keeps its owner — the reason a
// daemon dying mid-sweep re-homes exactly its own cells.
func TestRemovalRemapsOnlyOwnedKeys(t *testing.T) {
	full := mem("http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1")
	// without drops the last peer; indices 0..3 mean the same daemons.
	without := Membership{Peers: full.Peers[:4]}
	rFull, rLess := NewRouter(full, nil), NewRouter(without, nil)
	moved, owned := 0, 0
	for _, k := range testKeys(500) {
		of, ok := rFull.Owner(k)
		if !ok {
			t.Fatal("full membership has no owner")
		}
		ol, ok := rLess.Owner(k)
		if !ok {
			t.Fatal("reduced membership has no owner")
		}
		if of == 4 {
			owned++ // removed peer's keys must re-home somewhere
			continue
		}
		if of != ol {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed peer changed owner", moved)
	}
	if owned == 0 {
		t.Error("removed peer owned no keys out of 500 — suspicious distribution")
	}
}

// Weight biases ownership: a weight-3 peer should own roughly three
// times the keys of each weight-1 peer.
func TestWeightBias(t *testing.T) {
	m := Membership{Peers: []Peer{
		{Addr: "http://heavy:1", Weight: 3},
		{Addr: "http://light1:1", Weight: 1},
		{Addr: "http://light2:1", Weight: 1},
	}}
	r := NewRouter(m, nil)
	counts := make([]int, 3)
	keys := testKeys(3000)
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	// Expect ~3/5 of keys on the heavy peer; accept a generous band.
	frac := float64(counts[0]) / float64(len(keys))
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("heavy peer owns %.2f of keys, want ≈ 0.6 (counts %v)", frac, counts)
	}
}

// Down peers sort to the back of the order — tried last, never first —
// and Owner skips them entirely.
func TestDownPeersLast(t *testing.T) {
	m := mem("http://a:1", "http://b:1", "http://c:1")
	h := NewHealth()
	r := NewRouter(m, h)
	for _, k := range testKeys(50) {
		first := r.Order(k)[0]
		h.SetDown(first, true)
		o := r.Order(k)
		if o[len(o)-1] != first {
			t.Fatalf("key %s: down peer %d not last in %v", k, first, o)
		}
		if owner, ok := r.Owner(k); !ok || owner == first {
			t.Fatalf("key %s: owner %d should skip the down peer %d", k, owner, first)
		}
		h.SetDown(first, false)
	}
	// An entirely-down fleet has no owner.
	for i := range m.Peers {
		h.SetDown(i, true)
	}
	if _, ok := r.Owner("deadbeef"); ok {
		t.Error("entirely-down fleet still reported an owner")
	}
}

// FuzzRendezvous pins the two properties placement correctness rests
// on: Order is always a permutation (no panics, no dropped or repeated
// peers, including degenerate memberships), and removing the last peer
// remaps only the keys it owned.
func FuzzRendezvous(f *testing.F) {
	f.Add("deadbeef", 3, 1.0)
	f.Add("", 0, 0.0)
	f.Add("cell/abc", 1, 2.5)
	f.Add("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff", 7, 0.001)
	f.Fuzz(func(t *testing.T, key string, n int, w float64) {
		if n < 0 {
			n = -n
		}
		n %= 9 // 0..8 peers
		m := Membership{}
		for i := 0; i < n; i++ {
			weight := w
			if weight < 0 || weight != weight { // negatives and NaN normalise to 1 in score
				weight = 0
			}
			m.Peers = append(m.Peers, Peer{Addr: fmt.Sprintf("http://p%d:1", i), Weight: weight})
		}
		r := NewRouter(m, nil)
		order := r.Order(key)
		if n == 0 {
			if order != nil {
				t.Fatalf("empty membership: order = %v, want nil", order)
			}
			if _, ok := r.Owner(key); ok {
				t.Fatal("empty membership reported an owner")
			}
			return
		}
		if len(order) != n {
			t.Fatalf("order has %d entries, want %d", len(order), n)
		}
		seen := map[int]bool{}
		for _, p := range order {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("order %v is not a permutation of 0..%d", order, n-1)
			}
			seen[p] = true
		}
		if n < 2 {
			return
		}
		// Remove the last peer: this key's owner either was that peer
		// (and re-homes) or must not move at all.
		less := NewRouter(Membership{Peers: m.Peers[:n-1]}, nil)
		of, _ := r.Owner(key)
		ol, ok := less.Owner(key)
		if !ok {
			t.Fatal("reduced membership has no owner")
		}
		if of != n-1 && of != ol {
			t.Fatalf("key %q: owner moved %d → %d though peer %d was removed", key, of, ol, n-1)
		}
	})
}
