package cluster

import (
	"math"
	"sort"
)

// Router computes deterministic peer preference orders by weighted
// rendezvous hashing (highest random weight). Each (key, peer) pair
// hashes to an independent uniform draw; the peer with the highest
// weighted score owns the key. Because every peer's score is computed
// independently of the others, removing a peer remaps only the keys
// that peer owned and adding one steals keys proportional to its
// weight — no other key moves. That minimal-disruption property is
// what makes a static membership file workable: a daemon dying
// mid-sweep re-homes exactly its own cells.
type Router struct {
	mem    Membership
	health *Health
}

// NewRouter builds a router over the membership. health may be nil
// (every peer considered up).
func NewRouter(mem Membership, health *Health) *Router {
	return &Router{mem: mem, health: health}
}

// Order returns peer indices in preference order for key: peers
// currently up first, each group sorted by descending HRW score (ties
// broken by index). Down peers still appear — at the back — so a
// client that has exhausted the healthy fleet can try them as a last
// resort rather than failing outright.
func (r *Router) Order(key string) []int {
	n := len(r.mem.Peers)
	if n == 0 {
		return nil
	}
	scores := make([]float64, n)
	for i, p := range r.mem.Peers {
		scores[i] = score(key, p.Addr, p.Weight)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		da, db := r.health.Down(ia), r.health.Down(ib)
		if da != db {
			return !da // up peers first
		}
		if scores[ia] > scores[ib] {
			return true
		}
		if scores[ib] > scores[ia] {
			return false
		}
		return ia < ib
	})
	return order
}

// Owner returns the key's owner: the highest-scoring peer that is not
// marked down. ok is false only for an empty membership or a fleet
// that is entirely down.
func (r *Router) Owner(key string) (int, bool) {
	for _, i := range r.Order(key) {
		if !r.health.Down(i) {
			return i, true
		}
	}
	return 0, false
}

// score is the weighted HRW draw for one (key, peer) pair:
// -weight/log(u) with u uniform in (0,1) derived from the pair's hash.
// Monotone in weight, independent across peers, and a pure function of
// the inputs — the whole fleet agrees on every placement by
// construction.
func score(key, addr string, weight float64) float64 {
	if weight <= 0 {
		weight = 1
	}
	h := hashPair(key, addr)
	// Top 53 bits → (0,1) exclusive: the +0.5 keeps u off both ends,
	// so log(u) is finite and negative.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -weight / math.Log(u)
}

// hashPair is FNV-1a over key, a zero separator, then addr —
// allocation-free and stable across processes and releases (placement
// is part of the fleet's observable behaviour).
func hashPair(key, addr string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= 0
	h *= prime
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime
	}
	return h
}
