package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseMembershipValidates(t *testing.T) {
	good := `{"key":"s3cret","peers":[{"addr":"http://10.0.0.1:8023","weight":2},{"addr":"http://10.0.0.2:8023"}]}`
	m, err := ParseMembership([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if m.Key != "s3cret" || len(m.Peers) != 2 || m.Peers[0].Weight != 2 {
		t.Errorf("parsed %+v", m)
	}
	for name, bad := range map[string]string{
		"no peers":      `{"peers":[]}`,
		"relative addr": `{"peers":[{"addr":"10.0.0.1:8023"}]}`,
		"bad scheme":    `{"peers":[{"addr":"ftp://x:1"}]}`,
		"duplicate":     `{"peers":[{"addr":"http://x:1"},{"addr":"http://x:1"}]}`,
		"neg weight":    `{"peers":[{"addr":"http://x:1","weight":-1}]}`,
		"not json":      `peers`,
	} {
		if _, err := ParseMembership([]byte(bad)); err == nil {
			t.Errorf("%s: accepted %s", name, bad)
		}
	}
}

func TestIndexOfAddr(t *testing.T) {
	m := Membership{Peers: []Peer{
		{Addr: "http://127.0.0.1:9001"},
		{Addr: "http://127.0.0.1:9002/"},
	}}
	if i := m.IndexOfAddr("127.0.0.1:9002"); i != 1 {
		t.Errorf("IndexOfAddr = %d, want 1", i)
	}
	if i := m.IndexOfAddr("127.0.0.1:9999"); i != -1 {
		t.Errorf("unknown address: IndexOfAddr = %d, want -1", i)
	}
}

// A file source retries the load until it first succeeds — the
// ephemeral-port bootstrap, where daemons bind before the membership
// file exists — then serves the cached value forever.
func TestFileSourceLazyLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	src := FileSource(path)
	if _, ok := src.Get(); ok {
		t.Fatal("source loaded a membership from a missing file")
	}
	if err := os.WriteFile(path, []byte(`{"peers":[{"addr":"http://a:1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, ok := src.Get()
	if !ok || len(m.Peers) != 1 {
		t.Fatalf("Get after write: ok=%v mem=%+v", ok, m)
	}
	// Once loaded, the file no longer matters: membership is immutable.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Get(); !ok {
		t.Error("loaded membership was forgotten")
	}
}

func TestNilHealthIsUp(t *testing.T) {
	var h *Health
	h.SetDown(0, true) // must not panic
	if h.Down(0) {
		t.Error("nil health reported a peer down")
	}
}
