// Package cluster turns N independent dirsimd daemons into one fleet.
//
// There is no consensus service and no coordinator process: membership
// is a static JSON file (addresses + weights + a shared cluster key)
// that every daemon and every client loads, and placement is pure
// arithmetic — weighted rendezvous hashing (highest random weight) over
// the spec's content hash. Every party that knows the membership
// computes the same owner for the same cell, so requests go
// point-to-point exactly like the paper's directory lookups: hash →
// home node, no broadcast.
//
// The moving parts:
//
//   - Membership/Source: the static peer set, lazily loadable from a
//     file so fleets on ephemeral ports can write the file after the
//     daemons bind (the daemon retries the load on first use).
//   - Router: deterministic weighted HRW order over peers for a key.
//     Removing one peer remaps only the keys that peer owned — the
//     property the FuzzRendezvous test pins.
//   - Health/Prober: per-peer up/down state driven by /readyz probes
//     under an injected clock; down peers sort to the back of the HRW
//     order so they are tried last, not first.
//   - Client: hedged fan-out of cells to their owners with failover
//     down the HRW order; first success wins, losers are canceled.
//   - CacheClient: the peer-to-peer result fetch (GET /v1/cache/{hash})
//     daemons use to serve a popular spec fleet-wide after simulating
//     it exactly once.
//
// The package stays stdlib-only and clock-free: anything time-based
// (hedge timers, probe intervals) is injected by the cmd layer.
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"os"
	"sync"
)

// Peer is one daemon in the fleet.
type Peer struct {
	// Addr is the daemon's base URL, e.g. "http://10.0.0.7:8023".
	Addr string `json:"addr"`
	// Weight scales the peer's share of the key space (node capacity).
	// Zero means 1; fractional weights are allowed.
	Weight float64 `json:"weight,omitempty"`
}

// Membership is the fleet's static configuration: the peer set plus the
// shared secret that authenticates peer-to-peer cache traffic.
type Membership struct {
	// Key, when non-empty, must accompany every /v1/cache request as
	// the X-Dirsim-Cluster-Key header. Every fleet member shares it.
	Key string `json:"key,omitempty"`
	// Peers is the fleet, in file order. Order never affects placement
	// (HRW scores each peer independently), only index numbering.
	Peers []Peer `json:"peers"`
}

// ParseMembership decodes and validates a membership document.
func ParseMembership(data []byte) (Membership, error) {
	var m Membership
	if err := json.Unmarshal(data, &m); err != nil {
		return Membership{}, fmt.Errorf("cluster: membership: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Membership{}, err
	}
	return m, nil
}

// LoadMembership reads and validates a membership file.
func LoadMembership(path string) (Membership, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, fmt.Errorf("cluster: membership file: %w", err)
	}
	return ParseMembership(data)
}

// Validate checks the peer set: at least one peer, every address a
// well-formed absolute http(s) URL, no duplicated host:port, no
// negative or non-finite weight.
func (m Membership) Validate() error {
	if len(m.Peers) == 0 {
		return fmt.Errorf("cluster: membership has no peers")
	}
	seen := map[string]bool{}
	for i, p := range m.Peers {
		u, err := url.Parse(p.Addr)
		if err != nil {
			return fmt.Errorf("cluster: peer %d address %q: %w", i, p.Addr, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: peer %d address %q is not an absolute http(s) URL", i, p.Addr)
		}
		if seen[u.Host] {
			return fmt.Errorf("cluster: duplicate peer %s", u.Host)
		}
		seen[u.Host] = true
		if p.Weight < 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
			return fmt.Errorf("cluster: peer %d has invalid weight %v", i, p.Weight)
		}
	}
	return nil
}

// IndexOfAddr finds the peer whose URL host matches hostport (the form
// net.Listener.Addr().String() yields), or -1. Daemons use it to locate
// themselves in the membership so peering skips the local node.
func (m Membership) IndexOfAddr(hostport string) int {
	for i, p := range m.Peers {
		if u, err := url.Parse(p.Addr); err == nil && u.Host == hostport {
			return i
		}
	}
	return -1
}

// Source provides membership, lazily. A file-backed source retries the
// load on every Get until it first succeeds, then serves the cached
// value forever — which lets a daemon start before its membership file
// exists (the ephemeral-port bootstrap: daemons bind, a script collects
// the addresses, writes the file, and the fleet forms on first use).
// Membership is immutable once loaded; changing the fleet means
// restarting with a new file, exactly like the tenants file.
type Source struct {
	mu   sync.Mutex
	path string
	mem  Membership
	ok   bool
}

// FileSource returns a source lazily backed by the given file.
func FileSource(path string) *Source { return &Source{path: path} }

// StaticSource returns a source serving a fixed membership (tests, and
// clients that already loaded the file themselves).
func StaticSource(m Membership) *Source { return &Source{mem: m, ok: true} }

// Get returns the membership, attempting the file load if it has not
// succeeded yet. ok is false until a load succeeds.
func (s *Source) Get() (Membership, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ok {
		return s.mem, true
	}
	if s.path == "" {
		return Membership{}, false
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		return Membership{}, false
	}
	mem, err := ParseMembership(data)
	if err != nil {
		return Membership{}, false
	}
	s.mem, s.ok = mem, true
	return mem, true
}
