package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/runner"
	"dirsim/internal/spec"
	"dirsim/internal/tracegen"
)

// testCell builds a small distinct cell per variant (distinct content
// hash, so distinct routing).
func testCell(t *testing.T, refs int) spec.Cell {
	t.Helper()
	tc := tracegen.POPS(refs)
	tc.CPUs = 2
	return spec.Cell{Trace: tc, Schemes: []string{"dir0b"}, Machine: coherence.Config{Caches: 2}}
}

// doneDoc fabricates a done document stamped with the serving peer.
func doneDoc(t *testing.T, servedBy string) []byte {
	t.Helper()
	doc := spec.ResultDoc{ID: servedBy, SpecVersion: spec.CurrentVersion, Status: "done"}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Without a hedge timer the owner alone serves the cell: exactly one
// request, to the first peer in HRW order.
func TestRunCellGoesToOwnerOnly(t *testing.T) {
	var calls [2]atomic.Int64
	var servers [2]*httptest.Server
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls[i].Add(1)
			w.Write(doneDoc(t, servers[i].URL))
		}))
		defer servers[i].Close()
	}
	m := Membership{Peers: []Peer{{Addr: servers[0].URL}, {Addr: servers[1].URL}}}
	c := &Client{Membership: m, Router: NewRouter(m, nil)}

	cell := testCell(t, 2_000)
	hash, err := cell.Hash()
	if err != nil {
		t.Fatal(err)
	}
	owner := c.Router.Order(hash)[0]

	doc, err := c.RunCell(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != servers[owner].URL {
		t.Errorf("served by %s, want the owner %s", doc.ID, servers[owner].URL)
	}
	if total := calls[0].Load() + calls[1].Load(); total != 1 {
		t.Errorf("fleet saw %d requests, want 1 (no hedge configured)", total)
	}
	if calls[1-owner].Load() != 0 {
		t.Error("non-owner peer was contacted without a hedge or failure")
	}
}

// A fired hedge launches the next peer in HRW order concurrently; the
// first success wins and the slow primary attempt is canceled.
func TestRunCellHedgesToNextPeer(t *testing.T) {
	cell := testCell(t, 2_100)
	hash, err := cell.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// mode[i] is set once the HRW order is known: the owner stalls until
	// its request context dies, the sibling answers immediately.
	var mode [2]atomic.Value
	var canceled [2]atomic.Int64
	var servers [2]*httptest.Server
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if mode[i].Load() == "slow" {
				// Drain the body first: an HTTP/1.1 server only watches
				// for client disconnect once the request is consumed.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				canceled[i].Add(1)
				return
			}
			w.Write(doneDoc(t, servers[i].URL))
		}))
		defer servers[i].Close()
	}
	m := Membership{Peers: []Peer{{Addr: servers[0].URL}, {Addr: servers[1].URL}}}
	router := NewRouter(m, nil)
	order := router.Order(hash)
	mode[order[0]].Store("slow")
	mode[order[1]].Store("fast")

	// A closed channel is a hedge timer that fires immediately — the
	// deterministic stand-in for time.After.
	fired := make(chan time.Time)
	close(fired)
	c := &Client{
		Membership: m,
		Router:     router,
		HedgeDelay: time.Millisecond,
		After:      func(time.Duration) <-chan time.Time { return fired },
	}
	doc, err := c.RunCell(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != servers[order[1]].URL {
		t.Errorf("served by %s, want the hedged sibling %s", doc.ID, servers[order[1]].URL)
	}
	// RunCell's deferred cancel kills the loser; the handler observes it.
	deadline := time.Now().Add(5 * time.Second)
	for canceled[order[0]].Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if canceled[order[0]].Load() == 0 {
		t.Error("losing attempt was never canceled")
	}
}

// A dead owner fails over to the next peer in HRW order, and the
// transport error marks the owner down for subsequent cells.
func TestRunCellFailsOverFromDeadOwner(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(doneDoc(t, "live"))
	}))
	defer live.Close()

	// A bound-then-closed listener: connecting fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + ln.Addr().String()
	ln.Close()

	m := Membership{Peers: []Peer{{Addr: deadAddr}, {Addr: live.URL}}}
	h := NewHealth()
	c := &Client{Membership: m, Router: NewRouter(m, h), Health: h}

	// Find a cell whose owner is the dead peer, so failover (not plain
	// owner routing) is what serves it.
	for refs := 2_000; ; refs++ {
		cell := testCell(t, refs)
		hash, err := cell.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if c.Router.Order(hash)[0] != 0 {
			continue
		}
		doc, err := c.RunCell(context.Background(), cell)
		if err != nil {
			t.Fatal(err)
		}
		if doc.ID != "live" {
			t.Errorf("served by %q, want the live peer", doc.ID)
		}
		break
	}
	if !h.Down(0) {
		t.Error("transport failure did not mark the dead peer down")
	}
}

// When every peer fails, the error names the cell and wraps each
// peer's failure.
func TestRunCellAllPeersFail(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	m := Membership{Peers: []Peer{{Addr: bad.URL}}}
	c := &Client{Membership: m, Router: NewRouter(m, nil)}
	_, err := c.RunCell(context.Background(), testCell(t, 2_000))
	if err == nil {
		t.Fatal("all-peers failure did not surface")
	}
	if !strings.Contains(err.Error(), "failed on all peers") {
		t.Errorf("error %q does not say the fleet was exhausted", err)
	}
}

// A saturated daemon's Retry-After floors the backoff through the
// cluster client exactly as it does through a direct remote client.
func TestRetryAfterPropagatesThroughCluster(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write(doneDoc(t, "ok"))
	}))
	defer ts.Close()
	m := Membership{Peers: []Peer{{Addr: ts.URL}}}
	var slept []time.Duration
	c := &Client{
		Membership: m,
		Router:     NewRouter(m, nil),
		Retry:      runner.RetryPolicy{Max: 3, Base: time.Millisecond, Seed: 1},
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := c.RunCell(context.Background(), testCell(t, 2_000)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	if slept[0] < 3*time.Second {
		t.Errorf("backoff %v ignored the Retry-After: 3 floor", slept[0])
	}
}

// RunCells calls onDone exactly once per cell and never concurrently,
// whatever the worker count.
func TestRunCellsExactlyOnceSerialized(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(doneDoc(t, "ok"))
	}))
	defer ts.Close()
	m := Membership{Peers: []Peer{{Addr: ts.URL}}}
	c := &Client{Membership: m, Router: NewRouter(m, nil)}

	cells := make([]spec.Cell, 8)
	for i := range cells {
		cells[i] = testCell(t, 2_000+i)
	}
	counts := make([]int, len(cells))
	inCallback := 0 // mutated without atomics: the race detector and the
	// depth check both fail if onDone ever overlaps itself
	err := c.RunCells(context.Background(), cells, 4, func(i int, doc *spec.ResultDoc, err error) {
		inCallback++
		if inCallback != 1 {
			t.Errorf("onDone reentered (depth %d)", inCallback)
		}
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
		counts[i]++
		inCallback--
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 1 {
			t.Errorf("cell %d: onDone ran %d times, want 1", i, n)
		}
	}
}

// The first cell failure cancels the rest and is the returned error.
func TestRunCellsFirstErrorWins(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	m := Membership{Peers: []Peer{{Addr: ts.URL}}}
	c := &Client{Membership: m, Router: NewRouter(m, nil)}
	cells := []spec.Cell{testCell(t, 2_000), testCell(t, 2_001), testCell(t, 2_002)}
	err := c.RunCells(context.Background(), cells, 2, nil)
	if err == nil {
		t.Fatal("failing fleet produced no error")
	}
	if !strings.Contains(err.Error(), "cluster: cell") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

// CacheClient.Fetch: 200 is a hit carrying the body, 404 a clean miss,
// anything else an error; the cluster key travels as a header.
func TestCacheClientFetch(t *testing.T) {
	var gotKey atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.Header.Get(KeyHeader))
		switch {
		case strings.HasSuffix(r.URL.Path, "/hit"):
			w.Write([]byte("doc-bytes"))
		case strings.HasSuffix(r.URL.Path, "/miss"):
			http.NotFound(w, r)
		default:
			http.Error(w, "nope", http.StatusForbidden)
		}
	}))
	defer ts.Close()

	cc := &CacheClient{HTTP: &http.Client{Timeout: time.Second}, Key: "s3cret"}
	ctx := context.Background()

	data, found, err := cc.Fetch(ctx, ts.URL, "hit")
	if err != nil || !found || string(data) != "doc-bytes" {
		t.Errorf("hit: data=%q found=%v err=%v", data, found, err)
	}
	if gotKey.Load() != "s3cret" {
		t.Errorf("cluster key header = %q", gotKey.Load())
	}
	if _, found, err := cc.Fetch(ctx, ts.URL, "miss"); err != nil || found {
		t.Errorf("miss: found=%v err=%v", found, err)
	}
	if _, _, err := cc.Fetch(ctx, ts.URL, "forbidden"); err == nil {
		t.Error("non-404 error status did not surface as an error")
	}
}

// A hedged request under a tracer yields a complete span tree: the root
// "cell" span (trace id = cell hash), a canceled primary attempt, a
// winning hedge attempt — every parent link resolving, no orphans — and
// the hedge counters account for the outcome. The trace context must
// also reach the daemons as an X-Dirsim-Trace header.
func TestRunCellHedgeSpanTree(t *testing.T) {
	cell := testCell(t, 2_200)
	hash, err := cell.Hash()
	if err != nil {
		t.Fatal(err)
	}

	var mode [2]atomic.Value
	var gotTrace atomic.Value
	var servers [2]*httptest.Server
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := r.Header.Get(otrace.HeaderName); h != "" {
				gotTrace.Store(h)
			}
			if mode[i].Load() == "slow" {
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			w.Write(doneDoc(t, servers[i].URL))
		}))
		defer servers[i].Close()
	}
	m := Membership{Peers: []Peer{{Addr: servers[0].URL}, {Addr: servers[1].URL}}}
	router := NewRouter(m, nil)
	order := router.Order(hash)
	mode[order[0]].Store("slow")
	mode[order[1]].Store("fast")

	fired := make(chan time.Time)
	close(fired)
	metrics := obs.NewMetrics()
	store := otrace.NewStore(64)
	c := &Client{
		Membership: m,
		Router:     router,
		HedgeDelay: time.Millisecond,
		After:      func(time.Duration) <-chan time.Time { return fired },
		Tracer:     otrace.New("sweep", nil, store, metrics),
		Metrics:    metrics,
	}
	if _, err := c.RunCell(context.Background(), cell); err != nil {
		t.Fatal(err)
	}

	// The loser's span lands asynchronously after its context dies.
	deadline := time.Now().Add(5 * time.Second)
	var spans []otrace.Span
	for time.Now().Before(deadline) {
		spans = store.ByTrace(hash)
		if len(spans) >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}

	byName := map[string]otrace.Span{}
	ids := map[string]bool{}
	for _, s := range spans {
		byName[s.Name] = s
		ids[s.ID()] = true
		if s.Trace != hash {
			t.Errorf("span %s trace = %q, want cell hash %q", s.Name, s.Trace, hash)
		}
	}
	root, ok := byName["cell"]
	if !ok || root.Parent != "" || root.Outcome != "hedge" {
		t.Fatalf("root cell span = %+v, want parentless with outcome hedge", root)
	}
	prim := byName["attempt-primary"]
	if prim.Outcome != "canceled" || prim.Peer != servers[order[0]].URL {
		t.Errorf("primary attempt = %+v, want canceled on owner", prim)
	}
	hedge := byName["attempt-hedge"]
	if hedge.Outcome != "win" || hedge.Peer != servers[order[1]].URL {
		t.Errorf("hedge attempt = %+v, want win on sibling", hedge)
	}
	for _, s := range spans {
		if s.Parent != "" && !ids[s.Parent] {
			t.Errorf("orphan span %s: parent %q not in trace", s.Name, s.Parent)
		}
	}

	if got, _ := gotTrace.Load().(string); got == "" || !strings.HasPrefix(got, hash+";") {
		t.Errorf("daemon saw trace header %q, want %q;<span>", got, hash)
	}
	for counter, want := range map[string]uint64{
		"cluster_hedge_fired":      1,
		"cluster_hedge_win":        1,
		"cluster_attempt_canceled": 1,
		"cluster_failover":         0,
	} {
		if got := metrics.CounterValue(counter); got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
}
