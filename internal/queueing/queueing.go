// Package queueing models bus contention in a single-bus multiprocessor.
//
// The paper's closing estimate — a 10-MIPS processor uses a bus cycle every
// 15 instructions, so a 100 ns bus supports at most ~15 processors — is "an
// optimistic upper bound because we have not included … the effects of bus
// contention". This package supplies the missing piece: the shared bus as a
// single server in a closed queueing network (the classic machine-repairman
// model), with each processor alternating between local computation (think
// time) and a bus transaction (service time). Both parameters derive
// directly from a simulation result: service is the scheme's average bus
// cycles per transaction, think is the average processor cycles between
// transactions.
//
// Two solvers are provided and cross-checked in the tests:
//
//   - MVA: exact Mean Value Analysis for the closed network (exponential
//     assumptions);
//   - Simulate: a discrete-event simulation with deterministic service and
//     geometric think times, closer to a real bus.
package queueing

import (
	"fmt"
	"math/rand"
	"sort"
)

// Model is a closed machine-repairman model of one bus shared by N
// processors.
type Model struct {
	// ThinkCycles is the mean number of bus cycles a processor computes
	// locally between consecutive bus transactions.
	ThinkCycles float64
	// ServiceCycles is the mean bus cycles one transaction holds the bus.
	ServiceCycles float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.ThinkCycles < 0 {
		return fmt.Errorf("queueing: negative think time %v", m.ThinkCycles)
	}
	if m.ServiceCycles <= 0 {
		return fmt.Errorf("queueing: service time %v must be positive", m.ServiceCycles)
	}
	return nil
}

// FromRates builds a model from per-reference simulation quantities:
// cyclesPerRef is the scheme's bus cycles per memory reference,
// txnsPerRef its bus transactions per reference, and procCyclesPerRef how
// many bus-clock cycles a processor needs to issue one reference when it
// never waits (e.g. a processor running one instruction — two references —
// per bus cycle has procCyclesPerRef = 0.5).
func FromRates(cyclesPerRef, txnsPerRef, procCyclesPerRef float64) (Model, error) {
	if txnsPerRef <= 0 {
		return Model{}, fmt.Errorf("queueing: txnsPerRef %v must be positive", txnsPerRef)
	}
	if cyclesPerRef <= 0 || procCyclesPerRef <= 0 {
		return Model{}, fmt.Errorf("queueing: rates must be positive")
	}
	m := Model{
		ServiceCycles: cyclesPerRef / txnsPerRef,
		ThinkCycles:   procCyclesPerRef / txnsPerRef,
	}
	return m, m.Validate()
}

// Metrics summarises the network's steady state for one population size.
type Metrics struct {
	// Processors is the population N.
	Processors int
	// Throughput is bus transactions completed per bus cycle (system
	// wide).
	Throughput float64
	// BusUtilization is the fraction of cycles the bus is busy.
	BusUtilization float64
	// ResponseCycles is the mean time a transaction spends queued plus
	// in service.
	ResponseCycles float64
	// ProcessorEfficiency is each processor's achieved fraction of its
	// contention-free speed: think / (think + response).
	ProcessorEfficiency float64
	// EffectiveProcessors is N × ProcessorEfficiency — how many
	// full-speed processors the machine is really worth.
	EffectiveProcessors float64
	// ResponseP50, ResponseP95 and ResponseP99 are response-time
	// percentiles in cycles. Only the discrete-event simulation fills
	// them (MVA yields means only).
	ResponseP50, ResponseP95, ResponseP99 float64
}

// MVA solves the closed network exactly for populations 1..n by Mean Value
// Analysis and returns the metrics for each population size (index i holds
// population i+1).
func (m Model) MVA(n int) ([]Metrics, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("queueing: population %d must be at least 1", n)
	}
	out := make([]Metrics, n)
	queue := 0.0 // mean queue length at the bus
	for pop := 1; pop <= n; pop++ {
		resp := m.ServiceCycles * (1 + queue)
		x := float64(pop) / (m.ThinkCycles + resp)
		queue = x * resp
		eff := m.ThinkCycles / (m.ThinkCycles + resp)
		out[pop-1] = Metrics{
			Processors:          pop,
			Throughput:          x,
			BusUtilization:      x * m.ServiceCycles,
			ResponseCycles:      resp,
			ProcessorEfficiency: eff,
			EffectiveProcessors: float64(pop) * eff,
		}
	}
	return out, nil
}

// Saturation returns the asymptotic bound on useful processors: beyond
// N* = (think + service) / service the bus is the bottleneck and adding
// processors adds no throughput.
func (m Model) Saturation() float64 {
	return (m.ThinkCycles + m.ServiceCycles) / m.ServiceCycles
}

// Simulate runs a discrete-event simulation of the model for the given
// population and number of bus cycles: deterministic service, geometrically
// distributed think times (mean ThinkCycles), FCFS bus. The seed fixes the
// random stream.
func (m Model) Simulate(processors int, cycles int, seed int64) (Metrics, error) {
	if err := m.Validate(); err != nil {
		return Metrics{}, err
	}
	if processors < 1 {
		return Metrics{}, fmt.Errorf("queueing: population %d must be at least 1", processors)
	}
	if cycles < 1 {
		return Metrics{}, fmt.Errorf("queueing: horizon %d must be at least 1", cycles)
	}
	rng := rand.New(rand.NewSource(seed))
	think := func() float64 {
		if m.ThinkCycles <= 0 {
			return 0
		}
		// Exponential with the configured mean, in continuous cycles.
		return rng.ExpFloat64() * m.ThinkCycles
	}
	// Event-driven: each processor is either thinking (known wake time)
	// or queued/in service at the bus.
	queued := make([]bool, processors)
	wake := make([]float64, processors)
	for i := range wake {
		wake[i] = think()
	}
	var (
		now        float64
		busBusyTil float64
		queue      []int
		busy       float64 // total busy cycles
		completed  int
		totalResp  float64
		responses  []float64
		enqueuedAt = make([]float64, processors)
	)
	horizon := float64(cycles)
	for now < horizon {
		// Move every processor whose think time expired into the queue.
		next := horizon
		for p := range wake {
			if queued[p] {
				continue
			}
			if wake[p] <= now {
				enqueuedAt[p] = wake[p]
				queue = append(queue, p)
				queued[p] = true
			} else if wake[p] < next {
				next = wake[p]
			}
		}
		if len(queue) == 0 {
			// Idle until the next arrival.
			now = next
			continue
		}
		if busBusyTil > now {
			now = busBusyTil
			continue
		}
		// Serve the head of the queue.
		p := queue[0]
		queue = queue[1:]
		start := now
		busBusyTil = start + m.ServiceCycles
		busy += m.ServiceCycles
		completed++
		resp := busBusyTil - enqueuedAt[p]
		totalResp += resp
		responses = append(responses, resp)
		wake[p] = busBusyTil + think()
		queued[p] = false
		now = busBusyTil
	}
	if completed == 0 {
		return Metrics{Processors: processors}, nil
	}
	x := float64(completed) / now
	resp := totalResp / float64(completed)
	eff := m.ThinkCycles / (m.ThinkCycles + resp)
	sort.Float64s(responses)
	pct := func(q float64) float64 {
		idx := int(q * float64(len(responses)-1))
		return responses[idx]
	}
	return Metrics{
		Processors:          processors,
		Throughput:          x,
		BusUtilization:      busy / now,
		ResponseCycles:      resp,
		ProcessorEfficiency: eff,
		EffectiveProcessors: float64(processors) * eff,
		ResponseP50:         pct(0.50),
		ResponseP95:         pct(0.95),
		ResponseP99:         pct(0.99),
	}, nil
}

// Knee returns the smallest population at which processor efficiency drops
// below the threshold (e.g. 0.5), or n+1 if it never does within n — a
// practical "how many processors is this bus worth" answer.
func (m Model) Knee(n int, threshold float64) (int, error) {
	ms, err := m.MVA(n)
	if err != nil {
		return 0, err
	}
	for _, mt := range ms {
		if mt.ProcessorEfficiency < threshold {
			return mt.Processors, nil
		}
	}
	return n + 1, nil
}
