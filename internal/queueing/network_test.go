package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNetworkValidate(t *testing.T) {
	good := Network{ThinkCycles: 30, ModuleServiceCycles: 3, Modules: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Network{
		{ThinkCycles: -1, ModuleServiceCycles: 3, Modules: 4},
		{ThinkCycles: 30, ModuleServiceCycles: 0, Modules: 4},
		{ThinkCycles: 30, ModuleServiceCycles: 3, Modules: 0},
		{ThinkCycles: 30, ModuleServiceCycles: 3, Modules: 4, InterconnectCycles: -1},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNetworkSingleModuleMatchesModel(t *testing.T) {
	// With one module and no interconnect delay, the network must agree
	// exactly with the single-server Model.
	n := Network{ThinkCycles: 30, ModuleServiceCycles: 2, Modules: 1}
	m := Model{ThinkCycles: 30, ServiceCycles: 2}
	nm, err := n.MVA(32)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := m.MVA(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nm {
		if math.Abs(nm[i].Throughput-mm[i].Throughput) > 1e-9 {
			t.Fatalf("pop %d: network %v vs model %v", i+1, nm[i].Throughput, mm[i].Throughput)
		}
		if math.Abs(nm[i].ProcessorEfficiency-mm[i].ProcessorEfficiency) > 1e-9 {
			t.Fatalf("pop %d: efficiency differs", i+1)
		}
	}
}

func TestNetworkMoreModulesNeverHurt(t *testing.T) {
	base := Network{ThinkCycles: 20, ModuleServiceCycles: 4, Modules: 1}
	for _, pop := range []int{4, 16, 64} {
		prev := -1.0
		for _, k := range []int{1, 2, 4, 8, 16} {
			n := base
			n.Modules = k
			eff, err := n.EfficiencyAt(pop)
			if err != nil {
				t.Fatal(err)
			}
			if eff < prev-1e-9 {
				t.Errorf("pop %d: efficiency dropped when modules %d", pop, k)
			}
			prev = eff
		}
	}
}

// The Section 7 claim: a centralised memory/directory saturates while a
// distributed one (one module per processor) keeps efficiency essentially
// flat as the machine grows.
func TestScalingCurveSection7(t *testing.T) {
	sizes := []int{2, 4, 8, 16, 32, 64}
	central, distributed, err := ScalingCurve(20, 4, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Central efficiency collapses at large N.
	if central[len(central)-1] > 0.25 {
		t.Errorf("central efficiency at N=64 = %.2f, expected collapse", central[len(central)-1])
	}
	// Distributed efficiency stays high and strictly dominates.
	if distributed[len(distributed)-1] < 0.6 {
		t.Errorf("distributed efficiency at N=64 = %.2f, expected ≥0.6", distributed[len(distributed)-1])
	}
	// At tiny N the distributed machine pays interconnect latency the
	// single bus avoids, so it may lose slightly; once contention matters
	// (N ≥ 8 here) it must dominate — that crossover is the Section 7
	// argument.
	for i := range sizes {
		if sizes[i] >= 8 && distributed[i] < central[i]-1e-9 {
			t.Errorf("N=%d: distributed %.3f below central %.3f", sizes[i], distributed[i], central[i])
		}
	}
	// Distributed efficiency is near-flat: last within 20% of first.
	if distributed[len(distributed)-1] < distributed[0]*0.8 {
		t.Errorf("distributed efficiency decays too fast: %v", distributed)
	}
}

func TestScalingCurveErrors(t *testing.T) {
	if _, _, err := ScalingCurve(20, 4, 0, []int{0}); err == nil {
		t.Error("population 0 accepted")
	}
	if _, _, err := ScalingCurve(20, 0, 0, []int{4}); err == nil {
		t.Error("zero service accepted")
	}
}

func TestMaxProcessorsAtEfficiency(t *testing.T) {
	n := Network{ThinkCycles: 30, ModuleServiceCycles: 2, Modules: 1}
	got, err := n.MaxProcessorsAtEfficiency(0.9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1 || got > 64 {
		t.Fatalf("MaxProcessorsAtEfficiency = %d", got)
	}
	// Verify the boundary: got is sustainable, got+1 is not (or is the
	// search limit).
	ms, _ := n.MVA(64)
	if ms[got-1].ProcessorEfficiency < 0.9 {
		t.Errorf("efficiency at %d below threshold", got)
	}
	if got < 64 && ms[got].ProcessorEfficiency >= 0.9 {
		t.Errorf("%d not maximal", got)
	}
	if _, err := n.MaxProcessorsAtEfficiency(0, 8); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := n.MaxProcessorsAtEfficiency(1.5, 8); err == nil {
		t.Error("threshold >1 accepted")
	}
}

func TestApproxBusUtilization(t *testing.T) {
	n := Network{ThinkCycles: 18, ModuleServiceCycles: 2, Modules: 1}
	// 10 processors each demanding 2 of every 20 cycles → utilization 1.
	if got := n.ApproxBusUtilization(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("ApproxBusUtilization = %v, want 1", got)
	}
	if !math.IsNaN((Network{}).ApproxBusUtilization(4)) {
		t.Error("invalid network should give NaN")
	}
}

// Property: network MVA invariants — utilization and efficiency in [0,1],
// throughput bounded by aggregate module bandwidth, and monotone in
// population.
func TestQuickNetworkInvariants(t *testing.T) {
	f := func(thinkRaw, svcRaw uint16, kRaw, popRaw, icRaw uint8) bool {
		n := Network{
			ThinkCycles:         float64(thinkRaw % 500),
			ModuleServiceCycles: float64(svcRaw%20) + 1,
			Modules:             int(kRaw%8) + 1,
			InterconnectCycles:  float64(icRaw % 10),
		}
		pop := int(popRaw%50) + 1
		ms, err := n.MVA(pop)
		if err != nil {
			return false
		}
		prevX := 0.0
		for _, mt := range ms {
			if mt.ModuleUtilization < -1e-9 || mt.ModuleUtilization > 1+1e-9 {
				return false
			}
			if mt.ProcessorEfficiency < -1e-9 || mt.ProcessorEfficiency > 1+1e-9 {
				return false
			}
			maxX := float64(n.Modules) / n.ModuleServiceCycles
			if mt.Throughput > maxX+1e-9 {
				return false
			}
			if mt.Throughput < prevX-1e-9 {
				return false
			}
			prevX = mt.Throughput
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
