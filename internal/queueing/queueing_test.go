package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Model{ThinkCycles: 10, ServiceCycles: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Model{
		{ThinkCycles: -1, ServiceCycles: 1},
		{ThinkCycles: 1, ServiceCycles: 0},
		{ThinkCycles: 1, ServiceCycles: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("model %+v accepted", bad)
		}
	}
}

func TestFromRates(t *testing.T) {
	// 0.03 bus cycles/ref across 0.01 txns/ref → 3-cycle transactions;
	// a processor issuing a ref every 0.5 cycles thinks 50 cycles
	// between transactions.
	m, err := FromRates(0.03, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ServiceCycles-3) > 1e-12 {
		t.Errorf("ServiceCycles = %v, want 3", m.ServiceCycles)
	}
	if math.Abs(m.ThinkCycles-50) > 1e-12 {
		t.Errorf("ThinkCycles = %v, want 50", m.ThinkCycles)
	}
	for _, bad := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := FromRates(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("FromRates(%v) accepted", bad)
		}
	}
}

func TestMVASingleProcessorNoContention(t *testing.T) {
	m := Model{ThinkCycles: 9, ServiceCycles: 1}
	ms, err := m.MVA(1)
	if err != nil {
		t.Fatal(err)
	}
	one := ms[0]
	// Alone, a processor never queues: response = service, efficiency =
	// think/(think+service) = 0.9, throughput = 1/(9+1).
	if math.Abs(one.ResponseCycles-1) > 1e-12 {
		t.Errorf("ResponseCycles = %v, want 1", one.ResponseCycles)
	}
	if math.Abs(one.ProcessorEfficiency-0.9) > 1e-12 {
		t.Errorf("efficiency = %v, want 0.9", one.ProcessorEfficiency)
	}
	if math.Abs(one.Throughput-0.1) > 1e-12 {
		t.Errorf("throughput = %v, want 0.1", one.Throughput)
	}
	if math.Abs(one.BusUtilization-0.1) > 1e-12 {
		t.Errorf("utilization = %v, want 0.1", one.BusUtilization)
	}
}

func TestMVAMonotoneAndBounded(t *testing.T) {
	m := Model{ThinkCycles: 30, ServiceCycles: 2}
	ms, err := m.MVA(64)
	if err != nil {
		t.Fatal(err)
	}
	for i, mt := range ms {
		if mt.BusUtilization < 0 || mt.BusUtilization > 1+1e-9 {
			t.Errorf("pop %d: utilization %v out of [0,1]", mt.Processors, mt.BusUtilization)
		}
		if mt.ProcessorEfficiency < 0 || mt.ProcessorEfficiency > 1+1e-9 {
			t.Errorf("pop %d: efficiency %v out of [0,1]", mt.Processors, mt.ProcessorEfficiency)
		}
		if i > 0 {
			if mt.Throughput < ms[i-1].Throughput-1e-9 {
				t.Errorf("throughput decreased at pop %d", mt.Processors)
			}
			if mt.ProcessorEfficiency > ms[i-1].ProcessorEfficiency+1e-9 {
				t.Errorf("efficiency increased at pop %d", mt.Processors)
			}
		}
	}
	// Deep in saturation, throughput approaches 1/service and effective
	// processors approach the saturation bound.
	last := ms[len(ms)-1]
	if math.Abs(last.Throughput-1/m.ServiceCycles) > 0.01 {
		t.Errorf("saturated throughput %v, want ≈%v", last.Throughput, 1/m.ServiceCycles)
	}
	// Asymptotically each of the N processors runs Z cycles out of every
	// N·S, so effective processors tend to Z/S (one less than the
	// saturation knee (Z+S)/S).
	if asym := m.ThinkCycles / m.ServiceCycles; math.Abs(last.EffectiveProcessors-asym) > 0.5 {
		t.Errorf("saturated effective processors %v, want ≈%v", last.EffectiveProcessors, asym)
	}
}

func TestSaturation(t *testing.T) {
	m := Model{ThinkCycles: 28, ServiceCycles: 2}
	if got := m.Saturation(); math.Abs(got-15) > 1e-12 {
		t.Errorf("Saturation = %v, want 15", got)
	}
}

func TestKnee(t *testing.T) {
	m := Model{ThinkCycles: 30, ServiceCycles: 2}
	k, err := m.Knee(64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency at the knee is below 0.5, just before it is not.
	ms, _ := m.MVA(64)
	if ms[k-1].ProcessorEfficiency >= 0.5 {
		t.Errorf("efficiency at knee %d is %v", k, ms[k-1].ProcessorEfficiency)
	}
	if k > 1 && ms[k-2].ProcessorEfficiency < 0.5 {
		t.Errorf("knee %d not minimal", k)
	}
	// A bus that is never the bottleneck has no knee within range.
	easy := Model{ThinkCycles: 1e6, ServiceCycles: 1}
	k, err = easy.Knee(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if k != 9 {
		t.Errorf("no-knee case returned %d", k)
	}
}

func TestMVAErrors(t *testing.T) {
	m := Model{ThinkCycles: 10, ServiceCycles: 1}
	if _, err := m.MVA(0); err == nil {
		t.Error("MVA(0) accepted")
	}
	bad := Model{ThinkCycles: 10, ServiceCycles: 0}
	if _, err := bad.MVA(4); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimulateMatchesMVA(t *testing.T) {
	m := Model{ThinkCycles: 40, ServiceCycles: 3}
	ms, err := m.MVA(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, pop := range []int{1, 4, 16, 32} {
		got, err := m.Simulate(pop, 2_000_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := ms[pop-1]
		// Deterministic service vs exponential MVA: agree within ~10%.
		if relDiff(got.BusUtilization, want.BusUtilization) > 0.10 {
			t.Errorf("pop %d: sim utilization %v vs MVA %v", pop, got.BusUtilization, want.BusUtilization)
		}
		if relDiff(got.Throughput, want.Throughput) > 0.10 {
			t.Errorf("pop %d: sim throughput %v vs MVA %v", pop, got.Throughput, want.Throughput)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestSimulateErrors(t *testing.T) {
	m := Model{ThinkCycles: 10, ServiceCycles: 1}
	if _, err := m.Simulate(0, 1000, 1); err == nil {
		t.Error("population 0 accepted")
	}
	if _, err := m.Simulate(1, 0, 1); err == nil {
		t.Error("horizon 0 accepted")
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	m := Model{ThinkCycles: 20, ServiceCycles: 2}
	a, err := m.Simulate(8, 500_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(8, 500_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different results")
	}
}

// Property: MVA invariants hold for arbitrary valid models — utilization
// and efficiency in [0,1], Little's law at the bus (Q = X·R) is respected
// implicitly by construction, and effective processors never exceed the
// population or the saturation bound by more than rounding.
func TestQuickMVAInvariants(t *testing.T) {
	f := func(thinkRaw, svcRaw uint16, popRaw uint8) bool {
		m := Model{
			ThinkCycles:   float64(thinkRaw%1000) + 1,
			ServiceCycles: float64(svcRaw%50) + 1,
		}
		pop := int(popRaw%40) + 1
		ms, err := m.MVA(pop)
		if err != nil {
			return false
		}
		for _, mt := range ms {
			if mt.BusUtilization < 0 || mt.BusUtilization > 1+1e-9 {
				return false
			}
			if mt.EffectiveProcessors > float64(mt.Processors)+1e-9 {
				return false
			}
			if mt.EffectiveProcessors > m.Saturation()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatePercentiles(t *testing.T) {
	m := Model{ThinkCycles: 30, ServiceCycles: 2}
	got, err := m.Simulate(16, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Percentiles are ordered and bounded below by one service time.
	if !(got.ResponseP50 <= got.ResponseP95 && got.ResponseP95 <= got.ResponseP99) {
		t.Fatalf("percentiles not ordered: %v %v %v",
			got.ResponseP50, got.ResponseP95, got.ResponseP99)
	}
	if got.ResponseP50 < m.ServiceCycles {
		t.Fatalf("p50 %v below one service time", got.ResponseP50)
	}
	// The mean lies within the distribution's range.
	if got.ResponseCycles < got.ResponseP50/4 || got.ResponseCycles > got.ResponseP99 {
		t.Fatalf("mean %v inconsistent with percentiles", got.ResponseCycles)
	}
	// At heavy load the tail stretches well past the median.
	heavy, err := m.Simulate(64, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.ResponseP99 <= heavy.ResponseP50 {
		t.Fatal("saturated tail should exceed the median")
	}
}
