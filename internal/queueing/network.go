package queueing

import (
	"fmt"
	"math"
)

// Network models the Section 7 argument quantitatively: "the basic
// bandwidth limitation to the memory and the directory can be mitigated by
// distributing them on the processor boards. This technique allows the
// bandwidth to both the memory and the directory to scale with the number
// of processors."
//
// It is a closed product-form queueing network solved by exact Mean Value
// Analysis: N processors think locally, then visit one of K identical
// memory/directory modules (uniformly — addresses interleave across
// modules) through an interconnect stage. With K = 1 this degenerates to
// the central-memory Model; with K growing alongside N the per-module
// utilisation stays bounded and efficiency is preserved.
type Network struct {
	// ThinkCycles is the local computation time between requests.
	ThinkCycles float64
	// ModuleServiceCycles is the service demand of one memory+directory
	// access at its module.
	ModuleServiceCycles float64
	// Modules is the number of memory/directory modules the address
	// space interleaves across.
	Modules int
	// InterconnectCycles is the (load-independent) transfer delay of the
	// interconnect per request, e.g. a pipelined multistage network.
	// Zero models an ideal interconnect.
	InterconnectCycles float64
}

// Validate checks the network parameters.
func (n Network) Validate() error {
	if n.ThinkCycles < 0 {
		return fmt.Errorf("queueing: negative think time %v", n.ThinkCycles)
	}
	if n.ModuleServiceCycles <= 0 {
		return fmt.Errorf("queueing: module service %v must be positive", n.ModuleServiceCycles)
	}
	if n.Modules < 1 {
		return fmt.Errorf("queueing: module count %d must be at least 1", n.Modules)
	}
	if n.InterconnectCycles < 0 {
		return fmt.Errorf("queueing: negative interconnect delay %v", n.InterconnectCycles)
	}
	return nil
}

// NetworkMetrics is the steady state of the distributed machine for one
// population.
type NetworkMetrics struct {
	// Processors is the population N.
	Processors int
	// Throughput is requests completed per cycle, system wide.
	Throughput float64
	// ModuleUtilization is the busy fraction of each (identical) module.
	ModuleUtilization float64
	// ResponseCycles is the mean time from issuing a request to its
	// completion (interconnect + queueing + service).
	ResponseCycles float64
	// ProcessorEfficiency is think / (think + response).
	ProcessorEfficiency float64
	// EffectiveProcessors is N × ProcessorEfficiency.
	EffectiveProcessors float64
}

// MVA solves the network exactly for populations 1..n. The K modules are
// identical queueing stations visited with probability 1/K; the
// interconnect is a delay (infinite-server) stage.
func (n Network) MVA(pop int) ([]NetworkMetrics, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if pop < 1 {
		return nil, fmt.Errorf("queueing: population %d must be at least 1", pop)
	}
	out := make([]NetworkMetrics, pop)
	// Per-module mean queue length; by symmetry all K are equal.
	queue := 0.0
	visit := 1.0 / float64(n.Modules)
	for p := 1; p <= pop; p++ {
		// Residence time per request: the interconnect delay plus the
		// module residence (arrival theorem) weighted by one visit.
		moduleResp := n.ModuleServiceCycles * (1 + queue)
		resp := n.InterconnectCycles + moduleResp
		x := float64(p) / (n.ThinkCycles + resp)
		// Per-module throughput is x·visit; update the per-module queue
		// length via Little's law.
		queue = x * visit * moduleResp
		eff := n.ThinkCycles / (n.ThinkCycles + resp)
		out[p-1] = NetworkMetrics{
			Processors:          p,
			Throughput:          x,
			ModuleUtilization:   x * visit * n.ModuleServiceCycles,
			ResponseCycles:      resp,
			ProcessorEfficiency: eff,
			EffectiveProcessors: float64(p) * eff,
		}
	}
	return out, nil
}

// EfficiencyAt returns processor efficiency with population pop.
func (n Network) EfficiencyAt(pop int) (float64, error) {
	ms, err := n.MVA(pop)
	if err != nil {
		return 0, err
	}
	return ms[pop-1].ProcessorEfficiency, nil
}

// ScalingCurve runs the Section 7 comparison: for each population N in
// sizes, the efficiency of (a) a centralised machine (one module) and (b) a
// distributed machine with one module per processor. It returns the two
// efficiency series.
func ScalingCurve(think, service, interconnect float64, sizes []int) (central, distributed []float64, err error) {
	for _, nProcs := range sizes {
		if nProcs < 1 {
			return nil, nil, fmt.Errorf("queueing: population %d must be at least 1", nProcs)
		}
		c := Network{ThinkCycles: think, ModuleServiceCycles: service, Modules: 1, InterconnectCycles: 0}
		ce, err := c.EfficiencyAt(nProcs)
		if err != nil {
			return nil, nil, err
		}
		// Distributed: one module per processor, but requests cross the
		// interconnect.
		d := Network{ThinkCycles: think, ModuleServiceCycles: service, Modules: nProcs, InterconnectCycles: interconnect}
		de, err := d.EfficiencyAt(nProcs)
		if err != nil {
			return nil, nil, err
		}
		central = append(central, ce)
		distributed = append(distributed, de)
	}
	return central, distributed, nil
}

// MaxProcessorsAtEfficiency returns the largest population the network
// sustains at or above the efficiency threshold, searching up to limit.
func (n Network) MaxProcessorsAtEfficiency(threshold float64, limit int) (int, error) {
	if threshold <= 0 || threshold > 1 {
		return 0, fmt.Errorf("queueing: threshold %v outside (0,1]", threshold)
	}
	ms, err := n.MVA(limit)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, mt := range ms {
		if mt.ProcessorEfficiency+1e-12 >= threshold {
			best = mt.Processors
		}
	}
	return best, nil
}

// ApproxBusUtilization is a sanity helper: the offered load of N
// processors against aggregate module bandwidth, ignoring queueing — the
// simple saturation check utilization = N·service / (K·(think+service)).
func (n Network) ApproxBusUtilization(pop int) float64 {
	if err := n.Validate(); err != nil || pop < 1 {
		return math.NaN()
	}
	return float64(pop) * n.ModuleServiceCycles /
		(float64(n.Modules) * (n.ThinkCycles + n.ModuleServiceCycles + n.InterconnectCycles))
}
