package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dirsim/internal/cluster"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/spec"
)

// tracedClusterPair boots two clustered daemons like clusterPair, each
// with its own tracer (services "dirsimd:a" and "dirsimd:b") so tests
// can follow one trace across the peer cache.
func tracedClusterPair(t *testing.T, key string) (s1, s2 *Server, ts1, ts2 *httptest.Server) {
	t.Helper()
	u1 := httptest.NewUnstartedServer(nil)
	u2 := httptest.NewUnstartedServer(nil)
	addr1 := u1.Listener.Addr().String()
	addr2 := u2.Listener.Addr().String()
	mem := cluster.Membership{Key: key, Peers: []cluster.Peer{
		{Addr: "http://" + addr1},
		{Addr: "http://" + addr2},
	}}
	build := func(self, service string, ts *httptest.Server) *Server {
		m := obs.NewMetrics()
		s, err := New(Config{
			Workers: 2, Executors: 2,
			Metrics:         m,
			Tracer:          otrace.New(service, nil, otrace.NewStore(0), m),
			ClusterSource:   cluster.StaticSource(mem),
			ClusterSelfAddr: self,
			ClusterHTTP:     &http.Client{Timeout: 5 * time.Second},
			ClusterHealth:   cluster.NewHealth(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.Start(ctx)
		ts.Config.Handler = s.Handler()
		ts.Start()
		t.Cleanup(func() {
			ts.Close()
			dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer dcancel()
			if err := s.Drain(dctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			cancel()
		})
		return s
	}
	return build(addr1, "dirsimd:a", u1), build(addr2, "dirsimd:b", u2), u1, u2
}

// postWaitTraced submits with wait=1 under an explicit trace context.
func postWaitTraced(t *testing.T, ts *httptest.Server, body []byte, trace string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(otrace.HeaderName, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// spanByName returns the first span with the given name, or fails.
func spanByName(t *testing.T, spans []otrace.Span, name string) otrace.Span {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no %q span among %d spans", name, len(spans))
	return otrace.Span{}
}

// A trace context submitted to one daemon crosses the peer cache to the
// sibling: the fetching daemon's peer-fetch span and the serving
// daemon's cache-serve span land in the same trace, with the
// cache-serve span parented under the peer-fetch span — one trace id,
// two processes, no orphans.
func TestTracePropagationAcrossPeerFetch(t *testing.T) {
	s1, s2, ts1, ts2 := tracedClusterPair(t, "fleet-secret")
	body := cellBody(t, 20_000, 7)

	// Daemon 1 simulates the cell and now owns its checkpoint.
	if code, doc := postWait(t, ts1, body); code != http.StatusOK {
		t.Fatalf("first daemon: status %d body %s", code, doc)
	}

	const trace = "trace-peer-fetch-test"
	code, doc := postWaitTraced(t, ts2, body, trace)
	if code != http.StatusOK {
		t.Fatalf("second daemon: status %d body %s", code, doc)
	}
	if s2.metrics.Snapshot().Refs != 0 {
		t.Fatal("second daemon simulated; peer cache should have served the cell")
	}

	spans2 := s2.cfg.Tracer.Store().ByTrace(trace)
	job := spanByName(t, spans2, "job")
	if job.Outcome != statusDone {
		t.Errorf("job span outcome %q, want %q", job.Outcome, statusDone)
	}
	fetch := spanByName(t, spans2, "peer-fetch")
	if fetch.Outcome != "hit" {
		t.Errorf("peer-fetch outcome %q, want hit", fetch.Outcome)
	}
	if fetch.Peer == "" || !strings.Contains(fetch.Peer, ts1.Listener.Addr().String()) {
		t.Errorf("peer-fetch peer %q does not name daemon 1 (%s)", fetch.Peer, ts1.Listener.Addr().String())
	}

	// The serving daemon recorded its half under the same trace id,
	// parented to the fetcher's span.
	spans1 := s1.cfg.Tracer.Store().ByTrace(trace)
	serve := spanByName(t, spans1, "cache-serve")
	if serve.Outcome != "hit" {
		t.Errorf("cache-serve outcome %q, want hit", serve.Outcome)
	}
	if serve.Parent != fetch.ID() {
		t.Errorf("cache-serve parent %q, want the peer-fetch span %q", serve.Parent, fetch.ID())
	}

	// The merged fleet view is orphan-free: every parent resolves.
	merged := otrace.Dedup(append(append([]otrace.Span(nil), spans1...), spans2...))
	ids := map[string]bool{}
	for _, s := range merged {
		ids[s.ID()] = true
	}
	for _, s := range merged {
		if s.Parent != "" && !ids[s.Parent] {
			t.Errorf("span %s (%s) has orphan parent %s", s.ID(), s.Name, s.Parent)
		}
	}
}

// GET /v1/trace/{traceid} serves each daemon's slice of a trace as
// NDJSON span rows, behind the cluster key.
func TestTraceSpansEndpoint(t *testing.T) {
	_, _, ts1, ts2 := tracedClusterPair(t, "fleet-secret")
	body := cellBody(t, 20_000, 7)
	if code, doc := postWait(t, ts1, body); code != http.StatusOK {
		t.Fatalf("first daemon: status %d body %s", code, doc)
	}
	const trace = "trace-endpoint-test"
	if code, doc := postWaitTraced(t, ts2, body, trace); code != http.StatusOK {
		t.Fatalf("second daemon: status %d body %s", code, doc)
	}

	fetchTrace := func(ts *httptest.Server, key string) (int, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/trace/"+trace, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set(cluster.KeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, _ := fetchTrace(ts2, ""); code != http.StatusForbidden {
		t.Errorf("unauthenticated trace fetch: %d, want 403", code)
	}
	var merged []otrace.Span
	for _, ts := range []*httptest.Server{ts1, ts2} {
		code, data := fetchTrace(ts, "fleet-secret")
		if code != http.StatusOK {
			t.Fatalf("trace fetch: %d %s", code, data)
		}
		spans, err := otrace.ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) == 0 {
			t.Fatal("daemon served zero spans for the trace")
		}
		merged = append(merged, spans...)
	}
	merged = otrace.Dedup(merged)
	services := map[string]bool{}
	for _, s := range merged {
		if s.Trace != trace {
			t.Errorf("span %s carries trace %q, want %q", s.ID(), s.Trace, trace)
		}
		services[s.Service] = true
	}
	if !services["dirsimd:a"] || !services["dirsimd:b"] {
		t.Errorf("merged trace covers services %v, want both daemons", services)
	}

	// An unknown trace is a clean 404.
	req, err := http.NewRequest(http.MethodGet, ts1.URL+"/v1/trace/never-seen", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.KeyHeader, "fleet-secret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", resp.StatusCode)
	}
}

// GET /v1/cluster/metrics federates the fleet: one row per member with
// the answering daemon marked self, and the Prometheus form carries a
// peer label on every sample and still passes the exposition lint.
func TestClusterMetricsFederation(t *testing.T) {
	_, _, ts1, _ := tracedClusterPair(t, "fleet-secret")
	body := cellBody(t, 20_000, 7)
	if code, doc := postWait(t, ts1, body); code != http.StatusOK {
		t.Fatalf("submit: status %d body %s", code, doc)
	}

	fetch := func(q string) (int, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts1.URL+"/v1/cluster/metrics"+q, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.KeyHeader, "fleet-secret")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, data := fetch("")
	if code != http.StatusOK {
		t.Fatalf("federation: %d %s", code, data)
	}
	var doc spec.ClusterMetricsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Peers) != 2 {
		t.Fatalf("federation lists %d peers, want 2", len(doc.Peers))
	}
	selfs := 0
	for _, p := range doc.Peers {
		if p.Self {
			selfs++
			if p.Metrics == nil || p.Metrics.Refs == 0 {
				t.Error("self row is missing the local snapshot")
			}
		}
		if !p.Up {
			t.Errorf("peer %s down in a healthy fleet: %s", p.Addr, p.Error)
		}
		if p.Up && p.Metrics == nil {
			t.Errorf("peer %s up but without metrics", p.Addr)
		}
	}
	if selfs != 1 {
		t.Errorf("%d self rows, want exactly 1", selfs)
	}

	code, prom := fetch("?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus federation: %d", code)
	}
	if !bytes.Contains(prom, []byte(`peer="http://`)) {
		t.Error("prometheus federation output carries no peer labels")
	}
	if err := obs.LintPrometheus(bytes.NewReader(prom)); err != nil {
		t.Errorf("federated exposition fails the lint: %v", err)
	}

	// A missing key is rejected like the cache endpoint.
	req, err := http.NewRequest(http.MethodGet, ts1.URL+"/v1/cluster/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unauthenticated federation: %d, want 403", resp.StatusCode)
	}
}

// A daemon killed mid-job replays the journal under the original trace
// id: the restarted process's replay and job spans join the same trace
// the submitter started, so a fleet trace spans the crash.
func TestReplayKeepsTraceID(t *testing.T) {
	dir := t.TempDir()
	req := sweepRequest(t)
	const trace = "trace-crash-test"

	s1, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.mu.Lock()
	s1.started = true
	s1.recovering = false
	s1.baseCtx = context.Background()
	s1.mu.Unlock()
	j1, code, err := s1.submit(req, s1.ring[0], classBatch, otrace.Root(trace))
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: %d, %v", code, err)
	}
	if j1.traceID != trace {
		t.Fatalf("admitted job carries trace %q, want %q", j1.traceID, trace)
	}
	if err := s1.store.close(); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	s2, err := New(Config{
		StateDir: dir, Workers: 2, Executors: 2,
		Metrics: m,
		Tracer:  otrace.New("dirsimd:reborn", nil, otrace.NewStore(0), m),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	j := waitTerminal(t, s2, j1.id)
	if st, _, errMsg := j.snapshot(); st != statusDone {
		t.Fatalf("replayed job ended %q: %s", st, errMsg)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s2.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	spans := s2.cfg.Tracer.Store().ByTrace(trace)
	replay := spanByName(t, spans, "replay")
	if replay.Outcome != "requeued" {
		t.Errorf("replay span outcome %q, want requeued", replay.Outcome)
	}
	job := spanByName(t, spans, "job")
	if job.Parent != replay.ID() {
		t.Errorf("job span parent %q, want the replay span %q", job.Parent, replay.ID())
	}
	if job.Outcome != statusDone {
		t.Errorf("job span outcome %q, want %q", job.Outcome, statusDone)
	}
	spanByName(t, spans, "chunk")
	spanByName(t, spans, "simulate")
}

// The job trace endpoint splices fabric spans with the flight trace: a
// daemon running with both serves one Chrome document holding the span
// tracks and the engine's protocol events, and the NDJSON form carries
// kind:"span" rows alongside the flight rows.
func TestJobTraceSplicesSpans(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := testServer(t, Config{
		Workers: 2,
		Metrics: m,
		Tracer:  otrace.New("dirsimd:solo", nil, otrace.NewStore(0), m),
		// TraceSample on: flight recorders exist alongside fabric spans.
		TraceSample: 64,
	})
	body := cellBody(t, 20_000, 7)
	code, doc := postWait(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, doc)
	}
	var rd spec.ResultDoc
	if err := json.Unmarshal(doc, &rd); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + rd.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	sawFabric, sawFlight := false, false
	for _, e := range chrome.TraceEvents {
		if e.Pid >= otrace.ChromePidBase && e.Name == "job" {
			sawFabric = true
		}
		if e.Pid < otrace.ChromePidBase && e.Ph == "i" {
			sawFlight = true
		}
	}
	if !sawFabric || !sawFlight {
		t.Errorf("spliced trace: fabric spans %v, flight events %v — want both", sawFabric, sawFlight)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/" + rd.ID + "/trace?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sawSpanRow := false
	sc := bufio.NewScanner(resp2.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		if row.Kind == "span" {
			sawSpanRow = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSpanRow {
		t.Error("NDJSON trace carries no span rows")
	}
}
