// Package server is the simulation-as-a-service layer: a stdlib-only
// HTTP daemon that accepts simulation and sweep specs as jobs, executes
// them on the shared internal/runner pool with the existing resilience
// policies, and serves results from a content-addressed cache.
//
// The core ideas:
//
//   - Jobs are content-addressed. A job's id is the SHA-256 of its
//     spec's canonical JSON, so N concurrent identical submissions
//     collapse onto one execution (singleflight) and every client reads
//     the same stored bytes — responses are byte-identical by
//     construction, not by convention.
//   - Results are cached: an in-memory LRU in front of an optional
//     on-disk store written via internal/atomicio. A repeat of a
//     finished spec never touches the runner.
//   - Back-pressure is explicit: the job queue is bounded, and a full
//     queue answers 429 with Retry-After instead of absorbing unbounded
//     work.
//   - Cancellation follows the client: a job holds a watcher count
//     (waiting submissions, event streams); when the last watcher of a
//     never-detached job disconnects, the job's context is cancelled
//     mid-batch. Asynchronous submissions detach the job so it runs to
//     completion unwatched.
//   - Shutdown drains: Drain stops intake (503), lets the executors
//     finish every accepted job — each result durably written before the
//     job reports done — then returns, so SIGTERM cannot lose work.
//
// The package stays clock-free (the nondeterm lint rule applies):
// anything time-based — progress throttling, retry backoff sleeps — is
// injected by the cmd layer.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/obs"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
)

// Config parameterises the daemon.
type Config struct {
	// Workers bounds concurrent cell simulations within one job (the
	// runner pool width). Below 1 means 1.
	Workers int
	// Executors bounds concurrently running jobs. Below 1 means 1.
	Executors int
	// QueueDepth bounds jobs accepted but not yet finished beyond the
	// executors; a full queue answers 429. Below 1 means 16.
	QueueDepth int
	// CacheEntries bounds the in-memory result LRU. Below 1 means 128.
	CacheEntries int
	// CacheDir, when non-empty, persists results as <hash>.json files
	// (written atomically) that survive restarts.
	CacheDir string

	// JobTimeout, StallTimeout, Retries and RetryBase configure the
	// runner's per-attempt resilience policy, exactly as the CLIs do.
	JobTimeout   time.Duration
	StallTimeout time.Duration
	Retries      int
	RetryBase    time.Duration
	// Sleep is called with retry backoff delays (cmd passes time.Sleep;
	// nil applies the schedule without waiting).
	Sleep func(time.Duration)

	// NowNanos is the injected clock used only to throttle progress
	// events (cmd passes time.Now().UnixNano via a closure). nil
	// disables throttling — every batch emits an event.
	NowNanos func() int64
	// ProgressEvery is the minimum interval between progress events per
	// job when NowNanos is set; zero means 500ms.
	ProgressEvery time.Duration

	// Metrics, when non-nil, is the server-wide counter set /metrics
	// serves; nil allocates a fresh one.
	Metrics *obs.Metrics

	// TraceSample, when positive, records a flight trace for every
	// executed job (one recorder per cell, sampling every TraceSample-th
	// reference, with phase spans), served by GET /v1/jobs/{id}/trace.
	// Zero disables per-job tracing. Traces are kept in memory only —
	// cache-restored jobs have none.
	TraceSample int
}

// Server is the daemon: an HTTP handler plus the execution pipeline
// behind it. Create with New, launch with Start, stop with Drain.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *resultCache

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	draining bool
	started  bool

	baseCtx context.Context
	wg      sync.WaitGroup
}

// New builds a server from the configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Executors < 1 {
		cfg.Executors = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 128
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 500 * time.Millisecond
	}
	cache, err := newResultCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	return &Server{
		cfg:     cfg,
		metrics: m,
		cache:   cache,
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.QueueDepth),
	}, nil
}

// Start launches the executor pool. Jobs derive their contexts from ctx:
// cancelling it aborts in-flight work (the unclean path — prefer Drain).
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.baseCtx = ctx
	for i := 0; i < s.cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
}

// Drain stops intake and waits for every accepted job to finish — each
// with its result durably written — or for ctx to expire, whichever
// comes first. It returns nil on a complete drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted: %w", context.Cause(ctx))
	}
}

// Metrics returns the server-wide counter set.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// executor runs queued jobs until the queue is closed and empty.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job's cells on the runner pool and records the
// outcome. The result document is durably cached before the job reports
// done, so a client observing "done" can always re-read the result.
func (s *Server) runJob(j *job) {
	if err := j.ctx.Err(); err != nil {
		j.finish(statusCanceled, nil, context.Cause(j.ctx).Error())
		return
	}
	j.setRunning()

	jobs := make([]runner.Job, len(j.cells))
	for i, c := range j.cells {
		rj, err := c.Job()
		if err != nil {
			j.finish(statusFailed, nil, err.Error())
			return
		}
		jobs[i] = rj
	}

	var th *obs.Throttle
	if s.cfg.NowNanos != nil {
		th = obs.NewThrottle(s.cfg.ProgressEvery, s.cfg.NowNanos)
	}
	ropts := runner.Options{
		Workers:      s.cfg.Workers,
		Metrics:      j.metrics,
		TraceFor:     s.traceFor(j, jobs),
		JobTimeout:   s.cfg.JobTimeout,
		StallTimeout: s.cfg.StallTimeout,
		Retry: runner.RetryPolicy{
			Max:  s.cfg.Retries + 1,
			Base: s.cfg.RetryBase,
			Seed: 1,
		},
		Sleep: s.cfg.Sleep,
		Progress: func() {
			if th == nil || th.Ready() {
				j.appendEvent(progressEvent(j.metrics.Snapshot()))
			}
		},
	}
	results, err := runner.Run(j.ctx, jobs, ropts)
	s.metrics.Merge(j.metrics.Snapshot())
	if err != nil {
		status := statusFailed
		if j.ctx.Err() != nil {
			status = statusCanceled
			err = context.Cause(j.ctx)
		}
		j.finish(status, nil, err.Error())
		return
	}

	doc, err := buildResultDoc(j, results)
	if err != nil {
		j.finish(statusFailed, nil, err.Error())
		return
	}
	if err := s.cache.put(j.id, doc); err != nil {
		// The run succeeded but the result is not durable: failing the
		// job is the honest outcome — a retry will rerun and re-write.
		j.finish(statusFailed, nil, err.Error())
		return
	}
	j.finish(statusDone, doc, "")
}

// traceFor returns the runner trace hook for one job: a fresh recorder
// per cell attempt, pid keyed to the cell ordinal, registered on the job
// for the trace endpoint. Nil when the daemon runs untraced.
func (s *Server) traceFor(j *job, jobs []runner.Job) func(index, attempt int) *flight.Recorder {
	if s.cfg.TraceSample <= 0 {
		return nil
	}
	return func(index, attempt int) *flight.Recorder {
		rec := flight.New(flight.Options{
			Sample: s.cfg.TraceSample,
			Spans:  true,
			Pid:    index,
			Label:  jobs[index].Label,
		})
		j.setRecorder(index, len(jobs), rec)
		return rec
	}
}

// buildResultDoc marshals the completed-job document exactly once; these
// bytes are what the cache stores and every response serves.
func buildResultDoc(j *job, results [][]sim.Result) ([]byte, error) {
	reqCanon, err := j.req.Canonical()
	if err != nil {
		return nil, err
	}
	doc := spec.ResultDoc{
		ID:      j.id,
		Status:  statusDone,
		Request: reqCanon,
		Cells:   make([]spec.CellResult, len(j.cells)),
	}
	for i, c := range j.cells {
		canon, err := c.Canonical()
		if err != nil {
			return nil, err
		}
		cr := spec.CellResult{Spec: canon, Results: make([]spec.SchemeResult, len(results[i]))}
		for k, r := range results[i] {
			cr.Results[k] = spec.SchemeResult{Scheme: r.Scheme, Stats: r.Stats}
		}
		doc.Cells[i] = cr
	}
	return json.Marshal(doc)
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/engines", s.handleEngines)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
}

// submit resolves a request to a job: an existing in-flight or finished
// job with the same hash, a cache hit wrapped as a finished job, or a
// freshly enqueued one. The error return carries an HTTP status.
func (s *Server) submit(req spec.Request) (*job, int, error) {
	hash, err := req.Hash()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[hash]; ok {
		st, _, _ := j.snapshot()
		if st != statusFailed && st != statusCanceled {
			return j, http.StatusOK, nil // singleflight: attach
		}
		// Terminal failure: fall through and resubmit fresh.
	}
	if data, ok := s.cache.get(hash); ok {
		j := completedJob(hash, data)
		s.jobs[hash] = j
		return j, http.StatusOK, nil
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("server: draining, not accepting jobs")
	}
	if !s.started {
		return nil, http.StatusServiceUnavailable, errors.New("server: not started")
	}
	cells, err := req.Cells()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	j := newJob(s.baseCtx, hash, req, cells)
	select {
	case s.queue <- j:
	default:
		j.cancel(errors.New("server: queue full"))
		return nil, http.StatusTooManyRequests, fmt.Errorf("server: job queue full (%d)", s.cfg.QueueDepth)
	}
	s.metrics.Histogram(obs.HistQueueDepth).Observe(uint64(len(s.queue)))
	s.jobs[hash] = j
	return j, http.StatusAccepted, nil
}

// handleSubmit is POST /v1/jobs. With ?wait=1 the request holds the
// connection until the job finishes and answers with the full result
// document; disconnecting while waiting withdraws interest and cancels
// the job if nobody else is watching. Without wait the job is detached
// and the response is an immediate status envelope.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req spec.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	j, code, err := s.submit(req)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, "%v", err)
		return
	}
	if !wait {
		j.detach()
		st, _, errMsg := j.snapshot()
		writeJSON(w, code, spec.JobStatus{ID: j.id, Status: st, Error: errMsg})
		return
	}
	j.hold()
	defer j.release()
	select {
	case <-j.done:
	case <-r.Context().Done():
		return // release may cancel the job if we were the last watcher
	}
	s.writeTerminal(w, j)
}

// writeTerminal answers with a finished job's stored result bytes (done)
// or its error envelope.
func (s *Server) writeTerminal(w http.ResponseWriter, j *job) {
	st, result, errMsg := j.snapshot()
	if st == statusDone {
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
		return
	}
	code := http.StatusInternalServerError
	if st == statusCanceled {
		code = http.StatusConflict
	}
	writeJSON(w, code, spec.JobStatus{ID: j.id, Status: st, Error: errMsg})
}

// lookup finds a job by id, falling back to the durable cache so results
// survive daemon restarts.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j
	}
	if data, ok := s.cache.get(id); ok {
		j := completedJob(id, data)
		s.jobs[id] = j
		return j
	}
	return nil
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st, _, errMsg := j.snapshot()
	if j.terminal() {
		s.writeTerminal(w, j)
		return
	}
	var prog *obs.Snapshot
	if j.metrics != nil {
		snap := j.metrics.Snapshot()
		prog = &snap
	}
	writeJSON(w, http.StatusOK, spec.JobStatus{ID: j.id, Status: st, Error: errMsg, Progress: prog})
}

// handleEvents is GET /v1/jobs/{id}/events: an NDJSON stream replaying
// the job's event log from the start and following it until a terminal
// event. Streaming clients count as watchers.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	j.hold()
	defer j.release()
	next := 0
	for {
		events, wake, terminal := j.eventsFrom(next)
		for _, e := range events {
			w.Write(append(marshalEvent(e), '\n'))
		}
		next += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if terminal && len(events) == 0 {
			return
		}
		if terminal {
			continue // drain any rows appended after the terminal check
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleEngines is GET /v1/engines.
func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	names := append([]string(nil), coherence.EngineNames()...)
	sort.Strings(names)
	writeJSON(w, http.StatusOK, spec.EnginesDoc{Engines: names, Filters: spec.FilterNames()})
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics is GET /metrics: the server-wide obs snapshot as JSON,
// or the Prometheus text exposition with ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := obs.WritePrometheus(w, s.metrics.Snapshot()); err != nil {
			return // mid-stream failure: the client sees a truncated body
		}
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// handleTrace is GET /v1/jobs/{id}/trace: the job's flight trace as
// Chrome trace-event JSON (default, Perfetto-loadable) or NDJSON with
// ?format=ndjson. Traces exist only for jobs the daemon itself executed
// with tracing enabled (404 otherwise) and only once the job is terminal
// — the rings are single-writer, so a running job answers 409.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	recs, ok := j.traceRecorders()
	if !ok {
		httpError(w, http.StatusConflict, "job still running; trace is served once the job is terminal")
		return
	}
	if len(recs) == 0 {
		httpError(w, http.StatusNotFound, "no trace for this job (daemon tracing off, or result restored from cache)")
		return
	}
	switch r.URL.Query().Get("format") {
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flight.WriteNDJSON(w, recs...)
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		flight.WriteChromeTrace(w, recs...)
	default:
		httpError(w, http.StatusBadRequest, "unknown trace format %q", r.URL.Query().Get("format"))
	}
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}
