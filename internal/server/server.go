// Package server is the simulation-as-a-service layer: a stdlib-only
// HTTP daemon that accepts simulation and sweep specs as jobs, executes
// them on the shared internal/runner pool with the existing resilience
// policies, and serves results from a content-addressed cache.
//
// The core ideas:
//
//   - Jobs are content-addressed. A job's id is the SHA-256 of its
//     spec's canonical JSON, so N concurrent identical submissions
//     collapse onto one execution (singleflight) and every client reads
//     the same stored bytes — responses are byte-identical by
//     construction, not by convention.
//   - Results are cached: an in-memory LRU in front of an optional
//     on-disk store written via internal/atomicio. A repeat of a
//     finished spec never touches the runner.
//   - Accepted work is durable. With a state dir configured, every
//     admitted job is journaled (fsynced) before the submit is
//     acknowledged and resolved when it finishes; a daemon killed
//     mid-run replays the journal's live set on restart and owes its
//     clients exactly that work.
//   - Sweeps run in cell chunks. Each finished cell's document is
//     durably checkpointed in a per-cell content-addressed cache, so
//     recovery re-simulates only the missing cells, and the final
//     document splices the stored bytes verbatim — an interrupted run
//     reassembles byte-identical to an uninterrupted one.
//   - Admission is multi-tenant. API keys map requests to tenants with
//     quotas; queued work drains by weighted deficit round-robin, and
//     the interactive class (?wait=1) is dispatched strictly before
//     batch sweeps, which yield their executor at chunk boundaries when
//     interactive work is waiting.
//   - Back-pressure is explicit: the queue is bounded and quotas are
//     enforced; both answer 429 with Retry-After instead of absorbing
//     unbounded work. Bad credentials answer 403 — saturation and
//     rejection are distinct signals.
//   - Cancellation follows the client: a job holds a watcher count
//     (waiting submissions, event streams); when the last watcher of a
//     never-detached job disconnects, the job's context is cancelled
//     mid-batch. Asynchronous submissions detach the job so it runs to
//     completion unwatched.
//   - Shutdown drains: Drain stops intake (503), lets the executors
//     finish every accepted job — each result durably written before the
//     job reports done — then returns, so SIGTERM cannot lose work.
//
// The package stays clock-free (the nondeterm lint rule applies):
// anything time-based — progress throttling, retry backoff sleeps — is
// injected by the cmd layer.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dirsim/internal/cluster"
	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
)

// Config parameterises the daemon.
type Config struct {
	// Workers bounds concurrent cell simulations within one job (the
	// runner pool width). Below 1 means 1.
	Workers int
	// Executors bounds concurrently running jobs. Below 1 means 1.
	Executors int
	// QueueDepth bounds jobs accepted but not yet dispatched; a full
	// queue answers 429. Below 1 means 16.
	QueueDepth int
	// CacheEntries bounds the in-memory result LRU. Below 1 means 128.
	CacheEntries int
	// CacheDir, when non-empty, persists results as <hash>.json files
	// (written atomically) that survive restarts. Empty with a StateDir
	// set, it defaults to StateDir/results.
	CacheDir string

	// StateDir, when non-empty, makes accepted work durable: admitted
	// jobs are journaled there before the submit is acknowledged, and a
	// restarted daemon replays unresolved jobs from the journal.
	StateDir string
	// Tenants configures API-key admission. Empty means open mode: no
	// authentication, one anonymous tenant, no quotas.
	Tenants []Tenant
	// ChunkCells is how many cells of a sweep run per chunk between
	// checkpoints (and possible yields to interactive work). Below 1
	// means 16.
	ChunkCells int

	// JobTimeout, StallTimeout, Retries and RetryBase configure the
	// runner's per-attempt resilience policy, exactly as the CLIs do.
	JobTimeout   time.Duration
	StallTimeout time.Duration
	Retries      int
	RetryBase    time.Duration
	// Sleep is called with retry backoff delays (cmd passes time.Sleep;
	// nil applies the schedule without waiting).
	Sleep func(time.Duration)

	// NowNanos is the injected clock used only to throttle progress
	// events and sample admit-wait latency (cmd passes
	// time.Now().UnixNano via a closure). nil disables both.
	NowNanos func() int64
	// ProgressEvery is the minimum interval between progress events per
	// job when NowNanos is set; zero means 500ms.
	ProgressEvery time.Duration

	// Metrics, when non-nil, is the server-wide counter set /metrics
	// serves; nil allocates a fresh one.
	Metrics *obs.Metrics

	// Tracer, when non-nil, records fabric spans — job, queue, chunk,
	// cell-cache, peer-fetch, simulate, replay, cache-serve — under the
	// trace context each request carries in X-Dirsim-Trace (or a fresh
	// trace keyed by the job hash). Spans are served by
	// GET /v1/trace/{traceid} and spliced into GET /v1/jobs/{id}/trace.
	Tracer *otrace.Tracer

	// TraceSample, when positive, records a flight trace for every
	// executed job (one recorder per cell, sampling every TraceSample-th
	// reference, with phase spans), served by GET /v1/jobs/{id}/trace.
	// Zero disables per-job tracing. Traces are kept in memory only —
	// cache-restored jobs have none.
	TraceSample int

	// ClusterSource, when non-nil, makes this daemon a fleet member:
	// before simulating a cell it asks the cell's HRW owner (and on
	// miss, one sibling) for a finished document via GET /v1/cache, and
	// it serves the same endpoint to its peers, authenticated by the
	// membership's shared key. The source may be lazy (a file written
	// after startup); peering is simply off until it loads.
	ClusterSource *cluster.Source
	// ClusterSelfAddr is this daemon's bound host:port, used to find
	// itself in the membership so peering skips the local node.
	ClusterSelfAddr string
	// ClusterHTTP issues peer fetches; nil defaults to a client with a
	// 10s timeout (a peer fetch is an optimisation and must cost
	// bounded time before falling back to simulating locally).
	ClusterHTTP *http.Client
	// ClusterHealth, when non-nil, is the shared up/down state a
	// Prober maintains; down peers are skipped by the peering order.
	ClusterHealth *cluster.Health
}

// Server is the daemon: an HTTP handler plus the execution pipeline
// behind it. Create with New, launch with Start, stop with Drain.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *resultCache
	store   *jobStore

	mu      sync.Mutex
	jobs    map[string]*job
	pending []journalRecord // journal replay set, consumed by Start
	// Admission state: the tenant ring, its lookup maps, and the DRR
	// rotor per class.
	ring   []*tenant
	byName map[string]*tenant
	byKey  map[string]*tenant
	rotor  [numClasses]int
	// queued counts jobs admitted but not dispatched (across tenants);
	// busy counts executors currently running a job.
	queued int
	busy   int
	// wake is closed and replaced whenever dispatchable work may have
	// appeared; idle executors block on it (never on a condition
	// variable — context/channel flow is the package's concurrency law).
	wake       chan struct{}
	drainCh    chan struct{} // closed once, when draining begins
	draining   bool
	recovering bool
	started    bool

	baseCtx context.Context
	wg      sync.WaitGroup

	// Cluster peering state, built lazily on the first use after the
	// membership source loads (membership is immutable once loaded).
	clusterMu     sync.Mutex
	clusterRouter *cluster.Router
	clusterSelf   int
	peerCache     *cluster.CacheClient
	clusterKey    string
}

// New builds a server from the configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Executors < 1 {
		cfg.Executors = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 128
	}
	if cfg.ChunkCells < 1 {
		cfg.ChunkCells = 16
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 500 * time.Millisecond
	}
	if cfg.StateDir != "" && cfg.CacheDir == "" {
		cfg.CacheDir = filepath.Join(cfg.StateDir, "results")
	}
	ring, byName, byKey, err := buildTenants(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	cache, err := newResultCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	for _, t := range cfg.Tenants {
		if t.MaxCacheBytes > 0 {
			cache.setQuota(t.Name, t.MaxCacheBytes)
		}
	}
	cache.onTenantBytes = func(tenant string, bytes uint64) {
		m.SetGauge("cache_bytes_tenant_"+sanitizeMetric(tenant), bytes)
	}
	if cfg.ClusterSource != nil && cfg.ClusterHTTP == nil {
		cfg.ClusterHTTP = &http.Client{Timeout: 10 * time.Second}
	}
	var store *jobStore
	var pending []journalRecord
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
		store, pending, err = openJobStore(cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	return &Server{
		cfg:         cfg,
		metrics:     m,
		cache:       cache,
		store:       store,
		pending:     pending,
		jobs:        map[string]*job{},
		ring:        ring,
		byName:      byName,
		byKey:       byKey,
		wake:        make(chan struct{}),
		drainCh:     make(chan struct{}),
		recovering:  len(pending) > 0,
		clusterSelf: -1,
	}, nil
}

// Start replays any journaled unfinished jobs and launches the executor
// pool. Jobs derive their contexts from ctx: cancelling it aborts
// in-flight work (the unclean path — prefer Drain).
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.baseCtx = ctx
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, rec := range pending {
		s.replay(rec)
	}
	s.mu.Lock()
	s.recovering = false
	for i := 0; i < s.cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	s.mu.Unlock()
}

// replay re-admits one journaled accept. The record must still make
// sense under the current spec generation — same version, a request that
// validates, a hash that matches — otherwise the obligation is resolved
// as failed and the client resubmits (its job would live under a
// different id anyway). Work already finished before the crash (result
// on disk, resolve record lost) is resolved as done without re-running.
func (s *Server) replay(rec journalRecord) {
	traceID := rec.Trace
	if traceID == "" {
		traceID = rec.ID
	}
	rsp := s.cfg.Tracer.Start(otrace.Root(traceID), "replay")
	defer rsp.Finish()
	drop := func() {
		rsp.SetOutcome("dropped")
		_ = s.store.resolve(rec.ID, statusFailed)
	}
	if rec.SpecVersion != spec.CurrentVersion {
		drop()
		return
	}
	var req spec.Request
	if err := json.Unmarshal(rec.Request, &req); err != nil {
		drop()
		return
	}
	if err := req.Validate(); err != nil {
		drop()
		return
	}
	hash, err := req.Hash()
	if err != nil || hash != rec.ID {
		drop()
		return
	}
	if _, ok := s.cache.get(rec.ID); ok {
		rsp.SetOutcome("cached")
		_ = s.store.resolve(rec.ID, statusDone)
		return
	}
	cells, err := req.Cells()
	if err != nil {
		drop()
		return
	}
	hashes, err := cellHashes(cells)
	if err != nil {
		drop()
		return
	}
	t := s.tenantForReplay(rec.Tenant)
	j := newJob(s.baseCtx, rec.ID, req, cells, hashes)
	j.detach() // the submitting client is gone; the promise is not
	rsp.SetOutcome("requeued")
	s.traceJob(j, rsp.Context())
	j.traceID = traceID
	j.tenant = t
	j.class = classFromName(rec.Class)
	j.cost = jobCost(len(cells), j.class)
	if s.cfg.NowNanos != nil {
		j.admittedNanos = s.cfg.NowNanos()
	}
	s.mu.Lock()
	t.active++
	s.enqueueLocked(j)
	s.jobs[rec.ID] = j
	s.signalLocked()
	s.mu.Unlock()
}

// Drain stops intake and waits for every accepted job to finish — each
// with its result durably written — or for ctx to expire, whichever
// comes first. It returns nil on a complete drain, with the job journal
// compact and closed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.store.close()
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted: %w", context.Cause(ctx))
	}
}

// Metrics returns the server-wide counter set.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// signalLocked wakes every idle executor to re-check for work. Callers
// hold s.mu; waiters re-acquire it before re-checking, so a wake can
// never be lost between the check and the block.
func (s *Server) signalLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// executor dispatches jobs picked by the fair-share scheduler until the
// server drains and the queues are empty.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		j := s.pickLocked()
		if j == nil {
			if s.draining {
				s.mu.Unlock()
				return
			}
			wake := s.wake
			s.mu.Unlock()
			select {
			case <-wake:
			case <-s.drainCh:
			}
			continue
		}
		s.busy++
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// traceJob opens the job's fabric spans under the submitter's trace
// context (or a fresh trace keyed by the job's content hash): the "job"
// span runs admission → terminal, the "queue" span admission → first
// dispatch, and spanCtx parents every child span the executors open.
func (s *Server) traceJob(j *job, tc otrace.Context) {
	if tc.Trace == "" {
		tc = otrace.Root(j.id)
	}
	j.traceID = tc.Trace
	j.span = s.cfg.Tracer.Start(tc, "job")
	j.spanCtx = j.span.Context()
	j.queueSpan = s.cfg.Tracer.Start(j.spanCtx, "queue")
}

// finishJob records a job's terminal state exactly once: the event log,
// the server-wide metrics fold, the journal resolve that releases the
// durable obligation, and the tenant's quota slot.
func (s *Server) finishJob(j *job, status string, result []byte, errMsg string) {
	if !j.finish(status, result, errMsg) {
		return
	}
	j.queueSpan.Finish() // no-op unless the job died while queued
	j.span.SetOutcome(status)
	j.span.Finish()
	if j.metrics != nil {
		s.metrics.Merge(j.metrics.Snapshot())
	}
	// Best-effort: a failed resolve means the journal replays a finished
	// job after a restart, which recovery detects via the result cache.
	_ = s.store.resolve(j.id, status)
	s.mu.Lock()
	if j.tenant != nil {
		j.tenant.active--
	}
	s.mu.Unlock()
}

// observeAdmitWait samples queued-to-first-dispatch latency, globally
// and per tenant — the fairness signal the soak harness reads.
func (s *Server) observeAdmitWait(j *job) {
	if s.cfg.NowNanos == nil || j.admittedNanos == 0 {
		return
	}
	ms := (s.cfg.NowNanos() - j.admittedNanos) / int64(time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	s.metrics.Histogram(obs.HistAdmitWait).Observe(uint64(ms))
	if j.tenant != nil {
		s.metrics.Histogram(obs.HistAdmitWait + "_tenant_" + j.tenant.metricName).Observe(uint64(ms))
	}
}

// shouldYield decides whether a batch job parks at a chunk boundary:
// only when interactive work is waiting and every executor is occupied —
// an idle executor would pick the interactive job up anyway. Draining
// disables yielding; nothing new can arrive and the queues must empty.
func (s *Server) shouldYield(j *job) bool {
	if j.class != classBatch {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && s.interactivePendingLocked() && s.busy >= s.cfg.Executors
}

// runJob executes one job chunk by chunk on the runner pool and records
// the outcome. Each chunk's cell documents are durably checkpointed
// before the next begins, and the final result document is durably
// cached before the job reports done — a client observing "done" can
// always re-read the result, and a crash loses at most the chunk in
// flight. Between chunks a batch job may yield its executor back to the
// scheduler; it resumes from its cursor when re-dispatched.
func (s *Server) runJob(j *job) {
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, statusCanceled, nil, context.Cause(j.ctx).Error())
		return
	}
	if first := j.setRunning(); first {
		s.observeAdmitWait(j)
		j.queueSpan.SetOutcome("dispatched")
		j.queueSpan.Finish()
	}
	for j.nextCell < len(j.cells) {
		end := j.nextCell + s.cfg.ChunkCells
		if end > len(j.cells) {
			end = len(j.cells)
		}
		if err := s.runChunk(j, j.nextCell, end); err != nil {
			status := statusFailed
			if j.ctx.Err() != nil {
				status = statusCanceled
				err = context.Cause(j.ctx)
			}
			s.finishJob(j, status, nil, err.Error())
			return
		}
		j.nextCell = end
		if j.nextCell < len(j.cells) && s.shouldYield(j) {
			j.setQueued()
			s.mu.Lock()
			s.requeueLocked(j)
			s.signalLocked()
			s.mu.Unlock()
			return
		}
	}
	doc, err := buildResultDoc(j)
	if err != nil {
		s.finishJob(j, statusFailed, nil, err.Error())
		return
	}
	if err := s.cache.put(j.id, doc, j.tenantName()); err != nil {
		// The run succeeded but the result is not durable: failing the
		// job is the honest outcome — a retry will rerun and re-write.
		s.finishJob(j, statusFailed, nil, err.Error())
		return
	}
	s.finishJob(j, statusDone, doc, "")
}

// runChunk finishes cells [lo, hi): cells with a checkpointed document
// are restored from the per-cell cache (this is how a recovered or
// resumed job skips completed work), the rest run on the runner pool and
// are checkpointed before the chunk reports complete. The chunk's
// documents stream to event watchers as partial results.
func (s *Server) runChunk(j *job, lo, hi int) (err error) {
	csp := s.cfg.Tracer.Start(j.spanCtx, "chunk")
	defer func() {
		if err != nil {
			csp.SetOutcome("error")
		}
		csp.Finish()
	}()
	chunkCtx := csp.Context()
	var jobs []runner.Job
	var globals []int // runner index → cell ordinal
	for i := lo; i < hi; i++ {
		if data, ok := s.cache.getCell(j.cellHashes[i]); ok {
			hitSp := s.cfg.Tracer.Start(chunkCtx, "cell-cache")
			hitSp.SetOutcome("hit")
			hitSp.Finish()
			j.cellDocs[i] = data
			continue
		}
		// Fleet mode: before simulating, ask the cell's owner (then one
		// sibling) whether the fleet already has this cell. A verified
		// hit is checkpointed locally like our own work — the fleet
		// simulates each popular cell once, every daemon can serve it.
		if data, ok := s.peerFetchCell(j.ctx, chunkCtx, j.cellHashes[i]); ok {
			if err := s.cache.putCell(j.cellHashes[i], data, j.tenantName()); err != nil {
				return err
			}
			j.cellDocs[i] = data
			continue
		}
		rj, err := j.cells[i].Job()
		if err != nil {
			return err
		}
		jobs = append(jobs, rj)
		globals = append(globals, i)
	}
	if len(jobs) > 0 {
		var th *obs.Throttle
		if s.cfg.NowNanos != nil {
			th = obs.NewThrottle(s.cfg.ProgressEvery, s.cfg.NowNanos)
		}
		ropts := runner.Options{
			Workers:      s.cfg.Workers,
			Metrics:      j.metrics,
			TraceFor:     s.traceFor(j, jobs, globals),
			JobTimeout:   s.cfg.JobTimeout,
			StallTimeout: s.cfg.StallTimeout,
			Retry: runner.RetryPolicy{
				Max:  s.cfg.Retries + 1,
				Base: s.cfg.RetryBase,
				Seed: 1,
			},
			Sleep: s.cfg.Sleep,
			Progress: func() {
				if th == nil || th.Ready() {
					j.appendEvent(progressEvent(j.metrics.Snapshot()))
				}
			},
		}
		simSp := s.cfg.Tracer.Start(chunkCtx, "simulate")
		results, err := runner.Run(j.ctx, jobs, ropts)
		if err != nil {
			simSp.SetOutcome("error")
			simSp.Finish()
			return err
		}
		simSp.Finish()
		for k, rs := range results {
			doc, err := buildCellDoc(j.cells[globals[k]], rs)
			if err != nil {
				return err
			}
			if err := s.cache.putCell(j.cellHashes[globals[k]], doc, j.tenantName()); err != nil {
				return err
			}
			j.cellDocs[globals[k]] = doc
		}
	}
	j.appendEvent(chunkEvent(hi, len(j.cells), j.cellDocs[lo:hi]))
	return nil
}

// peering returns the lazily built cluster routing state: the router,
// the membership, this daemon's own index, and the authenticated peer
// fetch client. ok is false until the membership source loads (and
// always, for a daemon running without -cluster-peers).
func (s *Server) peering() (router *cluster.Router, mem cluster.Membership, self int, pc *cluster.CacheClient, ok bool) {
	if s.cfg.ClusterSource == nil {
		return nil, cluster.Membership{}, -1, nil, false
	}
	mem, loaded := s.cfg.ClusterSource.Get()
	if !loaded {
		return nil, cluster.Membership{}, -1, nil, false
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if s.clusterRouter == nil {
		s.clusterRouter = cluster.NewRouter(mem, s.cfg.ClusterHealth)
		s.clusterSelf = mem.IndexOfAddr(s.cfg.ClusterSelfAddr)
		s.peerCache = &cluster.CacheClient{HTTP: s.cfg.ClusterHTTP, Key: mem.Key}
		s.clusterKey = mem.Key
	}
	return s.clusterRouter, mem, s.clusterSelf, s.peerCache, true
}

// peerFetchCell asks the fleet for a finished cell document before
// simulating it: the cell's HRW owner first, then one sibling — two
// bounded, cheap lookups, not a broadcast (the paper's point-to-point
// directory argument, applied to the service itself). Every fetched
// document is verified against the content address before use, so a
// compromised or confused peer can only cause a miss, never bad data.
func (s *Server) peerFetchCell(ctx context.Context, parent otrace.Context, hash string) ([]byte, bool) {
	router, mem, self, pc, ok := s.peering()
	if !ok {
		return nil, false
	}
	tried := 0
	for _, pi := range router.Order(hash) {
		if pi == self || tried >= 2 {
			if pi == self {
				continue
			}
			break
		}
		tried++
		addr := mem.Peers[pi].Addr
		sp := s.cfg.Tracer.Start(parent, "peer-fetch")
		sp.SetPeer(addr)
		fctx := otrace.With(ctx, sp.Context())
		var t0 int64
		if s.cfg.NowNanos != nil {
			t0 = s.cfg.NowNanos()
		}
		data, found, err := pc.Fetch(fctx, addr, hash)
		if s.cfg.NowNanos != nil {
			ms := (s.cfg.NowNanos() - t0) / int64(time.Millisecond)
			if ms < 0 {
				ms = 0
			}
			s.metrics.Histogram(obs.HistPeerFetch).Observe(uint64(ms))
			s.metrics.Histogram(obs.HistPeerFetch + "_peer_" + sanitizeMetric(addr)).Observe(uint64(ms))
		}
		switch {
		case err != nil:
			sp.SetOutcome("error")
			s.metrics.AddCounter("cluster_peer_fetch_errors", 1)
			if cluster.IsTransportError(err) {
				s.cfg.ClusterHealth.SetDown(pi, true)
			}
		case !found:
			sp.SetOutcome("miss")
			s.metrics.AddCounter("cluster_peer_fetch_misses", 1)
		case spec.VerifyCellDoc(hash, data) != nil:
			sp.SetOutcome("invalid")
			s.metrics.AddCounter("cluster_peer_fetch_invalid", 1)
		default:
			sp.SetOutcome("hit")
			s.metrics.AddCounter("cluster_peer_fetch_hits", 1)
			sp.Finish()
			return data, true
		}
		sp.Finish()
	}
	return nil, false
}

// handleCacheFetch is GET /v1/cache/{hash}: the peering endpoint. It
// serves finished documents — completed jobs by request hash, cell
// checkpoints by cell hash — straight from the result cache; it never
// triggers simulation. Authorisation is the shared cluster key when
// the daemon is clustered (fleet-internal traffic, exempt from tenant
// rate limits), a tenant API key when only tenants are configured, and
// open otherwise.
func (s *Server) handleCacheFetch(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !hashPattern.MatchString(hash) {
		httpError(w, http.StatusBadRequest, "malformed hash")
		return
	}
	if !s.fleetAuth(w, r) {
		return
	}
	var sp otrace.Active
	if tc, ok := otrace.ParseHeader(r.Header.Get(otrace.HeaderName)); ok {
		sp = s.cfg.Tracer.Start(tc, "cache-serve")
	}
	data, ok := s.cache.get(hash)
	if !ok {
		data, ok = s.cache.getCell(hash)
	}
	if !ok {
		sp.SetOutcome("miss")
		sp.Finish()
		httpError(w, http.StatusNotFound, "no document for this hash")
		return
	}
	sp.SetOutcome("hit")
	sp.Finish()
	s.metrics.AddCounter("cluster_cache_served", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// fleetAuth authorises the fleet-internal read endpoints (/v1/cache,
// /v1/trace, /v1/cluster/metrics): the shared cluster key when the
// daemon is clustered (exempt from tenant rate limits), a tenant API
// key when only tenants are configured, open otherwise. It writes the
// error response and reports false when the request must not proceed.
func (s *Server) fleetAuth(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.ClusterSource != nil {
		_, _, _, _, ok := s.peering()
		if !ok {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "cluster membership not loaded yet")
			return false
		}
		s.clusterMu.Lock()
		key := s.clusterKey
		s.clusterMu.Unlock()
		if key != "" && subtle.ConstantTimeCompare([]byte(r.Header.Get(cluster.KeyHeader)), []byte(key)) != 1 {
			httpError(w, http.StatusForbidden, "bad cluster key")
			return false
		}
	} else if len(s.cfg.Tenants) > 0 {
		if _, err := s.resolveTenant(apiKey(r)); err != nil {
			httpError(w, http.StatusForbidden, "%v", err)
			return false
		}
	}
	return true
}

// traceFor returns the runner trace hook for one chunk: a fresh recorder
// per cell attempt, pid keyed to the cell's ordinal in the whole job,
// registered on the job for the trace endpoint. Nil when the daemon runs
// untraced.
func (s *Server) traceFor(j *job, jobs []runner.Job, globals []int) func(index, attempt int) *flight.Recorder {
	if s.cfg.TraceSample <= 0 {
		return nil
	}
	return func(index, attempt int) *flight.Recorder {
		rec := flight.New(flight.Options{
			Sample: s.cfg.TraceSample,
			Spans:  true,
			Pid:    globals[index],
			Label:  jobs[index].Label,
		})
		j.setRecorder(globals[index], len(j.cells), rec)
		return rec
	}
}

// buildCellDoc marshals one finished cell's document — the unit of
// durable checkpointing. These exact bytes are what the per-cell cache
// stores and what every later assembly splices.
func buildCellDoc(c spec.Cell, rs []sim.Result) ([]byte, error) {
	canon, err := c.Canonical()
	if err != nil {
		return nil, err
	}
	srs := make([]spec.SchemeResult, len(rs))
	for k, r := range rs {
		srs[k] = spec.SchemeResult{Scheme: r.Scheme, Stats: r.Stats}
	}
	resultsRaw, err := json.Marshal(srs)
	if err != nil {
		return nil, err
	}
	return json.Marshal(spec.CellDoc{SpecVersion: spec.CurrentVersion, Spec: canon, Results: resultsRaw})
}

// buildResultDoc assembles the completed-job document from the cells'
// checkpointed documents, splicing their stored bytes verbatim (the
// fields are raw JSON) — which is what makes an interrupted-and-resumed
// job's final document byte-identical to an uninterrupted run's.
func buildResultDoc(j *job) ([]byte, error) {
	reqCanon, err := j.req.Canonical()
	if err != nil {
		return nil, err
	}
	doc := spec.ResultDoc{
		ID:          j.id,
		SpecVersion: spec.CurrentVersion,
		Status:      statusDone,
		Request:     reqCanon,
		Cells:       make([]spec.CellResult, len(j.cells)),
	}
	for i, raw := range j.cellDocs {
		var cd spec.CellDoc
		if err := json.Unmarshal(raw, &cd); err != nil {
			return nil, fmt.Errorf("server: cell %d document: %w", i, err)
		}
		doc.Cells[i] = spec.CellResult{Spec: cd.Spec, Results: cd.Results}
	}
	return json.Marshal(doc)
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/engines", s.handleEngines)
	mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheFetch)
	mux.HandleFunc("GET /v1/trace/{traceid}", s.handleTraceSpans)
	mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
}

// apiKey extracts the request's credential: Authorization: Bearer takes
// precedence, X-API-Key is the fallback for clients that cannot set
// Authorization.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(h, "Bearer "))
	}
	return r.Header.Get("X-API-Key")
}

// submit resolves a request to a job: an existing in-flight or finished
// job with the same hash, a cache hit wrapped as a finished job, or a
// freshly admitted one — journaled, charged to the tenant's quota and
// enqueued for fair-share dispatch. The error return carries an HTTP
// status.
func (s *Server) submit(req spec.Request, t *tenant, class int, tc otrace.Context) (*job, int, error) {
	hash, err := req.Hash()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[hash]; ok {
		st, _, _ := j.snapshot()
		if st != statusFailed && st != statusCanceled {
			return j, http.StatusOK, nil // singleflight: attach
		}
		// Terminal failure: fall through and resubmit fresh.
	}
	if data, ok := s.cache.get(hash); ok {
		j := completedJob(hash, data)
		s.jobs[hash] = j
		return j, http.StatusOK, nil
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("server: draining, not accepting jobs")
	}
	if s.recovering {
		return nil, http.StatusServiceUnavailable, errors.New("server: recovering, replaying the job journal")
	}
	if !s.started {
		return nil, http.StatusServiceUnavailable, errors.New("server: not started")
	}
	if t.MaxActive > 0 && t.active >= t.MaxActive {
		return nil, http.StatusTooManyRequests, fmt.Errorf("server: tenant %q over quota (%d active jobs)", t.Name, t.active)
	}
	if s.queued >= s.cfg.QueueDepth {
		return nil, http.StatusTooManyRequests, fmt.Errorf("server: job queue full (%d)", s.cfg.QueueDepth)
	}
	cells, err := req.Cells()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	hashes, err := cellHashes(cells)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	canon, err := req.Canonical()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	j := newJob(s.baseCtx, hash, req, cells, hashes)
	s.traceJob(j, tc)
	j.tenant = t
	j.class = class
	j.cost = jobCost(len(cells), class)
	if s.cfg.NowNanos != nil {
		j.admittedNanos = s.cfg.NowNanos()
	}
	// The accept record must be durable before the client hears 202:
	// from here the daemon owes this job across any crash.
	if err := s.store.accept(hash, t.Name, class, canon, j.traceID); err != nil {
		j.cancel(err)
		return nil, http.StatusInternalServerError, fmt.Errorf("server: journaling job: %w", err)
	}
	t.active++
	s.enqueueLocked(j)
	s.jobs[hash] = j
	s.metrics.Histogram(obs.HistQueueDepth).Observe(uint64(s.queued))
	s.metrics.Histogram(obs.HistQueueDepth + "_tenant_" + t.metricName).Observe(uint64(len(t.queues[classInteractive]) + len(t.queues[classBatch])))
	s.signalLocked()
	return j, http.StatusAccepted, nil
}

// handleSubmit is POST /v1/jobs. The request is mapped to a tenant by
// its API key (403 on bad credentials when tenants are configured).
// With ?wait=1 the job is interactive class: the request holds the
// connection until the job finishes and answers with the full result
// document; disconnecting while waiting withdraws interest and cancels
// the job if nobody else is watching. Without wait the job is batch
// class, detached, and the response is an immediate status envelope.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t, err := s.resolveTenant(apiKey(r))
	if err != nil {
		httpError(w, http.StatusForbidden, "%v", err)
		return
	}
	if ok, retryAfter := s.admitRate(t); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		s.metrics.AddCounter("rate_limited", 1)
		s.metrics.AddCounter("rate_limited_tenant_"+t.metricName, 1)
		httpError(w, http.StatusTooManyRequests, "server: tenant %q over its submission rate", t.Name)
		return
	}
	var req spec.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	class := classBatch
	if wait {
		class = classInteractive
	}
	tc, _ := otrace.ParseHeader(r.Header.Get(otrace.HeaderName))
	j, code, err := s.submit(req, t, class, tc)
	if err != nil {
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, "%v", err)
		return
	}
	if !wait {
		j.detach()
		st, _, errMsg := j.snapshot()
		writeJSON(w, code, spec.JobStatus{ID: j.id, Status: st, Error: errMsg, Tenant: t.Name, Class: className(class)})
		return
	}
	j.hold()
	defer j.release()
	select {
	case <-j.done:
	case <-r.Context().Done():
		return // release may cancel the job if we were the last watcher
	}
	s.writeTerminal(w, j)
}

// writeTerminal answers with a finished job's stored result bytes (done)
// or its error envelope.
func (s *Server) writeTerminal(w http.ResponseWriter, j *job) {
	st, result, errMsg := j.snapshot()
	if st == statusDone {
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
		return
	}
	code := http.StatusInternalServerError
	if st == statusCanceled {
		code = http.StatusConflict
	}
	writeJSON(w, code, spec.JobStatus{ID: j.id, Status: st, Error: errMsg})
}

// lookup finds a job by id, falling back to the durable cache so results
// survive daemon restarts.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j
	}
	if data, ok := s.cache.get(id); ok {
		j := completedJob(id, data)
		s.jobs[id] = j
		return j
	}
	return nil
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st, _, errMsg := j.snapshot()
	if j.terminal() {
		s.writeTerminal(w, j)
		return
	}
	var prog *obs.Snapshot
	if j.metrics != nil {
		snap := j.metrics.Snapshot()
		prog = &snap
	}
	status := spec.JobStatus{ID: j.id, Status: st, Error: errMsg, Progress: prog}
	if j.tenant != nil {
		status.Tenant = j.tenant.Name
		status.Class = className(j.class)
	}
	writeJSON(w, http.StatusOK, status)
}

// handleEvents is GET /v1/jobs/{id}/events: an NDJSON stream replaying
// the job's event log from the start and following it until a terminal
// event. Chunked sweeps surface partial results here as "chunk" rows.
// Streaming clients count as watchers.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	j.hold()
	defer j.release()
	next := 0
	for {
		events, wake, terminal := j.eventsFrom(next)
		for _, e := range events {
			w.Write(append(marshalEvent(e), '\n'))
		}
		next += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if terminal && len(events) == 0 {
			return
		}
		if terminal {
			continue // drain any rows appended after the terminal check
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleEngines is GET /v1/engines.
func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	names := append([]string(nil), coherence.EngineNames()...)
	sort.Strings(names)
	writeJSON(w, http.StatusOK, spec.EnginesDoc{Engines: names, Filters: spec.FilterNames()})
}

// handleHealthz is GET /healthz: liveness — 200 while the process
// serves, 503 while draining. Load balancers that only need "is it up"
// read this; readiness is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is GET /readyz: readiness to accept new jobs, distinct
// from liveness. "draining" during a SIGTERM drain, "recovering" while
// the journal replay is still owed, "starting" before Start, "ok" once
// submissions would be admitted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	state, code := "ok", http.StatusOK
	switch {
	case s.draining:
		state, code = "draining", http.StatusServiceUnavailable
	case s.recovering:
		state, code = "recovering", http.StatusServiceUnavailable
	case !s.started:
		state, code = "starting", http.StatusServiceUnavailable
	}
	s.mu.Unlock()
	if code != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"status": state})
}

// handleMetrics is GET /metrics: the server-wide obs snapshot as JSON,
// or the Prometheus text exposition with ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := obs.WritePrometheus(w, s.metrics.Snapshot()); err != nil {
			return // mid-stream failure: the client sees a truncated body
		}
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// handleTrace is GET /v1/jobs/{id}/trace: the job's flight trace —
// spliced with its fabric spans when the daemon runs with a tracer — as
// Chrome trace-event JSON (default, Perfetto-loadable) or NDJSON with
// ?format=ndjson. Traces exist only for jobs the daemon itself executed
// with tracing or a tracer enabled (404 otherwise) and only once the job
// is terminal — the rings are single-writer, so a running job answers
// 409.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	recs, ok := j.traceRecorders()
	if !ok {
		httpError(w, http.StatusConflict, "job still running; trace is served once the job is terminal")
		return
	}
	spans := s.spansByTrace(j.traceID)
	if len(recs) == 0 && len(spans) == 0 {
		httpError(w, http.StatusNotFound, "no trace for this job (daemon tracing off, or result restored from cache)")
		return
	}
	switch r.URL.Query().Get("format") {
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flight.WriteNDJSON(w, recs...)
		otrace.WriteNDJSON(w, spans)
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		otrace.WriteChromeTrace(w, spans, recs...)
	default:
		httpError(w, http.StatusBadRequest, "unknown trace format %q", r.URL.Query().Get("format"))
	}
}

// spansByTrace returns the daemon's recorded fabric spans under one
// trace id (nil when the daemon runs without a tracer).
func (s *Server) spansByTrace(trace string) []otrace.Span {
	if trace == "" {
		return nil
	}
	st := s.cfg.Tracer.Store()
	if st == nil {
		return nil
	}
	return st.ByTrace(trace)
}

// handleTraceSpans is GET /v1/trace/{traceid}: every fabric span this
// daemon recorded under one trace id, as NDJSON span rows (default) or a
// Chrome trace-event document with ?format=chrome. This is the fleet
// trace collection endpoint — a traced sweep asks each daemon for its
// slice of a cell's trace and merges the rows — so it is authorised like
// /v1/cache: cluster key for fleet members, tenant key otherwise.
func (s *Server) handleTraceSpans(w http.ResponseWriter, r *http.Request) {
	trace := r.PathValue("traceid")
	if trace == "" || len(trace) > 256 {
		httpError(w, http.StatusBadRequest, "malformed trace id")
		return
	}
	if !s.fleetAuth(w, r) {
		return
	}
	spans := s.spansByTrace(trace)
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "no spans for this trace")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		otrace.WriteNDJSON(w, spans)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		otrace.WriteChromeTrace(w, spans)
	default:
		httpError(w, http.StatusBadRequest, "unknown trace format %q", r.URL.Query().Get("format"))
	}
}

// handleClusterMetrics is GET /v1/cluster/metrics: metrics federation.
// The answering daemon snapshots itself and fetches every sibling's
// /metrics concurrently, then returns one document with a row per fleet
// member — peers that fail to answer appear with Up=false and the error,
// so a dead daemon is visible rather than silently absent. With
// ?format=prometheus the rows merge into one text exposition where every
// sample carries a peer="addr" label. On a daemon running without
// -cluster-peers the fleet is just itself.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.fleetAuth(w, r) {
		return
	}
	self := spec.PeerMetrics{Addr: s.cfg.ClusterSelfAddr, Self: true, Up: true}
	snap := s.metrics.Snapshot()
	self.Metrics = &snap
	doc := spec.ClusterMetricsDoc{Peers: []spec.PeerMetrics{self}}
	if _, mem, selfIdx, _, ok := s.peering(); ok {
		doc.Peers = make([]spec.PeerMetrics, len(mem.Peers))
		// Scrape siblings concurrently but bounded: a large membership
		// must not translate one inbound request into unbounded fan-out.
		sem := make(chan struct{}, 8)
		var wg sync.WaitGroup
		for i, p := range mem.Peers {
			if i == selfIdx {
				self.Addr = p.Addr
				doc.Peers[i] = self
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				defer func() { <-sem }()
				doc.Peers[i] = s.fetchPeerMetrics(r.Context(), addr)
			}(i, p.Addr)
		}
		wg.Wait()
		if selfIdx < 0 {
			doc.Peers = append(doc.Peers, self)
		}
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		for _, p := range doc.Peers {
			if !p.Up || p.Metrics == nil {
				continue
			}
			if err := obs.WritePrometheusLabeled(w, *p.Metrics, fmt.Sprintf("peer=%q", p.Addr)); err != nil {
				return // mid-stream failure: the client sees a truncated body
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// fetchPeerMetrics asks one sibling for its /metrics snapshot,
// authenticated by the shared cluster key. Failures come back as a
// down row, never an error — federation tolerates dead peers.
func (s *Server) fetchPeerMetrics(ctx context.Context, addr string) spec.PeerMetrics {
	pm := spec.PeerMetrics{Addr: addr}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(addr, "/")+"/metrics", nil)
	if err != nil {
		pm.Error = err.Error()
		return pm
	}
	s.clusterMu.Lock()
	key := s.clusterKey
	s.clusterMu.Unlock()
	if key != "" {
		req.Header.Set(cluster.KeyHeader, key)
	}
	resp, err := s.cfg.ClusterHTTP.Do(req)
	if err != nil {
		pm.Error = err.Error()
		return pm
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		pm.Error = fmt.Sprintf("peer answered %d %s", resp.StatusCode, http.StatusText(resp.StatusCode))
		return pm
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		pm.Error = fmt.Sprintf("decoding peer metrics: %v", err)
		return pm
	}
	pm.Up = true
	pm.Metrics = &snap
	return pm
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}
