package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/spec"
)

// testServer starts a daemon with test-friendly defaults behind an
// httptest server and returns both plus a shutdown func.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Executors == 0 {
		cfg.Executors = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		if err := s.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		cancel()
	})
	return s, ts
}

// cellBody returns a small single-cell request body.
func cellBody(t *testing.T, refs int, seed int64) []byte {
	t.Helper()
	tc, err := spec.Preset("pops", refs)
	if err != nil {
		t.Fatal(err)
	}
	tc.Seed = seed
	tc.CPUs = 4
	cell := spec.Cell{
		Trace:   tc,
		Schemes: []string{"dir1nb"},
		Machine: coherence.Config{Caches: 4},
	}
	body, err := json.Marshal(spec.Request{Cell: &cell})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postWait(t *testing.T, ts *httptest.Server, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// Eight concurrent submissions of the same spec must run exactly one
// simulation and every client must receive byte-identical result bodies.
func TestConcurrentIdenticalSubmissionsSingleflight(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := cellBody(t, 20_000, 1)

	const clients = 8
	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			codes[slot], bodies[slot] = postWait(t, ts, body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d: response differs from client 0", i)
		}
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(bodies[0], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != statusDone || len(doc.Cells) != 1 {
		t.Fatalf("unexpected result doc: status %q, %d cells", doc.Status, len(doc.Cells))
	}
	srs, err := doc.Cells[0].SchemeResults()
	if err != nil || len(srs) != 1 {
		t.Fatalf("scheme results: %v, %v", srs, err)
	}
	if srs[0].Scheme != "Dir1NB" || srs[0].Stats.Refs == 0 {
		t.Fatalf("unexpected scheme result: %+v", srs[0])
	}
	if got := s.Metrics().Snapshot().JobsTotal; got != 1 {
		t.Fatalf("runner executed %d jobs, want exactly 1 (singleflight)", got)
	}
}

// A repeat of a finished spec is a cache hit: served byte-identically
// without enqueueing any new runner work.
func TestCacheHitSkipsRunner(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := cellBody(t, 10_000, 2)

	code, first := postWait(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("first submit: status %d body %s", code, first)
	}
	before := s.Metrics().Snapshot().JobsTotal

	code, second := postWait(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit response differs from original")
	}
	if after := s.Metrics().Snapshot().JobsTotal; after != before {
		t.Fatalf("cache hit ran %d new runner jobs", after-before)
	}

	// The result is also retrievable by id.
	var doc spec.ResultDoc
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	byID, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(byID, first) {
		t.Fatal("GET by id differs from POST result")
	}
}

// Results persist to the cache dir and survive a daemon restart: a new
// server over the same dir serves the identical bytes without running.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := cellBody(t, 10_000, 3)

	_, ts1 := testServer(t, Config{CacheDir: dir})
	code, first := postWait(t, ts1, body)
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, first)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir files = %v, err %v", files, err)
	}
	onDisk, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, first) {
		t.Fatal("on-disk artifact differs from served response")
	}

	s2, ts2 := testServer(t, Config{CacheDir: dir})
	code, again := postWait(t, ts2, body)
	if code != http.StatusOK {
		t.Fatalf("restarted daemon: status %d", code)
	}
	if !bytes.Equal(again, first) {
		t.Fatal("restarted daemon served different bytes")
	}
	if got := s2.Metrics().Snapshot().JobsTotal; got != 0 {
		t.Fatalf("restarted daemon ran %d jobs, want 0", got)
	}
}

// An async submission returns 202 immediately and the job runs to
// completion detached; polling converges on done.
func TestAsyncSubmitAndPoll(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := cellBody(t, 10_000, 4)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
	var st spec.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != statusQueued && st.Status != statusRunning {
		t.Fatalf("async status %q", st.Status)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var doc spec.ResultDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status == statusDone {
			break
		}
		if doc.Status == statusFailed || doc.Status == statusCanceled {
			t.Fatalf("job ended %q: %s", doc.Status, data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", doc.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The events stream replays status events and ends after the terminal
// event.
func TestEventStream(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := cellBody(t, 10_000, 5)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st spec.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var types []string
	sc := bufio.NewScanner(stream.Body)
	lastSeq := -1
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Seq != lastSeq+1 {
			t.Fatalf("event seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		types = append(types, e.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "status") || !strings.HasSuffix(joined, "done") {
		t.Fatalf("event sequence %v", types)
	}
}

// When every watching client disconnects from a waited (never detached)
// job, the job's context is cancelled and the job ends canceled.
func TestClientDisconnectCancelsJob(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Executors: 1})
	// Big enough that the client can disconnect mid-run.
	body := cellBody(t, 50_000_000, 6)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Find the job and wait until it is running, then disconnect.
	hash := specHash(t, body)
	var j *job
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		j = s.jobs[hash]
		s.mu.Unlock()
		if j != nil {
			if st, _, _ := j.snapshot(); st == statusRunning {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-errc

	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job not cancelled after client disconnect")
	}
	st, _, errMsg := j.snapshot()
	if st != statusCanceled {
		t.Fatalf("job status %q (%s), want canceled", st, errMsg)
	}
	if !strings.Contains(errMsg, errClientGone.Error()) {
		t.Fatalf("cancel cause %q, want client-gone", errMsg)
	}
}

func specHash(t *testing.T, body []byte) string {
	t.Helper()
	var req spec.Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// Drain refuses new submissions with 503 but completes in-flight jobs,
// with their results durably on disk before Drain returns.
func TestDrainFinishesInFlight(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 2, Executors: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := cellBody(t, 200_000, 7)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	// Intake is closed...
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(cellBody(t, 1_000, 8)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz %d, want 503", resp.StatusCode)
	}

	// ...and the in-flight job's result is durable on disk.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("post-drain cache dir has %d artifacts, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("torn artifact: %v", err)
	}
	if doc.Status != statusDone {
		t.Fatalf("artifact status %q", doc.Status)
	}
}

// A full queue answers 429 with Retry-After rather than accepting
// unbounded work.
func TestQueueFull(t *testing.T) {
	s, err := New(Config{Workers: 1, Executors: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: nothing consumes the queue, so the
	// second distinct submission must overflow deterministically.
	s.mu.Lock()
	s.started = true
	s.baseCtx = context.Background()
	s.mu.Unlock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed int64) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(cellBody(t, 1_000, seed)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := submit(10); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit %d", resp.StatusCode)
	}
	resp := submit(11)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// Malformed and invalid submissions are 400s with JSON error bodies.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []string{
		`{not json`,
		`{}`,                     // neither cell nor sweep
		`{"cell":{},"sweep":{}}`, // both
		`{"unknown_field":1}`,    // unknown key
		`{"cell":{"schemes":["nosuch"],"trace":{"workload":"pops","cpus":4,"refs":100,"seed":1},"machine":{"caches":4}}}`, // bad scheme
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, data)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("body %q: error envelope %q", body, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// The discovery and health endpoints answer sensibly.
func TestDiscoveryEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{Metrics: obs.NewMetrics()})

	resp, err := http.Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	var engines spec.EnginesDoc
	if err := json.NewDecoder(resp.Body).Decode(&engines); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range engines.Engines {
		if e == "dir1nb" {
			found = true
		}
	}
	if !found || len(engines.Filters) == 0 {
		t.Fatalf("engines doc %+v", engines)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// A sweep request expands to cells and the result doc carries one cell
// entry per (workload, cpus, seed) in grid order.
func TestSweepRequest(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4})
	req := spec.Request{Sweep: &spec.Sweep{
		Workloads: []string{"pops"},
		Schemes:   []string{"dir0b", "dir1nb"},
		CPUs:      []int{2, 4},
		Refs:      5_000,
		Seeds:     2,
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, data := postWait(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, data)
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 4 { // 1 workload × 2 cpus × 2 seeds
		t.Fatalf("%d cells, want 4", len(doc.Cells))
	}
	for i, c := range doc.Cells {
		srs, err := c.SchemeResults()
		if err != nil || len(srs) != 2 {
			t.Fatalf("cell %d: %d scheme results (%v)", i, len(srs), err)
		}
	}
}

// The in-memory LRU evicts beyond capacity and put rejects nothing.
func TestResultCacheLRU(t *testing.T) {
	c, err := newResultCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.put(fmt.Sprintf("%064d", i), []byte{byte(i)}, ""); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if _, ok := c.get(fmt.Sprintf("%064d", 0)); ok {
		t.Fatal("oldest entry not evicted")
	}
	if data, ok := c.get(fmt.Sprintf("%064d", 2)); !ok || data[0] != 2 {
		t.Fatal("newest entry missing")
	}
	// Hostile keys never touch the filesystem.
	dir := t.TempDir()
	d, err := newResultCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.put("../../escape", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(files) != 0 {
		t.Fatalf("non-hash key wrote files: %v", files)
	}
}
