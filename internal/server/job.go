package server

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"dirsim/internal/flight"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/spec"
)

// Job lifecycle states.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// errClientGone cancels a job whose last interested client disconnected
// before completion.
var errClientGone = errors.New("server: every watching client disconnected")

// Event is one NDJSON row on a job's /events stream.
type Event struct {
	// Seq orders events within the job; streams replay from 0.
	Seq int `json:"seq"`
	// Type is "status", "progress", "chunk", "done" or "error".
	Type string `json:"type"`
	// Status carries the new state on "status" events.
	Status string `json:"status,omitempty"`
	// Refs and the job counters accompany "progress" events.
	Refs      uint64 `json:"refs,omitempty"`
	JobsDone  uint64 `json:"jobs_done,omitempty"`
	JobsTotal uint64 `json:"jobs_total,omitempty"`
	Retries   uint64 `json:"retries,omitempty"`
	// CellsDone/CellsTotal accompany "chunk" events: how far a chunked
	// sweep has progressed through its grid.
	CellsDone  int `json:"cells_done,omitempty"`
	CellsTotal int `json:"cells_total,omitempty"`
	// Cells carries the chunk's finished cell documents (a JSON array of
	// {spec_version, spec, results} objects) on "chunk" events — partial
	// results stream to clients before the sweep completes.
	Cells json.RawMessage `json:"cells,omitempty"`
	// Error carries the failure message on "error" events.
	Error string `json:"error,omitempty"`
}

// job is one submitted simulation: a spec, its execution state, and the
// event log streaming clients replay. The id is the spec's content hash,
// which is what makes concurrent identical submissions collapse onto one
// job (singleflight) for free.
type job struct {
	id    string
	req   spec.Request
	cells []spec.Cell
	// cellHashes are the cells' content hashes — the keys of the per-cell
	// result cache that chunk checkpointing and crash recovery rest on.
	cellHashes []string

	// Admission state, owned by the server under s.mu.
	tenant *tenant
	class  int
	// cost is the job's DRR price (see jobCost).
	cost int
	// admittedNanos stamps admission for the admit-wait histograms (zero
	// when the daemon runs clock-free).
	admittedNanos int64

	// Execution cursor, touched only by the single executor currently
	// running the job (jobs move between executors across yields, never
	// run on two at once). cellDocs[i] holds cell i's finished document
	// bytes; nextCell is the first cell not yet finished.
	cellDocs [][]byte
	nextCell int

	// ctx is derived from the server's base context; cancel carries the
	// cause (client disconnect, shutdown).
	ctx    context.Context
	cancel context.CancelCauseFunc

	// metrics are this job's own counters, folded into the server-wide
	// set when the job finishes.
	metrics *obs.Metrics

	// Fabric tracing state. traceID is the job's otrace trace id (the
	// submitter's via X-Dirsim-Trace, else the job hash); span covers
	// admission to terminal, queueSpan admission to first dispatch, and
	// spanCtx parents every child span the executors start. All are set
	// once at admission and touched only by the single executor running
	// the job (finishJob finishes them exactly once behind j.finish).
	traceID   string
	span      otrace.Active
	queueSpan otrace.Active
	spanCtx   otrace.Context

	mu       sync.Mutex
	status   string
	everRan  bool   // has left queued at least once (admit-wait observed)
	result   []byte // completed document; non-nil iff status == done
	errMsg   string
	events   []Event
	wake     chan struct{} // closed and replaced on every event append
	watchers int
	detached bool          // true: survives losing all watchers
	done     chan struct{} // closed on any terminal status

	// recorders holds one flight recorder per cell when the daemon runs
	// with tracing on. Rings are written by the runner's workers, so the
	// trace endpoint serves them only after the job is terminal.
	recorders []*flight.Recorder
}

func newJob(ctx context.Context, id string, req spec.Request, cells []spec.Cell, hashes []string) *job {
	jctx, cancel := context.WithCancelCause(ctx)
	j := &job{
		id:         id,
		req:        req,
		cells:      cells,
		cellHashes: hashes,
		cellDocs:   make([][]byte, len(cells)),
		ctx:        jctx,
		cancel:     cancel,
		metrics:    obs.NewMetrics(),
		status:     statusQueued,
		wake:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	j.appendEvent(Event{Type: "status", Status: statusQueued})
	return j
}

// tenantName names the tenant charged for the job's cache writes
// (empty for synthetic jobs with no admission state).
func (j *job) tenantName() string {
	if j.tenant == nil {
		return ""
	}
	return j.tenant.Name
}

// completedJob wraps cached result bytes in a terminal job so the cache
// path and the live path serve responses identically.
func completedJob(id string, result []byte) *job {
	j := &job{
		id:     id,
		status: statusDone,
		result: result,
		wake:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	j.appendEvent(Event{Type: "status", Status: statusDone})
	j.appendEvent(Event{Type: "done"})
	close(j.done)
	return j
}

// appendEvent stamps a sequence number, records the event and wakes every
// stream blocked on the previous wake channel.
func (j *job) appendEvent(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// eventsFrom returns the events at sequence ≥ from, plus the channel that
// will be closed when more arrive and whether the job is terminal.
func (j *job) eventsFrom(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var tail []Event
	if from < len(j.events) {
		tail = append(tail, j.events[from:]...)
	}
	return tail, j.wake, j.terminalLocked()
}

func (j *job) terminalLocked() bool {
	return j.status == statusDone || j.status == statusFailed || j.status == statusCanceled
}

// setRunning transitions queued → running, reporting whether this is the
// job's first time off the queue (the admit-wait sample). A job already
// running (or re-dispatched after a yield) appends the status event only
// on a real transition.
func (j *job) setRunning() (first bool) {
	j.mu.Lock()
	if j.status == statusRunning {
		j.mu.Unlock()
		return false
	}
	first = !j.everRan
	j.everRan = true
	j.status = statusRunning
	j.mu.Unlock()
	j.appendEvent(Event{Type: "status", Status: statusRunning})
	return first
}

// setQueued transitions a yielded job back to queued — it gave its
// executor up to interactive work and awaits re-dispatch.
func (j *job) setQueued() {
	j.mu.Lock()
	j.status = statusQueued
	j.mu.Unlock()
	j.appendEvent(Event{Type: "status", Status: statusQueued})
}

// finish records a terminal state exactly once and releases waiters; the
// return reports whether this call performed the transition (false: the
// job was already terminal and nothing changed).
func (j *job) finish(status string, result []byte, errMsg string) bool {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.mu.Unlock()
	j.appendEvent(Event{Type: "status", Status: status})
	if status == statusDone {
		j.appendEvent(Event{Type: "done"})
	} else {
		j.appendEvent(Event{Type: "error", Error: errMsg})
	}
	close(j.done)
	return true
}

// snapshot returns the current state for the status endpoint.
func (j *job) snapshot() (status string, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.errMsg
}

// hold registers an interested client (a waiting POST or an event
// stream). release undoes it; a job whose watcher count reaches zero
// without ever having been detached is canceled — nobody is left to
// consume the result.
func (j *job) hold() {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

func (j *job) release() {
	j.mu.Lock()
	j.watchers--
	lastOut := j.watchers == 0 && !j.detached && !j.terminalLocked()
	j.mu.Unlock()
	if lastOut && j.cancel != nil {
		j.cancel(errClientGone)
	}
}

// detach marks the job as wanted regardless of connected clients (an
// asynchronous submission): it will run to completion even with no
// watchers.
func (j *job) detach() {
	j.mu.Lock()
	j.detached = true
	j.mu.Unlock()
}

// setRecorder stores cell i's flight recorder. A retried attempt calls
// again with a fresh recorder, so the stored trace is always the
// attempt that produced the job's results.
func (j *job) setRecorder(i, cells int, rec *flight.Recorder) {
	j.mu.Lock()
	if j.recorders == nil {
		j.recorders = make([]*flight.Recorder, cells)
	}
	j.recorders[i] = rec
	j.mu.Unlock()
}

// traceRecorders returns the job's recorders once it is terminal, in
// cell order (nils elided). ok is false while the job still runs — the
// rings are single-writer and must not be read mid-run.
func (j *job) traceRecorders() (recs []*flight.Recorder, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.terminalLocked() {
		return nil, false
	}
	for _, r := range j.recorders {
		if r != nil {
			recs = append(recs, r)
		}
	}
	return recs, true
}

// progressEvent folds the job's metric snapshot into a progress row.
func progressEvent(s obs.Snapshot) Event {
	return Event{
		Type:      "progress",
		Refs:      s.Refs,
		JobsDone:  s.JobsDone,
		JobsTotal: s.JobsTotal,
		Retries:   s.Retries,
	}
}

// chunkEvent announces a finished chunk, carrying its cell documents as
// a raw JSON array so streaming clients receive partial sweep results as
// they land rather than one document at the end.
func chunkEvent(done, total int, cellDocs [][]byte) Event {
	var buf []byte
	buf = append(buf, '[')
	for i, d := range cellDocs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, d...)
	}
	buf = append(buf, ']')
	return Event{Type: "chunk", CellsDone: done, CellsTotal: total, Cells: buf}
}

// marshalEvent renders one NDJSON row (without the trailing newline).
func marshalEvent(e Event) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		return []byte(`{"type":"error","error":"event marshal failure"}`)
	}
	return b
}

// cellHashes computes every cell's content hash — the per-cell cache
// keys a chunked job checkpoints under.
func cellHashes(cells []spec.Cell) ([]string, error) {
	hs := make([]string, len(cells))
	for i, c := range cells {
		h, err := c.Hash()
		if err != nil {
			return nil, err
		}
		hs[i] = h
	}
	return hs, nil
}
