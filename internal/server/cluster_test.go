package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dirsim/internal/cluster"
	"dirsim/internal/otrace"
)

// clusterPair boots two clustered daemons that know each other (shared
// key, static membership) and returns both servers and test listeners.
func clusterPair(t *testing.T, key string) (s1, s2 *Server, ts1, ts2 *httptest.Server) {
	t.Helper()
	// Unstarted servers pin the addresses before server.New needs them.
	u1 := httptest.NewUnstartedServer(nil)
	u2 := httptest.NewUnstartedServer(nil)
	addr1 := u1.Listener.Addr().String()
	addr2 := u2.Listener.Addr().String()
	mem := cluster.Membership{Key: key, Peers: []cluster.Peer{
		{Addr: "http://" + addr1},
		{Addr: "http://" + addr2},
	}}
	build := func(self string, ts *httptest.Server) *Server {
		s, err := New(Config{
			Workers: 2, Executors: 2,
			ClusterSource:   cluster.StaticSource(mem),
			ClusterSelfAddr: self,
			ClusterHTTP:     &http.Client{Timeout: 5 * time.Second},
			ClusterHealth:   cluster.NewHealth(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.Start(ctx)
		ts.Config.Handler = s.Handler()
		ts.Start()
		t.Cleanup(func() {
			ts.Close()
			dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer dcancel()
			if err := s.Drain(dctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			cancel()
		})
		return s
	}
	return build(addr1, u1), build(addr2, u2), u1, u2
}

// A cell simulated on one fleet member is served to a sibling over the
// peer cache: the second daemon completes the same job byte-identically
// without simulating a single reference.
func TestClusterPeerCacheFetch(t *testing.T) {
	s1, s2, ts1, ts2 := clusterPair(t, "fleet-secret")
	body := cellBody(t, 20_000, 7)

	code, doc1 := postWait(t, ts1, body)
	if code != http.StatusOK {
		t.Fatalf("first daemon: status %d body %s", code, doc1)
	}
	if s1.metrics.Snapshot().Refs == 0 {
		t.Fatal("first daemon simulated nothing — test premise broken")
	}

	code, doc2 := postWait(t, ts2, body)
	if code != http.StatusOK {
		t.Fatalf("second daemon: status %d body %s", code, doc2)
	}
	if !bytes.Equal(doc1, doc2) {
		t.Error("peer-served result differs from the origin's bytes")
	}
	snap := s2.metrics.Snapshot()
	if snap.Refs != 0 {
		t.Errorf("second daemon simulated %d refs; the peer cache should have served the cell", snap.Refs)
	}
	if hits := s2.metrics.CounterValue("cluster_peer_fetch_hits"); hits != 1 {
		t.Errorf("cluster_peer_fetch_hits = %d, want 1", hits)
	}
	if served := s1.metrics.CounterValue("cluster_cache_served"); served == 0 {
		t.Error("origin daemon served no cache fetches")
	}
}

// The peer cache endpoint authenticates: a clustered daemon requires
// the shared key, rejects the wrong one, and 400s malformed hashes.
func TestCacheFetchAuth(t *testing.T) {
	_, _, ts1, _ := clusterPair(t, "fleet-secret")
	get := func(hash, key string) int {
		req, err := http.NewRequest(http.MethodGet, ts1.URL+"/v1/cache/"+hash, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set(cluster.KeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	unknown := strings.Repeat("ab", 32)
	if code := get(unknown, ""); code != http.StatusForbidden {
		t.Errorf("missing key: %d, want 403", code)
	}
	if code := get(unknown, "wrong"); code != http.StatusForbidden {
		t.Errorf("wrong key: %d, want 403", code)
	}
	if code := get(unknown, "fleet-secret"); code != http.StatusNotFound {
		t.Errorf("right key, unknown hash: %d, want 404", code)
	}
	if code := get("not-a-hash", "fleet-secret"); code != http.StatusBadRequest {
		t.Errorf("malformed hash: %d, want 400", code)
	}
}

// A clustered daemon whose membership file has not appeared yet answers
// 503 + Retry-After on the cache endpoint instead of guessing.
func TestCacheFetchUnloadedMembership(t *testing.T) {
	s, err := New(Config{
		Workers: 1, Executors: 1,
		ClusterSource: cluster.FileSource(filepath.Join(t.TempDir(), "missing.json")),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	resp, err := http.Get(ts.URL + "/v1/cache/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 while membership is unloaded", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// On a tenanted (non-clustered) daemon the cache endpoint accepts
// tenant API keys — and nothing else.
func TestCacheFetchTenantAuth(t *testing.T) {
	_, ts := testServer(t, Config{Tenants: []Tenant{{Name: "alpha", Key: "alpha-key"}}})
	unknown := strings.Repeat("cd", 32)

	resp, err := http.Get(ts.URL + "/v1/cache/" + unknown)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("anonymous fetch: %d, want 403", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/cache/"+unknown, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer alpha-key")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tenant fetch of unknown hash: %d, want 404", resp.StatusCode)
	}
}

// Edge rate limiting: a tenant with requests_per_sec=1, burst=2 under a
// fake clock gets two submissions through, a 429 + Retry-After on the
// third, and a fresh token once the clock advances one second.
func TestSubmitRateLimited(t *testing.T) {
	var now atomic.Int64
	now.Store(1) // non-zero: zero nanos means "bucket untouched"
	s, ts := testServer(t, Config{
		Tenants:  []Tenant{{Name: "alpha", Key: "alpha-key", RatePerSec: 1, Burst: 2}},
		NowNanos: func() int64 { return now.Load() },
	})
	// Garbage bodies: an admitted request fails decode with 400, which
	// proves it got past the limiter without running a simulation.
	post := func() (int, string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer alpha-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	for i := 0; i < 2; i++ {
		if code, _ := post(); code != http.StatusBadRequest {
			t.Fatalf("burst submission %d: status %d, want 400 (admitted)", i, code)
		}
	}
	code, retryAfter := post()
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: status %d, want 429", code)
	}
	if retryAfter == "" {
		t.Error("429 without Retry-After")
	}
	if v := s.metrics.CounterValue("rate_limited_tenant_alpha"); v != 1 {
		t.Errorf("rate_limited_tenant_alpha = %d, want 1", v)
	}

	now.Add(int64(time.Second)) // one token refills
	if code, _ := post(); code != http.StatusBadRequest {
		t.Errorf("post-refill submission: status %d, want 400 (admitted)", code)
	}
	if code, _ := post(); code != http.StatusTooManyRequests {
		t.Errorf("second post-refill submission: status %d, want 429", code)
	}
}

// Without a clock (NowNanos nil) rate limits are inert — the clock-free
// determinism tests rely on.
func TestRateLimitDisabledWithoutClock(t *testing.T) {
	_, ts := testServer(t, Config{
		Tenants: []Tenant{{Name: "alpha", Key: "alpha-key", RatePerSec: 1, Burst: 1}},
	})
	for i := 0; i < 5; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer alpha-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("submission %d rate-limited on a clock-free daemon", i)
		}
	}
}

// Per-tenant disk quota: writes are charged to the writing tenant, the
// tenant's own least-recently-touched entries are evicted (file deleted,
// memory entry dropped), the just-written entry always survives, and
// the gauge hook tracks the byte level.
func TestCacheTenantQuotaEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	var gauges []int64
	c.onTenantBytes = func(tenant string, b uint64) {
		if tenant != "alpha" {
			t.Errorf("gauge for tenant %q", tenant)
		}
		gauges = append(gauges, int64(b))
	}
	c.setQuota("alpha", 250)

	data := bytes.Repeat([]byte("x"), 100)
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = strings.Repeat("0", 63) + string(rune('a'+i))
		if err := c.put(keys[i], data, "alpha"); err != nil {
			t.Fatal(err)
		}
	}
	// Third write pushed alpha to 300 > 250: the oldest entry (keys[0])
	// is evicted from disk and memory; the newest survives.
	if got := c.tenantBytes("alpha"); got != 200 {
		t.Errorf("tenantBytes = %d, want 200 after eviction", got)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0]+".json")); !os.IsNotExist(err) {
		t.Errorf("evicted entry's file still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[2]+".json")); err != nil {
		t.Errorf("just-written entry's file missing: %v", err)
	}
	if _, ok := c.get(keys[0]); ok {
		t.Error("evicted entry still served (disk file should be gone)")
	}
	if _, ok := c.get(keys[2]); !ok {
		t.Error("surviving entry not served")
	}
	if len(gauges) == 0 || gauges[len(gauges)-1] != 200 {
		t.Errorf("gauge trail %v should end at 200", gauges)
	}

	// First-writer-wins: a rewrite of keys[1] under another tenant stays
	// charged to alpha and never starts a beta account.
	if err := c.put(keys[1], data, "beta"); err != nil {
		t.Fatal(err)
	}
	if got := c.tenantBytes("beta"); got != 0 {
		t.Errorf("beta charged %d bytes for a rewrite of alpha's entry", got)
	}
}

// The server wires tenant quotas and the gauge: a configured
// MaxCacheBytes reaches the cache, and writes move the
// cache_bytes_tenant gauge.
func TestServerWiresQuotaAndGauge(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		Workers: 1, Executors: 1,
		CacheDir: dir,
		Tenants:  []Tenant{{Name: "alpha", Key: "alpha-key", MaxCacheBytes: 1 << 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)
	if err := s.cache.put(key, []byte("hello"), "alpha"); err != nil {
		t.Fatal(err)
	}
	if v := s.metrics.GaugeValue("cache_bytes_tenant_alpha"); v != 5 {
		t.Errorf("cache_bytes_tenant_alpha = %d, want 5", v)
	}
}

// Result documents fetched from a peer must verify against the content
// address: a daemon serving corrupted bytes is a miss, not bad data.
func TestPeerFetchRejectsCorruptDoc(t *testing.T) {
	// A fake "peer" that serves garbage for every cache fetch.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"spec_version":1,"spec":{},"results":[]}`))
	}))
	defer bad.Close()
	u := httptest.NewUnstartedServer(nil)
	self := u.Listener.Addr().String()
	u.Close()
	mem := cluster.Membership{Peers: []cluster.Peer{
		{Addr: bad.URL},
		{Addr: "http://" + self},
	}}
	s, err := New(Config{
		Workers: 1, Executors: 1,
		ClusterSource:   cluster.StaticSource(mem),
		ClusterSelfAddr: self,
		ClusterHTTP:     &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.peerFetchCell(context.Background(), otrace.Context{}, strings.Repeat("ab", 32)); ok {
		t.Fatal("unverifiable peer document accepted")
	}
	if v := s.metrics.CounterValue("cluster_peer_fetch_invalid"); v == 0 {
		t.Error("invalid fetch not counted")
	}
}

// Sanity: the new tenant config fields round-trip through the tenants
// file JSON the daemon loads.
func TestTenantConfigFieldsParse(t *testing.T) {
	var ts []Tenant
	blob := `[{"name":"a","key":"k","requests_per_sec":2.5,"burst":7,"max_cache_bytes":1024}]`
	if err := json.Unmarshal([]byte(blob), &ts); err != nil {
		t.Fatal(err)
	}
	if ts[0].RatePerSec != 2.5 || ts[0].Burst != 7 || ts[0].MaxCacheBytes != 1024 {
		t.Errorf("parsed %+v", ts[0])
	}
	if _, _, _, err := buildTenants([]Tenant{{Name: "a", Key: "k", RatePerSec: -1}}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, _, _, err := buildTenants([]Tenant{{Name: "a", Key: "k", MaxCacheBytes: -1}}); err == nil {
		t.Error("negative cache quota accepted")
	}
}
