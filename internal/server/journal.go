package server

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"

	"dirsim/internal/atomicio"
	"dirsim/internal/spec"
)

// The job journal is what makes accepted work durable: every admitted
// job appends an accept record (fsynced before the submit is
// acknowledged), every terminal transition appends a resolve record.
// After a crash the journal's live set — accepts without a matching
// resolve — is exactly the work the daemon owes its clients, and
// recovery re-enqueues it. The journal is compacted on open (resolved
// pairs dropped, torn tail discarded by atomicio.ReadJournal), so it
// stays proportional to in-flight work, not lifetime throughput.

const (
	opAccept  = "accept"
	opResolve = "resolve"
)

// journalRecord is one NDJSON line in the job journal.
type journalRecord struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// SpecVersion stamps accepts with the spec generation that admitted
	// them; replay re-validates, so a journal written by another
	// generation re-simulates rather than trusting stale semantics.
	SpecVersion int    `json:"spec_version,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	Class       string `json:"class,omitempty"`
	// Request is the canonical request JSON (accept records only).
	Request json.RawMessage `json:"request,omitempty"`
	// Trace is the job's otrace trace id (accept records only) — a
	// daemon killed mid-run replays the job under the same trace id, so
	// a fleet trace spans the crash.
	Trace string `json:"trace,omitempty"`
	// Status is the terminal status (resolve records only).
	Status string `json:"status,omitempty"`
}

// jobStore wraps the append-only journal with record framing. A nil
// *jobStore is valid and persists nothing (stateless daemon).
type jobStore struct {
	mu      sync.Mutex
	journal *atomicio.Journal
}

// openJobStore replays and compacts the journal under dir, returning
// the store and the still-pending accept records in admission order.
func openJobStore(dir string) (*jobStore, []journalRecord, error) {
	path := filepath.Join(dir, "journal.ndjson")
	raws, err := atomicio.ReadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	type slot struct {
		rec  journalRecord
		live bool
	}
	var order []string
	byID := map[string]*slot{}
	for _, raw := range raws {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			// A line we cannot interpret carries no obligation we can
			// honour; skip it rather than refuse to start.
			continue
		}
		switch rec.Op {
		case opAccept:
			if s, ok := byID[rec.ID]; ok {
				s.rec, s.live = rec, true
				continue
			}
			byID[rec.ID] = &slot{rec: rec, live: true}
			order = append(order, rec.ID)
		case opResolve:
			if s, ok := byID[rec.ID]; ok {
				s.live = false
			}
		}
	}
	var pending []journalRecord
	var keep [][]byte
	for _, id := range order {
		s := byID[id]
		if !s.live {
			continue
		}
		raw, err := json.Marshal(s.rec)
		if err != nil {
			return nil, nil, fmt.Errorf("server: re-encoding journal record %s: %w", id, err)
		}
		pending = append(pending, s.rec)
		keep = append(keep, raw)
	}
	if err := atomicio.RewriteJournal(path, keep); err != nil {
		return nil, nil, err
	}
	j, err := atomicio.OpenJournal(path)
	if err != nil {
		return nil, nil, err
	}
	return &jobStore{journal: j}, pending, nil
}

func (st *jobStore) append(rec journalRecord) error {
	if st == nil {
		return nil
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encoding journal record: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journal.Append(raw)
}

// accept journals an admitted job. It must succeed before the submit is
// acknowledged: an accept on disk is a promise the daemon will finish
// the job even across a crash.
func (st *jobStore) accept(id, tenantName string, class int, request []byte, trace string) error {
	return st.append(journalRecord{
		Op:          opAccept,
		ID:          id,
		SpecVersion: spec.CurrentVersion,
		Tenant:      tenantName,
		Class:       className(class),
		Request:     request,
		Trace:       trace,
	})
}

// resolve journals a terminal transition, releasing the accept.
func (st *jobStore) resolve(id, status string) error {
	return st.append(journalRecord{Op: opResolve, ID: id, Status: status})
}

func (st *jobStore) close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journal.Close()
}
