package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"dirsim/internal/otrace"
	"dirsim/internal/spec"
)

func postWaitKey(t *testing.T, url string, body []byte, key string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// With tenants configured, credentials are mandatory: no key and an
// unknown key answer 403 (rejection), never 429 (saturation) — the two
// must stay distinguishable so clients know whether to retry.
func TestTenantAuth(t *testing.T) {
	_, ts := testServer(t, Config{
		Tenants: []Tenant{{Name: "alpha", Key: "alpha-key"}},
	})
	body := cellBody(t, 5_000, 3)

	if code, data := postWaitKey(t, ts.URL, body, ""); code != http.StatusForbidden {
		t.Fatalf("missing key: status %d body %s", code, data)
	}
	if code, data := postWaitKey(t, ts.URL, body, "wrong"); code != http.StatusForbidden {
		t.Fatalf("unknown key: status %d body %s", code, data)
	}
	code, data := postWaitKey(t, ts.URL, body, "alpha-key")
	if code != http.StatusOK {
		t.Fatalf("valid key: status %d body %s", code, data)
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Status != statusDone {
		t.Fatalf("result doc: %s (%v)", data, err)
	}

	// X-API-Key is an accepted fallback spelling.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
	req.Header.Set("X-API-Key", "alpha-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key: status %d", resp.StatusCode)
	}
}

// A tenant at its MaxActive quota is throttled with 429 + Retry-After
// while other tenants still get in — quotas are per tenant, not global.
func TestTenantQuota(t *testing.T) {
	s, err := New(Config{
		Tenants: []Tenant{
			{Name: "small", Key: "small-key", MaxActive: 1},
			{Name: "big", Key: "big-key"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Admit without executors: accepted jobs stay queued, so quota
	// occupancy is deterministic.
	s.mu.Lock()
	s.started = true
	s.baseCtx = context.Background()
	s.mu.Unlock()

	var reqA, reqB, reqC spec.Request
	for i, r := range []*spec.Request{&reqA, &reqB, &reqC} {
		if err := json.Unmarshal(cellBody(t, 1_000, int64(10+i)), r); err != nil {
			t.Fatal(err)
		}
	}
	small := s.byKey["small-key"]
	big := s.byKey["big-key"]

	if _, code, err := s.submit(reqA, small, classBatch, otrace.Context{}); err != nil || code != http.StatusAccepted {
		t.Fatalf("first submit: %d, %v", code, err)
	}
	_, code, err := s.submit(reqB, small, classBatch, otrace.Context{})
	if code != http.StatusTooManyRequests || err == nil {
		t.Fatalf("over-quota submit: %d, %v", code, err)
	}
	if _, code, err := s.submit(reqB, big, classBatch, otrace.Context{}); err != nil || code != http.StatusAccepted {
		t.Fatalf("other tenant blocked by small's quota: %d, %v", code, err)
	}

	// Finishing the job releases the quota slot.
	s.mu.Lock()
	j := s.pickLocked() // small's job: interactive empty, DRR finds it
	s.mu.Unlock()
	if j == nil || j.tenant != small {
		t.Fatalf("picked %+v, want small's job", j)
	}
	s.finishJob(j, statusCanceled, nil, "test teardown")
	if _, code, err := s.submit(reqC, small, classBatch, otrace.Context{}); err != nil || code != http.StatusAccepted {
		t.Fatalf("submit after release: %d, %v", code, err)
	}
}

// enqueueTestJob admits a synthetic job directly into the scheduler.
func enqueueTestJob(t *testing.T, s *Server, ten *tenant, class, cells int) *job {
	t.Helper()
	j := &job{
		id:     "test",
		tenant: ten,
		class:  class,
		cost:   jobCost(cells, class),
		wake:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	ten.active++
	s.enqueueLocked(j)
	s.mu.Unlock()
	return j
}

// The scheduler is weighted fair: under a saturated backlog of
// equal-cost batch jobs, a weight-3 tenant drains three times the jobs
// of a weight-1 tenant over any full rotation, and an interactive job
// always dispatches before any batch job.
func TestFairShareDispatch(t *testing.T) {
	s, err := New(Config{Tenants: []Tenant{
		{Name: "light", Key: "lk", Weight: 1},
		{Name: "heavy", Key: "hk", Weight: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := s.byKey["lk"], s.byKey["hk"]
	const each = 40
	for i := 0; i < each; i++ {
		enqueueTestJob(t, s, light, classBatch, 8)
		enqueueTestJob(t, s, heavy, classBatch, 8)
	}
	interactive := enqueueTestJob(t, s, light, classInteractive, 1)

	s.mu.Lock()
	first := s.pickLocked()
	s.mu.Unlock()
	if first != interactive {
		t.Fatal("interactive job not dispatched before the batch backlog")
	}

	// Drain the first 32 batch dispatches and count per tenant: with
	// weights 1:3 and uniform cost, heavy must get ~3/4 of the slots.
	counts := map[*tenant]int{}
	for i := 0; i < 32; i++ {
		s.mu.Lock()
		j := s.pickLocked()
		s.mu.Unlock()
		if j == nil {
			t.Fatalf("scheduler dried up at dispatch %d with backlog remaining", i)
		}
		counts[j.tenant]++
	}
	if counts[heavy] < 3*counts[light]-2 || counts[heavy] > 3*counts[light]+2 {
		t.Errorf("dispatch split light=%d heavy=%d, want ≈1:3", counts[light], counts[heavy])
	}

	// The full backlog still drains to empty.
	total := counts[light] + counts[heavy]
	for {
		s.mu.Lock()
		j := s.pickLocked()
		s.mu.Unlock()
		if j == nil {
			break
		}
		total++
	}
	if total != 2*each {
		t.Errorf("drained %d batch jobs, want %d", total, 2*each)
	}
}

// Tenant configuration is validated: duplicate names, shared keys, and
// keyless tenants are refused at construction.
func TestTenantConfigValidation(t *testing.T) {
	bad := [][]Tenant{
		{{Name: "", Key: "k"}},
		{{Name: "a", Key: ""}},
		{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}},
		{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
		{{Name: "a", Key: "k", Weight: -1}},
	}
	for i, tenants := range bad {
		if _, err := New(Config{Tenants: tenants}); err == nil {
			t.Errorf("case %d: bad tenant config accepted", i)
		}
	}
}
