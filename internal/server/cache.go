package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"dirsim/internal/atomicio"
	"dirsim/internal/spec"
)

// resultCache is the content-addressed result store: completed job
// documents keyed by the spec's SHA-256 hash. Lookups go memory-first
// (a bounded LRU of the marshalled bytes), then the optional on-disk
// store, which holds one <hash>.json file per result and survives daemon
// restarts. Disk writes go through internal/atomicio, so a crash mid-
// write can never leave a torn result a later daemon would serve.
//
// Disk usage is additionally accounted per tenant: every write this
// process performs is charged to the writing tenant, and tenants with a
// configured quota have their own least-recently-written entries
// deleted from disk (and dropped from memory) when a write pushes them
// over. Attribution is process-lifetime — files inherited from a
// previous daemon are unowned until rewritten — and first-writer-wins:
// a second tenant re-requesting a cached spec never re-charges it.
type resultCache struct {
	mu      sync.Mutex
	entries int
	order   *list.List               // front = most recently used
	byKey   map[string]*list.Element // value: *cacheEntry
	dir     string                   // "" = memory only

	// Per-tenant disk accounting. quotas is static configuration;
	// usage/owner grow as this process writes.
	quotas map[string]int64        // tenant → max disk bytes (absent/0 = unlimited)
	usage  map[string]*tenantUsage // tenant → tracked disk entries
	owner  map[string]string       // memKey → charged tenant
	// onTenantBytes, when set, observes every tenant's tracked byte
	// level after it changes (the dirsim_cache_bytes_tenant gauge).
	// Called with c.mu held; the hook must not reenter the cache.
	onTenantBytes func(tenant string, bytes uint64)
}

type cacheEntry struct {
	key  string
	data []byte
}

// tenantUsage tracks one tenant's disk-resident entries in
// least-recently-written-or-read order.
type tenantUsage struct {
	bytes int64
	order *list.List               // front = most recently touched; value: *diskEntry
	byKey map[string]*list.Element // memKey → element
}

// diskEntry is one charged on-disk document.
type diskEntry struct {
	memKey string
	path   string
	size   int64
}

// hashPattern guards the disk path: keys are hex digests and nothing
// else, so a corrupted or hostile id can never escape the cache dir.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// newResultCache builds a cache holding up to entries results in memory
// (minimum 1), persisting to dir when non-empty.
func newResultCache(entries int, dir string) (*resultCache, error) {
	if entries < 1 {
		entries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	return &resultCache{
		entries: entries,
		order:   list.New(),
		byKey:   map[string]*list.Element{},
		dir:     dir,
		quotas:  map[string]int64{},
		usage:   map[string]*tenantUsage{},
		owner:   map[string]string{},
	}, nil
}

// setQuota caps one tenant's tracked disk bytes (0 removes the cap).
func (c *resultCache) setQuota(tenant string, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxBytes > 0 {
		c.quotas[tenant] = maxBytes
	} else {
		delete(c.quotas, tenant)
	}
}

// get returns the cached result bytes for key, consulting memory then
// disk; a disk hit is promoted into the memory tier.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.touchLocked(key)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" || !hashPattern.MatchString(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil || spec.CheckDocVersion(data) != nil {
		// A document from another spec generation (or a torn/foreign
		// file) is never served: the job re-simulates and overwrites it.
		return nil, false
	}
	c.putMemory(key, data)
	return data, true
}

// put stores a completed result durably (disk first, when configured,
// via an atomic rename) and then in the memory tier, charging the disk
// bytes to tenant. It returns only after the on-disk artifact is
// durable — the guarantee graceful shutdown relies on.
func (c *resultCache) put(key string, data []byte, tenant string) error {
	onDisk := false
	path := ""
	if c.dir != "" && hashPattern.MatchString(key) {
		path = filepath.Join(c.dir, key+".json")
		if err := atomicio.WriteFile(path, data); err != nil {
			return err
		}
		onDisk = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putMemoryLocked(key, data)
	if onDisk {
		c.chargeLocked(tenant, key, path, int64(len(data)))
	}
	return nil
}

// putMemory inserts into the LRU, evicting from the back past capacity.
func (c *resultCache) putMemory(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putMemoryLocked(key, data)
}

func (c *resultCache) putMemoryLocked(key string, data []byte) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.entries {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// The per-cell tier stores one finished cell document per cell hash,
// under dir/cells/. It is the checkpoint a chunked sweep leaves behind:
// after a crash, recovery re-runs only the cells without a durable
// document, and the final result document splices the stored bytes
// verbatim — so an interrupted-and-resumed sweep is byte-identical to an
// uninterrupted one by construction. Memory-tier keys carry a "cell/"
// prefix ('/' cannot appear in a hex digest, so the namespaces cannot
// collide).

// getCell returns cell key's finished document, memory then disk, with
// the same version gating as full results.
func (c *resultCache) getCell(key string) ([]byte, bool) {
	memKey := "cell/" + key
	c.mu.Lock()
	if el, ok := c.byKey[memKey]; ok {
		c.order.MoveToFront(el)
		c.touchLocked(memKey)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" || !hashPattern.MatchString(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, "cells", key+".json"))
	if err != nil || spec.CheckDocVersion(data) != nil {
		return nil, false
	}
	c.putMemory(memKey, data)
	return data, true
}

// putCell durably stores one finished cell document (the chunk
// checkpoint write), then caches it in memory, charging the disk bytes
// to tenant. The cells directory is created lazily — a memory-only
// cache never touches the filesystem.
func (c *resultCache) putCell(key string, data []byte, tenant string) error {
	onDisk := false
	path := ""
	if c.dir != "" && hashPattern.MatchString(key) {
		cellDir := filepath.Join(c.dir, "cells")
		if err := os.MkdirAll(cellDir, 0o755); err != nil {
			return fmt.Errorf("server: cell cache dir: %w", err)
		}
		path = filepath.Join(cellDir, key+".json")
		if err := atomicio.WriteFile(path, data); err != nil {
			return err
		}
		onDisk = true
	}
	memKey := "cell/" + key
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putMemoryLocked(memKey, data)
	if onDisk {
		c.chargeLocked(tenant, memKey, path, int64(len(data)))
	}
	return nil
}

// touchLocked refreshes a charged entry's recency on read, so quota
// eviction removes what the tenant actually stopped using.
func (c *resultCache) touchLocked(memKey string) {
	t, ok := c.owner[memKey]
	if !ok {
		return
	}
	if u := c.usage[t]; u != nil {
		if el, ok := u.byKey[memKey]; ok {
			u.order.MoveToFront(el)
		}
	}
}

// chargeLocked attributes one durable write to tenant and enforces the
// tenant's quota by deleting its least-recently-touched disk entries
// (never the entry just written). A rewrite of an already-charged key
// updates the original owner's byte count in place — first writer wins,
// so a popular spec is charged once, not once per requesting tenant.
func (c *resultCache) chargeLocked(tenant, memKey, path string, size int64) {
	if tenant == "" || path == "" {
		return
	}
	if prev, ok := c.owner[memKey]; ok {
		u := c.usage[prev]
		if el, ok := u.byKey[memKey]; ok {
			de := el.Value.(*diskEntry)
			u.bytes += size - de.size
			de.size = size
			u.order.MoveToFront(el)
			c.reportLocked(prev, u)
		}
		return
	}
	u := c.usage[tenant]
	if u == nil {
		u = &tenantUsage{order: list.New(), byKey: map[string]*list.Element{}}
		c.usage[tenant] = u
	}
	c.owner[memKey] = tenant
	u.byKey[memKey] = u.order.PushFront(&diskEntry{memKey: memKey, path: path, size: size})
	u.bytes += size
	quota := c.quotas[tenant]
	for quota > 0 && u.bytes > quota && u.order.Len() > 1 {
		last := u.order.Back()
		de := last.Value.(*diskEntry)
		u.order.Remove(last)
		delete(u.byKey, de.memKey)
		delete(c.owner, de.memKey)
		u.bytes -= de.size
		// Best-effort: a failed remove leaves an unowned file behind,
		// which the accounting no longer counts — over-quota on disk,
		// never under-counted.
		_ = os.Remove(de.path)
		if el, ok := c.byKey[de.memKey]; ok {
			c.order.Remove(el)
			delete(c.byKey, de.memKey)
		}
	}
	c.reportLocked(tenant, u)
}

// reportLocked publishes one tenant's byte level to the gauge hook.
func (c *resultCache) reportLocked(tenant string, u *tenantUsage) {
	if c.onTenantBytes == nil {
		return
	}
	b := u.bytes
	if b < 0 {
		b = 0
	}
	c.onTenantBytes(tenant, uint64(b))
}

// tenantBytes reports one tenant's tracked disk bytes (for tests).
func (c *resultCache) tenantBytes(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u := c.usage[tenant]; u != nil {
		return u.bytes
	}
	return 0
}

// len reports the number of in-memory entries (for tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
