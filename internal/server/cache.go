package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"dirsim/internal/atomicio"
	"dirsim/internal/spec"
)

// resultCache is the content-addressed result store: completed job
// documents keyed by the spec's SHA-256 hash. Lookups go memory-first
// (a bounded LRU of the marshalled bytes), then the optional on-disk
// store, which holds one <hash>.json file per result and survives daemon
// restarts. Disk writes go through internal/atomicio, so a crash mid-
// write can never leave a torn result a later daemon would serve.
type resultCache struct {
	mu      sync.Mutex
	entries int
	order   *list.List               // front = most recently used
	byKey   map[string]*list.Element // value: *cacheEntry
	dir     string                   // "" = memory only
}

type cacheEntry struct {
	key  string
	data []byte
}

// hashPattern guards the disk path: keys are hex digests and nothing
// else, so a corrupted or hostile id can never escape the cache dir.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// newResultCache builds a cache holding up to entries results in memory
// (minimum 1), persisting to dir when non-empty.
func newResultCache(entries int, dir string) (*resultCache, error) {
	if entries < 1 {
		entries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	return &resultCache{
		entries: entries,
		order:   list.New(),
		byKey:   map[string]*list.Element{},
		dir:     dir,
	}, nil
}

// get returns the cached result bytes for key, consulting memory then
// disk; a disk hit is promoted into the memory tier.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" || !hashPattern.MatchString(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil || spec.CheckDocVersion(data) != nil {
		// A document from another spec generation (or a torn/foreign
		// file) is never served: the job re-simulates and overwrites it.
		return nil, false
	}
	c.putMemory(key, data)
	return data, true
}

// put stores a completed result durably (disk first, when configured,
// via an atomic rename) and then in the memory tier. It returns only
// after the on-disk artifact is durable — the guarantee graceful
// shutdown relies on.
func (c *resultCache) put(key string, data []byte) error {
	if c.dir != "" && hashPattern.MatchString(key) {
		if err := atomicio.WriteFile(filepath.Join(c.dir, key+".json"), data); err != nil {
			return err
		}
	}
	c.putMemory(key, data)
	return nil
}

// putMemory inserts into the LRU, evicting from the back past capacity.
func (c *resultCache) putMemory(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.entries {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// The per-cell tier stores one finished cell document per cell hash,
// under dir/cells/. It is the checkpoint a chunked sweep leaves behind:
// after a crash, recovery re-runs only the cells without a durable
// document, and the final result document splices the stored bytes
// verbatim — so an interrupted-and-resumed sweep is byte-identical to an
// uninterrupted one by construction. Memory-tier keys carry a "cell/"
// prefix ('/' cannot appear in a hex digest, so the namespaces cannot
// collide).

// getCell returns cell key's finished document, memory then disk, with
// the same version gating as full results.
func (c *resultCache) getCell(key string) ([]byte, bool) {
	memKey := "cell/" + key
	c.mu.Lock()
	if el, ok := c.byKey[memKey]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" || !hashPattern.MatchString(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, "cells", key+".json"))
	if err != nil || spec.CheckDocVersion(data) != nil {
		return nil, false
	}
	c.putMemory(memKey, data)
	return data, true
}

// putCell durably stores one finished cell document (the chunk
// checkpoint write), then caches it in memory. The cells directory is
// created lazily — a memory-only cache never touches the filesystem.
func (c *resultCache) putCell(key string, data []byte) error {
	if c.dir != "" && hashPattern.MatchString(key) {
		cellDir := filepath.Join(c.dir, "cells")
		if err := os.MkdirAll(cellDir, 0o755); err != nil {
			return fmt.Errorf("server: cell cache dir: %w", err)
		}
		if err := atomicio.WriteFile(filepath.Join(cellDir, key+".json"), data); err != nil {
			return err
		}
	}
	c.putMemory("cell/"+key, data)
	return nil
}

// len reports the number of in-memory entries (for tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
