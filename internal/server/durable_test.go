package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dirsim/internal/otrace"
	"dirsim/internal/spec"
)

func sweepRequest(t *testing.T) spec.Request {
	t.Helper()
	return spec.Request{Sweep: &spec.Sweep{
		Workloads: []string{"pops"},
		Schemes:   []string{"dir0b"},
		CPUs:      []int{2, 4},
		Refs:      4_000,
		Seeds:     2,
	}}
}

// adoptWithoutExecutors journals an accept for req on a server that will
// never dispatch it — the moral equivalent of a daemon killed right
// after acknowledging a submit.
func adoptWithoutExecutors(t *testing.T, s *Server, req spec.Request) string {
	t.Helper()
	s.mu.Lock()
	s.started = true
	s.recovering = false
	s.baseCtx = context.Background()
	s.mu.Unlock()
	j, code, err := s.submit(req, s.ring[0], classBatch, otrace.Context{})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("submit: %d, %v", code, err)
	}
	if err := s.store.close(); err != nil {
		t.Fatal(err)
	}
	return j.id
}

// waitTerminal blocks until the job with this id finishes.
func waitTerminal(t *testing.T, s *Server, id string) *job {
	t.Helper()
	j := s.lookup(id)
	if j == nil {
		t.Fatalf("job %s unknown after replay", id)
	}
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return j
}

// An accepted-but-unfinished job survives a crash: the restarted daemon
// replays the journal, runs the job to completion unprompted, and a
// third start finds a clean journal (the obligation was resolved).
func TestJournalReplayFinishesAcceptedWork(t *testing.T) {
	dir := t.TempDir()
	req := sweepRequest(t)

	s1, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id := adoptWithoutExecutors(t, s1, req)

	// Restart: the journal's live set is owed. Before Start, readiness
	// reports the replay in progress.
	s2, err := New(Config{StateDir: dir, Workers: 2, Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !bytes.Contains(rec.Body.Bytes(), []byte("recovering")) {
		t.Fatalf("readyz before Start: %d %s", rec.Code, rec.Body.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	j := waitTerminal(t, s2, id)
	if st, _, errMsg := j.snapshot(); st != statusDone {
		t.Fatalf("replayed job ended %q: %s", st, errMsg)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s2.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	s3, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.pending) != 0 {
		t.Fatalf("journal still owes %d jobs after a clean finish", len(s3.pending))
	}
	if _, ok := s3.cache.get(id); !ok {
		t.Fatal("finished result not durable across restarts")
	}
}

// A recovered sweep with some cells already checkpointed re-simulates
// only the missing cells, and its final document is byte-identical to an
// uninterrupted run's — the acceptance bar for crash-survivable sweeps.
func TestResumedSweepByteIdenticalNoCellTwice(t *testing.T) {
	req := sweepRequest(t)
	cells, err := req.Cells()
	if err != nil {
		t.Fatal(err)
	}
	hashes, err := cellHashes(cells)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted run.
	dirA := t.TempDir()
	sa, tsa := testServer(t, Config{StateDir: dirA, Workers: 2})
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, want := postWait(t, tsa, body)
	if code != http.StatusOK {
		t.Fatalf("reference run: %d %s", code, want)
	}
	if got := sa.Metrics().Snapshot().JobsTotal; got != uint64(len(cells)) {
		t.Fatalf("reference run simulated %d cells, want %d", got, len(cells))
	}

	// "Crashed" daemon: the accept is journaled and half the cells are
	// checkpointed (copied from the reference's per-cell store — the
	// bytes a real first run would have written before dying).
	dirB := t.TempDir()
	sb1, err := New(Config{StateDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	const predone = 2
	for i := 0; i < predone; i++ {
		data, err := os.ReadFile(filepath.Join(dirA, "results", "cells", hashes[i]+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := sb1.cache.putCell(hashes[i], data, ""); err != nil {
			t.Fatal(err)
		}
	}
	id := adoptWithoutExecutors(t, sb1, req)

	// Restart and let recovery finish the job.
	sb2, err := New(Config{StateDir: dirB, Workers: 2, Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sb2.Start(ctx)
	j := waitTerminal(t, sb2, id)
	st, got, errMsg := j.snapshot()
	if st != statusDone {
		t.Fatalf("recovered job ended %q: %s", st, errMsg)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered document differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got := sb2.Metrics().Snapshot().JobsTotal; got != uint64(len(cells)-predone) {
		t.Fatalf("recovery simulated %d cells, want %d (no cell twice)", got, len(cells)-predone)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := sb2.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}

// /readyz tracks the daemon's admission lifecycle; /healthz stays the
// liveness signal.
func TestReadyzLifecycle(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var body struct {
			Status string `json:"status"`
		}
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body.Status
	}
	if code, st := get(); code != http.StatusServiceUnavailable || st != "starting" {
		t.Fatalf("before Start: %d %q", code, st)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	if code, st := get(); code != http.StatusOK || st != "ok" {
		t.Fatalf("after Start: %d %q", code, st)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if code, st := get(); code != http.StatusServiceUnavailable || st != "draining" {
		t.Fatalf("after Drain: %d %q", code, st)
	}
}

// Chunked sweeps stream partial results: the event log carries one
// "chunk" row per chunk with the finished cell documents, before the
// terminal done event.
func TestChunkEventsStreamPartialResults(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, ChunkCells: 2})
	body, err := json.Marshal(sweepRequest(t)) // 4 cells → 2 chunks
	if err != nil {
		t.Fatal(err)
	}
	code, data := postWait(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, data)
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chunks []Event
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event row %q: %v", sc.Text(), err)
		}
		switch e.Type {
		case "chunk":
			if sawDone {
				t.Error("chunk event after done")
			}
			chunks = append(chunks, e)
		case "done":
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("no done event")
	}
	if len(chunks) != 2 {
		t.Fatalf("%d chunk events, want 2", len(chunks))
	}
	for i, e := range chunks {
		if e.CellsTotal != 4 || e.CellsDone != 2*(i+1) {
			t.Errorf("chunk %d: done %d/%d, want %d/4", i, e.CellsDone, e.CellsTotal, 2*(i+1))
		}
		var cellDocs []spec.CellDoc
		if err := json.Unmarshal(e.Cells, &cellDocs); err != nil || len(cellDocs) != 2 {
			t.Errorf("chunk %d: cells payload %v (%v)", i, len(cellDocs), err)
		}
		for _, cd := range cellDocs {
			if cd.SpecVersion != spec.CurrentVersion || len(cd.Results) == 0 {
				t.Errorf("chunk %d: bad cell doc %+v", i, cd)
			}
		}
	}
}

// Disk-cached documents from another spec generation are never served:
// the gate treats them as misses and the job re-simulates.
func TestStaleGenerationDocNotServed(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "00000000000000000000000000000000000000000000000000000000000000aa"
	good := []byte(`{"spec_version":` + itoa(spec.CurrentVersion) + `,"status":"done"}`)
	if err := c.put(key, good, ""); err != nil {
		t.Fatal(err)
	}
	// A fresh cache (empty memory tier) must accept the on-disk doc...
	c2, err := newResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.get(key); !ok {
		t.Fatal("current-generation doc rejected")
	}
	// ...but reject one stamped with a different generation.
	stale := []byte(`{"spec_version":` + itoa(spec.CurrentVersion+1) + `,"status":"done"}`)
	if err := c2.put(key, stale, ""); err != nil {
		t.Fatal(err)
	}
	c3, err := newResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.get(key); ok {
		t.Fatal("stale-generation doc served from disk")
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
