package server

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Priority classes. Interactive work — a client holding a connection
// open with ?wait=1 — is dispatched strictly before batch work, and
// chunked batch jobs yield between chunks when interactive work is
// waiting and every executor is busy. Within a class, tenants share
// capacity by weighted deficit round-robin.
const (
	classInteractive = iota
	classBatch
	numClasses
)

// className renders a class for the wire and the journal.
func className(class int) string {
	if class == classInteractive {
		return "interactive"
	}
	return "batch"
}

// classFromName parses a journaled class name (unknowns degrade to
// batch — the safe class to resume recovered work in).
func classFromName(name string) int {
	if name == "interactive" {
		return classInteractive
	}
	return classBatch
}

// Tenant is one API tenant's static configuration, as the daemon's
// -tenants file declares it.
type Tenant struct {
	// Name identifies the tenant in metrics, the journal and errors.
	Name string `json:"name"`
	// Key is the API key (Authorization: Bearer <key> or X-API-Key).
	Key string `json:"key"`
	// Weight is the tenant's fair share: a weight-3 tenant drains three
	// times the cells per round of a weight-1 tenant under contention.
	// Below 1 means 1.
	Weight int `json:"weight,omitempty"`
	// MaxActive caps the tenant's accepted-but-unfinished jobs (queued
	// plus running); exceeding it answers 429. Zero means unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// RatePerSec caps this tenant's job submissions at the HTTP edge: a
	// token bucket refilled at this rate, spent one token per POST
	// /v1/jobs, answering 429+Retry-After when empty — before the body
	// is read or any admission work happens. Zero means unlimited. The
	// DRR scheduler shapes dispatch; this shapes ingress. Peer-to-peer
	// cache traffic (GET /v1/cache) is exempt.
	RatePerSec float64 `json:"requests_per_sec,omitempty"`
	// Burst is the bucket depth — how many submissions can arrive
	// back-to-back before the rate applies. Zero defaults to
	// max(1, ceil(RatePerSec)).
	Burst int `json:"burst,omitempty"`
	// MaxCacheBytes caps the disk-resident result-cache bytes charged
	// to this tenant; exceeding it evicts the tenant's own least-
	// recently-used entries first. Zero means unlimited. Attribution is
	// first-writer-wins and process-lifetime (files inherited from a
	// previous daemon are unowned until rewritten).
	MaxCacheBytes int64 `json:"max_cache_bytes,omitempty"`
}

// tenant is the runtime admission state behind one configured Tenant:
// its per-class queues, its deficit-round-robin credit, and its live
// job count for quota enforcement.
type tenant struct {
	Tenant
	// queues hold admitted jobs awaiting an executor, per class.
	queues [numClasses][]*job
	// deficit is the DRR credit per class, in job-cost units.
	deficit [numClasses]int
	// active counts this tenant's queued+running jobs (the quota).
	active int
	// metricName is the tenant's sanitized name for histogram keys.
	metricName string
	// Token-bucket state for edge rate limiting (guarded by s.mu):
	// rateTokens is the current balance, rateLast the nanos of the last
	// refill. rateLast == 0 means the bucket has never been touched —
	// it starts full.
	rateTokens float64
	rateLast   int64
}

// anonTenantName is the implicit tenant serving unauthenticated traffic
// when the daemon runs without a tenant file (open mode), and the
// fallback that adopts journaled jobs whose tenant was removed from the
// configuration between restarts.
const anonTenantName = "default"

// Deficit-round-robin parameters. Costs are measured in cells:
// a batch sweep's cost is its (remaining) cell count clamped to
// maxJobCost, an interactive request always costs 1, and each round a
// backlogged tenant earns drrQuantum × Weight credit. The clamp bounds
// how long one giant sweep can monopolise a dispatch slot's accounting
// — not its runtime, which chunking already bounds.
const (
	drrQuantum = 8
	maxJobCost = 64
)

// jobCost prices a job for admission accounting.
func jobCost(cells, class int) int {
	if class == classInteractive {
		return 1
	}
	if cells < 1 {
		cells = 1
	}
	if cells > maxJobCost {
		cells = maxJobCost
	}
	return cells
}

// sanitizeMetric maps a tenant name onto the Prometheus metric-name
// alphabet so per-tenant histograms always expose cleanly.
func sanitizeMetric(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// buildTenants validates the configured tenant set and compiles the
// runtime ring. An empty configuration is open mode: one anonymous
// tenant, no authentication, no quota.
func buildTenants(configured []Tenant) (ring []*tenant, byName, byKey map[string]*tenant, err error) {
	byName = map[string]*tenant{}
	byKey = map[string]*tenant{}
	if len(configured) == 0 {
		t := &tenant{Tenant: Tenant{Name: anonTenantName, Weight: 1}, metricName: sanitizeMetric(anonTenantName)}
		return []*tenant{t}, map[string]*tenant{t.Name: t}, byKey, nil
	}
	for _, cfg := range configured {
		if cfg.Name == "" {
			return nil, nil, nil, fmt.Errorf("server: tenant with empty name")
		}
		if cfg.Key == "" {
			return nil, nil, nil, fmt.Errorf("server: tenant %q has no API key", cfg.Name)
		}
		if cfg.Weight < 0 || cfg.MaxActive < 0 {
			return nil, nil, nil, fmt.Errorf("server: tenant %q has negative weight or quota", cfg.Name)
		}
		if cfg.RatePerSec < 0 || math.IsNaN(cfg.RatePerSec) || math.IsInf(cfg.RatePerSec, 0) {
			return nil, nil, nil, fmt.Errorf("server: tenant %q has invalid requests_per_sec", cfg.Name)
		}
		if cfg.Burst < 0 || cfg.MaxCacheBytes < 0 {
			return nil, nil, nil, fmt.Errorf("server: tenant %q has negative burst or cache quota", cfg.Name)
		}
		if cfg.Weight == 0 {
			cfg.Weight = 1
		}
		if _, dup := byName[cfg.Name]; dup {
			return nil, nil, nil, fmt.Errorf("server: duplicate tenant name %q", cfg.Name)
		}
		if _, dup := byKey[cfg.Key]; dup {
			return nil, nil, nil, fmt.Errorf("server: tenants %q and another share an API key", cfg.Name)
		}
		t := &tenant{Tenant: cfg, metricName: sanitizeMetric(cfg.Name)}
		ring = append(ring, t)
		byName[cfg.Name] = t
		byKey[cfg.Key] = t
	}
	return ring, byName, byKey, nil
}

// resolveTenant maps request credentials to a tenant. In open mode every
// caller is the anonymous tenant; with tenants configured, a missing or
// unknown key is a 403-class error.
func (s *Server) resolveTenant(key string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cfg.Tenants) == 0 {
		return s.ring[0], nil
	}
	if key == "" {
		return nil, fmt.Errorf("server: missing API key (this daemon runs with tenants configured)")
	}
	if t, ok := s.byKey[key]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("server: unknown API key")
}

// tenantForReplay maps a journaled tenant name back to a live tenant,
// adopting orphans (tenant removed between restarts) into the ring's
// first tenant so recovered work is never dropped.
func (s *Server) tenantForReplay(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byName[name]; ok {
		return t
	}
	return s.ring[0]
}

// enqueueLocked appends an admitted job to its tenant's class queue.
// Callers hold s.mu and have already charged quota and journaled.
func (s *Server) enqueueLocked(j *job) {
	t := j.tenant
	t.queues[j.class] = append(t.queues[j.class], j)
	s.queued++
}

// requeueLocked puts a yielded batch job back at the head of its
// tenant's batch queue, repriced to its remaining cells so DRR accounts
// for what is actually left to run.
func (s *Server) requeueLocked(j *job) {
	j.cost = jobCost(len(j.cells)-j.nextCell, j.class)
	t := j.tenant
	t.queues[j.class] = append([]*job{j}, t.queues[j.class]...)
	s.queued++
}

// interactivePendingLocked reports whether any tenant has interactive
// work waiting for an executor.
func (s *Server) interactivePendingLocked() bool {
	for _, t := range s.ring {
		if len(t.queues[classInteractive]) > 0 {
			return true
		}
	}
	return false
}

// burst returns the tenant's effective bucket depth.
func (t *tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	b := math.Ceil(t.RatePerSec)
	if b < 1 {
		b = 1
	}
	return b
}

// admitRate spends one token from the tenant's bucket, refilling it
// from the elapsed injected clock first. It returns (true, 0) when the
// submission may proceed, or (false, retryAfter) with the whole seconds
// a well-behaved client should wait for a token. Rate limiting is
// disabled — every call admits — when the tenant has no configured rate
// or the daemon runs without a clock (tests that never set NowNanos
// keep their timing-free determinism).
func (s *Server) admitRate(t *tenant) (ok bool, retryAfter int) {
	if t.RatePerSec <= 0 || s.cfg.NowNanos == nil {
		return true, 0
	}
	now := s.cfg.NowNanos()
	s.mu.Lock()
	defer s.mu.Unlock()
	burst := t.burst()
	if t.rateLast == 0 {
		t.rateTokens = burst
	} else if elapsed := now - t.rateLast; elapsed > 0 {
		t.rateTokens += float64(elapsed) / float64(time.Second) * t.RatePerSec
		if t.rateTokens > burst {
			t.rateTokens = burst
		}
	}
	t.rateLast = now
	if t.rateTokens >= 1 {
		t.rateTokens -= 1
		return true, 0
	}
	secs := int(math.Ceil((1 - t.rateTokens) / t.RatePerSec))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// pickLocked dispatches the next job: the interactive class strictly
// first, then batch, each by weighted deficit round-robin over the
// tenant ring. Returns nil when no class has dispatchable work.
func (s *Server) pickLocked() *job {
	if j := s.pickClassLocked(classInteractive); j != nil {
		return j
	}
	return s.pickClassLocked(classBatch)
}

// pickClassLocked runs deficit round-robin for one class: visit tenants
// from the class's rotor; a backlogged tenant whose deficit covers its
// head job's cost dispatches it (and the rotor parks on that tenant so
// its remaining credit drains first next time — classic DRR); otherwise
// the tenant earns Weight×drrQuantum credit and the scan moves on. A
// tenant with no backlog forfeits its credit, so idle time never
// converts into a later burst. Costs are clamped to maxJobCost, which
// bounds the passes needed before some deficit covers some head.
func (s *Server) pickClassLocked(class int) *job {
	n := len(s.ring)
	for pass := 0; pass <= maxJobCost/drrQuantum+1; pass++ {
		backlogged := false
		for i := 0; i < n; i++ {
			pos := (s.rotor[class] + i) % n
			t := s.ring[pos]
			q := t.queues[class]
			if len(q) == 0 {
				t.deficit[class] = 0
				continue
			}
			backlogged = true
			if t.deficit[class] >= q[0].cost {
				j := q[0]
				t.deficit[class] -= j.cost
				t.queues[class] = q[1:]
				if len(t.queues[class]) == 0 {
					t.deficit[class] = 0
				}
				s.rotor[class] = pos
				s.queued--
				return j
			}
			t.deficit[class] += t.Weight * drrQuantum
		}
		if !backlogged {
			return nil
		}
	}
	// Unreachable: with clamped costs, the passes above always fund the
	// cheapest backlogged head. Kept as a defensive bound.
	return nil
}
