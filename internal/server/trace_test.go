package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dirsim/internal/obs"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestMetricsPrometheusFormat: /metrics?format=prometheus serves the
// text exposition, it passes the in-repo linter, and the plain JSON form
// is unchanged.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, body := postWait(t, ts, cellBody(t, 2_000, 1))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}

	code, ctype, text := get(t, ts, "/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus metrics: %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type = %q", ctype)
	}
	if err := obs.LintPrometheus(strings.NewReader(string(text))); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{"dirsim_refs_total", "dirsim_jobs_done_total 1", "dirsim_engine_refs_total{scheme=\"Dir1NB\"}", "dirsim_job_ticks_bucket", "dirsim_queue_depth_count"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	code, ctype, jsonBody := get(t, ts, "/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json metrics: %d %q", code, ctype)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		t.Fatalf("json metrics not a snapshot: %v", err)
	}
	if snap.JobsDone != 1 {
		t.Fatalf("jobs done = %d", snap.JobsDone)
	}
}

// TestJobTraceEndpoint: a traced daemon serves a Perfetto-loadable
// Chrome trace and an NDJSON form for finished jobs; byte-identical on
// re-read, 404 for untraced daemons.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{TraceSample: 8})
	code, body := postWait(t, ts, cellBody(t, 4_000, 2))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
		t.Fatalf("result doc: %v (%s)", err, body)
	}

	code, ctype, chrome := get(t, ts, "/v1/jobs/"+doc.ID+"/trace")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("trace: %d %q %s", code, ctype, chrome)
	}
	var tr struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &tr); err != nil {
		t.Fatalf("trace is not valid chrome JSON: %v", err)
	}
	var instants int
	for _, e := range tr.TraceEvents {
		if e.Ph == "i" {
			instants++
		}
	}
	if instants == 0 {
		t.Fatal("trace has no sampled protocol events")
	}

	// Deterministic bytes on re-read.
	_, _, again := get(t, ts, "/v1/jobs/"+doc.ID+"/trace")
	if string(chrome) != string(again) {
		t.Fatal("trace bytes differ between reads")
	}

	code, ctype, nd := get(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=ndjson")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/x-ndjson") {
		t.Fatalf("ndjson trace: %d %q", code, ctype)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(nd)), "\n") {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}

	if code, _, _ = get(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: %d, want 400", code)
	}
	if code, _, _ = get(t, ts, "/v1/jobs/nope/trace"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}

// TestJobTraceAbsentWhenTracingOff: with tracing disabled the endpoint
// answers 404 for finished jobs rather than an empty trace.
func TestJobTraceAbsentWhenTracingOff(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, body := postWait(t, ts, cellBody(t, 2_000, 3))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get(t, ts, "/v1/jobs/"+doc.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("untraced job trace: %d, want 404", code)
	}
}
