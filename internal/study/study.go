// Package study runs replicated experiments over the synthetic workloads.
//
// The paper draws each number from a single trace per application; with a
// parameterised generator we can do better and report sampling error. A
// study re-runs a workload across independent seeds and summarises each
// scheme's metric with a mean and a confidence interval; paired
// comparisons (same seeds, two schemes) answer "is A really cheaper than
// B" with the trace-to-trace variation accounted for.
package study

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// Summary describes one scheme's metric across replications.
type Summary struct {
	// Scheme is the engine name.
	Scheme string
	// Values are the per-seed measurements, in seed order.
	Values []float64
	// Mean is the sample mean.
	Mean float64
	// StdDev is the sample standard deviation (n-1).
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student's t).
	CI95 float64
}

// summarise computes the statistics for a series.
func summarise(scheme string, values []float64) Summary {
	s := Summary{Scheme: scheme, Values: values}
	if len(values) == 0 {
		return s
	}
	n := float64(len(values))
	var sum float64
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / n
	if len(values) < 2 {
		return s
	}
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / (n - 1))
	s.CI95 = tCritical95(len(values)-1) * s.StdDev / math.Sqrt(n)
	return s
}

// Summarise computes the replication statistics for a metric series — the
// same summary SeedSweep builds — for callers that collect per-seed values
// themselves (e.g. streaming runner pipelines).
func Summarise(scheme string, values []float64) Summary {
	return summarise(scheme, values)
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (exact table for small df, 1.96 asymptote).
func tCritical95(df int) float64 {
	table := []float64{
		// df = 1 … 30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// Metric extracts one number from a result (e.g. cycles per reference
// under a model).
type Metric func(sim.Result) float64

// CyclesPerRef returns the standard metric under m.
func CyclesPerRef(m bus.CostModel) Metric {
	return func(r sim.Result) float64 { return r.CyclesPerRef(m) }
}

// SeedSweep replays the workload base across the given seeds (overriding
// base.Seed each time), runs every scheme in lockstep per seed, and
// summarises metric per scheme. All schemes see identical traces, so
// comparisons across schemes are paired. The context cancels the sweep
// between reference batches.
func SeedSweep(ctx context.Context, base tracegen.Config, seeds []int64, schemes []string,
	engCfg coherence.Config, opts sim.Options, metric Metric) ([]Summary, error) {
	return sweep(ctx, 1, base, seeds, schemes, engCfg, opts, metric)
}

// sweep is the shared replication driver: one runner job per seed,
// executed on a pool of the given width. Results are collected in seed
// order whatever the width, so SeedSweep and ParallelSeedSweep summarise
// identical series.
func sweep(ctx context.Context, workers int, base tracegen.Config, seeds []int64,
	schemes []string, engCfg coherence.Config, opts sim.Options, metric Metric) ([]Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("study: no seeds")
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("study: no schemes")
	}
	jobs := make([]runner.Job, len(seeds))
	for si, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		jobs[si] = runner.Job{
			Label:   fmt.Sprintf("%s seed %d", base.Name, seed),
			Source:  func() (trace.Reader, error) { return tracegen.New(cfg) },
			Schemes: schemes,
			Config:  engCfg,
			Opts:    opts,
		}
	}
	res, err := runner.Run(ctx, jobs, runner.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	values := make([][]float64, len(schemes))
	names := make([]string, len(schemes))
	for i := range values {
		values[i] = make([]float64, len(seeds))
	}
	for si := range res {
		for i, r := range res[si] {
			values[i][si] = metric(r)
			names[i] = r.Scheme
		}
	}
	out := make([]Summary, len(schemes))
	for i := range out {
		out[i] = summarise(names[i], values[i])
	}
	return out, nil
}

// PairedComparison is the seed-paired difference between two schemes'
// metrics: Diff = mean(a−b) with its 95% confidence interval. If the
// interval excludes zero the ordering is statistically resolved at that
// level.
type PairedComparison struct {
	A, B string
	// Diff is the mean of the per-seed differences A−B.
	Diff float64
	// CI95 is the half-width of the difference's confidence interval.
	CI95 float64
}

// Significant reports whether the interval excludes zero.
func (p PairedComparison) Significant() bool {
	return math.Abs(p.Diff) > p.CI95
}

// Compare pairs two summaries produced by the same SeedSweep call.
func Compare(a, b Summary) (PairedComparison, error) {
	if len(a.Values) != len(b.Values) || len(a.Values) == 0 {
		return PairedComparison{}, fmt.Errorf("study: summaries not paired (%d vs %d values)",
			len(a.Values), len(b.Values))
	}
	diffs := make([]float64, len(a.Values))
	for i := range diffs {
		diffs[i] = a.Values[i] - b.Values[i]
	}
	s := summarise("", diffs)
	return PairedComparison{A: a.Scheme, B: b.Scheme, Diff: s.Mean, CI95: s.CI95}, nil
}

// Seeds returns n deterministic, well-separated seeds derived from base.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	x := uint64(base)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range out {
		// splitmix64 step: decorrelated, reproducible.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = int64(z >> 1) // keep it positive
	}
	return out
}

// Median returns the median of a summary's values (robust companion to
// Mean for skewed metrics).
func (s Summary) Median() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	vs := append([]float64(nil), s.Values...)
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}
