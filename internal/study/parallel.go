package study

import (
	"context"
	"runtime"

	"dirsim/internal/coherence"
	"dirsim/internal/sim"
	"dirsim/internal/tracegen"
)

// ParallelSeedSweep is SeedSweep with the replications executed
// concurrently on a worker pool bounded by GOMAXPROCS (never one
// goroutine per seed, however many seeds there are). Engines and
// generators are per-seed, so no state is shared across workers; results
// are identical to the sequential SeedSweep in the same order, and errors
// from every failing seed are aggregated, not just the first.
func ParallelSeedSweep(ctx context.Context, base tracegen.Config, seeds []int64, schemes []string,
	engCfg coherence.Config, opts sim.Options, metric Metric) ([]Summary, error) {
	return sweep(ctx, runtime.GOMAXPROCS(0), base, seeds, schemes, engCfg, opts, metric)
}
