package study

import (
	"fmt"
	"runtime"
	"sync"

	"dirsim/internal/coherence"
	"dirsim/internal/sim"
	"dirsim/internal/tracegen"
)

// ParallelSeedSweep is SeedSweep with the replications executed
// concurrently, one goroutine per seed (bounded by GOMAXPROCS). Engines
// and generators are per-seed, so no state is shared across goroutines;
// results are identical to the sequential SeedSweep in the same order.
func ParallelSeedSweep(base tracegen.Config, seeds []int64, schemes []string,
	engCfg coherence.Config, opts sim.Options, metric Metric) ([]Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("study: no seeds")
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("study: no schemes")
	}
	values := make([][]float64, len(schemes))
	for i := range values {
		values[i] = make([]float64, len(seeds))
	}
	errs := make([]error, len(seeds))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for si, seed := range seeds {
		wg.Add(1)
		go func(si int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := base
			cfg.Seed = seed
			gen, err := tracegen.New(cfg)
			if err != nil {
				errs[si] = err
				return
			}
			rs, err := sim.RunSchemes(gen, schemes, engCfg, opts)
			if err != nil {
				errs[si] = err
				return
			}
			for i, r := range rs {
				values[i][si] = metric(r)
			}
		}(si, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]Summary, len(schemes))
	for i, name := range schemes {
		e, err := coherence.NewByName(name, engCfg)
		if err != nil {
			return nil, err
		}
		out[i] = summarise(e.Name(), values[i])
	}
	return out, nil
}
