package study

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/sim"
	"dirsim/internal/tracegen"
)

func TestSummarise(t *testing.T) {
	s := summarise("x", []float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std dev of 1..5 is sqrt(2.5).
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	// CI95 = t(4)·sd/√5 = 2.776·1.5811/2.2361 ≈ 1.963.
	if math.Abs(s.CI95-2.776*math.Sqrt(2.5)/math.Sqrt(5)) > 1e-9 {
		t.Errorf("CI95 = %v", s.CI95)
	}
	if s.Median() != 3 {
		t.Errorf("Median = %v", s.Median())
	}
	even := summarise("y", []float64{4, 1, 3, 2})
	if even.Median() != 2.5 {
		t.Errorf("even Median = %v", even.Median())
	}
	empty := summarise("z", nil)
	if empty.Mean != 0 || empty.Median() != 0 {
		t.Error("empty summary not zero")
	}
	single := summarise("w", []float64{7})
	if single.Mean != 7 || single.StdDev != 0 || single.CI95 != 0 {
		t.Errorf("single-value summary = %+v", single)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical95(1) != 12.706 {
		t.Errorf("t(1) = %v", tCritical95(1))
	}
	if tCritical95(30) != 2.042 {
		t.Errorf("t(30) = %v", tCritical95(30))
	}
	if tCritical95(1000) != 1.96 {
		t.Errorf("t(1000) = %v", tCritical95(1000))
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Error("t(0) should be +Inf")
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(1, 8)
	b := Seeds(1, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if a[i] < 0 {
			t.Fatal("negative seed")
		}
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
	c := Seeds(2, 8)
	if a[0] == c[0] {
		t.Error("different bases should decorrelate")
	}
}

func TestSeedSweepAndCompare(t *testing.T) {
	base := tracegen.PERO(40_000)
	seeds := Seeds(7, 5)
	sums, err := SeedSweep(context.Background(), base, seeds, []string{"dir0b", "dragon"},
		coherence.Config{Caches: 4}, sim.Options{}, CyclesPerRef(bus.Pipelined()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if sums[0].Scheme != "Dir0B" || sums[1].Scheme != "Dragon" {
		t.Fatalf("schemes = %s, %s", sums[0].Scheme, sums[1].Scheme)
	}
	for _, s := range sums {
		if len(s.Values) != 5 {
			t.Fatalf("%s has %d values", s.Scheme, len(s.Values))
		}
		if s.Mean <= 0 {
			t.Fatalf("%s mean = %v", s.Scheme, s.Mean)
		}
		// Seeds vary the trace, so some spread exists, but the metric is
		// stable: CI should be well under the mean.
		if s.CI95 > s.Mean {
			t.Errorf("%s: CI %v exceeds mean %v — metric unstable", s.Scheme, s.CI95, s.Mean)
		}
	}
	cmp, err := Compare(sums[0], sums[1])
	if err != nil {
		t.Fatal(err)
	}
	if cmp.A != "Dir0B" || cmp.B != "Dragon" {
		t.Fatalf("Compare labels = %+v", cmp)
	}
	if cmp.Diff <= 0 {
		t.Errorf("Dir0B−Dragon = %v, want positive", cmp.Diff)
	}
	if !cmp.Significant() {
		t.Errorf("ordering not significant: diff %v ± %v", cmp.Diff, cmp.CI95)
	}
}

func TestSeedSweepErrors(t *testing.T) {
	base := tracegen.PERO(1000)
	if _, err := SeedSweep(context.Background(), base, nil, []string{"dir0b"}, coherence.Config{Caches: 4}, sim.Options{}, CyclesPerRef(bus.Pipelined())); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := SeedSweep(context.Background(), base, []int64{1}, nil, coherence.Config{Caches: 4}, sim.Options{}, CyclesPerRef(bus.Pipelined())); err == nil {
		t.Error("no schemes accepted")
	}
	if _, err := SeedSweep(context.Background(), base, []int64{1}, []string{"bogus"}, coherence.Config{Caches: 4}, sim.Options{}, CyclesPerRef(bus.Pipelined())); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestCompareUnpaired(t *testing.T) {
	a := summarise("a", []float64{1, 2})
	b := summarise("b", []float64{1})
	if _, err := Compare(a, b); err == nil {
		t.Error("unpaired compare accepted")
	}
	if _, err := Compare(summarise("a", nil), summarise("b", nil)); err == nil {
		t.Error("empty compare accepted")
	}
}

func TestParallelSeedSweepMatchesSequential(t *testing.T) {
	base := tracegen.PERO(30_000)
	seeds := Seeds(11, 6)
	schemes := []string{"dir0b", "dragon"}
	metric := CyclesPerRef(bus.Pipelined())
	seq, err := SeedSweep(context.Background(), base, seeds, schemes, coherence.Config{Caches: 4}, sim.Options{}, metric)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSeedSweep(context.Background(), base, seeds, schemes, coherence.Config{Caches: 4}, sim.Options{}, metric)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Scheme != par[i].Scheme {
			t.Fatalf("scheme order differs: %s vs %s", seq[i].Scheme, par[i].Scheme)
		}
		for j := range seq[i].Values {
			if seq[i].Values[j] != par[i].Values[j] {
				t.Fatalf("%s seed %d: sequential %v vs parallel %v",
					seq[i].Scheme, j, seq[i].Values[j], par[i].Values[j])
			}
		}
	}
}

// A sweep where several seeds fail must report every failure, not just
// the first — the error carries one labelled entry per failing seed.
func TestSweepAggregatesAllSeedErrors(t *testing.T) {
	base := tracegen.PERO(1000)
	metric := CyclesPerRef(bus.Pipelined())
	seeds := []int64{3, 5, 9}
	_, err := ParallelSeedSweep(context.Background(), base, seeds, []string{"bogus"},
		coherence.Config{Caches: 4}, sim.Options{}, metric)
	if err == nil {
		t.Fatal("bogus scheme accepted")
	}
	for _, seed := range seeds {
		if want := fmt.Sprintf("seed %d", seed); !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q: %v", want, err)
		}
	}
}

func TestParallelSeedSweepErrors(t *testing.T) {
	base := tracegen.PERO(1000)
	metric := CyclesPerRef(bus.Pipelined())
	if _, err := ParallelSeedSweep(context.Background(), base, nil, []string{"dir0b"}, coherence.Config{Caches: 4}, sim.Options{}, metric); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := ParallelSeedSweep(context.Background(), base, []int64{1}, nil, coherence.Config{Caches: 4}, sim.Options{}, metric); err == nil {
		t.Error("no schemes accepted")
	}
	if _, err := ParallelSeedSweep(context.Background(), base, []int64{1}, []string{"bogus"}, coherence.Config{Caches: 4}, sim.Options{}, metric); err == nil {
		t.Error("bogus scheme accepted")
	}
}
