package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-module analysis core: one call graph over every
// loaded package, with a behavioural summary per function. Run builds the
// Module once and hands it to every rule, so a rule that needs "does
// anything reachable from X allocate / read the clock / iterate a map?"
// asks the graph instead of re-walking ASTs.
//
// The summaries record facts, each anchored to the position that proves
// it:
//
//   - allocation (make, new, append, slice/map literals, &composite
//     literals, closures), split into unconditional per-call allocation
//     and amortized allocation behind a growth or first-touch guard —
//     a len/cap comparison, a nil check, or a map-lookup miss test —
//     which is zero in steady state;
//   - wall-clock reads (time.Now/Since/Until) and sleeps;
//   - process-global randomness (math/rand outside the seeded
//     constructors);
//   - map iteration (range over a map — order is nondeterministic);
//   - goroutine spawns, with what the spawned subtree can observe
//     (a context, a channel, a WaitGroup);
//   - calls through function values the graph cannot resolve;
//   - whether the function accepts and observes a context.Context.
//
// Call edges cover direct calls, method calls, references to module
// functions passed as values, and dynamic dispatch through interfaces
// declared in the module (an interface-method call adds an edge to every
// module implementation). Dispatch through interfaces declared outside
// the module (io.Writer and friends) and calls of plain function values
// are not resolved; the latter are recorded as FactDynamicCall so strict
// rules can refuse them.

// FactKind classifies one behaviour recorded in a function summary.
type FactKind uint8

const (
	// FactAlloc is an allocation executed on every call.
	FactAlloc FactKind = iota
	// FactAmortizedAlloc is an allocation behind a growth or first-touch
	// guard: it amortizes to zero on a steady-state hot path.
	FactAmortizedAlloc
	// FactClock is a wall-clock read or sleep.
	FactClock
	// FactGlobalRand is a draw from the process-global rand source.
	FactGlobalRand
	// FactMapRange is a range over a map.
	FactMapRange
	// FactGoSpawn is a go statement.
	FactGoSpawn
	// FactDynamicCall is a call through a function value the graph cannot
	// resolve to a declaration.
	FactDynamicCall
)

// Fact is one recorded behaviour, anchored at the position proving it.
type Fact struct {
	Kind FactKind
	Pos  token.Pos
	// What is a short human description: "append", "&composite literal",
	// "time.Now", …
	What string
}

// Spawn describes one go statement and what the spawned call subtree can
// observe, for lifecycle rules.
type Spawn struct {
	Pos token.Pos
	// SeesContext reports whether any expression in the spawned call
	// (including a func literal's body) has type context.Context.
	SeesContext bool
	// SeesChannel reports whether the subtree contains a channel
	// operation or channel-typed expression (close/receive/range bound
	// the goroutine's lifetime to the channel).
	SeesChannel bool
	// SeesWaitGroup reports whether the subtree references a
	// sync.WaitGroup (the wait-then-signal adapter idiom).
	SeesWaitGroup bool
	// Callees are the module functions statically referenced in the
	// spawned subtree, for transitive lifecycle queries.
	Callees []*types.Func
}

// FuncInfo is the per-function summary node of the module call graph.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Facts are the behaviours observed directly in this function's body
	// (including bodies of func literals declared inside it).
	Facts []Fact
	// Callees are module functions this body can invoke: direct calls,
	// references passed as values, and every module implementation of a
	// module-declared interface method called here.
	Callees []*types.Func
	// Spawns describes each go statement in the body.
	Spawns []Spawn
	// AcceptsContext reports whether the signature has a context.Context
	// parameter.
	AcceptsContext bool
	// ObservesContext reports whether the body uses any context-typed
	// expression (passing one on counts: cancellation is delegated).
	ObservesContext bool
	// RangesOverChannel reports whether the body ranges over or receives
	// from a channel (its lifetime is bounded by channel close).
	RangesOverChannel bool
}

// Module is every loaded package plus the whole-module call graph. Rules
// that need cross-package facts implement ModuleRule and receive one.
type Module struct {
	Pkgs   []*Package
	byPath map[string]*Package
	funcs  map[*types.Func]*FuncInfo
	// implCache memoizes interface-method → module-implementation
	// resolution.
	implCache map[*types.Func][]*types.Func
	// named is every non-interface named type declared in the module, in
	// a deterministic order.
	named []*types.Named
}

// NewModule indexes pkgs and builds the call graph with per-function
// summaries. It is deterministic: the same packages produce the same
// graph, edge order included.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byPath:    map[string]*Package{},
		funcs:     map[*types.Func]*FuncInfo{},
		implCache: map[*types.Func][]*types.Func{},
	}
	for _, p := range pkgs {
		m.byPath[p.Path] = p
	}
	m.collectNamed()
	// Pass 1: index every declared function, so pass 2 can resolve edges
	// to any of them regardless of declaration order.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					m.funcs[obj] = &FuncInfo{Fn: obj, Decl: fd, Pkg: p}
				}
			}
		}
	}
	// Pass 2: summarize bodies and wire edges.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if info := m.funcs[obj]; info != nil {
					m.summarize(info)
				}
			}
		}
	}
	return m
}

// Package returns the loaded package with the given module-relative path
// ("internal/lint"), or nil.
func (m *Module) Package(rel string) *Package {
	if len(m.Pkgs) == 0 {
		return nil
	}
	return m.byPath[m.Pkgs[0].Module+"/"+rel]
}

// Func returns fn's summary, or nil when fn is not declared in the module
// (stdlib functions, interface methods).
func (m *Module) Func(fn *types.Func) *FuncInfo { return m.funcs[fn] }

// Funcs returns every summary, sorted by source position — the
// deterministic iteration order for rules.
func (m *Module) Funcs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(m.funcs))
	for _, fi := range m.funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].Pkg.Fset.Position(out[i].Decl.Pos())
		pj := out[j].Pkg.Fset.Position(out[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}

// Reachable returns the summaries of every function reachable from roots
// (roots included, when declared in the module), in deterministic
// breadth-first order.
func (m *Module) Reachable(roots ...*types.Func) []*FuncInfo {
	seen := map[*types.Func]bool{}
	var queue, order []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] && m.funcs[r] != nil {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		order = append(order, fn)
		for _, c := range m.funcs[fn].Callees {
			if !seen[c] && m.funcs[c] != nil {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]*FuncInfo, len(order))
	for i, fn := range order {
		out[i] = m.funcs[fn]
	}
	return out
}

// collectNamed gathers every non-interface named type declared in the
// module, in package-path then name order.
func (m *Module) collectNamed() {
	for _, p := range m.Pkgs {
		scope := p.Pkg.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			m.named = append(m.named, named)
		}
	}
}

// implementations resolves a module-declared interface method to every
// module method that can stand behind it.
func (m *Module) implementations(ifaceMethod *types.Func) []*types.Func {
	if impls, ok := m.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*types.Func
	sig, _ := ifaceMethod.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		m.implCache[ifaceMethod] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		m.implCache[ifaceMethod] = nil
		return nil
	}
	for _, named := range m.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if fn, ok := obj.(*types.Func); ok && m.funcs[fn] != nil {
			impls = append(impls, fn)
		}
	}
	m.implCache[ifaceMethod] = impls
	return impls
}

// summarize fills in one function's facts, edges and context/lifecycle
// properties.
func (m *Module) summarize(info *FuncInfo) {
	p := info.Pkg
	if sig, ok := info.Fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if isNamedType(sig.Params().At(i).Type(), "context", "Context") {
				info.AcceptsContext = true
			}
		}
	}
	w := &factWalker{m: m, p: p, info: info, seenEdge: map[*types.Func]bool{}}
	w.walkStmt(info.Decl.Body, false)
}

// factWalker traverses one function body, tracking whether the current
// node sits behind an amortization guard.
type factWalker struct {
	m        *Module
	p        *Package
	info     *FuncInfo
	seenEdge map[*types.Func]bool
}

func (w *factWalker) fact(kind FactKind, pos token.Pos, what string) {
	w.info.Facts = append(w.info.Facts, Fact{Kind: kind, Pos: pos, What: what})
}

// edge records a callee, deduplicating while preserving first-seen
// (source) order.
func (w *factWalker) edge(fn *types.Func) {
	if fn == nil || w.seenEdge[fn] {
		return
	}
	w.seenEdge[fn] = true
	w.info.Callees = append(w.info.Callees, fn)
}

// walkStmt walks a statement. guarded reports whether execution of s is
// conditional on an amortization guard.
func (w *factWalker) walkStmt(s ast.Stmt, guarded bool) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		// A guard that terminates (if cap-ok { return }) protects the
		// rest of its block: the classic grow-then-use shape.
		rest := guarded
		for _, inner := range st.List {
			w.walkStmt(inner, rest)
			if ifs, ok := inner.(*ast.IfStmt); ok && w.isAmortGuard(ifs.Cond, ifs.Init) && terminates(ifs.Body) {
				rest = true
			}
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init, guarded)
		w.walkExpr(st.Cond, guarded)
		inner := guarded || w.isAmortGuard(st.Cond, st.Init)
		w.walkStmt(st.Body, inner)
		w.walkStmt(st.Else, inner)
	case *ast.ForStmt:
		w.walkStmt(st.Init, guarded)
		w.walkExpr(st.Cond, guarded)
		w.walkStmt(st.Post, guarded)
		w.walkStmt(st.Body, guarded || w.isAmortGuard(st.Cond, st.Init))
	case *ast.RangeStmt:
		if tv, ok := w.p.Info.Types[st.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				w.fact(FactMapRange, st.Pos(), "range over map")
			case *types.Chan:
				w.info.RangesOverChannel = true
			}
		}
		w.walkExpr(st.X, guarded)
		w.walkStmt(st.Body, guarded)
	case *ast.GoStmt:
		w.fact(FactGoSpawn, st.Pos(), "go statement")
		w.info.Spawns = append(w.info.Spawns, w.spawn(st))
		w.walkExpr(st.Call, guarded)
	case *ast.ExprStmt:
		w.walkExpr(st.X, guarded)
	case *ast.AssignStmt:
		for _, e := range st.Lhs {
			w.walkExpr(e, guarded)
		}
		for _, e := range st.Rhs {
			w.walkExpr(e, guarded)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(e, guarded)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, guarded)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.walkExpr(st.Call, guarded)
	case *ast.SendStmt:
		w.walkExpr(st.Chan, guarded)
		w.walkExpr(st.Value, guarded)
	case *ast.IncDecStmt:
		w.walkExpr(st.X, guarded)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, guarded)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, guarded)
		w.walkExpr(st.Tag, guarded)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e, guarded)
			}
			for _, inner := range cc.Body {
				w.walkStmt(inner, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, guarded)
		w.walkStmt(st.Assign, guarded)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, inner := range cc.Body {
				w.walkStmt(inner, guarded)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			w.info.RangesOverChannel = true
			w.walkStmt(cc.Comm, guarded)
			for _, inner := range cc.Body {
				w.walkStmt(inner, guarded)
			}
		}
	}
}

// walkExpr walks an expression, recording allocation, clock, rand and
// call facts.
func (w *factWalker) walkExpr(e ast.Expr, guarded bool) {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(ex, guarded)
	case *ast.CompositeLit:
		if tv, ok := w.p.Info.Types[ast.Expr(ex)]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.allocFact(ex.Pos(), "slice literal", guarded)
			case *types.Map:
				w.allocFact(ex.Pos(), "map literal", guarded)
			}
		}
		for _, el := range ex.Elts {
			w.walkExpr(el, guarded)
		}
	case *ast.UnaryExpr:
		if _, ok := ex.X.(*ast.CompositeLit); ok && ex.Op == token.AND {
			w.allocFact(ex.Pos(), "&composite literal", guarded)
		}
		if ex.Op == token.ARROW {
			w.info.RangesOverChannel = true
		}
		w.walkExpr(ex.X, guarded)
	case *ast.FuncLit:
		w.allocFact(ex.Pos(), "closure", guarded)
		// The literal's body belongs to this summary: a closure run on
		// the hot path contributes its facts here, and one passed to
		// `go` is scanned for lifecycle facts by spawn().
		w.walkStmt(ex.Body, guarded)
	case *ast.Ident:
		w.identUse(ex)
	case *ast.SelectorExpr:
		w.walkExpr(ex.X, guarded)
		w.identUse(ex.Sel)
	case *ast.BinaryExpr:
		w.walkExpr(ex.X, guarded)
		w.walkExpr(ex.Y, guarded)
	case *ast.ParenExpr:
		w.walkExpr(ex.X, guarded)
	case *ast.StarExpr:
		w.walkExpr(ex.X, guarded)
	case *ast.IndexExpr:
		w.walkExpr(ex.X, guarded)
		w.walkExpr(ex.Index, guarded)
	case *ast.SliceExpr:
		w.walkExpr(ex.X, guarded)
		w.walkExpr(ex.Low, guarded)
		w.walkExpr(ex.High, guarded)
		w.walkExpr(ex.Max, guarded)
	case *ast.TypeAssertExpr:
		w.walkExpr(ex.X, guarded)
	case *ast.KeyValueExpr:
		w.walkExpr(ex.Key, guarded)
		w.walkExpr(ex.Value, guarded)
	}
	if exp, ok := e.(ast.Expr); ok && exp != nil {
		if t := w.p.Info.TypeOf(exp); t != nil && isNamedType(t, "context", "Context") {
			w.info.ObservesContext = true
		}
	}
}

// identUse records an edge when id names a module function (called or
// referenced as a value).
func (w *factWalker) identUse(id *ast.Ident) {
	fn, ok := w.p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if w.m.funcs[fn] != nil {
		w.edge(fn)
		return
	}
	// A module-declared interface method: resolve to implementations.
	if path := fn.Pkg().Path(); path == w.p.Module || strings.HasPrefix(path, w.p.Module+"/") {
		for _, impl := range w.m.implementations(fn) {
			w.edge(impl)
		}
	}
}

// call records allocation/clock/rand facts and edges for one call.
func (w *factWalker) call(call *ast.CallExpr, guarded bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := w.p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				w.allocFact(call.Pos(), b.Name(), guarded)
			case "append":
				w.appendFact(call, guarded)
			}
			for _, a := range call.Args {
				w.walkExpr(a, guarded)
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.walkExpr(a, guarded)
		}
		return
	}
	w.clockOrRand(call)
	// A call whose Fun resolves to no function object is dynamic: a
	// func-typed variable, field or parameter the graph cannot follow.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := w.p.Info.Uses[fun].(*types.Func); !ok {
			if v, isVar := w.p.Info.Uses[fun].(*types.Var); isVar {
				if _, isFn := v.Type().Underlying().(*types.Signature); isFn {
					w.fact(FactDynamicCall, call.Pos(), "call through function value "+fun.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := w.p.Info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			w.fact(FactDynamicCall, call.Pos(), "call through function field "+fun.Sel.Name)
		}
	}
	w.walkExpr(call.Fun, guarded)
	for _, a := range call.Args {
		w.walkExpr(a, guarded)
	}
}

// appendFact classifies one append call: appending to a fresh (nil or
// literal) slice allocates on every call; appending to an existing slice
// only grows it, which amortizes to zero once the buffer reaches
// steady-state capacity.
func (w *factWalker) appendFact(call *ast.CallExpr, guarded bool) {
	if len(call.Args) == 0 {
		return
	}
	if freshSlice(w.p.Info, call.Args[0]) {
		w.allocFact(call.Pos(), "append to a fresh slice", guarded)
		return
	}
	w.fact(FactAmortizedAlloc, call.Pos(), "append")
}

// freshSlice reports whether e denotes a slice that is empty at this
// expression: nil, a nil conversion, an empty literal, or a make call.
func freshSlice(info *types.Info, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return freshSlice(info, x.Args[0])
		}
	case *ast.ParenExpr:
		return freshSlice(info, x.X)
	}
	return false
}

// allocFact records an allocation, downgraded to amortized when guarded.
func (w *factWalker) allocFact(pos token.Pos, what string, guarded bool) {
	kind := FactAlloc
	if guarded {
		kind = FactAmortizedAlloc
	}
	w.fact(kind, pos, what)
}

// clockOrRand records wall-clock and global-rand facts for one call.
func (w *factWalker) clockOrRand(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn := pkgNameOf(w.p.Info, x)
	if pn == nil {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until", "Sleep", "Tick":
			w.fact(FactClock, call.Pos(), "time."+sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			w.fact(FactGlobalRand, call.Pos(), "rand."+sel.Sel.Name)
		}
	}
}

// isAmortGuard reports whether an if/for condition (with optional init)
// is a growth or first-touch guard: it tests len/cap, compares against
// nil, or tests the ok of a map lookup. Allocation behind such a guard
// runs once per element or only while a buffer grows — amortized zero on
// a steady-state hot path.
func (w *factWalker) isAmortGuard(cond ast.Expr, init ast.Stmt) bool {
	if init != nil {
		mapLookup := false
		ast.Inspect(init, func(n ast.Node) bool {
			if ix, ok := n.(*ast.IndexExpr); ok {
				if tv, ok := w.p.Info.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						mapLookup = true
					}
				}
			}
			return !mapLookup
		})
		if mapLookup {
			return true
		}
	}
	if cond == nil {
		return false
	}
	guard := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := w.p.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					guard = true
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if isNilIdent(x.X) || isNilIdent(x.Y) {
					guard = true
				}
			}
		}
		return !guard
	})
	return guard
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control out
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// spawn analyses one go statement's call subtree for lifecycle signals.
func (w *factWalker) spawn(gs *ast.GoStmt) Spawn {
	sp := Spawn{Pos: gs.Pos()}
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if fn, ok := w.p.Info.Uses[x].(*types.Func); ok && w.m.funcs[fn] != nil {
				sp.Callees = append(sp.Callees, fn)
			}
			if obj, ok := w.p.Info.Uses[x].(*types.Var); ok {
				if isNamedType(obj.Type(), "sync", "WaitGroup") {
					sp.SeesWaitGroup = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, ok := w.p.Info.Uses[id].(*types.Builtin); ok {
					sp.SeesChannel = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sp.SeesChannel = true
			}
		case *ast.SendStmt:
			sp.SeesChannel = true
		case *ast.RangeStmt:
			if tv, ok := w.p.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					sp.SeesChannel = true
				}
			}
		case *ast.SelectStmt:
			sp.SeesChannel = true
		}
		if e, ok := n.(ast.Expr); ok {
			if t := w.p.Info.TypeOf(e); t != nil {
				if isNamedType(t, "context", "Context") {
					sp.SeesContext = true
				}
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					sp.SeesChannel = true
				}
			}
		}
		return true
	})
	return sp
}
