package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "/mod/internal/a.go", Line: 10, Column: 2}, Rule: "obsring", Msg: "allocates"},
		{Pos: token.Position{Filename: "/mod/internal/b.go", Line: 3, Column: 1}, Rule: "floateq", Msg: "compares"},
	}
	rel := func(name string) string { return strings.TrimPrefix(name, "/mod/") }

	data, err := MarshalBaseline(findings, rel)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 2 {
		t.Fatalf("baseline has %d entries, want 2", bl.Len())
	}

	// The same findings on different lines are still covered: the key
	// ignores position so unrelated edits cannot invalidate the file.
	moved := []Finding{
		{Pos: token.Position{Filename: "/mod/internal/a.go", Line: 99, Column: 7}, Rule: "obsring", Msg: "allocates"},
		{Pos: token.Position{Filename: "/mod/internal/b.go", Line: 1, Column: 1}, Rule: "floateq", Msg: "compares"},
		{Pos: token.Position{Filename: "/mod/internal/c.go", Line: 1, Column: 1}, Rule: "obsring", Msg: "new finding"},
	}
	kept := bl.Filter(moved, rel)
	if len(kept) != 1 || kept[0].Msg != "new finding" {
		t.Fatalf("Filter kept %v, want only the new finding", kept)
	}
}

func TestBaselineMissingAndInvalid(t *testing.T) {
	bl, err := ReadBaseline("")
	if err != nil || bl.Len() != 0 {
		t.Fatalf("empty path: %v %d", err, bl.Len())
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	v9 := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(v9, []byte(`{"version":9,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(v9); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestBaselineMarshalIsSortedAndDeduplicated(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "b.go", Line: 2}, Rule: "r", Msg: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 9}, Rule: "r", Msg: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 1}, Rule: "r", Msg: "m"}, // dup of previous by key
	}
	id := func(s string) string { return s }
	data, err := MarshalBaseline(findings, id)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Count(s, `"a.go"`) != 1 {
		t.Errorf("duplicate entries not collapsed:\n%s", s)
	}
	if strings.Index(s, `"a.go"`) > strings.Index(s, `"b.go"`) {
		t.Errorf("entries not sorted:\n%s", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("baseline file should end with a newline")
	}
}
