// Package lint is a stdlib-only static-analysis framework (go/ast +
// go/types, no external dependencies) with dirsim-specific rules.
//
// The paper's methodology — measure event frequencies once, weight them
// with hardware costs — is only meaningful if every simulator run is
// deterministic and every protocol transition is sound. The rules here
// guard those properties statically, before a run, complementing the
// dynamic checks (oracle tests, exhaustive enumeration, internal/mc):
//
//   - determinism: no ordered output built from map iteration, no global
//     math/rand or time.Now in internal packages, no ==/!= on floats;
//   - protocol hygiene: state-enum switches are exhaustive, constructor
//     errors are checked, the EngineNames/NewByName registry is closed
//     under both directions;
//   - concurrency: goroutines must not assign to captured variables
//     (the study worker pattern — parameters in, indexed slots out — is
//     the sanctioned shape), and range loops must not fan out one
//     goroutine per element (a fixed worker pool or a semaphore acquired
//     before each spawn bounds concurrency);
//   - artifact hygiene: result files must be written through
//     internal/atomicio's temp+fsync+rename helpers, never created in
//     place, so a crash cannot leave a torn CSV, table or trace;
//   - service hygiene: every http.Server bounds header reads with
//     ReadHeaderTimeout, and HTTP handlers never spawn goroutines that
//     reference no context — detached work can observe neither client
//     disconnect nor graceful shutdown;
//   - observability hygiene: the flight recorder's Emit and the obs
//     histograms' Observe/ObserveN hot paths (and their same-package
//     callees) never allocate, keeping tracing within its overhead
//     budget.
//
// Drive it with cmd/dirsimlint or embed it: Load packages, Run rules,
// print Findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding as "file:line:col: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package presented to rules.
type Package struct {
	// Path is the import path, Module the module path it belongs to.
	Path, Module string
	// Root is the module root directory on disk (empty for packages
	// synthesized in tests); output formats use it to relativize
	// finding paths.
	Root  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// findingf creates a Finding at pos.
func (p *Package) findingf(pos token.Pos, rule, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// inModuleInternal reports whether the package lives under an internal/
// tree of its module (where the strict determinism rules apply).
func (p *Package) inModuleInternal() bool {
	rest, ok := strings.CutPrefix(p.Path, p.Module+"/")
	if !ok {
		return false
	}
	return rest == "internal" || strings.HasPrefix(rest, "internal/")
}

// Rule is one static check: a PackageRule walks one package at a time, a
// ModuleRule receives the whole loaded module with its call graph. Every
// rule implements exactly one of the two.
type Rule interface {
	// Name is the short identifier printed with each finding.
	Name() string
	// Doc is a one-line description of what the rule catches.
	Doc() string
}

// PackageRule is a rule whose findings are derivable from one package.
type PackageRule interface {
	Rule
	// Check analyses one package.
	Check(p *Package) []Finding
}

// ModuleRule is a rule that needs cross-package facts: the module call
// graph and its per-function summaries, built once per Run.
type ModuleRule interface {
	Rule
	// CheckModule analyses the whole module.
	CheckModule(m *Module) []Finding
}

// DefaultRules returns every dirsim rule.
func DefaultRules() []Rule {
	return []Rule{
		MapOrderRule{},
		NondeterminismRule{},
		FloatEqRule{},
		StateSwitchRule{},
		CtorErrRule{},
		EngineRegistryRule{},
		GoCaptureRule{},
		GoPoolRule{},
		AtomicWriteRule{},
		HTTPServerRule{},
		ObsRingRule{},
		EnginePurityRule{},
		MapStateRule{},
		LockCheckRule{},
		CtxFlowRule{},
	}
}

// Run applies rules to every package and returns the findings sorted by
// position, rule, then message, so output is stable run to run. The
// module call graph is built once and shared by every ModuleRule.
func Run(pkgs []*Package, rules []Rule) []Finding {
	if rules == nil {
		rules = DefaultRules()
	}
	var mod *Module
	var out []Finding
	for _, r := range rules {
		mr, ok := r.(ModuleRule)
		if !ok {
			continue
		}
		if mod == nil {
			mod = NewModule(pkgs)
		}
		out = append(out, mr.CheckModule(mod)...)
	}
	for _, p := range pkgs {
		for _, r := range rules {
			if pr, ok := r.(PackageRule); ok {
				out = append(out, pr.Check(p)...)
			}
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by position, rule, then message — the
// stable order Run emits and the driver restores after filtering.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// pkgNameOf resolves an identifier to the package it names, or nil.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj
	}
	return nil
}

// selectorPkgFunc reports whether call invokes the package-level function
// pkgPath.name, e.g. ("sort", "Slice").
func selectorPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := pkgNameOf(info, id)
	return pn != nil && pn.Imported().Path() == pkgPath
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (or an untyped float constant).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
