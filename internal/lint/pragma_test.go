package lint

import (
	"go/token"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text          string
		ok, malformed bool
		rule, reason  string
	}{
		{"//lint:ignore obsring ring grows only at startup", true, false, "obsring", "ring grows only at startup"},
		{"//lint:ignore * vendored verbatim", true, false, "*", "vendored verbatim"},
		{"//lint:ignore\tfloateq\ttolerance checked above", true, false, "floateq", "tolerance checked above"},
		{"//lint:ignore floateq", true, true, "", ""},
		{"//lint:ignore", true, true, "", ""},
		{"//lint:ignore   ", true, true, "", ""},
		{"// lint:ignore floateq spaced out", false, false, "", ""},
		{"//lint:ignored floateq wrong directive", false, false, "", ""},
		{"//lint:file-ignore floateq other directive", false, false, "", ""},
		{"// plain comment", false, false, "", ""},
	}
	for _, c := range cases {
		p, ok, malformed := ParseIgnore(c.text)
		if ok != c.ok || malformed != c.malformed {
			t.Errorf("ParseIgnore(%q) = ok %v malformed %v, want %v %v", c.text, ok, malformed, c.ok, c.malformed)
			continue
		}
		if ok && !malformed && (p.Rule != c.rule || p.Reason != c.reason) {
			t.Errorf("ParseIgnore(%q) = rule %q reason %q, want %q %q", c.text, p.Rule, p.Reason, c.rule, c.reason)
		}
	}
}

// FuzzParseIgnore checks the parser never panics and keeps its
// invariants on arbitrary comment text.
func FuzzParseIgnore(f *testing.F) {
	f.Add("//lint:ignore obsring because reasons")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore *")
	f.Add("//lint:ignore \t \t ")
	f.Add("// not a pragma")
	f.Add("//lint:ignoreX tail")
	f.Add("//lint:ignore rule with a much longer justification text")
	f.Fuzz(func(t *testing.T, text string) {
		p, ok, malformed := ParseIgnore(text)
		if !ok && malformed {
			t.Fatalf("ParseIgnore(%q): malformed implies ok", text)
		}
		if !ok || malformed {
			if p.Rule != "" || p.Reason != "" {
				t.Fatalf("ParseIgnore(%q): non-usable result carries data: %+v", text, p)
			}
			return
		}
		if p.Rule == "" || p.Reason == "" {
			t.Fatalf("ParseIgnore(%q): usable pragma missing rule or reason: %+v", text, p)
		}
		if !utf8.ValidString(text) {
			return
		}
		if !strings.Contains(text, p.Rule) || !strings.Contains(text, p.Reason) {
			t.Fatalf("ParseIgnore(%q): rule/reason not substrings: %+v", text, p)
		}
	})
}

func TestSuppress(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	findings := []Finding{
		{Pos: pos("a.go", 10), Rule: "obsring", Msg: "allocates"},
		{Pos: pos("a.go", 20), Rule: "floateq", Msg: "compares"},
		{Pos: pos("b.go", 10), Rule: "obsring", Msg: "allocates"},
	}
	pragmas := []Pragma{
		// Line above the a.go:10 finding: suppresses it.
		{Pos: pos("a.go", 9), Rule: "obsring", Reason: "preallocated"},
		// Wrong rule on the right line: suppresses nothing.
		{Pos: pos("a.go", 20), Rule: "obsring", Reason: "stale"},
	}
	got := Suppress(findings, pragmas)
	var rules []string
	unused := 0
	for _, f := range got {
		rules = append(rules, f.Rule)
		if f.Rule == "suppression" {
			unused++
			if !strings.Contains(f.Msg, "unused suppression") {
				t.Errorf("unexpected suppression message: %v", f)
			}
		}
	}
	// a.go:10 suppressed; floateq and b.go survive; one unused pragma.
	if len(got) != 3 || unused != 1 {
		t.Fatalf("Suppress = %v (rules %v), want 2 survivors + 1 unused-pragma finding", got, rules)
	}
	for _, f := range got {
		if f.Rule == "obsring" && f.Pos.Filename == "a.go" {
			t.Errorf("suppressed finding survived: %v", f)
		}
	}
}

func TestSuppressWildcardAndSameLine(t *testing.T) {
	pos := token.Position{Filename: "a.go", Line: 5, Column: 40}
	findings := []Finding{{Pos: pos, Rule: "maporder", Msg: "m"}}
	pragmas := []Pragma{{Pos: token.Position{Filename: "a.go", Line: 5, Column: 60}, Rule: "*", Reason: "demo"}}
	if got := Suppress(findings, pragmas); len(got) != 0 {
		t.Fatalf("trailing wildcard pragma should suppress: %v", got)
	}
}
