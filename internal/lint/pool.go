package lint

import (
	"go/ast"
	"go/types"
)

// GoPoolRule flags unbounded goroutine fan-out in the module's internal
// packages: a `go func(){...}()` inside a range loop whose closure uses a
// captured sync.WaitGroup spawns one goroutine per element — the bug that
// let ParallelSeedSweep launch every seed at once. The sanctioned shapes
// are a fixed worker pool (a 3-clause `for w := 0; w < workers; w++` spawn
// loop pulling work from a shared queue, as internal/sim and
// internal/runner do) or a semaphore send before each spawn.
type GoPoolRule struct{}

// Name implements Rule.
func (GoPoolRule) Name() string { return "gopool" }

// Doc implements Rule.
func (GoPoolRule) Doc() string {
	return "per-element goroutine fan-out in a range loop (use a bounded worker pool or acquire a semaphore before spawning)"
}

// Check implements Rule.
func (GoPoolRule) Check(p *Package) []Finding {
	if !p.inModuleInternal() {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			out = append(out, checkRangeSpawn(p, rs)...)
			return true
		})
	}
	return out
}

// checkRangeSpawn walks one range body in source order. A channel send
// seen before the go statement is taken as a semaphore acquire and
// silences the rule; a send inside the spawned goroutine does not bound
// the spawn rate and keeps it firing.
func checkRangeSpawn(p *Package, rs *ast.RangeStmt) []Finding {
	var out []Finding
	acquired := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			return false // nested ranges get their own walk
		case *ast.SendStmt:
			acquired = true
		case *ast.GoStmt:
			lit, ok := s.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !acquired && usesCapturedWaitGroup(p.Info, lit) {
				out = append(out, p.findingf(s.Pos(), "gopool",
					"goroutine per range element with a captured WaitGroup is unbounded; use a fixed worker pool or send on a semaphore before go"))
			}
			return false // sends inside the goroutine don't bound the spawn
		}
		return true
	})
	return out
}

// usesCapturedWaitGroup reports whether lit references a sync.WaitGroup
// (or pointer to one) declared outside the literal.
func usesCapturedWaitGroup(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !isWaitGroup(v.Type()) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		found = true
		return false
	})
	return found
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
