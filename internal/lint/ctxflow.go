package lint

// CtxFlowRule checks context discipline in the long-running service
// layers — internal/server (the simulation service) and internal/runner
// (the study worker pool). Those are the only places dirsim keeps
// goroutines alive across requests, and a goroutine there that can
// observe neither a context nor a channel outlives graceful shutdown:
// the process drains, the test binary exits, and the work keeps running
// (or leaks) with no way to tell.
//
// Two findings, both computed from the module call graph:
//
//   - a go statement whose spawned subtree sees no context, no channel
//     operation and no WaitGroup, and none of whose callees (transitively)
//     observes a context or is bounded by a channel — nothing can ever
//     stop it;
//   - a function that accepts a context.Context but never uses it —
//     callers believe cancellation propagates, and it silently does not.
type CtxFlowRule struct{}

// ctxFlowPkgs are the module-relative packages the rule applies to: the
// layers that own long-lived goroutines.
var ctxFlowPkgs = []string{"internal/cluster", "internal/runner", "internal/server"}

// Name implements Rule.
func (CtxFlowRule) Name() string { return "ctxflow" }

// Doc implements Rule.
func (CtxFlowRule) Doc() string {
	return "server/runner goroutine with no cancellation path, or a context parameter that is never observed"
}

// CheckModule implements ModuleRule.
func (CtxFlowRule) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, rel := range ctxFlowPkgs {
		p := m.Package(rel)
		if p == nil {
			continue
		}
		for _, fi := range m.Funcs() {
			if fi.Pkg != p {
				continue
			}
			for _, sp := range fi.Spawns {
				if spawnBounded(m, sp) {
					continue
				}
				out = append(out, p.findingf(sp.Pos, "ctxflow",
					"goroutine spawned in %s observes no context, channel or WaitGroup — nothing can stop it on shutdown; thread a context or bound it with a channel",
					fi.Decl.Name.Name))
			}
			if fi.AcceptsContext && !fi.ObservesContext {
				out = append(out, p.findingf(fi.Decl.Name.Pos(), "ctxflow",
					"%s accepts a context.Context but never observes it — callers expect cancellation to propagate here",
					fi.Decl.Name.Name))
			}
		}
	}
	return out
}

// spawnBounded reports whether a spawned goroutine has some lifecycle
// signal: it sees a context, a channel operation or a WaitGroup directly,
// or one of its callees transitively observes a context or has its
// lifetime bounded by a channel (range/receive/select).
func spawnBounded(m *Module, sp Spawn) bool {
	if sp.SeesContext || sp.SeesChannel || sp.SeesWaitGroup {
		return true
	}
	for _, fi := range m.Reachable(sp.Callees...) {
		if fi.ObservesContext || fi.RangesOverChannel {
			return true
		}
	}
	return false
}
