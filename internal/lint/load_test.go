package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes files under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadParseError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":          "module example.com/parsefail\n\ngo 1.21\n",
		"internal/p/p.go": "package p\n\nfunc Broken( {\n", // unbalanced
	})
	_, err := Load(root, "./...")
	if err == nil {
		t.Fatal("malformed source loaded without error")
	}
	if !strings.Contains(err.Error(), "p.go") {
		t.Errorf("error does not name the file: %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":          "module example.com/typefail\n\ngo 1.21\n",
		"internal/p/p.go": "package p\n\nfunc Mismatch() int { return \"nope\" }\n",
	})
	_, err := Load(root, "./...")
	if err == nil {
		t.Fatal("type error loaded without error")
	}
	if !strings.Contains(err.Error(), "type-checking") || !strings.Contains(err.Error(), "example.com/typefail/internal/p") {
		t.Errorf("error does not identify the package: %v", err)
	}
}

func TestLoadBrokenDependencyFailsImporter(t *testing.T) {
	// The broken package is only reached through an import, so the error
	// must surface through the importer path too.
	root := writeTree(t, map[string]string{
		"go.mod":            "module example.com/depfail\n\ngo 1.21\n",
		"internal/bad/b.go": "package bad\n\nvar X undeclared\n",
		"internal/ok/ok.go": "package ok\n\nimport \"example.com/depfail/internal/bad\"\n\nvar Y = bad.X\n",
	})
	if _, err := Load(root, "./internal/ok"); err == nil {
		t.Fatal("broken dependency loaded without error")
	}
}

func TestLoadNoModule(t *testing.T) {
	// t.TempDir lives under /tmp, which has no go.mod above it.
	if _, err := Load(t.TempDir(), "./..."); err == nil {
		t.Fatal("directory without go.mod loaded without error")
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":          "module example.com/cyc\n\ngo 1.21\n",
		"internal/a/a.go": "package a\n\nimport \"example.com/cyc/internal/b\"\n\nvar X = b.Y\n",
		"internal/b/b.go": "package b\n\nimport \"example.com/cyc/internal/a\"\n\nvar Y = a.X\n",
	})
	_, err := Load(root, "./...")
	if err == nil {
		t.Fatal("import cycle loaded without error")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error does not mention the cycle: %v", err)
	}
}

func TestLoadSetsRootAndKeepsComments(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":          "module example.com/meta\n\ngo 1.21\n",
		"internal/p/p.go": "package p\n\n//lint:ignore maporder demo reason\nfunc F() {}\n",
	})
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages", len(pkgs))
	}
	// Symlink-resolved temp dirs may differ textually; compare resolved.
	wantRoot, _ := filepath.EvalSymlinks(root)
	gotRoot, _ := filepath.EvalSymlinks(pkgs[0].Root)
	if gotRoot != wantRoot {
		t.Errorf("Root = %q, want %q", pkgs[0].Root, root)
	}
	pragmas, bad := CollectPragmas(pkgs)
	if len(bad) != 0 {
		t.Fatalf("malformed pragmas: %v", bad)
	}
	if len(pragmas) != 1 || pragmas[0].Rule != "maporder" || pragmas[0].Reason != "demo reason" {
		t.Fatalf("pragmas = %+v, want the //lint:ignore directive (loader must keep comments)", pragmas)
	}
}
