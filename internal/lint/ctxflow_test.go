package lint

import (
	"strings"
	"testing"
)

// The fixtures live at dirsim/internal/server because the rule is scoped
// to the long-running service layers.

func TestCtxFlowFlagsUnboundedGoroutine(t *testing.T) {
	src := `package server
func work() {}
func Start() {
	go work()
}
`
	fs := lintSrc(t, "dirsim/internal/server", src, nil, CtxFlowRule{})
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "nothing can stop it") {
		t.Fatalf("unbounded goroutine not flagged: %v", fs)
	}
}

func TestCtxFlowAcceptsLifecycleIdioms(t *testing.T) {
	src := `package server
import (
	"context"
	"sync"
)
type Server struct {
	queue chan int
	wg    sync.WaitGroup
}
func (s *Server) executor() {
	for range s.queue {
	}
}
func (s *Server) Start() {
	go s.executor()
}
func (s *Server) Drain() chan struct{} {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	return done
}
func Run(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
`
	fs := lintSrc(t, "dirsim/internal/server", src, nil, CtxFlowRule{})
	if len(fs) != 0 {
		t.Fatalf("channel/WaitGroup/context-bounded goroutines should pass: %v", fs)
	}
}

func TestCtxFlowTransitiveCalleeObservesContext(t *testing.T) {
	// The goroutine's own subtree shows no signal, but its callee ranges
	// over a channel, so its lifetime is bounded.
	src := `package server
type Pool struct{ jobs chan func() }
func (p *Pool) loop() {
	for job := range p.jobs {
		job()
	}
}
func (p *Pool) dispatch() { p.loop() }
func (p *Pool) Start()    { go p.dispatch() }
`
	fs := lintSrc(t, "dirsim/internal/server", src, nil, CtxFlowRule{})
	if len(fs) != 0 {
		t.Fatalf("transitively channel-bounded goroutine should pass: %v", fs)
	}
}

func TestCtxFlowFlagsIgnoredContext(t *testing.T) {
	src := `package server
import "context"
func Serve(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
`
	fs := lintSrc(t, "dirsim/internal/server", src, nil, CtxFlowRule{})
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "never observes it") {
		t.Fatalf("ignored context parameter not flagged: %v", fs)
	}
}

func TestCtxFlowScopedToServiceLayers(t *testing.T) {
	// The same unbounded spawn in a non-service package is out of scope
	// (other rules own goroutine hygiene there).
	src := `package fix
func work() {}
func Start() {
	go work()
}
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, CtxFlowRule{})
	if len(fs) != 0 {
		t.Fatalf("rule fired outside its scoped packages: %v", fs)
	}
}
