package lint

import (
	"strings"
	"testing"
)

func TestHTTPServerRuleServerLiteral(t *testing.T) {
	fire := `package fix
import (
	"net/http"
	"time"
)
func bare() *http.Server {
	return &http.Server{Addr: ":8080"}
}
func alsoBare() http.Server {
	return http.Server{}
}
var _ = time.Second
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, HTTPServerRule{})
	wantFindings(t, fs, HTTPServerRule{}, 2)
	if !strings.Contains(fs[0].Msg, "ReadHeaderTimeout") {
		t.Errorf("finding should name the missing field, got %v", fs[0])
	}

	silent := `package fix
import (
	"net/http"
	"time"
)
func bounded() *http.Server {
	return &http.Server{Addr: ":8080", ReadHeaderTimeout: 5 * time.Second}
}
type notAServer struct{ Addr string }
func other() notAServer {
	return notAServer{Addr: ":8080"}
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, HTTPServerRule{}), HTTPServerRule{}, 0)
}

func TestHTTPServerRuleOutboundClient(t *testing.T) {
	fire := `package fix
import "net/http"
func naked() *http.Client {
	return &http.Client{}
}
func deflt() *http.Client {
	return http.DefaultClient
}
func helper() {
	http.Get("http://example.invalid/")
	http.Post("http://example.invalid/", "text/plain", nil)
	http.Head("http://example.invalid/")
	http.PostForm("http://example.invalid/", nil)
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, HTTPServerRule{})
	wantFindings(t, fs, HTTPServerRule{}, 6)
	if !strings.Contains(fs[0].Msg, "Timeout") {
		t.Errorf("finding should name the missing deadline, got %v", fs[0])
	}

	silent := `package fix
import (
	"net/http"
	"time"
)
func timed() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}
func bounded() *http.Client {
	// An explicit Transport is the caller saying "my deadlines are
	// per-request contexts"; the dial bounds still apply.
	return &http.Client{Transport: &http.Transport{}}
}
type notAClient struct{ Timeout int }
func other() notAClient {
	return notAClient{}
}
func okNames() {
	// Same selector names on a non-http package value must not fire.
	c := timed()
	_, _ = c.Get("http://example.invalid/")
	_ = http.StatusOK
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, HTTPServerRule{}), HTTPServerRule{}, 0)
}

func TestHTTPServerRuleHandlerGoroutine(t *testing.T) {
	fire := `package fix
import "net/http"
func audit(s string) {}
func handler(w http.ResponseWriter, r *http.Request) {
	go audit(r.URL.Path)
	w.WriteHeader(http.StatusOK)
}
func register() {
	http.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		go func() {
			audit("x")
		}()
	})
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, HTTPServerRule{})
	wantFindings(t, fs, HTTPServerRule{}, 2)
	if !strings.Contains(fs[0].Msg, "context") {
		t.Errorf("finding should mention the missing context, got %v", fs[0])
	}

	silent := `package fix
import (
	"context"
	"net/http"
)
func work(ctx context.Context, s string) {}
func handler(w http.ResponseWriter, r *http.Request) {
	// Direct argument: the goroutine call carries the request context.
	go work(r.Context(), r.URL.Path)
}
func closureHandler(w http.ResponseWriter, r *http.Request) {
	// Captured inside the spawned literal's body.
	ctx := r.Context()
	go func() {
		work(ctx, "y")
	}()
}
func notAHandler(a string, b int) {
	// Goroutines outside handler signatures are another rule's business.
	go func() {}()
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, HTTPServerRule{}), HTTPServerRule{}, 0)
}
