package lint

import (
	"strings"
	"testing"
)

func TestHTTPServerRuleServerLiteral(t *testing.T) {
	fire := `package fix
import (
	"net/http"
	"time"
)
func bare() *http.Server {
	return &http.Server{Addr: ":8080"}
}
func alsoBare() http.Server {
	return http.Server{}
}
var _ = time.Second
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, HTTPServerRule{})
	wantFindings(t, fs, HTTPServerRule{}, 2)
	if !strings.Contains(fs[0].Msg, "ReadHeaderTimeout") {
		t.Errorf("finding should name the missing field, got %v", fs[0])
	}

	silent := `package fix
import (
	"net/http"
	"time"
)
func bounded() *http.Server {
	return &http.Server{Addr: ":8080", ReadHeaderTimeout: 5 * time.Second}
}
type notAServer struct{ Addr string }
func other() notAServer {
	return notAServer{Addr: ":8080"}
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, HTTPServerRule{}), HTTPServerRule{}, 0)
}

func TestHTTPServerRuleHandlerGoroutine(t *testing.T) {
	fire := `package fix
import "net/http"
func audit(s string) {}
func handler(w http.ResponseWriter, r *http.Request) {
	go audit(r.URL.Path)
	w.WriteHeader(http.StatusOK)
}
func register() {
	http.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		go func() {
			audit("x")
		}()
	})
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, HTTPServerRule{})
	wantFindings(t, fs, HTTPServerRule{}, 2)
	if !strings.Contains(fs[0].Msg, "context") {
		t.Errorf("finding should mention the missing context, got %v", fs[0])
	}

	silent := `package fix
import (
	"context"
	"net/http"
)
func work(ctx context.Context, s string) {}
func handler(w http.ResponseWriter, r *http.Request) {
	// Direct argument: the goroutine call carries the request context.
	go work(r.Context(), r.URL.Path)
}
func closureHandler(w http.ResponseWriter, r *http.Request) {
	// Captured inside the spawned literal's body.
	ctx := r.Context()
	go func() {
		work(ctx, "y")
	}()
}
func notAHandler(a string, b int) {
	// Goroutines outside handler signatures are another rule's business.
	go func() {}()
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, HTTPServerRule{}), HTTPServerRule{}, 0)
}
