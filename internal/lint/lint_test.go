package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// memImporter type-checks in-memory fixture packages, delegating anything
// it does not know to the stdlib source importer.
type memImporter struct {
	fset *token.FileSet
	deps map[string]string
	done map[string]*types.Package
	base types.Importer
}

func (m *memImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.done[path]; ok {
		return pkg, nil
	}
	src, ok := m.deps[path]
	if !ok {
		return m.base.Import(path)
	}
	f, err := parser.ParseFile(m.fset, path+"/fix.go", src, 0)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: m}
	pkg, err := conf.Check(path, m.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, err
	}
	m.done[path] = pkg
	return pkg, nil
}

// lintSrc type-checks one fixture source at the given fake module import
// path (module "dirsim") and applies a single rule to it.
func lintSrc(t *testing.T, path, src string, deps map[string]string, r Rule) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	imp := &memImporter{
		fset: fset,
		deps: deps,
		done: map[string]*types.Package{},
	}
	imp.base = importer.ForCompiler(fset, "source", nil)
	f, err := parser.ParseFile(fset, path+"/fix.go", src, 0)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	p := &Package{Path: path, Module: "dirsim", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	return Run([]*Package{p}, []Rule{r})
}

// wantFindings asserts the rule fired count times, all under its own name.
func wantFindings(t *testing.T, fs []Finding, r Rule, count int) {
	t.Helper()
	if len(fs) != count {
		t.Fatalf("%s: got %d findings, want %d: %v", r.Name(), len(fs), count, fs)
	}
	for _, f := range fs {
		if f.Rule != r.Name() {
			t.Fatalf("finding under rule %q, want %q", f.Rule, r.Name())
		}
		if f.Pos.Line == 0 {
			t.Fatalf("finding %v has no position", f)
		}
	}
}

func TestMapOrderRule(t *testing.T) {
	fire := `package fix
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
func g(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, MapOrderRule{})
	wantFindings(t, fs, MapOrderRule{}, 2)
	if !strings.Contains(fs[0].Msg, "printing") {
		t.Errorf("first finding should be the print, got %v", fs[0])
	}
	if !strings.Contains(fs[1].Msg, "append to ks") {
		t.Errorf("second finding should name the slice, got %v", fs[1])
	}

	silent := `package fix
import "sort"
func g(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
func h(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, MapOrderRule{}), MapOrderRule{}, 0)
}

func TestNondeterminismRule(t *testing.T) {
	fire := `package fix
import (
	"math/rand"
	"time"
)
func f() (int, time.Time) {
	return rand.Intn(6), time.Now()
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, NondeterminismRule{})
	wantFindings(t, fs, NondeterminismRule{}, 2)

	silent := `package fix
import (
	"math/rand"
	"time"
)
func f(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
func g(d time.Duration) time.Duration { return 2 * d }
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, NondeterminismRule{}), NondeterminismRule{}, 0)

	// The rule is scoped to internal packages: a command may read the clock.
	wantFindings(t, lintSrc(t, "dirsim/cmd/fix", fire, nil, NondeterminismRule{}), NondeterminismRule{}, 0)
}

func TestFloatEqRule(t *testing.T) {
	fire := `package fix
func f(a, b float64) bool { return a == b }
func g(a float32) bool    { return a != 0 }
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", fire, nil, FloatEqRule{}), FloatEqRule{}, 2)

	silent := `package fix
import "math"
func f(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
func g(a, b int) bool     { return a == b }
func h(s string) bool     { return s == "x" }
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, FloatEqRule{}), FloatEqRule{}, 0)
}

func TestStateSwitchRule(t *testing.T) {
	fire := `package fix
type blockState uint8
const (
	sUncached blockState = iota
	sClean
	sDirty
)
func f(s blockState) int {
	switch s {
	case sUncached:
		return 0
	case sClean:
		return 1
	}
	return -1
}
`
	fs := lintSrc(t, "dirsim/internal/fix", fire, nil, StateSwitchRule{})
	wantFindings(t, fs, StateSwitchRule{}, 1)
	if !strings.Contains(fs[0].Msg, "sDirty") {
		t.Errorf("finding should name the missing constant: %v", fs[0])
	}

	silent := `package fix
type blockState uint8
const (
	sUncached blockState = iota
	sClean
	sDirty
	sInvalid = sUncached // alias: covering the value covers it
)
func exhaustive(s blockState) int {
	switch s {
	case sInvalid:
		return 0
	case sClean:
		return 1
	case sDirty:
		return 2
	}
	return -1
}
func defaulted(s blockState) int {
	switch s {
	case sClean:
		return 1
	default:
		return 0
	}
}
func notAnEnum(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, StateSwitchRule{}), StateSwitchRule{}, 0)
}

const ctorDep = `package dep
import "errors"
type Thing struct{}
func NewThing() (*Thing, error) { return nil, errors.New("boom") }
func NewCount() int             { return 0 }
`

func TestCtorErrRule(t *testing.T) {
	deps := map[string]string{"dirsim/internal/dep": ctorDep}
	fire := `package fix
import "dirsim/internal/dep"
func f() {
	dep.NewThing()
	_, _ = dep.NewThing()
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", fire, deps, CtorErrRule{}), CtorErrRule{}, 2)

	silent := `package fix
import "dirsim/internal/dep"
func f() (*dep.Thing, error) {
	t, err := dep.NewThing()
	if err != nil {
		return nil, err
	}
	n := dep.NewCount() // no error result: nothing to drop
	_ = n
	return t, nil
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, deps, CtorErrRule{}), CtorErrRule{}, 0)
}

func TestEngineRegistryRule(t *testing.T) {
	fire := `package coherence
import "errors"
func EngineNames() []string {
	return []string{"alpha", "ghost", "dir4nb", "competitive8"}
}
func NewByName(name string) (int, error) {
	switch name {
	case "alpha", "a":
		return 1, nil
	case "beta":
		return 2, nil
	}
	return 0, errors.New("unknown")
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", fire, nil, EngineRegistryRule{})
	wantFindings(t, fs, EngineRegistryRule{}, 2)
	joined := fs[0].Msg + " " + fs[1].Msg
	if !strings.Contains(joined, `"ghost"`) || !strings.Contains(joined, `"beta"`) {
		t.Errorf("findings should name ghost and beta: %v", fs)
	}

	silent := `package coherence
import "errors"
func EngineNames() []string {
	return []string{"alpha", "beta", "dir4nb"}
}
func NewByName(name string) (int, error) {
	switch name {
	case "alpha", "a":
		return 1, nil
	case "beta":
		return 2, nil
	}
	return 0, errors.New("unknown")
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/coherence", silent, nil, EngineRegistryRule{}), EngineRegistryRule{}, 0)

	// Packages without the registry pair are out of scope.
	other := `package fix
func EngineNames() []string { return []string{"x"} }
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", other, nil, EngineRegistryRule{}), EngineRegistryRule{}, 0)
}

func TestGoCaptureRule(t *testing.T) {
	fire := `package fix
func f() int {
	total := 0
	done := make(chan bool)
	go func() {
		total++
		total = 42
		done <- true
	}()
	<-done
	return total
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", fire, nil, GoCaptureRule{}), GoCaptureRule{}, 2)

	// The study worker pattern: parameters in, indexed slots out.
	silent := `package fix
import "sync"
func g(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			y := x * x
			out[i] = y
		}(i, x)
	}
	wg.Wait()
	return out
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, GoCaptureRule{}), GoCaptureRule{}, 0)
}

func TestGoPoolRule(t *testing.T) {
	// Two unbounded fan-outs: a bare per-element spawn, and one whose
	// semaphore is acquired inside the goroutine (which bounds nothing —
	// every goroutine is already running by then).
	fire := `package fix
import "sync"
func f(xs []int) {
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
func g(xs []int) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for range xs {
		wg.Add(1)
		go func() {
			sem <- struct{}{}
			defer wg.Done()
			<-sem
		}()
	}
	wg.Wait()
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", fire, nil, GoPoolRule{}), GoPoolRule{}, 2)

	// Sanctioned shapes: semaphore acquired before the spawn, a fixed
	// worker pool (3-clause loop), and a range spawn with no WaitGroup.
	silent := `package fix
import "sync"
func h(xs []int) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for range xs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			<-sem
		}()
	}
	wg.Wait()
}
func pool(xs []int, workers int) {
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	for _, x := range xs {
		jobs <- x
	}
	close(jobs)
	wg.Wait()
}
func fire(xs []int) {
	done := make(chan bool, len(xs))
	for range xs {
		go func() {
			done <- true
		}()
	}
	for range xs {
		<-done
	}
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/fix", silent, nil, GoPoolRule{}), GoPoolRule{}, 0)

	// The rule only polices the module's internal tree: package main in
	// cmd/ may fan out freely.
	wantFindings(t, lintSrc(t, "dirsim/cmd/fix", fire, nil, GoPoolRule{}), GoPoolRule{}, 0)
}

// TestLoad exercises the module loader end to end on a scratch module.
func TestLoad(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/scratch\n\ngo 1.21\n")
	write("internal/a/a.go", `package a
func Pi() float64 { return 3.14 }
func Same(x float64) bool { return x == Pi() }
`)
	write("internal/a/a_test.go", `package a
// Test files must not be loaded; this one would not even type-check.
var Broken undeclared
`)
	write("internal/b/b.go", `package b
import "example.com/scratch/internal/a"
func TwoPi() float64 { return 2 * a.Pi() }
`)

	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2: %v", len(pkgs), pkgs)
	}
	for i, want := range []string{"example.com/scratch/internal/a", "example.com/scratch/internal/b"} {
		if pkgs[i].Path != want {
			t.Errorf("pkgs[%d].Path = %q, want %q", i, pkgs[i].Path, want)
		}
		if pkgs[i].Module != "example.com/scratch" {
			t.Errorf("pkgs[%d].Module = %q", i, pkgs[i].Module)
		}
	}

	fs := Run(pkgs, DefaultRules())
	if len(fs) != 1 || fs[0].Rule != "floateq" {
		t.Fatalf("findings = %v, want one floateq in package a", fs)
	}
	if got := fs[0].String(); !strings.Contains(got, "a.go:3") || !strings.Contains(got, "floateq") {
		t.Errorf("finding renders as %q", got)
	}

	// Loading from a subdirectory finds the same module root.
	sub, err := Load(filepath.Join(root, "internal/b"), "./internal/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0].Path != "example.com/scratch/internal/a" {
		t.Fatalf("subdir load = %v", sub)
	}
}

func TestAtomicWriteRule(t *testing.T) {
	fire := `package fix
import "os"
func f() error {
	g, err := os.Create("results.csv")
	if err != nil {
		return err
	}
	defer g.Close()
	return os.WriteFile("manifest.json", []byte("{}"), 0o644)
}
`
	fs := lintSrc(t, "dirsim/cmd/fix", fire, nil, AtomicWriteRule{})
	wantFindings(t, fs, AtomicWriteRule{}, 2)
	if !strings.Contains(fs[0].Msg, "atomicio") {
		t.Errorf("finding should point at internal/atomicio, got %v", fs[0])
	}

	// The implementation package itself is exempt — it is the one place
	// allowed to touch os.Create.
	wantFindings(t, lintSrc(t, "dirsim/internal/atomicio", fire, nil, AtomicWriteRule{}), AtomicWriteRule{}, 0)

	// Reads and unrelated Create functions stay silent.
	silent := `package fix
import "os"
type maker struct{}
func (maker) Create(string) error { return nil }
func g(m maker) error {
	if _, err := os.ReadFile("in.csv"); err != nil {
		return err
	}
	return m.Create("out.csv")
}
`
	wantFindings(t, lintSrc(t, "dirsim/cmd/fix", silent, nil, AtomicWriteRule{}), AtomicWriteRule{}, 0)
}

// TestRunSorted pins the deterministic ordering of findings.
func TestRunSorted(t *testing.T) {
	src := `package fix
func f(a, b float64) (bool, bool, bool) {
	return b != a, a == b, a == 0
}
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, FloatEqRule{})
	wantFindings(t, fs, FloatEqRule{}, 3)
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Pos.Column > fs[i].Pos.Column {
			t.Fatalf("findings out of order: %v", fs)
		}
	}
}

// TestDefaultRulesDocumented keeps names and docs present and unique.
func TestDefaultRulesDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range DefaultRules() {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %T lacks a name or doc", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if len(seen) != 15 {
		t.Errorf("expected 15 rules, have %d", len(seen))
	}
}
