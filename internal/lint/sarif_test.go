package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestSARIFStructure validates the emitted document against the
// structural requirements of the SARIF 2.1.0 schema — required
// properties, types, and cross-references — without a network fetch: the
// checks below encode the schema clauses GitHub code scanning actually
// enforces (sarifLog.version/runs, run.tool.driver.name, result.ruleId/
// message/locations, physicalLocation.artifactLocation.uri, region
// startLine ≥ 1).
func TestSARIFStructure(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "/mod/internal/a.go", Line: 12, Column: 3}, Rule: "obsring", Msg: "allocates"},
		{Pos: token.Position{Filename: "/mod/internal/b.go", Line: 7, Column: 1}, Rule: "suppression", Msg: "unused suppression"},
	}
	rel := func(name string) string { return strings.TrimPrefix(name, "/mod/") }
	data, err := MarshalSARIF(findings, DefaultRules(), rel)
	if err != nil {
		t.Fatal(err)
	}

	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", doc["version"])
	}
	if s, _ := doc["$schema"].(string); !strings.Contains(s, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %v", doc["$schema"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want one run", doc["runs"])
	}
	run := runs[0].(map[string]any)

	driver, ok := run["tool"].(map[string]any)["driver"].(map[string]any)
	if !ok {
		t.Fatal("run.tool.driver missing")
	}
	if name, _ := driver["name"].(string); name != "dirsimlint" {
		t.Errorf("driver.name = %v", driver["name"])
	}
	ruleIDs := map[string]int{}
	rules, _ := driver["rules"].([]any)
	for i, r := range rules {
		rm := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Fatalf("rule %d has no id", i)
		}
		if sd, ok := rm["shortDescription"].(map[string]any); !ok || sd["text"] == "" {
			t.Errorf("rule %s lacks shortDescription.text", id)
		}
		ruleIDs[id] = i
	}

	results, ok := run["results"].([]any)
	if !ok || len(results) != len(findings) {
		t.Fatalf("results = %v, want %d entries", run["results"], len(findings))
	}
	for _, r := range results {
		res := r.(map[string]any)
		id, _ := res["ruleId"].(string)
		idx, inDriver := ruleIDs[id]
		if !inDriver {
			t.Errorf("result ruleId %q not declared in driver.rules", id)
		}
		if ri, _ := res["ruleIndex"].(float64); int(ri) != idx {
			t.Errorf("result ruleIndex %v does not match driver.rules position %d for %s", res["ruleIndex"], idx, id)
		}
		if lvl, _ := res["level"].(string); lvl != "error" && lvl != "warning" && lvl != "note" {
			t.Errorf("result level %q not a SARIF level", lvl)
		}
		msg, ok := res["message"].(map[string]any)
		if !ok || msg["text"] == "" {
			t.Errorf("result %s lacks message.text", id)
		}
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) != 1 {
			t.Fatalf("result %s lacks locations", id)
		}
		phys, ok := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if !ok {
			t.Fatalf("result %s lacks physicalLocation", id)
		}
		uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string)
		if uri == "" || strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("artifact uri %q must be relative and slash-separated", uri)
		}
		region, ok := phys["region"].(map[string]any)
		if !ok {
			t.Fatalf("result %s lacks region", id)
		}
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("startLine %v < 1", region["startLine"])
		}
	}

	// The suppression pseudo-rule was referenced, so it must have been
	// appended to driver.rules.
	if _, ok := ruleIDs["suppression"]; !ok {
		t.Error("suppression pseudo-rule not declared")
	}
}

// TestSARIFEmptyIsValid keeps the clean-run document well-formed: GitHub
// rejects runs whose results property is null.
func TestSARIFEmptyIsValid(t *testing.T) {
	data, err := MarshalSARIF(nil, DefaultRules(), func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runs[0].Results == nil {
		t.Error("results must be an empty array, not null")
	}
	if !strings.Contains(string(data), `"results": []`) {
		t.Errorf("results not serialized as []:\n%s", data)
	}
}

// TestSARIFDeterministic pins byte-for-byte stability: CI diffs uploads.
func TestSARIFDeterministic(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "x.go", Line: 1, Column: 1}, Rule: "maporder", Msg: "m"},
	}
	id := func(s string) string { return s }
	a, err := MarshalSARIF(findings, DefaultRules(), id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalSARIF(findings, DefaultRules(), id)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("SARIF output is not deterministic")
	}
}
