package lint

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression pragmas. A comment of the form
//
//	//lint:ignore <rule> <reason>
//
// suppresses findings of <rule> on the comment's own line or the line
// directly below it (so it works both as a trailing comment and on its
// own line above the offending statement). The reason is mandatory: a
// suppression without a recorded justification is itself a finding, as
// is a pragma that suppresses nothing — stale ignores otherwise
// accumulate and silently mask regressions.

// Pragma is one parsed //lint:ignore directive.
type Pragma struct {
	// Pos is the comment's position.
	Pos token.Position
	// Rule is the rule name being suppressed; "*" matches every rule.
	Rule string
	// Reason is the mandatory justification text.
	Reason string
}

// pragmaPrefix introduces a suppression comment. No space after // — the
// directive convention shared with //go:build and friends.
const pragmaPrefix = "//lint:ignore"

// ParseIgnore parses one comment's text. It returns ok = false when the
// comment is not a //lint:ignore directive at all, and malformed = true
// when it is one but lacks a rule or a reason.
func ParseIgnore(text string) (p Pragma, ok, malformed bool) {
	if !strings.HasPrefix(text, pragmaPrefix) {
		return Pragma{}, false, false
	}
	rest := text[len(pragmaPrefix):]
	// "//lint:ignoreX" is some other (unknown) directive, not ours.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Pragma{}, false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return Pragma{}, true, true
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	return Pragma{Rule: fields[0], Reason: reason}, true, false
}

// CollectPragmas gathers every //lint:ignore directive in pkgs, plus a
// finding for each malformed one. Pragmas are returned in position order.
func CollectPragmas(pkgs []*Package) ([]Pragma, []Finding) {
	var pragmas []Pragma
	var bad []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pr, ok, malformed := ParseIgnore(c.Text)
					if !ok {
						continue
					}
					if malformed {
						bad = append(bad, p.findingf(c.Pos(), "suppression",
							"malformed suppression: want %s <rule> <reason>", pragmaPrefix))
						continue
					}
					pr.Pos = p.Fset.Position(c.Pos())
					pragmas = append(pragmas, pr)
				}
			}
		}
	}
	sort.Slice(pragmas, func(i, j int) bool {
		a, b := pragmas[i], pragmas[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return pragmas, bad
}

// Suppress drops the findings covered by pragmas and returns the survivors
// together with one "suppression" finding per pragma that matched nothing
// — an unused ignore is stale and must be deleted, not shipped.
func Suppress(findings []Finding, pragmas []Pragma) []Finding {
	used := make([]bool, len(pragmas))
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for i, pr := range pragmas {
			if pr.Pos.Filename != f.Pos.Filename {
				continue
			}
			if f.Pos.Line != pr.Pos.Line && f.Pos.Line != pr.Pos.Line+1 {
				continue
			}
			if pr.Rule != "*" && pr.Rule != f.Rule {
				continue
			}
			used[i] = true
			suppressed = true
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for i, pr := range pragmas {
		if !used[i] {
			kept = append(kept, Finding{Pos: pr.Pos, Rule: "suppression",
				Msg: "unused suppression for rule " + pr.Rule + " — no finding matches; delete the pragma"})
		}
	}
	return kept
}
