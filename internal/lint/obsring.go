package lint

import (
	"go/types"
	"sort"
)

// ObsRingRule flags allocation on the observability hot path: the
// per-event entry points in internal/flight, internal/obs and
// internal/otrace — Emit, Observe, ObserveN, span Start/Finish — and
// every module function reachable from them must not allocate. The
// observability contract is that tracing a run costs one store per
// event, histograms cost three atomic adds, and a fabric span costs
// two clock reads and a ring store; a make/append/new, a slice or map
// literal, a &composite literal or a closure on that path turns every
// simulated reference into a heap allocation and silently destroys the
// <5% tracing-overhead budget the benchmarks enforce.
//
// Unlike the engine hot path (see EnginePurityRule), the observability
// path has no growth phase: rings and histogram buckets are fully
// preallocated, so even amortized (guarded) allocation is a finding.
type ObsRingRule struct{}

// obsRingRoots maps each guarded module-relative package to its
// hot-path entry points, by declared function (or method) name.
var obsRingRoots = map[string]map[string]bool{
	"internal/flight": {"Emit": true},
	"internal/obs":    {"Observe": true, "ObserveN": true},
	"internal/otrace": {"Start": true, "Finish": true},
}

// Name implements Rule.
func (ObsRingRule) Name() string { return "obsring" }

// Doc implements Rule.
func (ObsRingRule) Doc() string {
	return "allocation inside flight.Emit/obs.Observe hot paths (rings and histograms must record without allocating)"
}

// CheckModule implements ModuleRule: walk the call graph from every
// root declared in the guarded packages and flag each allocation fact
// in a reachable function.
func (ObsRingRule) CheckModule(m *Module) []Finding {
	pkgs := make([]string, 0, len(obsRingRoots))
	for rel := range obsRingRoots {
		pkgs = append(pkgs, rel)
	}
	sort.Strings(pkgs)
	var roots []*types.Func
	for _, rel := range pkgs {
		p := m.Package(rel)
		if p == nil {
			continue
		}
		for _, fi := range m.Funcs() {
			if fi.Pkg == p && obsRingRoots[rel][fi.Decl.Name.Name] {
				roots = append(roots, fi.Fn)
			}
		}
	}
	var out []Finding
	for _, fi := range m.Reachable(roots...) {
		for _, fact := range fi.Facts {
			if fact.Kind != FactAlloc && fact.Kind != FactAmortizedAlloc {
				continue
			}
			out = append(out, fi.Pkg.findingf(fact.Pos, "obsring",
				"%s allocates inside %s, which is reachable from the flight/obs hot path — preallocate during setup",
				fact.What, fi.Decl.Name.Name))
		}
	}
	return out
}
