package lint

import (
	"go/types"
)

// ObsRingRule flags allocation on the observability hot path: the
// per-event entry points in internal/flight and internal/obs — Emit,
// Observe, ObserveN — and every module function reachable from them must
// not allocate. The flight recorder's contract is that tracing a run
// costs one store per event and histograms cost three atomic adds; a
// make/append/new, a slice or map literal, a &composite literal or a
// closure on that path turns every simulated reference into a heap
// allocation and silently destroys the <5% tracing-overhead budget the
// benchmarks enforce.
//
// Unlike the engine hot path (see EnginePurityRule), the observability
// path has no growth phase: rings and histogram buckets are fully
// preallocated, so even amortized (guarded) allocation is a finding.
type ObsRingRule struct{}

// obsRingPkgs are the module-relative packages whose hot paths the rule
// guards.
var obsRingPkgs = []string{"internal/flight", "internal/obs"}

// obsRingRoots are the hot-path entry points, by function name.
var obsRingRoots = map[string]bool{"Emit": true, "Observe": true, "ObserveN": true}

// Name implements Rule.
func (ObsRingRule) Name() string { return "obsring" }

// Doc implements Rule.
func (ObsRingRule) Doc() string {
	return "allocation inside flight.Emit/obs.Observe hot paths (rings and histograms must record without allocating)"
}

// CheckModule implements ModuleRule: walk the call graph from every
// Emit/Observe/ObserveN declared in the guarded packages and flag each
// allocation fact in a reachable function.
func (ObsRingRule) CheckModule(m *Module) []Finding {
	var roots []*types.Func
	for _, rel := range obsRingPkgs {
		p := m.Package(rel)
		if p == nil {
			continue
		}
		for _, fi := range m.Funcs() {
			if fi.Pkg == p && obsRingRoots[fi.Decl.Name.Name] {
				roots = append(roots, fi.Fn)
			}
		}
	}
	var out []Finding
	for _, fi := range m.Reachable(roots...) {
		for _, fact := range fi.Facts {
			if fact.Kind != FactAlloc && fact.Kind != FactAmortizedAlloc {
				continue
			}
			out = append(out, fi.Pkg.findingf(fact.Pos, "obsring",
				"%s allocates inside %s, which is reachable from the flight/obs hot path — preallocate during setup",
				fact.What, fi.Decl.Name.Name))
		}
	}
	return out
}
