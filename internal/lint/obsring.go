package lint

import (
	"go/ast"
	"go/types"
)

// ObsRingRule flags allocation on the observability hot path: inside
// internal/flight and internal/obs, the per-event entry points — Emit,
// Observe, ObserveN — and every same-package function reachable from
// them must not allocate. The flight recorder's contract is that tracing
// a run costs one store per event and histograms cost three atomic adds;
// a make/append/new, a slice or map literal, a &composite literal or a
// closure on that path turns every simulated reference into a heap
// allocation and silently destroys the <5% tracing-overhead budget the
// benchmarks enforce.
type ObsRingRule struct{}

// obsRingPkgs are the module-relative packages whose hot paths the rule
// guards.
var obsRingPkgs = []string{"internal/flight", "internal/obs"}

// obsRingRoots are the hot-path entry points, by function name.
var obsRingRoots = map[string]bool{"Emit": true, "Observe": true, "ObserveN": true}

// Name implements Rule.
func (ObsRingRule) Name() string { return "obsring" }

// Doc implements Rule.
func (ObsRingRule) Doc() string {
	return "allocation inside flight.Emit/obs.Observe hot paths (rings and histograms must record without allocating)"
}

// Check implements Rule.
func (ObsRingRule) Check(p *Package) []Finding {
	guarded := false
	for _, rel := range obsRingPkgs {
		if p.Path == p.Module+"/"+rel {
			guarded = true
		}
	}
	if !guarded {
		return nil
	}

	// Index the package's function declarations by their *types.Func so
	// calls resolve to bodies, then walk the call graph from the roots.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	var queue []*types.Func
	hot := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !obsRingRoots[fd.Name.Name] {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				hot[obj] = true
				queue = append(queue, obj)
			}
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[obj].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			callee, ok := p.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != p.Pkg || hot[callee] {
				return true
			}
			if _, known := decls[callee]; known {
				hot[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Walk files in declaration order (not the hot set's map order) so
	// findings are deterministic before Run's sort.
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || !hot[obj] {
				continue
			}
			out = append(out, obsRingInspect(p, fd)...)
		}
	}
	return out
}

// obsRingInspect reports every allocating construct in one hot function.
func obsRingInspect(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						out = append(out, p.findingf(node.Pos(), "obsring",
							"%s allocates inside %s, which is reachable from the flight/obs hot path — preallocate during setup",
							b.Name(), fd.Name.Name))
					}
				}
			}
		case *ast.CompositeLit:
			t, ok := p.Info.Types[ast.Expr(node)]
			if !ok {
				return true
			}
			switch t.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				out = append(out, p.findingf(node.Pos(), "obsring",
					"slice/map literal allocates inside %s, which is reachable from the flight/obs hot path — preallocate during setup",
					fd.Name.Name))
			}
		case *ast.UnaryExpr:
			if _, ok := node.X.(*ast.CompositeLit); ok && node.Op.String() == "&" {
				out = append(out, p.findingf(node.Pos(), "obsring",
					"&composite literal escapes to the heap inside %s, which is reachable from the flight/obs hot path",
					fd.Name.Name))
			}
		case *ast.FuncLit:
			out = append(out, p.findingf(node.Pos(), "obsring",
				"closure allocates inside %s, which is reachable from the flight/obs hot path",
				fd.Name.Name))
			return false
		}
		return true
	})
	return out
}
