package lint

import (
	"strings"
	"testing"
)

func TestLockCheckFlagsCopiedLocks(t *testing.T) {
	src := `package fix
import "sync"
type guarded struct {
	mu sync.Mutex
	n  int
}
func byValueReceiver(g guarded) int { return g.n }
func param(mu sync.Mutex)           {}
func result(g *guarded) guarded     { return *g }
func assign(g *guarded) {
	cp := *g
	_ = cp
}
func iterate(gs []guarded) int {
	n := 0
	for _, g := range gs {
		n += g.n
	}
	return n
}
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, LockCheckRule{})
	// receiver, param, result type, dereference copy, range copy — the
	// *g in assign and result bodies each count once more as StarExpr
	// copies feeding the flagged construct.
	if len(fs) < 5 {
		t.Fatalf("got %d findings, want at least 5: %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "sync.Mutex") {
			t.Errorf("finding should name the lock type: %v", f)
		}
	}
}

func TestLockCheckFlagsCopiedAtomics(t *testing.T) {
	src := `package fix
import "sync/atomic"
type counter struct{ n atomic.Uint64 }
func snapshot(c *counter) counter { return *c }
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, LockCheckRule{})
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "atomic.Uint64") {
		t.Fatalf("copied atomic value not flagged: %v", fs)
	}
}

func TestLockCheckAllowsPointersAndEmbedding(t *testing.T) {
	src := `package fix
import "sync"
type guarded struct {
	mu sync.Mutex
	n  int
}
func ptr(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
func build() *guarded { return &guarded{} }
func iterate(gs []*guarded) int {
	n := 0
	for _, g := range gs {
		n += ptr(g)
	}
	return n
}
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, LockCheckRule{})
	if len(fs) != 0 {
		t.Fatalf("pointer access should be clean: %v", fs)
	}
}

func TestLockCheckFlagsMixedAtomicAccess(t *testing.T) {
	src := `package fix
import "sync/atomic"
type stats struct{ hits uint64 }
func bump(s *stats)      { atomic.AddUint64(&s.hits, 1) }
func read(s *stats) uint64 { return s.hits }
func reset(s *stats)     { s.hits = 0 }
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, LockCheckRule{})
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2 (plain read + plain write): %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "atomic.AddUint64") {
			t.Errorf("finding should name the atomic op: %v", f)
		}
	}
}

func TestLockCheckAllowsConsistentAtomicAccess(t *testing.T) {
	src := `package fix
import "sync/atomic"
type stats struct{ hits uint64 }
func bump(s *stats)        { atomic.AddUint64(&s.hits, 1) }
func read(s *stats) uint64 { return atomic.LoadUint64(&s.hits) }
`
	fs := lintSrc(t, "dirsim/internal/fix", src, nil, LockCheckRule{})
	if len(fs) != 0 {
		t.Fatalf("all-atomic access should be clean: %v", fs)
	}
}
