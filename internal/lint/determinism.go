package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The determinism rules guard the repeatability the paper's methodology
// rests on: equal inputs must give byte-identical reports. The three
// common ways Go code loses that property are map iteration order,
// process-global randomness and wall-clock time, and exact comparison of
// floating-point accumulations.

// MapOrderRule flags map iterations whose bodies feed order-sensitive
// sinks: fmt printing (output order would follow map order) or appends to
// a slice that the enclosing function never sorts.
type MapOrderRule struct{}

// Name implements Rule.
func (MapOrderRule) Name() string { return "maporder" }

// Doc implements Rule.
func (MapOrderRule) Doc() string {
	return "map iteration feeding ordered output (printing, or append without a later sort)"
}

// Check implements Rule.
func (MapOrderRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		forEachFunc(f, func(fn ast.Node, body *ast.BlockStmt) {
			sorted := sortedIdents(p.Info, body)
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(p.Info, rs) {
					return true
				}
				ast.Inspect(rs.Body, func(m ast.Node) bool {
					switch s := m.(type) {
					case *ast.CallExpr:
						if isFmtPrint(p.Info, s) {
							out = append(out, p.findingf(s.Pos(), "maporder",
								"printing inside map iteration follows map order; iterate sorted keys instead"))
						}
					case *ast.AssignStmt:
						if id := appendTarget(p.Info, s); id != nil && !sorted[p.Info.Uses[id]] {
							out = append(out, p.findingf(s.Pos(), "maporder",
								"append to %s inside map iteration without a later sort; sort %s (or the keys) before use",
								id.Name, id.Name))
						}
					}
					return true
				})
				return true
			})
		})
	}
	return out
}

// forEachFunc calls fn for every function body in the file (declarations
// and literals), outermost first.
func forEachFunc(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isFmtPrint reports whether call is one of fmt's printing functions.
func isFmtPrint(info *types.Info, call *ast.CallExpr) bool {
	for _, name := range []string{
		"Print", "Printf", "Println",
		"Fprint", "Fprintf", "Fprintln",
		"Sprint", "Sprintf", "Sprintln",
	} {
		if selectorPkgFunc(info, call, "fmt", name) {
			return true
		}
	}
	return false
}

// appendTarget returns the identifier x in `x = append(x, ...)`, or nil.
func appendTarget(info *types.Info, as *ast.AssignStmt) *ast.Ident {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
		return nil
	}
	return id
}

// sortedIdents collects objects passed to sort.* or slices.* calls
// anywhere in body — slices the function does put in a defined order.
func sortedIdents(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn := pkgNameOf(info, x)
		if pn == nil {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// NondeterminismRule flags process-global randomness and wall-clock reads
// in the module's internal packages, where every source of variation must
// be an explicit, seeded input.
type NondeterminismRule struct{}

// Name implements Rule.
func (NondeterminismRule) Name() string { return "nondeterm" }

// Doc implements Rule.
func (NondeterminismRule) Doc() string {
	return "global math/rand or wall-clock time in internal packages"
}

// randConstructors are the math/rand functions that build an explicit,
// seedable source — the sanctioned way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Check implements Rule.
func (NondeterminismRule) Check(p *Package) []Finding {
	if !p.inModuleInternal() {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pkgNameOf(p.Info, x)
			if pn == nil {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					out = append(out, p.findingf(call.Pos(), "nondeterm",
						"rand.%s draws from the process-global source; thread a seeded *rand.Rand instead",
						sel.Sel.Name))
				}
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					out = append(out, p.findingf(call.Pos(), "nondeterm",
						"time.%s reads the wall clock; simulator results must not depend on it",
						sel.Sel.Name))
				}
			}
			return true
		})
	}
	return out
}

// FloatEqRule flags == and != between floating-point operands. Event
// counts weighted by float costs accumulate rounding error, so exact
// comparison is either wrong or, when a float is used as a sentinel, a
// sign the value should be restructured (use a bool or an integer).
type FloatEqRule struct{}

// Name implements Rule.
func (FloatEqRule) Name() string { return "floateq" }

// Doc implements Rule.
func (FloatEqRule) Doc() string { return "== or != on floating-point values" }

// Check implements Rule.
func (FloatEqRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.Info.Types[be.X]
			yt, yok := p.Info.Types[be.Y]
			if (xok && isFloat(xt.Type)) || (yok && isFloat(yt.Type)) {
				out = append(out, p.findingf(be.OpPos, "floateq",
					"%s on floating-point values; compare with a tolerance or use a non-float representation", be.Op))
			}
			return true
		})
	}
	return out
}
