package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheckRule guards the hand-rolled synchronization in the module —
// the flight rings, the obs histograms, the runner pool — against the
// two silent ways Go concurrency goes wrong without a race-detector run:
//
//   - a lock copied by value (a sync.Mutex/RWMutex/WaitGroup/Once/Cond,
//     or a sync/atomic typed value, inside a value receiver, parameter,
//     result, plain copy assignment, or by-value range variable): the
//     copy guards nothing, and an atomic value forked in two stops being
//     one counter;
//   - a struct field accessed both through sync/atomic operations and
//     through plain reads/writes: the plain access races with every
//     atomic one, and the compiler will happily reorder it.
//
// go vet's copylocks covers part of the first class; this rule also
// covers the typed atomics and, via the module-wide view, mixed access
// to the same field across files and packages.
type LockCheckRule struct{}

// Name implements Rule.
func (LockCheckRule) Name() string { return "lockcheck" }

// Doc implements Rule.
func (LockCheckRule) Doc() string {
	return "lock or atomic value copied by value, or a field accessed both atomically and plainly"
}

// CheckModule implements ModuleRule.
func (LockCheckRule) CheckModule(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		out = append(out, lockCopies(p)...)
	}
	out = append(out, mixedAtomics(m)...)
	return out
}

// lockTypeIn returns the name of the first lock-like type contained by
// value in t ("sync.Mutex", "atomic.Uint64", …), or "".
func lockTypeIn(t types.Type) string {
	return lockTypeRec(t, map[types.Type]bool{})
}

var syncLocks = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func lockTypeRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncLocks[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				if atomicTypes[obj.Name()] {
					return "atomic." + obj.Name()
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hit := lockTypeRec(u.Field(i).Type(), seen); hit != "" {
				return hit
			}
		}
	case *types.Array:
		return lockTypeRec(u.Elem(), seen)
	case *types.Named:
		return lockTypeRec(u, seen)
	}
	return ""
}

// lockCopies flags by-value receivers, parameters, results, copies and
// range variables of lock-containing types in one package.
func lockCopies(p *Package) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what, lock string) {
		out = append(out, p.findingf(pos, "lockcheck",
			"%s copies %s by value; the copy guards nothing — pass a pointer", what, lock))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFuncType(p, x.Type, x.Recv, flag)
			case *ast.FuncLit:
				checkFuncType(p, x.Type, nil, flag)
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					if !copiesValue(rhs) {
						continue
					}
					if t := p.Info.TypeOf(rhs); t != nil {
						if _, isPtr := t.(*types.Pointer); isPtr {
							continue
						}
						if lock := lockTypeIn(t); lock != "" {
							flag(rhs.Pos(), "assignment", lock)
						}
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if t := p.Info.TypeOf(x.Value); t != nil {
					if _, isPtr := t.(*types.Pointer); isPtr {
						return true
					}
					if lock := lockTypeIn(t); lock != "" {
						flag(x.Value.Pos(), "range variable", lock)
					}
				}
			}
			return true
		})
	}
	return out
}

// checkFuncType flags lock-containing value receivers, params and
// results of one function signature.
func checkFuncType(p *Package, ft *ast.FuncType, recv *ast.FieldList, flag func(token.Pos, string, string)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := p.Info.TypeOf(fld.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if lock := lockTypeIn(t); lock != "" {
				flag(fld.Type.Pos(), what, lock)
			}
		}
	}
	check(recv, "value receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// copiesValue reports whether rhs denotes an existing value being copied
// (as opposed to a freshly constructed one).
func copiesValue(rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(x.X)
	}
	return false
}

// atomicFuncs matches the sync/atomic package-level operations that take
// an address: AddUint64, LoadInt32, StoreUint32, SwapPointer,
// CompareAndSwapUint64, ….
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// mixedAtomics finds struct fields passed by address to sync/atomic
// operations anywhere in the module, then flags every plain (non-atomic)
// read or write of those fields.
func mixedAtomics(m *Module) []Finding {
	// Pass 1: collect atomically-accessed fields, and the positions of
	// the selector expressions inside atomic calls (exempt from pass 2).
	atomicFields := map[*types.Var]string{}
	inAtomicCall := map[token.Pos]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isAtomicOp(sel.Sel.Name) {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn := pkgNameOf(p.Info, x)
				if pn == nil || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					fsel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if field := fieldObject(p, fsel); field != nil {
						atomicFields[field] = sel.Sel.Name
						inAtomicCall[fsel.Sel.Pos()] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector resolving to one of those fields is a
	// plain access racing with the atomic ones.
	var out []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fsel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomicCall[fsel.Sel.Pos()] {
					return true
				}
				field := fieldObject(p, fsel)
				if field == nil {
					return true
				}
				op, isAtomic := atomicFields[field]
				if !isAtomic {
					return true
				}
				out = append(out, p.findingf(fsel.Sel.Pos(), "lockcheck",
					fmt.Sprintf("plain access to field %s, which is accessed with atomic.%s elsewhere in the module — every access must be atomic",
						field.Name(), op)))
				return true
			})
		}
	}
	return out
}

// fieldObject resolves sel to the struct field it selects, or nil.
func fieldObject(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
