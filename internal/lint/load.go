package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the module packages matched by patterns,
// rooted at dir (any directory inside the module). Patterns follow the go
// tool's shape: "./..." walks the whole module, "./internal/..." a
// subtree, "./cmd/dirsim" a single package. Test files are excluded — the
// rules guard shipped code.
//
// Loading is stdlib-only: module packages are type-checked from source in
// dependency order, and imports outside the module resolve through the
// go/importer source importer (which reads GOROOT source), so no external
// analysis framework and no compiled export data are required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := matchPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		srcs:    map[string]string{}, // import path → directory
		done:    map[string]*Package{},
		loading: map[string]bool{},
	}
	ld.base = importer.ForCompiler(ld.fset, "source", nil)

	var paths []string
	for _, d := range dirs {
		ip, err := ld.importPath(d)
		if err != nil {
			return nil, err
		}
		if hasGoFiles(d) {
			ld.srcs[ip] = d
			paths = append(paths, ip)
		}
	}
	sort.Strings(paths)

	var out []*Package
	for _, ip := range paths {
		p, err := ld.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module line", gm)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// matchPatterns expands patterns into package directories under root.
func matchPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(root, strings.TrimSuffix(rest, "/"))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(root, pat))
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true
		}
	}
	return false
}

func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader type-checks module packages on demand, memoising results so each
// package is checked once no matter how many importers reach it.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	base    types.Importer
	srcs    map[string]string
	done    map[string]*Package
	loading map[string]bool
}

func (ld *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, ld.modPath)
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path to its directory.
func (ld *loader) dirFor(path string) string {
	if d, ok := ld.srcs[path]; ok {
		return d
	}
	if path == ld.modPath {
		return ld.root
	}
	rel := strings.TrimPrefix(path, ld.modPath+"/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// Import implements types.Importer: module packages are checked from
// source; everything else falls through to the stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.base.Import(path)
}

// load parses and type-checks one module package (memoised).
func (ld *loader) load(path string) (*Package, error) {
	if p, ok := ld.done[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !isLintedFile(e.Name()) {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		// Comments are kept so the driver can honour //lint:ignore
		// suppression pragmas.
		f, err := parser.ParseFile(ld.fset, name, nil, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:   path,
		Module: ld.modPath,
		Root:   ld.root,
		Fset:   ld.fset,
		Files:  files,
		Pkg:    pkg,
		Info:   info,
	}
	ld.done[path] = p
	return p, nil
}
