package lint

import (
	"strings"
	"testing"
)

// The fixtures live at dirsim/internal/coherence because the rule anchors
// on the Engine interface declared there.

func TestMapStateFlagsAddressKeyedFields(t *testing.T) {
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type Mappy struct {
	state map[uint64]int
	dirty map[uint64]bool
}
func (e *Mappy) Access(c int, block uint64) int {
	e.state[block]++
	return e.helper(block)
}
func (e *Mappy) helper(block uint64) int {
	if e.dirty[block] {
		return 1
	}
	return 0
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, MapStateRule{})
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2 (state, dirty): %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "Mappy's Access hot path") {
			t.Errorf("finding does not name the engine: %v", f)
		}
		if !strings.Contains(f.Msg, "blockid.ID") {
			t.Errorf("finding does not point at the interned-id fix: %v", f)
		}
	}
}

func TestMapStateAllowsArraysLocalsAndColdPaths(t *testing.T) {
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type Clean struct {
	sharers []uint64
	// Address-keyed, but only touched by the cold reporting path.
	report map[uint64]int
}
func (e *Clean) Access(c int, block uint64) int {
	// A local map[uint64] is scratch, not per-block state.
	scratch := map[uint64]int{block: c}
	if int(block) < len(e.sharers) {
		e.sharers[block]++
	}
	return scratch[block]
}
func (e *Clean) Report() map[uint64]int { return e.report }
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, MapStateRule{})
	if len(fs) != 0 {
		t.Fatalf("array state, local maps and cold paths should pass: %v", fs)
	}
}

func TestMapStateIgnoresOtherKeyTypes(t *testing.T) {
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type Keyed struct {
	byName map[string]int
	byPid  map[uint16]int
}
func (e *Keyed) Access(c int, block uint64) int {
	return e.byName["x"] + e.byPid[uint16(c)]
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, MapStateRule{})
	if len(fs) != 0 {
		t.Fatalf("only uint64-keyed state is per-block state: %v", fs)
	}
}
