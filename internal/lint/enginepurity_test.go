package lint

import (
	"strings"
	"testing"
)

// The fixtures live at dirsim/internal/coherence because the rule anchors
// on the Engine interface declared there.

func TestEnginePurityFlagsDirtyAccessPath(t *testing.T) {
	src := `package coherence
import "time"
type Engine interface {
	Access(c int, block uint64) int
}
type Dirty struct{ seen map[uint64][]int }
func (e *Dirty) Access(c int, block uint64) int {
	e.seen[block] = append([]int(nil), c)
	_ = time.Now()
	n := 0
	for range e.seen {
		n++
	}
	return e.helper(n)
}
func (e *Dirty) helper(n int) int {
	s := make([]int, n)
	return len(s)
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, EnginePurityRule{})
	if len(fs) != 4 {
		t.Fatalf("got %d findings, want 4 (fresh append, clock, map range, helper make): %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "Dirty's Access hot path") {
			t.Errorf("finding does not name the engine: %v", f)
		}
	}
}

func TestEnginePurityAllowsAmortizedGrowth(t *testing.T) {
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type state struct{ n int }
type Clean struct {
	blocks map[uint64]*state
	hits   []uint64
}
func (e *Clean) Access(c int, block uint64) int {
	bs := e.ensure(block)
	bs.n++
	e.hits = append(e.hits, block)
	return bs.n
}
func (e *Clean) ensure(block uint64) *state {
	if bs, ok := e.blocks[block]; ok {
		return bs
	}
	bs := &state{}
	e.blocks[block] = bs
	return bs
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, EnginePurityRule{})
	if len(fs) != 0 {
		t.Fatalf("first-touch/amortized growth should pass: %v", fs)
	}
}

func TestEnginePurityFlagsClosureAndSpawn(t *testing.T) {
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type Spawny struct{ sink chan int }
func (e *Spawny) Access(c int, block uint64) int {
	go func() { e.sink <- c }()
	return c
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, EnginePurityRule{})
	var kinds []string
	for _, f := range fs {
		kinds = append(kinds, f.Msg)
	}
	joined := strings.Join(kinds, "\n")
	if !strings.Contains(joined, "goroutine spawned") {
		t.Errorf("goroutine on Access path not flagged: %v", fs)
	}
	if !strings.Contains(joined, "closure") {
		t.Errorf("closure allocation not flagged: %v", fs)
	}
}

func TestEnginePurityResolvesStoreDispatch(t *testing.T) {
	// An allocation inside an interface implementation the engine calls
	// must be attributed to the engine's hot path.
	src := `package coherence
type Engine interface {
	Access(c int, block uint64) int
}
type Store interface{ Targets(block uint64) []int }
type BadStore struct{}
func (BadStore) Targets(block uint64) []int { return make([]int, 4) }
type Indirect struct{ store Store }
func (e *Indirect) Access(c int, block uint64) int {
	return len(e.store.Targets(block))
}
`
	fs := lintSrc(t, "dirsim/internal/coherence", src, nil, EnginePurityRule{})
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "make") {
		t.Fatalf("store allocation behind interface dispatch not attributed: %v", fs)
	}
}
