package lint

import (
	"strings"
	"testing"
)

func TestObsRingRuleFlagsHotPathAllocation(t *testing.T) {
	fire := `package fix
type Event struct{ Seq uint64 }
type Ring struct {
	buf []Event
	n   uint64
	log []Event
}
func (r *Ring) Emit(e Event) {
	r.log = append(r.log, e) // allocation: grows on the hot path
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}
`
	fs := lintSrc(t, "dirsim/internal/flight", fire, nil, ObsRingRule{})
	wantFindings(t, fs, ObsRingRule{}, 1)
	if !strings.Contains(fs[0].Msg, "append") || !strings.Contains(fs[0].Msg, "Emit") {
		t.Errorf("finding should name append and Emit, got %v", fs[0])
	}
}

func TestObsRingRuleFollowsSamePackageCallees(t *testing.T) {
	// Observe itself is clean, but a helper it calls allocates — the
	// rule must walk the call graph.
	fire := `package fix
type Ring struct {
	buf []uint64
	n   uint64
}
func (r *Ring) grow() {
	r.buf = make([]uint64, 2*len(r.buf))
}
func (r *Ring) Observe(v uint64) {
	if r.n == uint64(len(r.buf)) {
		r.grow()
	}
	r.buf[r.n%uint64(len(r.buf))] = v
	r.n++
}
`
	fs := lintSrc(t, "dirsim/internal/obs", fire, nil, ObsRingRule{})
	wantFindings(t, fs, ObsRingRule{}, 1)
	if !strings.Contains(fs[0].Msg, "grow") {
		t.Errorf("finding should name the transitive callee grow, got %v", fs[0])
	}
}

func TestObsRingRuleAllocationKinds(t *testing.T) {
	fire := `package fix
type row struct{ v uint64 }
type H struct {
	rows  []row
	byKey map[string]uint64
	hook  func()
}
func (h *H) Observe(v uint64) {
	h.rows = []row{{v}}           // slice literal
	h.byKey = map[string]uint64{} // map literal
	p := &row{v}                  // &composite literal
	_ = p
	h.hook = func() {}            // closure
	_ = new(row)                  // new
}
`
	fs := lintSrc(t, "dirsim/internal/obs", fire, nil, ObsRingRule{})
	wantFindings(t, fs, ObsRingRule{}, 5)
}

func TestObsRingRuleGuardsOtraceSpans(t *testing.T) {
	// Span Start/Finish are per-request hot paths: an allocating Finish
	// would charge every fabric span a heap object.
	fire := `package fix
type Span struct{ Name string }
type Store struct {
	buf []Span
	n   uint64
}
type Active struct{ st *Store; s Span }
func (a Active) Finish() {
	a.st.buf = append(a.st.buf, a.s) // allocation: ring must be preallocated
	a.st.n++
}
`
	fs := lintSrc(t, "dirsim/internal/otrace", fire, nil, ObsRingRule{})
	wantFindings(t, fs, ObsRingRule{}, 1)
	if !strings.Contains(fs[0].Msg, "Finish") {
		t.Errorf("finding should name Finish, got %v", fs[0])
	}
}

func TestObsRingRuleRootsArePerPackage(t *testing.T) {
	// Emit is a hot-path root in internal/flight only; the same name in
	// another guarded package is not a root there.
	alloc := `package fix
type Ring struct{ log []uint64 }
func (r *Ring) Emit(v uint64) { r.log = append(r.log, v) }
`
	wantFindings(t, lintSrc(t, "dirsim/internal/obs", alloc, nil, ObsRingRule{}), ObsRingRule{}, 0)
	wantFindings(t, lintSrc(t, "dirsim/internal/otrace", alloc, nil, ObsRingRule{}), ObsRingRule{}, 0)
	wantFindings(t, lintSrc(t, "dirsim/internal/flight", alloc, nil, ObsRingRule{}), ObsRingRule{}, 1)
}

func TestObsRingRuleSilent(t *testing.T) {
	// Cold-path allocation (setup, export) and hot paths that only store
	// are fine; so is any code outside the guarded packages.
	clean := `package fix
type Event struct{ Seq uint64 }
type Ring struct {
	buf []Event
	n   uint64
}
func New(capacity int) *Ring {
	return &Ring{buf: make([]Event, capacity)}
}
func (r *Ring) Emit(e Event) {
	r.buf[r.n&uint64(len(r.buf)-1)] = e
	r.n++
}
func (r *Ring) Events() []Event {
	return append([]Event(nil), r.buf[:r.n]...)
}
`
	wantFindings(t, lintSrc(t, "dirsim/internal/flight", clean, nil, ObsRingRule{}), ObsRingRule{}, 0)

	alloc := `package fix
type Ring struct{ log []uint64 }
func (r *Ring) Emit(v uint64) { r.log = append(r.log, v) }
`
	// Same shape outside the guarded packages: silent.
	wantFindings(t, lintSrc(t, "dirsim/internal/sim", alloc, nil, ObsRingRule{}), ObsRingRule{}, 0)
	wantFindings(t, lintSrc(t, "dirsim/cmd/fix", alloc, nil, ObsRingRule{}), ObsRingRule{}, 0)
}
