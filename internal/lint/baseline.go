package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline is a JSON file of accepted findings, for adopting a rule
// into a codebase that cannot fix every hit at once: known findings are
// filtered out, new ones still fail the build. Entries are keyed by
// (file, rule, message) and deliberately omit line numbers, so unrelated
// edits that shift code up or down do not invalidate the baseline.

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	// File is the module-relative, slash-separated path.
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// baselineFile is the on-disk shape.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"findings"`
}

// Baseline is a set of accepted findings.
type Baseline struct {
	entries map[BaselineEntry]bool
}

// NewBaseline builds a baseline from findings (paths already
// relativized), for writing with MarshalBaseline.
func NewBaseline(entries []BaselineEntry) *Baseline {
	b := &Baseline{entries: map[BaselineEntry]bool{}}
	for _, e := range entries {
		b.entries[e] = true
	}
	return b
}

// ReadBaseline loads a baseline file. A missing or empty path yields an
// empty baseline, so the flag can default to "".
func ReadBaseline(path string) (*Baseline, error) {
	if path == "" {
		return NewBaseline(nil), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, bf.Version)
	}
	return NewBaseline(bf.Entries), nil
}

// Len reports how many entries the baseline holds.
func (b *Baseline) Len() int { return len(b.entries) }

// Filter returns the findings not covered by the baseline. relFile maps a
// finding's absolute filename to the baseline's module-relative form.
func (b *Baseline) Filter(findings []Finding, relFile func(string) string) []Finding {
	if len(b.entries) == 0 {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		key := BaselineEntry{File: relFile(f.Pos.Filename), Rule: f.Rule, Msg: f.Msg}
		if !b.entries[key] {
			kept = append(kept, f)
		}
	}
	return kept
}

// MarshalBaseline renders findings as a baseline file: deduplicated,
// sorted, versioned JSON ready to write to disk.
func MarshalBaseline(findings []Finding, relFile func(string) string) ([]byte, error) {
	seen := map[BaselineEntry]bool{}
	var entries []BaselineEntry
	for _, f := range findings {
		e := BaselineEntry{File: relFile(f.Pos.Filename), Rule: f.Rule, Msg: f.Msg}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	out, err := json.MarshalIndent(baselineFile{Version: 1, Entries: entries}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
