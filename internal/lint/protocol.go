package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The protocol-hygiene rules guard the coherence machinery itself: the
// state machines must handle every enum value, constructors that validate
// configuration must not have their errors dropped, and the scheme
// registry must stay closed — every advertised name constructible, every
// constructible canonical name advertised.

// StateSwitchRule flags switches over module-defined enum types (named
// integer types ending in "State" or "Kind") that have no default clause
// and do not cover every declared constant of the type. A protocol
// transition function that silently ignores a state is a latent
// coherence bug.
type StateSwitchRule struct{}

// Name implements Rule.
func (StateSwitchRule) Name() string { return "stateswitch" }

// Doc implements Rule.
func (StateSwitchRule) Doc() string {
	return "non-exhaustive switch over a *State/*Kind enum without a default clause"
}

// Check implements Rule.
func (StateSwitchRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := enumType(p, sw.Tag)
			if named == nil {
				return true
			}
			covered := map[string]bool{}
			hasDefault := false
			for _, s := range sw.Body.List {
				cc := s.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.String()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range enumConsts(named) {
				if !covered[c.Val().String()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				out = append(out, p.findingf(sw.Pos(), "stateswitch",
					"switch on %s has no default and misses %s",
					named.Obj().Name(), strings.Join(missing, ", ")))
			}
			return true
		})
	}
	return out
}

// enumType returns the named enum type of a switch tag if it is a
// module-defined integer type whose name ends in State or Kind.
func enumType(p *Package, tag ast.Expr) *types.Named {
	tv, ok := p.Info.Types[tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path(), p.Module) {
		return nil
	}
	name := obj.Name()
	if !strings.HasSuffix(name, "State") && !strings.HasSuffix(name, "Kind") {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumConsts returns the package-level constants of type named, one per
// distinct value (aliases collapse), in declaration-name order.
func enumConsts(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	seen := map[string]bool{}
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if v := c.Val().String(); !seen[v] {
			seen[v] = true
			out = append(out, c)
		}
	}
	return out
}

// inModule reports whether pkgPath is the module or one of its packages.
func inModule(pkgPath, module string) bool {
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}

// CtorErrRule flags calls to module constructors — functions named New*
// returning an error — whose error result is dropped, either by using the
// call as a statement or by assigning the error to the blank identifier.
// Constructors validate protocol configuration; a dropped error means a
// simulation silently runs with a nil or half-built engine.
type CtorErrRule struct{}

// Name implements Rule.
func (CtorErrRule) Name() string { return "ctorerr" }

// Doc implements Rule.
func (CtorErrRule) Doc() string { return "error result of a module New* constructor dropped" }

// Check implements Rule.
func (CtorErrRule) Check(p *Package) []Finding {
	var out []Finding
	drop := func(call *ast.CallExpr, how string) {
		if fn := moduleCtor(p, call); fn != nil {
			out = append(out, p.findingf(call.Pos(), "ctorerr",
				"error result of %s.%s %s", fn.Pkg().Name(), fn.Name(), how))
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					drop(call, "discarded (call used as a statement)")
				}
			case *ast.GoStmt:
				drop(s.Call, "discarded (go statement)")
			case *ast.DeferStmt:
				drop(s.Call, "discarded (defer statement)")
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || len(s.Lhs) < 2 {
					return true
				}
				if id, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					drop(call, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
	return out
}

// moduleCtor returns the called function if it is a module-level New*
// function whose last result is error.
func moduleCtor(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !inModule(fn.Pkg().Path(), p.Module) {
		return nil
	}
	if !strings.HasPrefix(fn.Name(), "New") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil
	}
	return fn
}

// EngineRegistryRule checks the scheme registry in the package that
// defines both EngineNames and NewByName (internal/coherence): every name
// EngineNames advertises must be constructible — a case literal in
// NewByName or an instance of the parametric dir<i>nb / dir<i>b /
// competitive<k> families — and the canonical (first) literal of every
// NewByName case must be advertised by EngineNames. Together the two
// directions keep the studies, the CLI and the tests seeing the same set
// of schemes.
type EngineRegistryRule struct{}

// Name implements Rule.
func (EngineRegistryRule) Name() string { return "registry" }

// Doc implements Rule.
func (EngineRegistryRule) Doc() string {
	return "EngineNames and NewByName must advertise exactly the same schemes"
}

// Check implements Rule.
func (EngineRegistryRule) Check(p *Package) []Finding {
	var namesFn, byNameFn *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			switch fd.Name.Name {
			case "EngineNames":
				namesFn = fd
			case "NewByName":
				byNameFn = fd
			}
		}
	}
	if namesFn == nil || byNameFn == nil || namesFn.Body == nil || byNameFn.Body == nil {
		return nil
	}

	advertised := stringLits(namesFn.Body)
	caseLits := map[string]bool{}
	var caseFirst []*ast.BasicLit
	ast.Inspect(byNameFn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for i, e := range cc.List {
			lit, ok := e.(*ast.BasicLit)
			if !ok {
				continue
			}
			v, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			caseLits[v] = true
			if i == 0 {
				caseFirst = append(caseFirst, lit)
			}
		}
		return true
	})

	advertisedSet := map[string]bool{}
	var out []Finding
	for _, lit := range advertised {
		v, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		advertisedSet[v] = true
		if !caseLits[v] && !parametricScheme(v) {
			out = append(out, p.findingf(lit.Pos(), "registry",
				"EngineNames advertises %q but NewByName cannot construct it", v))
		}
	}
	for _, lit := range caseFirst {
		v, _ := strconv.Unquote(lit.Value)
		if !advertisedSet[v] {
			out = append(out, p.findingf(lit.Pos(), "registry",
				"NewByName constructs %q but EngineNames does not advertise it", v))
		}
	}
	return out
}

// stringLits collects the string literals in a node, in source order.
func stringLits(n ast.Node) []*ast.BasicLit {
	var out []*ast.BasicLit
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// parametricScheme reports whether name belongs to one of NewByName's
// prefix-parsed families: dir<i>nb, dir<i>b (i ≥ 0 pointers) or
// competitive<k> (k ≥ 1 threshold).
func parametricScheme(name string) bool {
	if rest, ok := strings.CutPrefix(name, "dir"); ok {
		if mid, ok := strings.CutSuffix(rest, "nb"); ok && allDigits(mid) {
			return true
		}
		if mid, ok := strings.CutSuffix(rest, "b"); ok && allDigits(mid) {
			return true
		}
	}
	if rest, ok := strings.CutPrefix(name, "competitive"); ok {
		return allDigits(rest)
	}
	return false
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
