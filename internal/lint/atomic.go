package lint

import (
	"go/ast"
	"strings"
)

// AtomicWriteRule flags direct in-place artifact writes — os.Create and
// os.WriteFile — anywhere in the module outside internal/atomicio. A
// result file written in place is torn by a crash and visible half-done
// to concurrent readers; internal/atomicio's temp-file + fsync + rename
// sequence is the sanctioned way to produce sweep CSVs, paper tables,
// generated traces, checkpoints and manifests.
type AtomicWriteRule struct{}

// Name implements Rule.
func (AtomicWriteRule) Name() string { return "atomicwrite" }

// Doc implements Rule.
func (AtomicWriteRule) Doc() string {
	return "direct os.Create/os.WriteFile outside internal/atomicio (use its temp+fsync+rename helpers for crash-safe artifacts)"
}

// Check implements Rule.
func (AtomicWriteRule) Check(p *Package) []Finding {
	if p.Path == p.Module+"/internal/atomicio" ||
		strings.HasPrefix(p.Path, p.Module+"/internal/atomicio/") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Create", "WriteFile"} {
				if selectorPkgFunc(p.Info, call, "os", name) {
					out = append(out, p.findingf(call.Pos(), "atomicwrite",
						"os.%s writes the final path in place; a crash leaves a torn artifact — write via internal/atomicio (temp file + fsync + rename)",
						name))
				}
			}
			return true
		})
	}
	return out
}
