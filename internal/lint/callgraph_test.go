package lint

import (
	"go/types"
	"strings"
	"testing"
)

// buildModule type-checks one fixture and returns its Module.
func buildModule(t *testing.T, path, src string) *Module {
	t.Helper()
	var mod *Module
	grab := grabModuleRule{got: &mod}
	lintSrc(t, path, src, nil, grab)
	if mod == nil {
		t.Fatal("module not built")
	}
	return mod
}

// grabModuleRule captures the Module Run hands to ModuleRules.
type grabModuleRule struct{ got **Module }

func (grabModuleRule) Name() string { return "grab" }
func (grabModuleRule) Doc() string  { return "test helper" }
func (g grabModuleRule) CheckModule(m *Module) []Finding {
	*g.got = m
	return nil
}

// findFunc locates a summary by declaration name.
func findFunc(t *testing.T, m *Module, name string) *FuncInfo {
	t.Helper()
	for _, fi := range m.Funcs() {
		if fi.Decl.Name.Name == name {
			return fi
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// kinds collects the fact kinds of one summary.
func kinds(fi *FuncInfo) map[FactKind]int {
	out := map[FactKind]int{}
	for _, f := range fi.Facts {
		out[f.Kind]++
	}
	return out
}

func TestSummaryFacts(t *testing.T) {
	src := `package fix
import (
	"math/rand"
	"time"
)
func alloc() []int {
	s := make([]int, 4)
	s = append(s, 1)
	m := map[int]int{}
	_ = m
	p := &struct{ x int }{}
	_ = p
	return s
}
func clock() int64 { return time.Now().UnixNano() }
func roll() int    { return rand.Int() }
func order(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
func spawn(done chan struct{}) {
	go func() { <-done }()
}
func dynamic(fn func() int) int { return fn() }
`
	m := buildModule(t, "dirsim/internal/fix", src)

	ks := kinds(findFunc(t, m, "alloc"))
	// make, map literal, &composite literal are per-call. The append goes
	// through a variable, so freshness is not syntactically visible and it
	// is classified amortized (growth doubles, so it is — TestAmortizedAllocGuards
	// pins the syntactically-fresh cases).
	if ks[FactAlloc] != 3 || ks[FactAmortizedAlloc] != 1 {
		t.Errorf("alloc: %d per-call + %d amortized allocation facts, want 3 + 1: %v",
			ks[FactAlloc], ks[FactAmortizedAlloc], findFunc(t, m, "alloc").Facts)
	}
	if kinds(findFunc(t, m, "clock"))[FactClock] != 1 {
		t.Error("clock: time.Now not recorded")
	}
	if kinds(findFunc(t, m, "roll"))[FactGlobalRand] != 1 {
		t.Error("roll: global rand not recorded")
	}
	if kinds(findFunc(t, m, "order"))[FactMapRange] != 1 {
		t.Error("order: map range not recorded")
	}
	sp := findFunc(t, m, "spawn")
	if kinds(sp)[FactGoSpawn] != 1 || len(sp.Spawns) != 1 {
		t.Fatalf("spawn: go statement not recorded: %+v", sp)
	}
	if !sp.Spawns[0].SeesChannel {
		t.Error("spawn: channel receive in goroutine not seen")
	}
	if kinds(findFunc(t, m, "dynamic"))[FactDynamicCall] != 1 {
		t.Error("dynamic: call through function value not recorded")
	}
}

func TestAmortizedAllocGuards(t *testing.T) {
	src := `package fix
type buf struct {
	words []uint64
	idx   map[uint64]*int
}
func (b *buf) growGuarded(n int) {
	if n <= len(b.words) {
		return
	}
	w := make([]uint64, n)
	copy(w, b.words)
	b.words = w
}
func (b *buf) nilGuarded() {
	if b.idx == nil {
		b.idx = map[uint64]*int{}
	}
}
func (b *buf) firstTouch(k uint64) *int {
	if v, ok := b.idx[k]; ok {
		return v
	}
	v := new(int)
	b.idx[k] = v
	return v
}
func (b *buf) hot() []uint64 {
	return append(b.words, 1)
}
func (b *buf) cold() []int {
	return append([]int(nil), 1, 2)
}
`
	m := buildModule(t, "dirsim/internal/fix", src)
	for _, name := range []string{"growGuarded", "nilGuarded", "firstTouch"} {
		ks := kinds(findFunc(t, m, name))
		if ks[FactAlloc] != 0 {
			t.Errorf("%s: guarded allocation classified per-call: %v", name, findFunc(t, m, name).Facts)
		}
		if ks[FactAmortizedAlloc] == 0 {
			t.Errorf("%s: no amortized allocation recorded", name)
		}
	}
	if ks := kinds(findFunc(t, m, "hot")); ks[FactAmortizedAlloc] != 1 || ks[FactAlloc] != 0 {
		t.Errorf("hot: append to existing slice should be amortized: %v", ks)
	}
	if ks := kinds(findFunc(t, m, "cold")); ks[FactAlloc] != 1 {
		t.Errorf("cold: append to fresh slice should be per-call: %v", ks)
	}
}

func TestReachableResolvesInterfaceDispatch(t *testing.T) {
	src := `package fix
import "time"
type Doer interface{ Do() }
type A struct{}
func (A) Do() { _ = time.Now() }
type B struct{}
func (B) Do() {}
func root(d Doer) { d.Do() }
func unrelated()  { _ = time.Now() }
`
	m := buildModule(t, "dirsim/internal/fix", src)
	var rootFn *types.Func
	for _, fi := range m.Funcs() {
		if fi.Decl.Name.Name == "root" {
			rootFn = fi.Fn
		}
	}
	var names []string
	clock := false
	for _, fi := range m.Reachable(rootFn) {
		names = append(names, fi.Decl.Name.Name)
		for _, f := range fi.Facts {
			if f.Kind == FactClock {
				clock = true
			}
		}
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "Do") || len(names) != 3 {
		t.Errorf("interface call should reach both implementations: %v", names)
	}
	if !clock {
		t.Error("A.Do's clock fact not reachable from root")
	}
	if strings.Contains(joined, "unrelated") {
		t.Errorf("unrelated function reachable: %v", names)
	}
}

func TestContextAndChannelSummaries(t *testing.T) {
	src := `package fix
import "context"
func uses(ctx context.Context) { <-ctx.Done() }
func ignores(ctx context.Context) {}
func drains(ch chan int) int {
	n := 0
	for v := range ch {
		n += v
	}
	return n
}
`
	m := buildModule(t, "dirsim/internal/fix", src)
	if fi := findFunc(t, m, "uses"); !fi.AcceptsContext || !fi.ObservesContext {
		t.Errorf("uses: AcceptsContext=%v ObservesContext=%v", fi.AcceptsContext, fi.ObservesContext)
	}
	if fi := findFunc(t, m, "ignores"); !fi.AcceptsContext || fi.ObservesContext {
		t.Errorf("ignores: AcceptsContext=%v ObservesContext=%v", fi.AcceptsContext, fi.ObservesContext)
	}
	if fi := findFunc(t, m, "drains"); !fi.RangesOverChannel {
		t.Error("drains: channel range not recorded")
	}
}
