package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// EnginePurityRule enforces the precondition for the profile-guided
// engine rewrite (ROADMAP item 2) and for trusting sampled runs: every
// registered protocol engine's Access call graph — the per-reference hot
// path the paper's frequency-times-cost methodology beats on — must be
//
//   - free of per-call allocation (amortized growth is allowed: a
//     first-touch block-state insert or a scratch buffer reaching its
//     steady-state capacity is zero-cost per reference, but a fresh
//     slice, closure, make or &composite literal per call is not);
//   - clock-free and global-rand-free (bit-reproducible runs);
//   - free of map iteration (order nondeterminism must never influence
//     the bus-operation stream);
//   - free of goroutine spawns and of calls through function values the
//     graph cannot analyse.
//
// Roots are the Access methods of every module type implementing
// coherence.Engine; dynamic dispatch inside the path (directory.Store,
// cache.Replacer) resolves to every module implementation, so a single
// allocating store organisation fails the rule for the engines that can
// reach it.
type EnginePurityRule struct{}

// Name implements Rule.
func (EnginePurityRule) Name() string { return "enginepurity" }

// Doc implements Rule.
func (EnginePurityRule) Doc() string {
	return "per-call allocation, wall clock, global rand or map iteration reachable from an engine's Access hot path"
}

// EngineAccessRoots returns the Access method of every module type
// implementing coherence.Engine, keyed by the concrete type name. Tests
// use it to assert every registered engine is covered.
func EngineAccessRoots(m *Module) map[string]*types.Func {
	p := m.Package("internal/coherence")
	if p == nil {
		return nil
	}
	obj, ok := p.Pkg.Scope().Lookup("Engine").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	roots := map[string]*types.Func{}
	for _, named := range m.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		mobj, _, _ := types.LookupFieldOrMethod(named, true, named.Obj().Pkg(), "Access")
		if fn, ok := mobj.(*types.Func); ok && m.Func(fn) != nil {
			roots[named.Obj().Name()] = fn
		}
	}
	return roots
}

// CheckModule implements ModuleRule.
func (EnginePurityRule) CheckModule(m *Module) []Finding {
	roots := EngineAccessRoots(m)
	names := make([]string, 0, len(roots))
	for name := range roots {
		names = append(names, name)
	}
	sort.Strings(names)

	// Several engines share helpers; report each offending fact once,
	// naming the first (alphabetical) engine that reaches it.
	seen := map[token.Pos]bool{}
	var out []Finding
	for _, name := range names {
		for _, fi := range m.Reachable(roots[name]) {
			for _, fact := range fi.Facts {
				var what string
				switch fact.Kind {
				case FactAlloc:
					what = fmt.Sprintf("%s allocates on every call", fact.What)
				case FactClock:
					what = fmt.Sprintf("%s reads the wall clock", fact.What)
				case FactGlobalRand:
					what = fmt.Sprintf("%s draws from the process-global rand source", fact.What)
				case FactMapRange:
					what = "map iteration order can influence results"
				case FactGoSpawn:
					what = "goroutine spawned on the hot path"
				case FactDynamicCall:
					what = fact.What + " cannot be analysed"
				default:
					continue
				}
				if seen[fact.Pos] {
					continue
				}
				seen[fact.Pos] = true
				out = append(out, fi.Pkg.findingf(fact.Pos, "enginepurity",
					"%s inside %s, on %s's Access hot path — the per-reference path must be deterministic and allocation-free",
					what, fi.Decl.Name.Name, name))
			}
		}
	}
	return out
}
