package lint

import (
	"encoding/json"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning
// ingests. Only the required skeleton plus the properties code-scanning
// uses are emitted: tool driver with per-rule metadata, and one result
// per finding with a physical location. The structure below mirrors the
// OASIS sarif-schema-2.1.0 property names exactly; the encoding is
// validated structurally by tests, with no network access.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// MarshalSARIF renders findings as one SARIF 2.1.0 run of the given
// rules. relFile maps a finding's filename to the repository-relative,
// slash-separated URI code scanning expects. Rules appear in the given
// order; results reference them by ruleIndex. The "suppression" pseudo
// rule (malformed or unused pragmas) is appended when referenced.
func MarshalSARIF(findings []Finding, rules []Rule, relFile func(string) string) ([]byte, error) {
	drv := sarifDriver{Name: "dirsimlint"}
	index := map[string]int{}
	for _, r := range rules {
		index[r.Name()] = len(drv.Rules)
		drv.Rules = append(drv.Rules, sarifRule{
			ID:               r.Name(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}
	results := []sarifResult{}
	for _, f := range findings {
		ri, ok := index[f.Rule]
		if !ok {
			ri = len(drv.Rules)
			index[f.Rule] = ri
			drv.Rules = append(drv.Rules, sarifRule{
				ID:               f.Rule,
				ShortDescription: sarifMessage{Text: "findings about the suppression pragmas themselves"},
			})
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relFile(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: drv}, Results: results}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
