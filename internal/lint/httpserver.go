package lint

import (
	"go/ast"
	"go/types"
)

// HTTPServerRule guards the service layer's two classic footguns:
//
//   - an http.Server composite literal without ReadHeaderTimeout lets a
//     slow client hold a connection (and its goroutine) open forever —
//     the daemon must bound header reads;
//   - an HTTP handler that spawns a goroutine whose call references no
//     context.Context has detached work from the request lifecycle: it
//     can observe neither client disconnect nor graceful shutdown. Work
//     that must outlive the request should be handed to an owner that
//     was started with its own context, not forked loose;
//   - an outbound http.Client composite literal that sets neither
//     Timeout nor Transport (and any use of http.DefaultClient or the
//     package-level http.Get/Post/Head/PostForm helpers, which are that
//     client) can block a goroutine forever on an unresponsive peer.
//     Callers that deliberately rely on per-request context deadlines
//     must still say so by setting an explicit Transport with bounded
//     dial/TLS timeouts.
type HTTPServerRule struct{}

// Name implements Rule.
func (HTTPServerRule) Name() string { return "httpserver" }

// Doc implements Rule.
func (HTTPServerRule) Doc() string {
	return "http.Server without ReadHeaderTimeout, handler goroutine without a context, or outbound http.Client without a deadline"
}

// Check implements Rule.
func (HTTPServerRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if isNamedType(p.Info.TypeOf(x), "net/http", "Server") && !hasFieldKey(x, "ReadHeaderTimeout") {
					out = append(out, p.findingf(x.Pos(), "httpserver",
						"http.Server literal without ReadHeaderTimeout; a slow client can hold its connection open forever"))
				}
				if isNamedType(p.Info.TypeOf(x), "net/http", "Client") && !hasFieldKey(x, "Timeout") && !hasFieldKey(x, "Transport") {
					out = append(out, p.findingf(x.Pos(), "httpserver",
						"http.Client literal with neither Timeout nor Transport; an unresponsive peer blocks the caller forever"))
				}
			case *ast.SelectorExpr:
				if isHTTPPkgSel(p.Info, x, "DefaultClient") {
					out = append(out, p.findingf(x.Pos(), "httpserver",
						"http.DefaultClient has no timeout; build a client with a Timeout or a bounded Transport"))
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					for _, fn := range [...]string{"Get", "Post", "Head", "PostForm"} {
						if isHTTPPkgSel(p.Info, sel, fn) {
							out = append(out, p.findingf(x.Pos(), "httpserver",
								"http."+fn+" uses the deadline-free DefaultClient; use a client with a Timeout or a bounded Transport"))
						}
					}
				}
			case *ast.FuncDecl:
				if x.Body != nil && isHandlerSig(p.Info, x.Type) {
					out = append(out, handlerGoroutines(p, x.Body)...)
				}
			case *ast.FuncLit:
				if isHandlerSig(p.Info, x.Type) {
					out = append(out, handlerGoroutines(p, x.Body)...)
				}
			}
			return true
		})
	}
	return out
}

// handlerGoroutines flags go statements inside a handler body whose
// spawned call subtree never mentions a context.Context value.
func handlerGoroutines(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !referencesContext(p.Info, gs.Call) {
			out = append(out, p.findingf(gs.Pos(), "httpserver",
				"handler spawns a goroutine with no context; derive one from the request (or hand the work to an owner with its own lifecycle)"))
		}
		return true
	})
	return out
}

// referencesContext reports whether any expression in the call subtree
// (including a spawned func literal's body) has type context.Context.
func referencesContext(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := info.TypeOf(e); t != nil && isNamedType(t, "context", "Context") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isHandlerSig reports whether ft is the http.HandlerFunc shape:
// (http.ResponseWriter, *http.Request).
func isHandlerSig(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var params []types.Type
	for _, fld := range ft.Params.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		t := info.TypeOf(fld.Type)
		for i := 0; i < n; i++ {
			params = append(params, t)
		}
	}
	return len(params) == 2 &&
		isNamedType(params[0], "net/http", "ResponseWriter") &&
		isNamedType(params[1], "net/http", "Request")
}

// isHTTPPkgSel reports whether sel is the package-level selector
// net/http.<name> (not a method or field with the same name).
func isHTTPPkgSel(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "net/http"
}

// hasFieldKey reports whether the composite literal sets the named field.
func hasFieldKey(lit *ast.CompositeLit, name string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// isNamedType reports whether t (possibly behind one pointer) is the
// named type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
