package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// MapStateRule guards the data-oriented engine core (DESIGN.md §9): once
// per-block protocol state moved from address-keyed maps to dense arrays
// indexed by interned block ids, no engine hot path may grow a
// map[uint64]-keyed state field back. A map probe per reference is
// exactly the cost the interning pass removed — the decode stage already
// paid for the one hash lookup, so any further map[uint64] access on the
// Access call graph is a regression hiding in plain sight.
//
// The rule walks every function reachable from a registered engine's
// Access method and flags each struct field of type map[uint64]V it
// touches. Locals and parameters are exempt (a map built inside one call
// is not per-reference state), as is everything outside the Access call
// graph (construction, reporting, invariant checks).
type MapStateRule struct{}

// Name implements Rule.
func (MapStateRule) Name() string { return "mapstate" }

// Doc implements Rule.
func (MapStateRule) Doc() string {
	return "map[uint64]-keyed state field reachable from an engine's Access hot path; index per-block state by interned block id instead"
}

// uint64KeyedMap reports whether t's underlying type is map[uint64]V.
func uint64KeyedMap(t types.Type) bool {
	mp, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := mp.Key().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// CheckModule implements ModuleRule.
func (MapStateRule) CheckModule(m *Module) []Finding {
	roots := EngineAccessRoots(m)
	names := make([]string, 0, len(roots))
	for name := range roots {
		names = append(names, name)
	}
	sort.Strings(names)

	// Engines share helpers; report each offending field once, naming
	// the first (alphabetical) engine that reaches it.
	seen := map[types.Object]bool{}
	var out []Finding
	for _, name := range names {
		for _, fi := range m.Reachable(roots[name]) {
			if fi.Decl == nil || fi.Decl.Body == nil {
				continue
			}
			engine := name
			pkg := fi.Pkg
			fn := fi.Decl.Name.Name
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel := pkg.Info.Selections[se]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				field := sel.Obj()
				if seen[field] || !uint64KeyedMap(field.Type()) {
					return true
				}
				seen[field] = true
				out = append(out, pkg.findingf(se.Sel.Pos(), "mapstate",
					"field %s is map[uint64]-keyed state touched by %s, on %s's Access hot path — index per-block state by interned blockid.ID (struct-of-arrays), the decode stage already paid the one hash probe",
					field.Name(), fn, engine))
				return true
			})
		}
	}
	return out
}
