package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoCaptureRule flags goroutine literals that assign to variables captured
// from the enclosing function. The sanctioned shape — the study worker
// pattern in internal/study — passes loop variables as parameters and
// writes results through per-goroutine indexed slots (errs[si] = err),
// which never races; a bare assignment to a captured variable almost
// always does.
type GoCaptureRule struct{}

// Name implements Rule.
func (GoCaptureRule) Name() string { return "gocapture" }

// Doc implements Rule.
func (GoCaptureRule) Doc() string {
	return "goroutine assigns to a captured variable (use parameters and indexed slots)"
}

// Check implements Rule.
func (GoCaptureRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch s := m.(type) {
				case *ast.AssignStmt:
					if s.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range s.Lhs {
						if id := capturedVar(p.Info, lhs, lit); id != nil {
							out = append(out, p.findingf(lhs.Pos(), "gocapture",
								"goroutine assigns to captured variable %s; pass it as a parameter or write through an indexed slot",
								id.Name))
						}
					}
				case *ast.IncDecStmt:
					if id := capturedVar(p.Info, s.X, lit); id != nil {
						out = append(out, p.findingf(s.Pos(), "gocapture",
							"goroutine increments captured variable %s; use a per-goroutine slot and reduce after Wait",
							id.Name))
					}
				}
				return true
			})
			return true
		})
	}
	return out
}

// capturedVar returns the identifier when expr is a plain variable
// declared outside lit. Writes through index or selector expressions are
// not flagged: indexed slots are the sanctioned result channel, and field
// writes go through a captured pointer the rule cannot prove racy.
func capturedVar(info *types.Info, expr ast.Expr, lit *ast.FuncLit) *ast.Ident {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return nil // declared inside the literal (locals, parameters)
	}
	return id
}
