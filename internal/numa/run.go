package numa

import (
	"context"
	"fmt"
	"io"

	"dirsim/internal/trace"
)

// Options configures a trace run on the distributed machine.
type Options struct {
	// BlockBytes is the coherence block size; zero means 16 bytes.
	BlockBytes int
	// IncludeFirstRefCosts counts cold misses' traffic instead of
	// excluding them (the bus simulator's convention is exclusion).
	IncludeFirstRefCosts bool
}

// checkEvery is how many references pass between context checks, so a
// cancelled run returns promptly without a per-reference branch cost.
const checkEvery = 4096

// Run streams a trace through the engine, mapping each reference's CPU to
// a node, with the same first-reference convention as the bus simulator.
// The context cancels the run between reference batches.
func Run(ctx context.Context, rd trace.Reader, e *Engine, opts Options) (*Stats, error) {
	blockBytes := opts.BlockBytes
	if blockBytes == 0 {
		blockBytes = trace.DefaultBlockBytes
	}
	if !trace.IsPow2(blockBytes) {
		return nil, fmt.Errorf("numa: block size %d is not a power of two", blockBytes)
	}
	seen := map[uint64]bool{}
	processed := 0
	for {
		if processed%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ref, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		c := int(ref.CPU)
		if c >= e.Nodes() {
			return nil, fmt.Errorf("numa: reference needs node %d but the machine has %d", c, e.Nodes())
		}
		block := trace.Block(ref.Addr, blockBytes)
		first := false
		if ref.Kind != trace.Instr && !opts.IncludeFirstRefCosts && !seen[block] {
			seen[block] = true
			first = true
		}
		e.Access(c, ref.Kind, block, first)
		processed++
	}
	return e.Stats(), nil
}
