package numa

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func must[E any](e E, err error) E {
	if err != nil {
		panic(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{Nodes: 0}, {Nodes: 1 << 17}, {Nodes: 4, Policy: HomePolicy(9)}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if Interleaved.String() != "interleaved" || FirstTouch.String() != "first-touch" {
		t.Error("policy names wrong")
	}
}

// Hand-checked message accounting for the classic transactions.
func TestTwoHopCleanMiss(t *testing.T) {
	e := must(New(Config{Nodes: 4}))
	// Block 1 homes at node 1. Node 0 reads it (cold, free), then node 2
	// misses: request 2→1, data 1→2 — two messages, two critical hops.
	e.Access(0, trace.Read, 1, true)
	st := e.Stats()
	if st.Messages != 0 {
		t.Fatalf("cold miss sent %d messages", st.Messages)
	}
	e.Access(2, trace.Read, 1, false)
	if st.Messages != 2 || st.CriticalHops != 2 {
		t.Fatalf("clean miss: %d msgs, %d hops; want 2, 2", st.Messages, st.CriticalHops)
	}
	if st.HomeRemote != 1 || st.HomeLocal != 0 {
		t.Fatalf("home split = %d local / %d remote", st.HomeLocal, st.HomeRemote)
	}
}

func TestLocalHomeCostsNoHops(t *testing.T) {
	e := must(New(Config{Nodes: 4}))
	// Block 1 homes at node 1; node 1 itself misses on it after node 0
	// touched it: request and reply are local — messages counted, hops 0.
	e.Access(0, trace.Read, 1, true)
	e.Access(1, trace.Read, 1, false)
	st := e.Stats()
	if st.CriticalHops != 0 {
		t.Fatalf("local-home miss cost %d hops", st.CriticalHops)
	}
	if st.HomeLocal != 1 {
		t.Fatalf("HomeLocal = %d", st.HomeLocal)
	}
}

func TestThreeHopDirtyMiss(t *testing.T) {
	e := must(New(Config{Nodes: 4}))
	// Node 0 writes block 1 (cold: free, dirty at 0). Node 2 reads:
	// 2→1 (home), 1→0 (forward), 0→2 (data) = 3 critical hops, plus the
	// off-path write-back 0→1: 4 messages.
	e.Access(0, trace.Write, 1, true)
	e.Access(2, trace.Read, 1, false)
	st := e.Stats()
	if st.Messages != 4 {
		t.Fatalf("messages = %d, want 4", st.Messages)
	}
	if st.CriticalHops != 3 {
		t.Fatalf("critical hops = %d, want 3", st.CriticalHops)
	}
	if st.ThreeHopMisses != 1 {
		t.Fatalf("ThreeHopMisses = %d", st.ThreeHopMisses)
	}
}

func TestInvalidationsCarryAcks(t *testing.T) {
	e := must(New(Config{Nodes: 4}))
	e.Access(0, trace.Read, 1, true)
	e.Access(2, trace.Read, 1, false)
	e.Access(3, trace.Read, 1, false)
	before := e.Stats().Messages
	// Node 0 upgrades: request 0→1, invalidations 1→2 and 1→3, acks
	// 2→0 and 3→0, grant 1→0: six messages.
	e.Access(0, trace.Write, 1, false)
	st := e.Stats()
	if got := st.Messages - before; got != 6 {
		t.Fatalf("upgrade messages = %d, want 6", got)
	}
	if st.Invalidations != 2 || st.InvalAcks != 2 {
		t.Fatalf("invals/acks = %d/%d", st.Invalidations, st.InvalAcks)
	}
}

// The event classification must coincide exactly with the bus simulator's
// full-map engine — same protocol, different accounting.
func TestClassificationMatchesDirnNB(t *testing.T) {
	n := must(New(Config{Nodes: 5}))
	d := must(coherence.NewDirnNB(coherence.Config{Caches: 5}))
	rng := rand.New(rand.NewSource(23))
	seen := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		c := rng.Intn(5)
		b := uint64(rng.Intn(64))
		kind := trace.Read
		switch rng.Intn(5) {
		case 0:
			kind = trace.Write
		case 1:
			kind = trace.Instr
		}
		first := false
		if kind != trace.Instr && !seen[b] {
			seen[b] = true
			first = true
		}
		got := n.Access(c, kind, b, first)
		want := d.Access(c, kind, b, first)
		if got != want {
			t.Fatalf("ref %d: numa %v, DirnNB %v", i, got, want)
		}
	}
	if n.Stats().Events != d.Stats().Events {
		t.Fatal("aggregate events differ")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouchImprovesLocality(t *testing.T) {
	// Private-heavy traffic: each node works on its own blocks, with a
	// little sharing. First-touch should make most homes local;
	// interleaved leaves ~1/n local.
	gen := func(policy HomePolicy) *Stats {
		e := must(New(Config{Nodes: 4, Policy: policy}))
		rng := rand.New(rand.NewSource(7))
		seen := map[uint64]bool{}
		for i := 0; i < 40000; i++ {
			c := rng.Intn(4)
			var b uint64
			if rng.Intn(10) == 0 {
				b = uint64(rng.Intn(8)) // shared pool
			} else {
				b = uint64(1000*(c+1) + rng.Intn(40)) // private pool
			}
			kind := trace.Read
			if rng.Intn(4) == 0 {
				kind = trace.Write
			}
			first := !seen[b]
			seen[b] = true
			e.Access(c, kind, b, first)
		}
		return e.Stats()
	}
	inter := gen(Interleaved)
	ft := gen(FirstTouch)
	if ft.LocalHomeFraction() <= inter.LocalHomeFraction() {
		t.Fatalf("first-touch locality %.2f not above interleaved %.2f",
			ft.LocalHomeFraction(), inter.LocalHomeFraction())
	}
	if ft.CriticalHopsPerRef() >= inter.CriticalHopsPerRef() {
		t.Fatalf("first-touch hops %.4f not below interleaved %.4f",
			ft.CriticalHopsPerRef(), inter.CriticalHopsPerRef())
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.MessagesPerRef() != 0 || s.CriticalHopsPerRef() != 0 || s.LocalHomeFraction() != 0 {
		t.Fatal("zero stats should report zeros")
	}
}

func TestAccessPanicsOutOfRange(t *testing.T) {
	e := must(New(Config{Nodes: 2}))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Access(2, trace.Read, 1, true)
}

// Property: invariants hold, hits generate no traffic, and messages are
// always at least critical hops.
func TestQuickNumaInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		e, err := New(Config{Nodes: 4, Policy: FirstTouch})
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, w := range raw {
			c := int(w) % 4
			b := uint64(w>>8) % 32
			kind := trace.Read
			if (w>>4)%3 == 0 {
				kind = trace.Write
			}
			first := !seen[b]
			seen[b] = true
			before := e.Stats().Messages
			ev := e.Access(c, kind, b, first)
			if ev == events.ReadHit || ev == events.WriteHitDirty {
				if e.Stats().Messages != before {
					return false
				}
			}
		}
		if e.Stats().Messages < e.Stats().CriticalHops {
			return false
		}
		return e.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnGeneratedWorkload(t *testing.T) {
	gen := must(tracegen.New(tracegen.POPS(60_000)))
	e := must(New(Config{Nodes: 4, Policy: FirstTouch}))
	st, err := Run(context.Background(), gen, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Refs != 60_000 {
		t.Fatalf("Refs = %d", st.Refs)
	}
	if st.Messages == 0 || st.CriticalHops == 0 {
		t.Fatal("no traffic recorded")
	}
	// First-touch on a process-pinned workload keeps most homes local.
	if st.LocalHomeFraction() < 0.2 {
		t.Errorf("local-home fraction = %.2f, suspiciously low", st.LocalHomeFraction())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	e := must(New(Config{Nodes: 2}))
	tr := trace.Slice{{CPU: 3, Kind: trace.Read, Addr: 1}}
	if _, err := Run(context.Background(), trace.NewSliceReader(tr), e, Options{}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if _, err := Run(context.Background(), trace.NewSliceReader(nil), e, Options{BlockBytes: 12}); err == nil {
		t.Error("bad block size accepted")
	}
}
