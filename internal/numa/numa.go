// Package numa models the paper's Section 7 machine at the message level:
// memory and directory are distributed across the processing nodes, and
// coherence actions become point-to-point messages on an interconnect
// instead of bus transactions.
//
// The protocol is the full-map directory (Dir_nNB — the organisation the
// paper recommends for scaling): every block has a home node holding its
// memory and directory entry; misses go to the home, which forwards to a
// dirty owner or answers from memory, and writes trigger directed
// invalidations with acknowledgements. The engine counts
//
//   - protocol messages (interconnect bandwidth demand),
//   - critical-path hops (the latency a requester waits through: the
//     classic 2-hop clean miss and 3-hop dirty miss), and
//   - the fraction of misses whose home is the local node (free hops).
//
// Two home-assignment policies are provided: Interleaved (home = block mod
// nodes, the hardware-simple choice) and FirstTouch (home = first node to
// reference the block, the locality-preserving OS policy). The contrast
// quantifies why first-touch placement matters on directory machines.
package numa

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// HomePolicy selects how blocks are assigned to home nodes.
type HomePolicy uint8

const (
	// Interleaved homes block b at node b mod n.
	Interleaved HomePolicy = iota
	// FirstTouch homes a block at the node that first references it.
	FirstTouch
)

// String names the policy.
func (p HomePolicy) String() string {
	switch p {
	case Interleaved:
		return "interleaved"
	case FirstTouch:
		return "first-touch"
	default:
		return fmt.Sprintf("HomePolicy(%d)", uint8(p))
	}
}

// Config parameterises the distributed machine.
type Config struct {
	// Nodes is the number of processor+memory+directory nodes.
	Nodes int
	// Policy selects the home assignment.
	Policy HomePolicy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > 1<<16 {
		return fmt.Errorf("numa: node count %d out of range", c.Nodes)
	}
	if c.Policy > FirstTouch {
		return fmt.Errorf("numa: unknown home policy %d", c.Policy)
	}
	return nil
}

// Stats accumulates the message-level accounting.
type Stats struct {
	// Refs is the number of references processed.
	Refs uint64
	// Events is the Table 4 classification (identical to the bus
	// simulator's DirnNB engine on the same trace — asserted in tests).
	Events events.Counts
	// Messages is the total protocol messages placed on the
	// interconnect (requests, forwards, data, invalidations, acks).
	Messages uint64
	// CriticalHops is the total hops on requesters' critical paths
	// (a hop between two distinct nodes costs 1; a local hop costs 0).
	CriticalHops uint64
	// Transactions counts references that needed any messages.
	Transactions uint64
	// HomeLocal and HomeRemote split transactions by whether the block's
	// home was the requesting node.
	HomeLocal, HomeRemote uint64
	// Invalidations and InvalAcks count directed invalidation traffic.
	Invalidations, InvalAcks uint64
	// ThreeHopMisses counts misses serviced by a dirty remote owner.
	ThreeHopMisses uint64
}

// MessagesPerRef returns average protocol messages per reference.
func (s *Stats) MessagesPerRef() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Messages) / float64(s.Refs)
}

// CriticalHopsPerRef returns average critical-path hops per reference.
func (s *Stats) CriticalHopsPerRef() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.CriticalHops) / float64(s.Refs)
}

// LocalHomeFraction returns the fraction of transactions whose home node
// was local.
func (s *Stats) LocalHomeFraction() float64 {
	t := s.HomeLocal + s.HomeRemote
	if t == 0 {
		return 0
	}
	return float64(s.HomeLocal) / float64(t)
}

// blockState is the ground truth plus directory content (exact, full map).
type blockState struct {
	sharers bitset.Set
	dirty   bool
	owner   int
	home    int
}

// Engine simulates the distributed full-map directory machine.
type Engine struct {
	cfg   Config
	stats Stats
	state map[uint64]*blockState
}

// New returns a distributed-directory engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, state: map[uint64]*blockState{}}, nil
}

// Nodes returns the machine size.
func (e *Engine) Nodes() int { return e.cfg.Nodes }

// Stats exposes the accounting.
func (e *Engine) Stats() *Stats { return &e.stats }

// home resolves (and on first touch, assigns) a block's home node.
func (e *Engine) home(bs *blockState, block uint64, toucher int) int {
	if bs.home >= 0 {
		return bs.home
	}
	switch e.cfg.Policy {
	case FirstTouch:
		bs.home = toucher
	default:
		bs.home = int(block % uint64(e.cfg.Nodes))
	}
	return bs.home
}

func (e *Engine) ensure(block uint64) *blockState {
	bs := e.state[block]
	if bs == nil {
		bs = &blockState{owner: -1, home: -1}
		e.state[block] = bs
	}
	return bs
}

// hop counts one message from node a to node b: it always costs a message;
// it costs a critical-path hop only when it crosses nodes and is on the
// requester's waiting path (critical=true).
func (e *Engine) hop(a, b int, critical bool) {
	e.stats.Messages++
	if critical && a != b {
		e.stats.CriticalHops++
	}
}

// Access processes one reference from node c.
func (e *Engine) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Nodes {
		panic(fmt.Sprintf("numa: node %d out of range [0,%d)", c, e.cfg.Nodes))
	}
	e.stats.Refs++
	if kind == trace.Instr {
		e.stats.Events.Inc(events.Instr)
		return events.Instr
	}
	bs := e.ensure(block)
	home := e.home(bs, block, c)
	holds := bs.sharers.Contains(c)
	msgsBefore := e.stats.Messages
	var ev events.Type
	switch kind {
	case trace.Read:
		ev = e.read(bs, c, home, holds, first)
	default:
		ev = e.write(bs, c, home, holds, first)
	}
	e.stats.Events.Inc(ev)
	if e.stats.Messages > msgsBefore {
		e.stats.Transactions++
		if home == c {
			e.stats.HomeLocal++
		} else {
			e.stats.HomeRemote++
		}
	}
	return ev
}

func (e *Engine) read(bs *blockState, c, home int, holds, first bool) events.Type {
	if holds {
		return events.ReadHit
	}
	if first {
		bs.sharers.Add(c)
		return events.ReadMissFirst
	}
	// Request to the home.
	e.hop(c, home, true)
	switch {
	case bs.dirty:
		// Home forwards to the owner; the owner sends the data to the
		// requester and a sharing write-back to the home.
		e.hop(home, bs.owner, true)
		e.hop(bs.owner, c, true)
		e.hop(bs.owner, home, false) // write-back, off the critical path
		e.stats.ThreeHopMisses++
		bs.dirty = false
		bs.owner = -1
		bs.sharers.Add(c)
		return events.ReadMissDirty
	case !bs.sharers.Empty():
		e.hop(home, c, true) // data reply from home memory
		bs.sharers.Add(c)
		return events.ReadMissClean
	default:
		e.hop(home, c, true)
		bs.sharers.Add(c)
		return events.ReadMissUncached
	}
}

func (e *Engine) write(bs *blockState, c, home int, holds, first bool) events.Type {
	if holds && bs.dirty {
		// Owner writes locally.
		return events.WriteHitDirty
	}
	if first {
		bs.sharers.Clear()
		bs.sharers.Add(c)
		bs.dirty = true
		bs.owner = c
		return events.WriteMissFirst
	}
	// invalidate sends directed invalidations to every other sharer and
	// collects their acknowledgements at the requester.
	invalidate := func() {
		for h := bs.sharers.Next(0); h >= 0; h = bs.sharers.Next(h + 1) {
			if h != c {
				e.hop(home, h, true) // invalidation
				e.hop(h, c, true)    // acknowledgement to the writer
				e.stats.Invalidations++
				e.stats.InvalAcks++
			}
		}
	}
	var ev events.Type
	switch {
	case holds:
		// Upgrade: ownership request to the home, then invalidations.
		e.hop(c, home, true)
		if bs.sharers.ContainsOther(c) {
			ev = events.WriteHitCleanShared
		} else {
			ev = events.WriteHitCleanSole
		}
		invalidate()
		e.hop(home, c, true) // ownership grant
	case bs.dirty:
		// Dirty elsewhere: forward through the home to the owner, who
		// sends the block (with ownership) to the requester.
		e.hop(c, home, true)
		e.hop(home, bs.owner, true)
		e.hop(bs.owner, c, true)
		e.stats.ThreeHopMisses++
		ev = events.WriteMissDirty
	case !bs.sharers.Empty():
		e.hop(c, home, true)
		ev = events.WriteMissClean
		invalidate()
		e.hop(home, c, true) // data + ownership
	default:
		e.hop(c, home, true)
		e.hop(home, c, true)
		ev = events.WriteMissUncached
	}
	bs.sharers.Clear()
	bs.sharers.Add(c)
	bs.dirty = true
	bs.owner = c
	return ev
}

// CheckInvariants verifies the directory state.
func (e *Engine) CheckInvariants() error {
	for block, bs := range e.state {
		if bs.dirty {
			if n := bs.sharers.Count(); n != 1 {
				return fmt.Errorf("numa: block %#x dirty with %d holders", block, n)
			}
			if sole, _ := bs.sharers.Sole(); sole != bs.owner {
				return fmt.Errorf("numa: block %#x owner mismatch", block)
			}
		}
		if bs.home < -1 || bs.home >= e.cfg.Nodes {
			return fmt.Errorf("numa: block %#x home %d out of range", block, bs.home)
		}
	}
	return nil
}
