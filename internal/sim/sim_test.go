package sim

import (
	"context"
	"math"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func must[E any](e E, err error) E {
	if err != nil {
		panic(err)
	}
	return e
}

func cfg4() coherence.Config { return coherence.Config{Caches: 4} }

func smallTrace() trace.Slice {
	// Two CPUs sharing block 0x1, private blocks 0x2, 0x3.
	return trace.Slice{
		{CPU: 0, PID: 1, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, PID: 2, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, PID: 1, Kind: trace.Write, Addr: 0x10},
		{CPU: 1, PID: 2, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, PID: 1, Kind: trace.Instr, Addr: 0x1000},
		{CPU: 1, PID: 2, Kind: trace.Write, Addr: 0x30},
	}
}

func TestRunBasic(t *testing.T) {
	engines := []coherence.Engine{
		must(coherence.NewDir0B(cfg4())),
		must(coherence.NewDragon(cfg4())),
	}
	rs, err := Run(context.Background(), trace.NewSliceReader(smallTrace()), engines, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Scheme != "Dir0B" || rs[1].Scheme != "Dragon" {
		t.Fatalf("results = %+v", rs)
	}
	st := rs[0].Stats
	if st.Refs != 6 {
		t.Fatalf("Refs = %d", st.Refs)
	}
	// First refs to 0x1 (read) and 0x3 (write) excluded; the rest priced.
	if st.Events[events.ReadMissFirst] != 1 || st.Events[events.WriteMissFirst] != 1 {
		t.Fatalf("first-ref events wrong: %v", st.Events)
	}
	if st.Events[events.ReadMissClean] != 1 { // CPU1's first read of shared block
		t.Fatalf("rm-blk-cln = %d", st.Events[events.ReadMissClean])
	}
	if st.Events[events.ReadMissDirty] != 1 { // CPU1 rereads after CPU0's write
		t.Fatalf("rm-blk-drty = %d", st.Events[events.ReadMissDirty])
	}
	if st.Events[events.WriteHitCleanShared] != 1 {
		t.Fatalf("wh-blk-cln-shared = %d", st.Events[events.WriteHitCleanShared])
	}
}

func TestRunValidatesOptionsAndEngines(t *testing.T) {
	e := must(coherence.NewDir0B(cfg4()))
	if _, err := Run(context.Background(), trace.NewSliceReader(nil), nil, Options{}); err == nil {
		t.Error("empty engine list accepted")
	}
	if _, err := Run(context.Background(), trace.NewSliceReader(nil), []coherence.Engine{e}, Options{BlockBytes: 12}); err == nil {
		t.Error("bad block size accepted")
	}
	if _, err := Run(context.Background(), trace.NewSliceReader(nil), []coherence.Engine{e}, Options{CacheBy: CacheBy(9)}); err == nil {
		t.Error("bad CacheBy accepted")
	}
	mixed := []coherence.Engine{e, must(coherence.NewDir0B(coherence.Config{Caches: 8}))}
	if _, err := Run(context.Background(), trace.NewSliceReader(nil), mixed, Options{}); err == nil {
		t.Error("mismatched cache counts accepted")
	}
	tooSmall := []coherence.Engine{must(coherence.NewDir0B(coherence.Config{Caches: 1}))}
	tr := trace.Slice{{CPU: 3, Kind: trace.Read, Addr: 1}}
	if _, err := Run(context.Background(), trace.NewSliceReader(tr), tooSmall, Options{}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
}

func TestRunByProcessMapsDensely(t *testing.T) {
	// Same process migrating across CPUs must stay in one cache under
	// ByProcess, so no sharing traffic arises.
	tr := trace.Slice{
		{CPU: 0, PID: 7, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, PID: 7, Kind: trace.Read, Addr: 0x10},
		{CPU: 2, PID: 7, Kind: trace.Write, Addr: 0x10},
	}
	byCPU, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byProc, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{CacheBy: ByProcess})
	if err != nil {
		t.Fatal(err)
	}
	if byProc[0].Stats.Events.ReadMisses() != 0 {
		t.Errorf("ByProcess misses = %d, want 0", byProc[0].Stats.Events.ReadMisses())
	}
	if byCPU[0].Stats.Events.ReadMisses() == 0 {
		t.Error("ByCPU should see migration-induced misses")
	}
}

func TestIncludeFirstRefCosts(t *testing.T) {
	tr := trace.Slice{{CPU: 0, Kind: trace.Read, Addr: 0x10}}
	excl, _ := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
	incl, _ := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{IncludeFirstRefCosts: true})
	if excl[0].Stats.Ops.Total() != 0 {
		t.Error("excluded first ref emitted ops")
	}
	if incl[0].Stats.Ops[bus.OpMemRead] != 1 {
		t.Error("included first ref did not fetch")
	}
	if incl[0].Stats.Events[events.ReadMissUncached] != 1 {
		t.Errorf("included first ref classified as %v", incl[0].Stats.Events)
	}
}

func TestRunSchemes(t *testing.T) {
	rs, err := RunSchemes(context.Background(), trace.NewSliceReader(smallTrace()),
		[]string{"dir1nb", "wti"}, cfg4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Scheme != "Dir1NB" || rs[1].Scheme != "WTI" {
		t.Fatalf("results = %v", []string{rs[0].Scheme, rs[1].Scheme})
	}
	if _, err := RunSchemes(context.Background(), trace.NewSliceReader(nil), []string{"nope"}, cfg4(), Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestCombine(t *testing.T) {
	mk := func() Result {
		rs, err := Run(context.Background(), trace.NewSliceReader(smallTrace()),
			[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0]
	}
	a, b := mk(), mk()
	agg, err := Combine([]Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stats.Refs != a.Stats.Refs*2 {
		t.Errorf("combined Refs = %d", agg.Stats.Refs)
	}
	if agg.Stats.Ops != mergeOps(a.Stats.Ops, b.Stats.Ops) {
		t.Error("combined ops wrong")
	}
	// Frequencies are preserved under equal-weight merge.
	if math.Abs(agg.EventFrequency(events.ReadHit)-a.EventFrequency(events.ReadHit)) > 1e-12 {
		t.Error("frequency changed under combine")
	}
	if _, err := Combine(nil); err == nil {
		t.Error("empty combine accepted")
	}
	other, _ := Run(context.Background(), trace.NewSliceReader(smallTrace()),
		[]coherence.Engine{must(coherence.NewDragon(cfg4()))}, Options{})
	if _, err := Combine([]Result{a, other[0]}); err == nil {
		t.Error("cross-scheme combine accepted")
	}
}

func mergeOps(a, b bus.OpCounts) bus.OpCounts {
	a.Merge(b)
	return a
}

func TestResultModelAdjustment(t *testing.T) {
	rs, err := Run(context.Background(), trace.NewSliceReader(smallTrace()),
		[]coherence.Engine{must(coherence.NewBerkeley(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := rs[0].Model(bus.Pipelined())
	if m.Cost[bus.OpDirCheck] != 0 {
		t.Error("Berkeley result did not adjust the model")
	}
}

// The paper's two accounting paths must agree: pricing measured events by
// the per-event operation tables reproduces the engines' exact operation
// tallies on real workloads.
func TestAccountingPathsAgreeOnGeneratedTraces(t *testing.T) {
	for _, cfgGen := range tracegen.Presets(60000) {
		gen := must(tracegen.New(cfgGen))
		engines, err := coherence.Section3Engines(cfg4())
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, must(coherence.NewBerkeley(cfg4())))
		rs, err := Run(context.Background(), gen, engines, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if err := VerifyAccounting(r); err != nil {
				t.Errorf("%s on %s: %v", r.Scheme, cfgGen.Name, err)
			}
		}
	}
}

func TestOpsFromEventsUnknownScheme(t *testing.T) {
	if _, err := OpsFromEvents("DirnNB", events.Counts{}); err == nil {
		t.Error("data-dependent scheme accepted")
	}
	var ev events.Counts
	ev.Inc(events.ReadMissClean)
	ops, err := OpsFromEvents("Dir1NB", ev)
	if err != nil {
		t.Fatal(err)
	}
	if ops[bus.OpMemRead] != 1 || ops[bus.OpInvalidate] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestVerifyAccountingSkipsDataDependent(t *testing.T) {
	rs, err := Run(context.Background(), trace.NewSliceReader(smallTrace()),
		[]coherence.Engine{must(coherence.NewDirnNB(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAccounting(rs[0]); err != nil {
		t.Errorf("data-dependent scheme should be skipped, got %v", err)
	}
}

func TestDirToMemBandwidthRatio(t *testing.T) {
	rs, err := Run(context.Background(), trace.NewSliceReader(smallTrace()),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := rs[0].DirToMemBandwidthRatio(); r <= 0 {
		t.Errorf("ratio = %v, want positive", r)
	}
	var empty Result
	empty.Stats = &coherence.Stats{}
	if empty.DirToMemBandwidthRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestWarmupRefs(t *testing.T) {
	tr := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10},  // warm-up: cold fill
		{CPU: 1, Kind: trace.Read, Addr: 0x10},  // warm-up: rm-blk-cln
		{CPU: 0, Kind: trace.Read, Addr: 0x10},  // measured: hit
		{CPU: 1, Kind: trace.Write, Addr: 0x10}, // measured: wh shared
	}
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))},
		Options{WarmupRefs: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := rs[0].Stats
	if st.Refs != 2 {
		t.Fatalf("measured Refs = %d, want 2", st.Refs)
	}
	if st.Events[events.ReadHit] != 1 {
		t.Fatalf("measured events = %v", st.Events)
	}
	// Protocol state survived the reset: the write sees the shared copy.
	if st.Events[events.WriteHitCleanShared] != 1 {
		t.Fatalf("warm state lost: %v", st.Events)
	}
}

func TestWarmupLongerThanTrace(t *testing.T) {
	tr := trace.Slice{{CPU: 0, Kind: trace.Read, Addr: 0x10}}
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))},
		Options{WarmupRefs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Stats.Refs != 0 {
		t.Fatalf("Refs = %d, want 0 (whole trace was warm-up)", rs[0].Stats.Refs)
	}
}

func TestWarmupValidation(t *testing.T) {
	if err := (Options{WarmupRefs: -1}).Validate(); err == nil {
		t.Error("negative WarmupRefs accepted")
	}
}

func TestAvgAccessTime(t *testing.T) {
	tr := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10}, // first: free
		{CPU: 1, Kind: trace.Read, Addr: 0x10}, // mem read: 5 cycles
		{CPU: 0, Kind: trace.Read, Addr: 0x10}, // hit
		{CPU: 1, Kind: trace.Read, Addr: 0x10}, // hit
	}
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := bus.Pipelined().Latency(1, 1)
	// 4 refs, 1 transaction of 5 cycles + 1 overhead: 1 + 6/4 = 2.5.
	if got := rs[0].AvgAccessTime(l); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("AvgAccessTime = %v, want 2.5", got)
	}
}

func TestAvgAccessTimeAppliesModelAdjustment(t *testing.T) {
	tr := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, Kind: trace.Write, Addr: 0x10}, // wh-clean-sole: dir check
	}
	berk, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewBerkeley(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d0b, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(cfg4()))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := bus.Pipelined().Latency(0, 0)
	if berk[0].AvgAccessTime(l) >= d0b[0].AvgAccessTime(l) {
		t.Error("Berkeley latency should drop the directory-check cost")
	}
}
