package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// The equivalence harness freezes the observable outcome of every engine —
// full Stats plus the canonical protocol-state key over every data block the
// trace touches — as SHA-256 digests in testdata/equivalence.json. The
// goldens were generated from the original map-keyed engines, so any
// representation change (block-id interning, struct-of-arrays state, the
// intrusive LRU) that perturbs results by even one counter fails here.
// Regenerate with `go test ./internal/sim -run TestEngineEquivalenceGoldens
// -update` — but only when a behaviour change is intended and understood.

const equivalenceGoldenFile = "testdata/equivalence.json"

// equivalenceCases pairs machine configurations with driver options,
// covering the paper's infinite-cache mode, first-reference pricing,
// finite set-associative caches (LRU order), sparse directories (entry
// eviction order) and warm-up windows.
func equivalenceCases() []struct {
	name string
	cfg  coherence.Config
	opts Options
} {
	return []struct {
		name string
		cfg  coherence.Config
		opts Options
	}{
		{"inf4", coherence.Config{Caches: 4}, Options{}},
		{"inf8", coherence.Config{Caches: 8}, Options{}},
		{"inf4-firstcosts", coherence.Config{Caches: 4}, Options{IncludeFirstRefCosts: true}},
		{"finite4", coherence.Config{Caches: 4, FiniteSets: 64, FiniteWays: 2}, Options{}},
		{"sparse4", coherence.Config{Caches: 4, DirEntries: 128}, Options{}},
		{"warmup4", coherence.Config{Caches: 4}, Options{WarmupRefs: 7000}},
	}
}

// equivalenceTraces returns the deterministic workloads the digests cover.
func equivalenceTraces(t *testing.T) map[string]trace.Slice {
	t.Helper()
	pops, err := tracegen.Generate(tracegen.POPS(25_000))
	if err != nil {
		t.Fatal(err)
	}
	pero, err := tracegen.Generate(tracegen.PERO(25_000))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]trace.Slice{"pops": pops, "pero": pero}
}

// dataBlocks returns every distinct data block the trace touches, ascending.
func dataBlocks(tr trace.Slice, blockBytes int) []uint64 {
	seen := map[uint64]bool{}
	for _, r := range tr {
		if r.Kind == trace.Instr {
			continue
		}
		seen[trace.Block(r.Addr, blockBytes)] = true
	}
	out := make([]uint64, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// engineDigest hashes everything a run makes observable: the scheme name,
// the full Stats (JSON, fixed field order) and the Inspector's canonical
// state key over the given blocks.
func engineDigest(t *testing.T, r Result, eng coherence.Engine, blocks []uint64) string {
	t.Helper()
	stats, err := json.Marshal(r.Stats)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "scheme=%s\nstats=%s\n", r.Scheme, stats)
	insp, ok := eng.(coherence.Inspector)
	if !ok {
		t.Fatalf("%s: engine does not implement Inspector", r.Scheme)
	}
	fmt.Fprintf(h, "state=%s\n", insp.StateKey(blocks))
	return hex.EncodeToString(h.Sum(nil))
}

// computeEquivalenceDigests runs every registered engine over every
// workload × configuration and returns the digest map keyed
// "workload/config/scheme".
func computeEquivalenceDigests(t *testing.T) map[string]string {
	t.Helper()
	traces := equivalenceTraces(t)
	workloads := make([]string, 0, len(traces))
	for w := range traces {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	digests := map[string]string{}
	for _, w := range workloads {
		tr := traces[w]
		blocks := dataBlocks(tr, trace.DefaultBlockBytes)
		for _, c := range equivalenceCases() {
			for _, scheme := range coherence.EngineNames() {
				eng, err := coherence.NewByName(scheme, c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), trace.NewSliceReader(tr), []coherence.Engine{eng}, c.opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", w, c.name, scheme, err)
				}
				if err := eng.CheckInvariants(); err != nil {
					t.Fatalf("%s/%s/%s: %v", w, c.name, scheme, err)
				}
				digests[w+"/"+c.name+"/"+scheme] = engineDigest(t, res[0], eng, blocks)
			}
		}
	}
	return digests
}

// TestEngineEquivalenceGoldens asserts that every engine still produces
// bitwise-identical results to the original sequential map-keyed
// implementation, across all 17 schemes and every configuration class.
func TestEngineEquivalenceGoldens(t *testing.T) {
	got := computeEquivalenceDigests(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(equivalenceGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivalenceGoldenFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), equivalenceGoldenFile)
		return
	}
	data, err := os.ReadFile(equivalenceGoldenFile)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d digests, run produced %d", len(want), len(got))
	}
	var bad []string
	for k, w := range want {
		if g, ok := got[k]; !ok {
			bad = append(bad, k+" (missing from run)")
		} else if g != w {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	if len(bad) > 0 {
		t.Errorf("%d of %d digests diverge from the seed results:\n  %s",
			len(bad), len(want), strings.Join(bad, "\n  "))
	}
}
