package sim

import (
	"context"
	"encoding/json"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// statsJSON renders a result's full Stats with fixed field order, the same
// observable the frozen equivalence digests hash.
func statsJSON(t *testing.T, r Result) string {
	t.Helper()
	data, err := json.Marshal(r.Stats)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The address-partitioned driver must reproduce the sequential driver's
// Stats bit for bit, for every engine family, across shard counts that do
// and do not divide the block population evenly, and across the warm-up
// boundary (which partitioned workers handle with reset markers at the
// global reference ordinal).
func TestPartitionMatchesSequential(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(25_000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := coherence.Config{Caches: 4}
	names := coherence.EngineNames()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain-p2", Options{Partition: 2}},
		{"plain-p3", Options{Partition: 3}},
		{"plain-p8", Options{Partition: 8}},
		{"firstcosts-p4", Options{IncludeFirstRefCosts: true, Partition: 4}},
		{"warmup-p4", Options{WarmupRefs: 7000, Partition: 4}},
		{"warmup-unaligned-p3", Options{WarmupRefs: batchRefs + 13, Partition: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqOpts := tc.opts
			seqOpts.Partition = 0
			seq, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), names, cfg, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), names, cfg, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("partitioned run returned %d results, sequential %d", len(par), len(seq))
			}
			for i := range seq {
				if par[i].Scheme != seq[i].Scheme {
					t.Fatalf("result %d: scheme %q vs %q", i, par[i].Scheme, seq[i].Scheme)
				}
				if got, want := statsJSON(t, par[i]), statsJSON(t, seq[i]); got != want {
					t.Errorf("%s: partitioned stats diverge\n got %s\nwant %s", seq[i].Scheme, got, want)
				}
			}
		})
	}
}

// Partitioned mode refuses configurations whose replacement decisions
// couple blocks across shards, and observers that depend on the global
// reference order.
func TestPartitionRejectsCoupledConfigs(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(100))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"dir0b"}
	for _, tc := range []struct {
		name string
		cfg  coherence.Config
		opts Options
	}{
		{"finite", coherence.Config{Caches: 4, FiniteSets: 64, FiniteWays: 2}, Options{Partition: 2}},
		{"sparse-dir", coherence.Config{Caches: 4, DirEntries: 128}, Options{Partition: 2}},
		{"recorder", coherence.Config{Caches: 4}, Options{Partition: 2, Recorder: flight.New(flight.Options{Sample: 64})}},
		{"negative", coherence.Config{Caches: 4}, Options{Partition: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), names, tc.cfg, tc.opts); err == nil {
				t.Error("RunSchemes accepted a configuration partitioning cannot reproduce")
			}
		})
	}
}

// A trace shorter than the warm-up window must measure nothing, exactly as
// the sequential driver guarantees.
func TestPartitionWarmupLongerThanTrace(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(500))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSchemes(context.Background(), trace.NewSliceReader(tr),
		[]string{"dir0b"}, coherence.Config{Caches: 4}, Options{WarmupRefs: 1 << 20, Partition: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats.Refs != 0 {
		t.Errorf("Refs = %d after an all-warm-up trace, want 0", res[0].Stats.Refs)
	}
}

// Cancellation must end a partitioned run promptly with the context error.
func TestPartitionCancellation(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(50_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSchemes(ctx, trace.NewSliceReader(tr),
		[]string{"dir0b"}, coherence.Config{Caches: 4}, Options{Partition: 4}); err == nil {
		t.Error("cancelled partitioned run returned no error")
	}
}
