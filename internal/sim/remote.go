package sim

import (
	"fmt"

	"dirsim/internal/coherence"
)

// RemoteResult reconstructs a Result from stats that crossed a process
// boundary (the dirsimd daemon returns per-scheme stats as JSON). The
// engine is rebuilt by name solely to recover its cost-model adjustment
// (Berkeley's free directory checks), so a remote result prices runs
// exactly like the local Result it is a copy of.
func RemoteResult(scheme string, cfg coherence.Config, stats *coherence.Stats) (Result, error) {
	if stats == nil {
		return Result{}, fmt.Errorf("sim: remote result for %s has no stats", scheme)
	}
	e, err := coherence.NewByName(scheme, cfg)
	if err != nil {
		return Result{}, err
	}
	r := Result{Scheme: e.Name(), Stats: stats}
	if adj, ok := e.(coherence.ModelAdjuster); ok {
		r.adjust = adj.AdjustModel
	}
	return r, nil
}
