package sim

import (
	"fmt"

	"dirsim/internal/bus"
	"dirsim/internal/queueing"
)

// Contention builds the closed bus-contention model of internal/queueing
// from this run: the service time is the scheme's measured bus cycles per
// transaction under m, and the think time is how long a processor computes
// between transactions. procCyclesPerRef is the bus-clock cycles a
// processor needs per memory reference when it never waits; the paper's
// setting — a 10-MIPS processor on a 100 ns bus, two references per
// instruction — gives 0.5.
func (r Result) Contention(m bus.CostModel, procCyclesPerRef float64) (queueing.Model, error) {
	if r.Stats == nil || r.Stats.Refs == 0 {
		return queueing.Model{}, fmt.Errorf("sim: empty result")
	}
	if r.Stats.Transactions == 0 {
		return queueing.Model{}, fmt.Errorf("sim: %s produced no bus transactions", r.Scheme)
	}
	txnsPerRef := float64(r.Stats.Transactions) / float64(r.Stats.Refs)
	return queueing.FromRates(r.CyclesPerRef(m), txnsPerRef, procCyclesPerRef)
}
