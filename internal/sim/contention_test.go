package sim

import (
	"context"
	"math"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/trace"
)

func TestContentionModelFromResult(t *testing.T) {
	tr := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, Kind: trace.Read, Addr: 0x10}, // 5-cycle mem read
		{CPU: 0, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, Kind: trace.Instr, Addr: 0x99},
	}
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(coherence.Config{Caches: 2}))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rs[0].Contention(bus.Pipelined(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// One transaction (5 cycles) over 4 refs: service 5; think = 0.5
	// proc-cycles per ref × 4 refs per transaction = 2.
	if math.Abs(m.ServiceCycles-5) > 1e-9 {
		t.Errorf("ServiceCycles = %v, want 5", m.ServiceCycles)
	}
	if math.Abs(m.ThinkCycles-2) > 1e-9 {
		t.Errorf("ThinkCycles = %v, want 2", m.ThinkCycles)
	}
}

func TestContentionErrors(t *testing.T) {
	var empty Result
	if _, err := empty.Contention(bus.Pipelined(), 0.5); err == nil {
		t.Error("empty result accepted")
	}
	// A trace with no bus transactions cannot parameterise the model.
	tr := trace.Slice{{CPU: 0, Kind: trace.Read, Addr: 0x10}} // first ref only
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(coherence.Config{Caches: 2}))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs[0].Contention(bus.Pipelined(), 0.5); err == nil {
		t.Error("transaction-free result accepted")
	}
}

func TestContentionRefinesNaiveBound(t *testing.T) {
	// At large populations the queueing model's effective-processor
	// count approaches (but never exceeds) the paper's naive bound
	// Z/S, and at small populations contention already bites.
	tr := trace.Slice{}
	for i := 0; i < 4000; i++ {
		tr = append(tr, trace.Ref{CPU: uint8(i % 4), Kind: trace.Read, Addr: uint64(i%64) * 16})
		if i%7 == 0 {
			tr = append(tr, trace.Ref{CPU: uint8(i % 4), Kind: trace.Write, Addr: uint64(i%64) * 16})
		}
	}
	rs, err := Run(context.Background(), trace.NewSliceReader(tr),
		[]coherence.Engine{must(coherence.NewDir0B(coherence.Config{Caches: 4}))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rs[0].Contention(bus.Pipelined(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	naive := m.ThinkCycles / m.ServiceCycles
	ms, err := m.MVA(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range ms {
		if mt.EffectiveProcessors > naive+1e-6 {
			t.Fatalf("pop %d: effective %v exceeds naive bound %v",
				mt.Processors, mt.EffectiveProcessors, naive)
		}
	}
	if last := ms[len(ms)-1].EffectiveProcessors; last < naive*0.8 {
		t.Errorf("saturated effective %v far below naive bound %v", last, naive)
	}
}
