package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// TestParallelMatchesSequential is the core determinism contract of the
// decode-once/fan-out driver: with every registered engine in one lockstep
// run over a real workload, the parallel path must produce Stats that are
// deeply equal to the sequential path's, whatever the worker count.
func TestParallelMatchesSequential(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(40_000))
	if err != nil {
		t.Fatal(err)
	}
	schemes := coherence.EngineNames()
	cfg := coherence.Config{Caches: 4}
	seq, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, len(schemes), len(schemes) + 7} {
		par, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg,
			Options{Parallel: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Scheme != seq[i].Scheme {
				t.Fatalf("workers=%d: scheme order %s vs %s", workers, par[i].Scheme, seq[i].Scheme)
			}
			if !reflect.DeepEqual(par[i].Stats, seq[i].Stats) {
				t.Errorf("workers=%d: %s stats differ from sequential", workers, par[i].Scheme)
			}
		}
	}
}

// Warm-up semantics must survive the fan-out: the measured window starts at
// exactly WarmupRefs on every worker.
func TestParallelMatchesSequentialWithWarmup(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(20_000))
	if err != nil {
		t.Fatal(err)
	}
	schemes := []string{"dir0b", "dragon", "wti"}
	cfg := coherence.Config{Caches: 4}
	for _, warmup := range []int{1, batchRefs - 1, batchRefs, batchRefs + 1, 10_000, 30_000} {
		opts := Options{WarmupRefs: warmup, IncludeFirstRefCosts: true}
		seq, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Parallel = 3
		par, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if !reflect.DeepEqual(par[i].Stats, seq[i].Stats) {
				t.Errorf("warmup=%d: %s stats differ from sequential", warmup, par[i].Scheme)
			}
		}
	}
}

// endlessReader yields an unbounded reference stream over a small block
// set, so only cancellation can end the run.
type endlessReader struct{ n uint64 }

func (r *endlessReader) Next() (trace.Ref, error) {
	r.n++
	kind := trace.Read
	if r.n%5 == 0 {
		kind = trace.Write
	}
	return trace.Ref{CPU: uint8(r.n % 4), Kind: kind, Addr: (r.n % 512) * 16}, nil
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (or a deadline passes), so worker leaks surface as failures
// without flaking on scheduler timing.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// Cancelling mid-trace must end the run within a batch, return the
// context's error, and leave no worker goroutines behind — for both
// drivers.
func TestRunCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var seen int
		opts := Options{Parallel: workers, OnProgress: func(n int) {
			seen += n
			if seen >= 3*batchRefs {
				cancel()
			}
		}}
		_, err := RunSchemes(ctx, &endlessReader{}, []string{"dir0b", "dragon", "wti", "dir1nb"},
			coherence.Config{Caches: 4}, opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The driver stops within a batch of the cancel: the decode loop
		// checks the context each batch, so it reads at most a few more
		// batches after the callback fired.
		if seen > 10*batchRefs {
			t.Errorf("workers=%d: %d refs decoded after cancel at %d", workers, seen, 3*batchRefs)
		}
		waitForGoroutines(t, baseline)
	}
}

// A context that expires while workers are mid-stream must also unwind
// cleanly (exercises the select-on-send path when channels are full).
func TestRunDeadline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunSchemes(ctx, &endlessReader{}, coherence.EngineNames(),
		coherence.Config{Caches: 4}, Options{Parallel: 8})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	waitForGoroutines(t, baseline)
}

// A decode error (trace needs more caches than the engines have) must
// shut the parallel pool down with the same error the sequential driver
// reports, leaking nothing.
func TestParallelDecodeError(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tr := trace.Slice{{CPU: 9, Kind: trace.Read, Addr: 1}}
	_, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), []string{"dir0b", "wti"},
		coherence.Config{Caches: 4}, Options{Parallel: 2})
	if err == nil {
		t.Fatal("out-of-range CPU accepted")
	}
	waitForGoroutines(t, baseline)
}

// OnProgress reports decode counts at batch granularity and must sum to
// the trace length on both drivers.
func TestOnProgressCounts(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.PERO(10_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		var total int
		_, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), []string{"dir0b", "wti"},
			coherence.Config{Caches: 4},
			Options{Parallel: workers, OnProgress: func(n int) { total += n }})
		if err != nil {
			t.Fatal(err)
		}
		if total != len(tr) {
			t.Errorf("workers=%d: progress total %d, want %d", workers, total, len(tr))
		}
	}
}

// The options layer rejects a negative worker count and clamps the rest.
func TestParallelOptionValidation(t *testing.T) {
	if err := (Options{Parallel: -1}).Validate(); err == nil {
		t.Error("negative Parallel accepted")
	}
	if w := (Options{Parallel: 99}).workers(3); w != 3 {
		t.Errorf("workers clamped to %d, want 3", w)
	}
	if w := (Options{}).workers(3); w != 1 {
		t.Errorf("default workers = %d, want 1", w)
	}
}
