// Package sim drives coherence protocol engines over multiprocessor
// address traces, reproducing the methodology of Section 4.
//
// The driver streams a trace once: references are decoded into batches —
// cache attribution resolved, block number computed, the paper's
// first-reference exclusion applied from a single shared seen-set ("we
// exclude the misses caused by the first reference to a block in the trace
// because these occur in a uniprocessor infinite cache as well") — and the
// batches are fed to every engine. With Options.Parallel > 1 the batches
// fan out to engines running on bounded worker goroutines; each engine
// still sees the full stream in order, so the results are bitwise
// identical to the sequential driver. Results carry the Table 4 event
// counts, the bus-operation tallies priced by internal/bus, and the
// Figure 1 invalidation-fanout histogram.
package sim

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/flight"
	"dirsim/internal/trace"
)

// CacheBy selects which trace field identifies the cache a reference goes
// to.
type CacheBy int

const (
	// ByCPU assigns references to per-processor caches (the physical
	// arrangement).
	ByCPU CacheBy = iota
	// ByProcess assigns references to per-process caches, eliminating
	// migration-induced sharing — the attribution the paper prefers
	// (Section 4.4). Process IDs are mapped densely to cache indices in
	// order of first appearance.
	ByProcess
)

// Options configures a simulation run.
type Options struct {
	// BlockBytes is the coherence block size; zero means the paper's 16
	// bytes. Must be a power of two.
	BlockBytes int
	// CacheBy selects per-CPU (default) or per-process caches.
	CacheBy CacheBy
	// IncludeFirstRefCosts prices cold misses instead of excluding them.
	// The paper's methodology excludes them; finite-cache studies may
	// want them included.
	IncludeFirstRefCosts bool
	// WarmupRefs, when positive, runs that many leading references
	// through the engines to populate caches and directories, then
	// discards the tallies: only the remainder of the trace is measured.
	// An alternative to first-reference exclusion for finite-cache
	// studies (the two compose).
	WarmupRefs int
	// Parallel is the number of engine worker goroutines the driver may
	// use. 0 or 1 keeps the classic sequential lockstep loop; higher
	// values fan decoded reference batches out to engines running
	// concurrently (at most one worker per engine is useful). Every
	// engine sees the full stream in order either way, so results are
	// identical.
	Parallel int
	// OnProgress, when non-nil, is called with the number of references
	// decoded since the previous call, at batch granularity, from the
	// goroutine that called Run. It must be fast.
	OnProgress func(n int)
	// Recorder, when non-nil and enabled, captures sampled protocol
	// events and run-phase spans into flight rings. It is a pure
	// observer: engine Stats are bitwise identical with and without it.
	Recorder *flight.Recorder
	// Partition, when greater than 1, runs RunSchemes in address-
	// partitioned mode: each scheme is instantiated Partition times and
	// block ids are sharded across the instances (id mod Partition), so a
	// single scheme's work spreads over that many goroutines. The merged
	// Stats are bitwise identical to a sequential run because, with
	// infinite caches and an unbounded directory, every engine's handling
	// of a block depends only on that block's own state. RunSchemes
	// rejects the mode for finite caches or a bounded directory (LRU
	// replacement couples blocks through set and entry contention) and
	// when a flight recorder is attached (per-shard sampling ordinals
	// would diverge from the sequential trace). Options.Parallel is
	// ignored in this mode.
	Partition int
}

func (o Options) blockBytes() int {
	if o.BlockBytes == 0 {
		return trace.DefaultBlockBytes
	}
	return o.BlockBytes
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.BlockBytes != 0 && !trace.IsPow2(o.BlockBytes) {
		return fmt.Errorf("sim: block size %d is not a power of two", o.BlockBytes)
	}
	if o.CacheBy != ByCPU && o.CacheBy != ByProcess {
		return fmt.Errorf("sim: unknown CacheBy %d", o.CacheBy)
	}
	if o.WarmupRefs < 0 {
		return fmt.Errorf("sim: negative WarmupRefs %d", o.WarmupRefs)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("sim: negative Parallel %d", o.Parallel)
	}
	if o.Partition < 0 {
		return fmt.Errorf("sim: negative Partition %d", o.Partition)
	}
	return nil
}

// workers returns the number of engine workers to use for n engines.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result is the outcome of running one engine over one trace.
type Result struct {
	// Scheme is the engine's name.
	Scheme string
	// Stats are the engine's accumulated tallies (shared with the
	// engine; treat as read-only after the run).
	Stats *coherence.Stats
	// adjust rewrites cost models for engines with a published cost
	// derivation (Berkeley's free directory checks); identity otherwise.
	adjust func(bus.CostModel) bus.CostModel
}

// Model returns the cost model as this scheme prices it (applying, e.g.,
// Berkeley's zero-cost directory checks).
func (r Result) Model(m bus.CostModel) bus.CostModel {
	if r.adjust != nil {
		return r.adjust(m)
	}
	return m
}

// CyclesPerRef prices the run under m, per reference — the paper's primary
// metric.
func (r Result) CyclesPerRef(m bus.CostModel) float64 {
	return r.Stats.CyclesPerRef(r.Model(m))
}

// CyclesPerRefWithOverhead adds Section 5.1's per-transaction overhead q.
func (r Result) CyclesPerRefWithOverhead(m bus.CostModel, q float64) float64 {
	return r.Stats.CyclesPerRefWithOverhead(r.Model(m), q)
}

// CyclesPerTransaction is Figure 5's metric.
func (r Result) CyclesPerTransaction(m bus.CostModel) float64 {
	return r.Stats.CyclesPerTransaction(r.Model(m))
}

// CyclesByOp returns the Table 5 per-operation breakdown.
func (r Result) CyclesByOp(m bus.CostModel) [bus.NumOps]float64 {
	return r.Model(m).CyclesByOp(r.Stats.Ops)
}

// EventFrequency returns an event's frequency as a fraction of all
// references (Table 4's unit, which prints it as a percentage).
func (r Result) EventFrequency(t events.Type) float64 {
	return r.Stats.Events.Frequency(t)
}

// AvgAccessTime prices the run under a processor-latency model — Section
// 5.1's "average memory access time as seen by each processor". The
// latency model's operation costs are adjusted the same way the scheme's
// cost model is (Berkeley's free directory checks).
func (r Result) AvgAccessTime(l bus.LatencyModel) float64 {
	base := bus.CostModel{Name: l.Name, Cost: l.Cost}
	adjusted := r.Model(base)
	l.Cost = adjusted.Cost
	return l.AvgAccessTime(r.Stats.Refs, r.Stats.Transactions, r.Stats.Ops)
}

// DirToMemBandwidthRatio compares directory accesses with memory accesses,
// quantifying Section 5's finding that "the required directory bandwidth is
// only slightly higher than the bandwidth to memory".
func (r Result) DirToMemBandwidthRatio() float64 {
	if r.Stats.MemAccesses == 0 {
		return 0
	}
	return float64(r.Stats.DirAccesses) / float64(r.Stats.MemAccesses)
}

// batchRefs is the decode granularity: cancellation checks, progress
// callbacks and the parallel fan-out all operate on batches of this many
// references, so a cancelled run returns within one batch.
const batchRefs = 4096

// decodedRef is one reference after the trace-level work is done: cache
// attribution resolved, block number computed and interned to a dense id,
// first-reference flag set from the interner's freshness bit.
type decodedRef struct {
	cache int
	kind  trace.Kind
	block uint64
	id    blockid.ID // dense block id; meaningless for Instr refs
	first bool
}

// decoder turns the raw reference stream into decodedRef batches. The
// shared block-id table and process-to-cache mapping live here, computed
// once in the decode stage, which is what makes the engines independent
// of each other and safe to fan out. Interning doubles as the paper's
// first-reference detection: a fresh id is by definition the first
// reference to that block in the trace, so the old seen-set is gone.
type decoder struct {
	rd   trace.Reader
	opts Options
	// sr is non-nil when rd replays an in-memory trace, enabling the
	// batch fast path that skips the per-reference interface call.
	sr     *trace.SliceReader
	caches int
	// blockShift turns a byte address into a block number. Validate
	// guarantees the block size is a power of two, so the decode loop
	// shifts instead of dividing by a variable (a real division per
	// reference otherwise dominates single-engine decode).
	blockShift uint
	tab        *blockid.Table
	pidToCache map[uint16]int
}

func newDecoder(rd trace.Reader, caches int, opts Options) *decoder {
	sr, _ := rd.(*trace.SliceReader)
	return &decoder{
		rd:         rd,
		opts:       opts,
		sr:         sr,
		caches:     caches,
		blockShift: uint(bits.TrailingZeros(uint(opts.blockBytes()))),
		tab:        blockid.New(),
		pidToCache: map[uint16]int{},
	}
}

// decode turns one raw reference into its decoded form, shared by the
// streaming and slice batch loops.
func (d *decoder) decode(ref trace.Ref) (decodedRef, error) {
	var c int
	switch d.opts.CacheBy {
	case ByCPU:
		c = int(ref.CPU)
	case ByProcess:
		var ok bool
		c, ok = d.pidToCache[ref.PID]
		if !ok {
			c = len(d.pidToCache)
			d.pidToCache[ref.PID] = c
		}
	}
	if c >= d.caches {
		return decodedRef{}, fmt.Errorf("sim: reference needs cache %d but engines have %d caches", c, d.caches)
	}
	block := ref.Addr >> d.blockShift
	var id blockid.ID
	first := false
	if ref.Kind != trace.Instr {
		var fresh bool
		id, fresh = d.tab.Intern(block)
		first = fresh && !d.opts.IncludeFirstRefCosts
	}
	return decodedRef{cache: c, kind: ref.Kind, block: block, id: id, first: first}, nil
}

// nextBatch appends up to batchRefs decoded references to buf[:0] and
// returns the batch. It returns io.EOF (possibly alongside a final
// partial batch) when the trace ends.
func (d *decoder) nextBatch(buf []decodedRef) ([]decodedRef, error) {
	batch := buf[:0]
	if d.sr != nil {
		// Slice fast path: same decode as d.decode, written out so the
		// per-reference work stays in one loop with no call overhead.
		refs := d.sr.Take(batchRefs)
		byProcess := d.opts.CacheBy == ByProcess
		include := d.opts.IncludeFirstRefCosts
		for i := range refs {
			ref := &refs[i]
			var c int
			if byProcess {
				var ok bool
				c, ok = d.pidToCache[ref.PID]
				if !ok {
					c = len(d.pidToCache)
					d.pidToCache[ref.PID] = c
				}
			} else {
				c = int(ref.CPU)
			}
			if c >= d.caches {
				return batch, fmt.Errorf("sim: reference needs cache %d but engines have %d caches", c, d.caches)
			}
			block := ref.Addr >> d.blockShift
			var id blockid.ID
			first := false
			if ref.Kind != trace.Instr {
				var fresh bool
				id, fresh = d.tab.Intern(block)
				first = fresh && !include
			}
			batch = append(batch, decodedRef{cache: c, kind: ref.Kind, block: block, id: id, first: first})
		}
		if len(refs) < batchRefs {
			return batch, io.EOF
		}
		return batch, nil
	}
	for len(batch) < batchRefs {
		ref, err := d.rd.Next()
		if err != nil {
			if err == io.EOF {
				return batch, io.EOF
			}
			return batch, err
		}
		dr, err := d.decode(ref)
		if err != nil {
			return batch, err
		}
		batch = append(batch, dr)
	}
	return batch, nil
}

// engineSlot pairs an engine with its id-indexed fast path. idx is non-nil
// when the engine accepted the decoder's shared block-id table, letting the
// driver skip the engine's own interning; otherwise the driver falls back
// to the address-keyed Access method (e.g. for an engine that already
// carries state from an earlier run, or a caller-supplied engine outside
// the built-in families).
type engineSlot struct {
	eng coherence.Engine
	idx coherence.IndexedEngine
}

// bindEngines offers every engine the decoder's block-id table.
func bindEngines(engines []coherence.Engine, tab *blockid.Table) []engineSlot {
	slots := make([]engineSlot, len(engines))
	for i, e := range engines {
		slots[i].eng = e
		if ie, ok := e.(coherence.IndexedEngine); ok && ie.BindBlocks(tab) {
			slots[i].idx = ie
		}
	}
	return slots
}

// applyBatch feeds one batch to a group of engines, handling the end of
// the warm-up window exactly where the sequential driver always has:
// after reference number WarmupRefs. processed is the group's reference
// count before the batch; the updated count is returned.
func applyBatch(batch []decodedRef, engines []engineSlot, warmup, processed int) int {
	// The warm-up boundary falls inside at most one batch per run; split
	// that batch once so the hot loop carries no per-reference counter.
	if warmup > processed && warmup <= processed+len(batch) {
		cut := warmup - processed
		applyRefs(batch[:cut], engines)
		// End of warm-up: keep all protocol state, measure only what
		// follows.
		for _, s := range engines {
			s.eng.ResetStats()
		}
		applyRefs(batch[cut:], engines)
		return processed + len(batch)
	}
	applyRefs(batch, engines)
	return processed + len(batch)
}

// applyRefs is the innermost dispatch loop. The single-engine shapes are
// split out so the slot fields load once per batch instead of once per
// reference — the single-scheme run is the throughput number the
// data-oriented core is measured on.
func applyRefs(refs []decodedRef, engines []engineSlot) {
	if len(engines) == 1 {
		if ie := engines[0].idx; ie != nil {
			for i := range refs {
				r := &refs[i]
				ie.AccessID(r.cache, r.kind, r.block, r.id, r.first)
			}
			return
		}
		e := engines[0].eng
		for i := range refs {
			r := &refs[i]
			e.Access(r.cache, r.kind, r.block, r.first)
		}
		return
	}
	for i := range refs {
		r := &refs[i]
		for _, s := range engines {
			if s.idx != nil {
				s.idx.AccessID(r.cache, r.kind, r.block, r.id, r.first)
			} else {
				s.eng.Access(r.cache, r.kind, r.block, r.first)
			}
		}
	}
}

// runTrace holds the per-run flight-recorder wiring: the sampling
// interval, the driver track, and one track per engine (aligned with the
// engine slice, so workers index it with the same lo:hi bounds they use
// for their engine group). Phase ids are interned up front so the hot
// path never touches the recorder's name tables.
type runTrace struct {
	rec      *flight.Recorder
	sample   uint64
	spans    bool
	driver   uint16
	tracks   []uint16
	decodeID uint32
	simID    uint32
	fanoutID uint32
}

// newRunTrace registers the run's tracks and phases on rec. It returns
// nil when the recorder captures nothing, which keeps every traced code
// path behind one nil check.
func newRunTrace(rec *flight.Recorder, engines []coherence.Engine) *runTrace {
	if !rec.Enabled() {
		return nil
	}
	tr := &runTrace{
		rec:    rec,
		sample: uint64(rec.SampleEvery()),
		spans:  rec.SpansEnabled(),
		driver: rec.AddTrack("driver"),
		tracks: make([]uint16, len(engines)),
	}
	for i, e := range engines {
		tr.tracks[i] = rec.AddTrack(e.Name())
	}
	tr.decodeID = rec.PhaseID("decode")
	tr.simID = rec.PhaseID("simulate")
	tr.fanoutID = rec.PhaseID("fan-out")
	return tr
}

// spanDur clamps a reference count to the Event.Dur field width.
func spanDur(n uint64) uint32 {
	if n > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(n)
}

// applyBatchTraced is applyBatch with the flight recorder attached:
// every tr.sample-th reference (by global reference ordinal, so the
// choice is deterministic) has its Table 4 classification recorded on
// each engine's track, plus any directory protocol actions the access
// triggered — derived by diffing the engine's own Stats counters around
// the call, so the engines themselves are untouched and their tallies
// provably unchanged. tracks is tr.tracks sliced to this engine group;
// ring is this worker's single-writer buffer.
func applyBatchTraced(batch []decodedRef, engines []engineSlot, tracks []uint16, tr *runTrace, ring *flight.Ring, warmup, processed int) int {
	if tr == nil {
		return applyBatch(batch, engines, warmup, processed)
	}
	start := uint64(processed)
	// One division per batch instead of a modulo per reference: sampled
	// ordinals are the multiples of tr.sample, so the loop below runs
	// applyBatch's plain inner loop over the stretches between them and
	// pays the recording cost only at the sample points themselves.
	nextSample := ^uint64(0)
	if tr.sample > 0 {
		nextSample = (start + tr.sample - 1) / tr.sample * tr.sample
	}
	for i := 0; i < len(batch); {
		seq := uint64(processed)
		if seq == nextSample {
			nextSample += tr.sample
			r := batch[i]
			for ei, s := range engines {
				st := s.eng.Stats()
				di := st.DirectedInvals
				bi := st.BroadcastInvals
				pe := st.PointerEvictions
				de := st.DirEntryEvictions
				var typ events.Type
				if s.idx != nil {
					typ = s.idx.AccessID(r.cache, r.kind, r.block, r.id, r.first)
				} else {
					typ = s.eng.Access(r.cache, r.kind, r.block, r.first)
				}
				ring.Emit(flight.Event{Seq: seq, Block: r.block, Track: tracks[ei], Cache: int16(r.cache), Kind: flight.Kind(typ)})
				if n := st.DirectedInvals - di; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindInval})
				}
				if n := st.BroadcastInvals - bi; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindBroadcast})
				}
				if n := st.PointerEvictions - pe; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindPointerEviction})
				}
				if n := st.DirEntryEvictions - de; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindDirOverflow})
				}
			}
			processed++
			i++
			if processed == warmup {
				for _, s := range engines {
					s.eng.ResetStats()
				}
			}
			continue
		}
		// Plain stretch: up to the next sample point, the warm-up
		// boundary or the end of the batch, exactly applyBatch's loop.
		end := len(batch)
		if nextSample != ^uint64(0) && uint64(end-i) > nextSample-seq {
			end = i + int(nextSample-seq)
		}
		if warmup > processed && warmup-processed < end-i {
			end = i + (warmup - processed)
		}
		for _, r := range batch[i:end] {
			for _, s := range engines {
				if s.idx != nil {
					s.idx.AccessID(r.cache, r.kind, r.block, r.id, r.first)
				} else {
					s.eng.Access(r.cache, r.kind, r.block, r.first)
				}
			}
		}
		processed += end - i
		i = end
		if processed == warmup {
			for _, s := range engines {
				s.eng.ResetStats()
			}
		}
	}
	if tr.spans && len(batch) > 0 {
		for _, t := range tracks {
			ring.Emit(flight.Event{Seq: start, Dur: spanDur(uint64(len(batch))), Track: t, Cache: -1, Kind: flight.KindSpan, Arg: tr.simID})
		}
	}
	return processed
}

// Run streams rd through every engine and returns one Result per engine,
// in order. All engines must have the same cache count, and the trace
// must fit within it. The context cancels the run between batches; with
// opts.Parallel > 1 the engines run on worker goroutines, with results
// identical to the sequential path.
func Run(ctx context.Context, rd trace.Reader, engines []coherence.Engine, opts Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: no engines")
	}
	caches := engines[0].Caches()
	for _, e := range engines[1:] {
		if e.Caches() != caches {
			return nil, fmt.Errorf("sim: engine %s has %d caches, %s has %d",
				e.Name(), e.Caches(), engines[0].Name(), caches)
		}
	}
	d := newDecoder(rd, caches, opts)
	slots := bindEngines(engines, d.tab)
	tr := newRunTrace(opts.Recorder, engines)
	var err error
	if opts.workers(len(engines)) > 1 {
		err = runParallel(ctx, d, slots, opts, tr)
	} else {
		err = runSequential(ctx, d, slots, opts, tr)
	}
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(engines))
	for i, e := range engines {
		results[i] = Result{Scheme: e.Name(), Stats: e.Stats()}
		if adj, ok := e.(coherence.ModelAdjuster); ok {
			results[i].adjust = adj.AdjustModel
		}
	}
	return results, nil
}

// runSequential is the classic driver: decode a batch, feed every engine
// in lockstep, repeat.
func runSequential(ctx context.Context, d *decoder, engines []engineSlot, opts Options, tr *runTrace) error {
	if tr == nil && d.sr != nil && len(engines) == 1 && engines[0].idx != nil {
		return runFusedSingle(ctx, d, engines[0].idx, opts)
	}
	var ring *flight.Ring
	var tracks []uint16
	if tr != nil {
		ring = tr.rec.NewRing()
		tracks = tr.tracks
	}
	buf := make([]decodedRef, 0, batchRefs)
	processed := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch, err := d.nextBatch(buf)
		if err != nil && err != io.EOF {
			return err
		}
		if tr != nil && tr.spans && len(batch) > 0 {
			ring.Emit(flight.Event{Seq: uint64(processed), Dur: spanDur(uint64(len(batch))), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.decodeID})
		}
		processed = applyBatchTraced(batch, engines, tracks, tr, ring, opts.WarmupRefs, processed)
		if opts.OnProgress != nil && len(batch) > 0 {
			opts.OnProgress(len(batch))
		}
		if err == io.EOF {
			break
		}
	}
	if processed < opts.WarmupRefs {
		// The trace ended inside the warm-up window: nothing measured.
		for _, s := range engines {
			s.eng.ResetStats()
		}
	}
	return nil
}

// runFusedSingle is runSequential specialised for one id-indexed engine
// over an in-memory trace with no recorder attached: each reference is
// decoded and applied in the same loop iteration, never materialised into
// a decodedRef batch. The single-scheme run is the per-reference cost the
// data-oriented core is measured on, and the batch round-trip (a store
// and reload of every decoded reference) is a measurable slice of it.
// Warm-up, progress and cancellation behave exactly as the batched path:
// chunks of batchRefs references, split once at the warm-up boundary.
func runFusedSingle(ctx context.Context, d *decoder, eng coherence.IndexedEngine, opts Options) error {
	byProcess := d.opts.CacheBy == ByProcess
	include := d.opts.IncludeFirstRefCosts
	apply := func(refs []trace.Ref) error {
		// Instruction fetches change no protocol state and contribute
		// only commutative sums, so they are counted here and flushed as
		// one AccessInstrs call per chunk (chunks never span a warm-up
		// boundary — runFusedSingle splits there first).
		instrs := uint64(0)
		for i := range refs {
			ref := &refs[i]
			var c int
			if byProcess {
				// The map update must run for instruction fetches too:
				// process-to-cache assignment is by order of first
				// appearance in the full stream.
				var ok bool
				c, ok = d.pidToCache[ref.PID]
				if !ok {
					c = len(d.pidToCache)
					d.pidToCache[ref.PID] = c
				}
			} else {
				c = int(ref.CPU)
			}
			if c >= d.caches {
				return fmt.Errorf("sim: reference needs cache %d but engines have %d caches", c, d.caches)
			}
			if ref.Kind == trace.Instr {
				instrs++
				continue
			}
			block := ref.Addr >> d.blockShift
			id, fresh := d.tab.Intern(block)
			eng.AccessID(c, ref.Kind, block, id, fresh && !include)
		}
		if instrs > 0 {
			eng.AccessInstrs(instrs)
		}
		return nil
	}
	processed := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := d.sr.Take(batchRefs)
		n := len(chunk)
		if w := opts.WarmupRefs; w > processed && w <= processed+n {
			if err := apply(chunk[:w-processed]); err != nil {
				return err
			}
			eng.ResetStats()
			chunk = chunk[w-processed:]
		}
		if err := apply(chunk); err != nil {
			return err
		}
		processed += n
		if opts.OnProgress != nil && n > 0 {
			opts.OnProgress(n)
		}
		if n < batchRefs {
			break
		}
	}
	if processed < opts.WarmupRefs {
		// The trace ended inside the warm-up window: nothing measured.
		eng.ResetStats()
	}
	return nil
}

// runParallel decodes on the calling goroutine and fans each batch out to
// a bounded set of workers, each owning a contiguous group of engines.
// Batches arrive on every worker's channel in decode order, so each
// engine processes the full stream in order and accumulates exactly the
// same Stats as under runSequential.
func runParallel(ctx context.Context, d *decoder, engines []engineSlot, opts Options, tr *runTrace) error {
	workers := opts.workers(len(engines))
	chans := make([]chan []decodedRef, workers)
	var drvRing *flight.Ring
	if tr != nil {
		drvRing = tr.rec.NewRing()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous engine groups: the first len%workers groups take one
		// extra engine.
		lo := w * len(engines) / workers
		hi := (w + 1) * len(engines) / workers
		ch := make(chan []decodedRef, 4)
		chans[w] = ch
		var ring *flight.Ring
		var tracks []uint16
		if tr != nil {
			// One ring per worker keeps emission single-writer.
			ring = tr.rec.NewRing()
			tracks = tr.tracks[lo:hi]
		}
		wg.Add(1)
		go func(group []engineSlot, tracks []uint16, ring *flight.Ring) {
			defer wg.Done()
			processed := 0
			for batch := range ch {
				processed = applyBatchTraced(batch, group, tracks, tr, ring, opts.WarmupRefs, processed)
			}
		}(engines[lo:hi], tracks, ring)
	}
	var err error
	total := 0
decode:
	for {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		// Workers read batches concurrently, so each batch needs its own
		// backing array.
		batch, derr := d.nextBatch(make([]decodedRef, 0, batchRefs))
		if derr != nil && derr != io.EOF {
			err = derr
			break
		}
		if len(batch) > 0 {
			if tr != nil && tr.spans {
				drvRing.Emit(flight.Event{Seq: uint64(total), Dur: spanDur(uint64(len(batch))), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.decodeID})
			}
			for _, ch := range chans {
				select {
				case ch <- batch:
				case <-ctx.Done():
					err = ctx.Err()
					break decode
				}
			}
			total += len(batch)
			if opts.OnProgress != nil {
				opts.OnProgress(len(batch))
			}
		}
		if derr == io.EOF {
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if tr != nil && tr.spans && total > 0 {
		// One span covering the whole fan-out on the driver track.
		drvRing.Emit(flight.Event{Seq: 0, Dur: spanDur(uint64(total)), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.fanoutID})
	}
	if err != nil {
		return err
	}
	if total < opts.WarmupRefs {
		for _, s := range engines {
			s.eng.ResetStats()
		}
	}
	return nil
}

// RunSchemes builds the named engines and runs rd through them. With
// opts.Partition > 1 the run is address-partitioned instead: see
// Options.Partition.
func RunSchemes(ctx context.Context, rd trace.Reader, names []string, cfg coherence.Config, opts Options) ([]Result, error) {
	if opts.Partition > 1 {
		return runPartitionedSchemes(ctx, rd, names, cfg, opts)
	}
	engines := make([]coherence.Engine, len(names))
	for i, n := range names {
		e, err := coherence.NewByName(n, cfg)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	return Run(ctx, rd, engines, opts)
}

// shardMsg is one partitioned work item: the shard's slice of a decoded
// batch, plus a marker that the global warm-up boundary falls right after
// these references (the shard must reset its tallies before continuing).
type shardMsg struct {
	refs  []decodedRef
	reset bool
}

// runPartitionedSchemes is the address-partitioned driver: P instances of
// every scheme, block ids sharded id mod P, instruction references to
// shard 0 (they carry no block). With infinite caches and an unbounded
// directory every engine's transition for a block reads and writes only
// that block's state, so shard-local simulation composes exactly: merging
// the P instances' Stats with Combine reproduces the sequential run's
// tallies bit for bit (asserted by TestPartitionMatchesSequential).
func runPartitionedSchemes(ctx context.Context, rd trace.Reader, names []string, cfg coherence.Config, opts Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sim: no engines")
	}
	if cfg.Finite() || cfg.DirEntries > 0 {
		return nil, fmt.Errorf("sim: Partition requires infinite caches and an unbounded directory (replacement couples blocks across shards)")
	}
	if opts.Recorder != nil && opts.Recorder.Enabled() {
		return nil, fmt.Errorf("sim: Partition cannot be combined with a flight recorder")
	}
	p := opts.Partition
	d := newDecoder(rd, cfg.Caches, opts)
	insts := make([][]engineSlot, p)
	for s := 0; s < p; s++ {
		slots := make([]engineSlot, len(names))
		for i, n := range names {
			e, err := coherence.NewByName(n, cfg)
			if err != nil {
				return nil, err
			}
			ie, ok := e.(coherence.IndexedEngine)
			if !ok || !ie.BindBlocks(d.tab) {
				return nil, fmt.Errorf("sim: scheme %s does not support indexed access", n)
			}
			slots[i] = engineSlot{eng: e, idx: ie}
		}
		insts[s] = slots
	}
	chans := make([]chan shardMsg, p)
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		ch := make(chan shardMsg, 4)
		chans[s] = ch
		wg.Add(1)
		go func(slots []engineSlot) {
			defer wg.Done()
			for msg := range ch {
				for _, r := range msg.refs {
					for _, sl := range slots {
						sl.idx.AccessID(r.cache, r.kind, r.block, r.id, r.first)
					}
				}
				if msg.reset {
					for _, sl := range slots {
						sl.eng.ResetStats()
					}
				}
			}
		}(insts[s])
	}
	var err error
	total := 0
decode:
	for {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		batch, derr := d.nextBatch(make([]decodedRef, 0, batchRefs))
		if derr != nil && derr != io.EOF {
			err = derr
			break
		}
		if len(batch) > 0 {
			// If the global warm-up boundary falls inside this batch,
			// split there: each shard processes its pre-boundary refs,
			// resets, then continues — the same point in the global
			// stream where the sequential driver resets.
			split := -1
			if w := opts.WarmupRefs; w > total && w <= total+len(batch) {
				split = w - total
			}
			segments := [][2]int{{0, len(batch)}}
			if split >= 0 {
				segments = [][2]int{{0, split}, {split, len(batch)}}
			}
			for si, seg := range segments {
				reset := split >= 0 && si == 0
				shards := make([][]decodedRef, p)
				for _, r := range batch[seg[0]:seg[1]] {
					s := 0
					if r.kind != trace.Instr {
						s = int(r.id) % p
					}
					shards[s] = append(shards[s], r)
				}
				for s, ch := range chans {
					if len(shards[s]) == 0 && !reset {
						continue
					}
					select {
					case ch <- shardMsg{refs: shards[s], reset: reset}:
					case <-ctx.Done():
						err = ctx.Err()
						break decode
					}
				}
			}
			total += len(batch)
			if opts.OnProgress != nil {
				opts.OnProgress(len(batch))
			}
		}
		if derr == io.EOF {
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if total < opts.WarmupRefs {
		// The trace ended inside the warm-up window: nothing measured.
		for _, slots := range insts {
			for _, sl := range slots {
				sl.eng.ResetStats()
			}
		}
	}
	results := make([]Result, len(names))
	for i := range names {
		parts := make([]Result, p)
		for s := 0; s < p; s++ {
			e := insts[s][i].eng
			parts[s] = Result{Scheme: e.Name(), Stats: e.Stats()}
			if adj, ok := e.(coherence.ModelAdjuster); ok {
				parts[s].adjust = adj.AdjustModel
			}
		}
		combined, cerr := Combine(parts)
		if cerr != nil {
			return nil, cerr
		}
		results[i] = combined
	}
	return results, nil
}

// Combine merges per-trace results for the same scheme into one aggregate,
// the way the paper averages event frequencies "across the three traces"
// (reference-weighted, which merging raw counts achieves).
func Combine(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("sim: nothing to combine")
	}
	agg := &coherence.Stats{}
	maxCaches := 0
	for _, r := range results {
		if n := len(r.Stats.PerCache); n > maxCaches {
			maxCaches = n
		}
	}
	if maxCaches > 0 {
		agg.PerCache = make([]coherence.CacheTally, maxCaches)
	}
	for _, r := range results {
		if r.Scheme != results[0].Scheme {
			return Result{}, fmt.Errorf("sim: cannot combine %s with %s", r.Scheme, results[0].Scheme)
		}
		agg.Refs += r.Stats.Refs
		agg.Events.Merge(r.Stats.Events)
		agg.Ops.Merge(r.Stats.Ops)
		agg.Transactions += r.Stats.Transactions
		agg.InvalFanout.Add(&r.Stats.InvalFanout)
		agg.InvalEvents += r.Stats.InvalEvents
		agg.DirectedInvals += r.Stats.DirectedInvals
		agg.BroadcastInvals += r.Stats.BroadcastInvals
		agg.WastedInvals += r.Stats.WastedInvals
		agg.PointerEvictions += r.Stats.PointerEvictions
		agg.DirAccesses += r.Stats.DirAccesses
		agg.MemAccesses += r.Stats.MemAccesses
		agg.Evictions += r.Stats.Evictions
		agg.EvictionWriteBacks += r.Stats.EvictionWriteBacks
		agg.DirEntryEvictions += r.Stats.DirEntryEvictions
		agg.Snarfs += r.Stats.Snarfs
		for i, ct := range r.Stats.PerCache {
			agg.PerCache[i].Hits += ct.Hits
			agg.PerCache[i].Misses += ct.Misses
			agg.PerCache[i].Writes += ct.Writes
		}
	}
	return Result{Scheme: results[0].Scheme, Stats: agg, adjust: results[0].adjust}, nil
}
