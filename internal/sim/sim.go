// Package sim drives coherence protocol engines over multiprocessor
// address traces, reproducing the methodology of Section 4.
//
// The driver streams a trace once, feeding every engine in lockstep; a
// shared seen-set implements the paper's first-reference exclusion ("we
// exclude the misses caused by the first reference to a block in the trace
// because these occur in a uniprocessor infinite cache as well"). Results
// carry the Table 4 event counts, the bus-operation tallies priced by
// internal/bus, and the Figure 1 invalidation-fanout histogram.
package sim

import (
	"fmt"
	"io"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// CacheBy selects which trace field identifies the cache a reference goes
// to.
type CacheBy int

const (
	// ByCPU assigns references to per-processor caches (the physical
	// arrangement).
	ByCPU CacheBy = iota
	// ByProcess assigns references to per-process caches, eliminating
	// migration-induced sharing — the attribution the paper prefers
	// (Section 4.4). Process IDs are mapped densely to cache indices in
	// order of first appearance.
	ByProcess
)

// Options configures a simulation run.
type Options struct {
	// BlockBytes is the coherence block size; zero means the paper's 16
	// bytes. Must be a power of two.
	BlockBytes int
	// CacheBy selects per-CPU (default) or per-process caches.
	CacheBy CacheBy
	// IncludeFirstRefCosts prices cold misses instead of excluding them.
	// The paper's methodology excludes them; finite-cache studies may
	// want them included.
	IncludeFirstRefCosts bool
	// WarmupRefs, when positive, runs that many leading references
	// through the engines to populate caches and directories, then
	// discards the tallies: only the remainder of the trace is measured.
	// An alternative to first-reference exclusion for finite-cache
	// studies (the two compose).
	WarmupRefs int
}

func (o Options) blockBytes() int {
	if o.BlockBytes == 0 {
		return trace.DefaultBlockBytes
	}
	return o.BlockBytes
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.BlockBytes != 0 && !trace.IsPow2(o.BlockBytes) {
		return fmt.Errorf("sim: block size %d is not a power of two", o.BlockBytes)
	}
	if o.CacheBy != ByCPU && o.CacheBy != ByProcess {
		return fmt.Errorf("sim: unknown CacheBy %d", o.CacheBy)
	}
	if o.WarmupRefs < 0 {
		return fmt.Errorf("sim: negative WarmupRefs %d", o.WarmupRefs)
	}
	return nil
}

// Result is the outcome of running one engine over one trace.
type Result struct {
	// Scheme is the engine's name.
	Scheme string
	// Stats are the engine's accumulated tallies (shared with the
	// engine; treat as read-only after the run).
	Stats *coherence.Stats
	// adjust rewrites cost models for engines with a published cost
	// derivation (Berkeley's free directory checks); identity otherwise.
	adjust func(bus.CostModel) bus.CostModel
}

// Model returns the cost model as this scheme prices it (applying, e.g.,
// Berkeley's zero-cost directory checks).
func (r Result) Model(m bus.CostModel) bus.CostModel {
	if r.adjust != nil {
		return r.adjust(m)
	}
	return m
}

// CyclesPerRef prices the run under m, per reference — the paper's primary
// metric.
func (r Result) CyclesPerRef(m bus.CostModel) float64 {
	return r.Stats.CyclesPerRef(r.Model(m))
}

// CyclesPerRefWithOverhead adds Section 5.1's per-transaction overhead q.
func (r Result) CyclesPerRefWithOverhead(m bus.CostModel, q float64) float64 {
	return r.Stats.CyclesPerRefWithOverhead(r.Model(m), q)
}

// CyclesPerTransaction is Figure 5's metric.
func (r Result) CyclesPerTransaction(m bus.CostModel) float64 {
	return r.Stats.CyclesPerTransaction(r.Model(m))
}

// CyclesByOp returns the Table 5 per-operation breakdown.
func (r Result) CyclesByOp(m bus.CostModel) [bus.NumOps]float64 {
	return r.Model(m).CyclesByOp(r.Stats.Ops)
}

// EventFrequency returns an event's frequency as a fraction of all
// references (Table 4's unit, which prints it as a percentage).
func (r Result) EventFrequency(t events.Type) float64 {
	return r.Stats.Events.Frequency(t)
}

// AvgAccessTime prices the run under a processor-latency model — Section
// 5.1's "average memory access time as seen by each processor". The
// latency model's operation costs are adjusted the same way the scheme's
// cost model is (Berkeley's free directory checks).
func (r Result) AvgAccessTime(l bus.LatencyModel) float64 {
	base := bus.CostModel{Name: l.Name, Cost: l.Cost}
	adjusted := r.Model(base)
	l.Cost = adjusted.Cost
	return l.AvgAccessTime(r.Stats.Refs, r.Stats.Transactions, r.Stats.Ops)
}

// DirToMemBandwidthRatio compares directory accesses with memory accesses,
// quantifying Section 5's finding that "the required directory bandwidth is
// only slightly higher than the bandwidth to memory".
func (r Result) DirToMemBandwidthRatio() float64 {
	if r.Stats.MemAccesses == 0 {
		return 0
	}
	return float64(r.Stats.DirAccesses) / float64(r.Stats.MemAccesses)
}

// Run streams rd through every engine in lockstep and returns one Result
// per engine, in order. All engines must have the same cache count, and the
// trace must fit within it.
func Run(rd trace.Reader, engines []coherence.Engine, opts Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: no engines")
	}
	caches := engines[0].Caches()
	for _, e := range engines[1:] {
		if e.Caches() != caches {
			return nil, fmt.Errorf("sim: engine %s has %d caches, %s has %d",
				e.Name(), e.Caches(), engines[0].Name(), caches)
		}
	}
	blockBytes := opts.blockBytes()
	seen := map[uint64]bool{}
	pidToCache := map[uint16]int{}
	processed := 0
	for {
		ref, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		var c int
		switch opts.CacheBy {
		case ByCPU:
			c = int(ref.CPU)
		case ByProcess:
			var ok bool
			c, ok = pidToCache[ref.PID]
			if !ok {
				c = len(pidToCache)
				pidToCache[ref.PID] = c
			}
		}
		if c >= caches {
			return nil, fmt.Errorf("sim: reference needs cache %d but engines have %d caches", c, caches)
		}
		block := trace.Block(ref.Addr, blockBytes)
		first := false
		if ref.Kind != trace.Instr && !opts.IncludeFirstRefCosts && !seen[block] {
			seen[block] = true
			first = true
		}
		for _, e := range engines {
			e.Access(c, ref.Kind, block, first)
		}
		processed++
		if processed == opts.WarmupRefs {
			// End of warm-up: keep all protocol state, measure only
			// what follows.
			for _, e := range engines {
				e.ResetStats()
			}
		}
	}
	if processed < opts.WarmupRefs {
		// The trace ended inside the warm-up window: nothing measured.
		for _, e := range engines {
			e.ResetStats()
		}
	}
	results := make([]Result, len(engines))
	for i, e := range engines {
		results[i] = Result{Scheme: e.Name(), Stats: e.Stats()}
		if adj, ok := e.(coherence.ModelAdjuster); ok {
			results[i].adjust = adj.AdjustModel
		}
	}
	return results, nil
}

// RunSchemes builds the named engines and runs rd through them.
func RunSchemes(rd trace.Reader, names []string, cfg coherence.Config, opts Options) ([]Result, error) {
	engines := make([]coherence.Engine, len(names))
	for i, n := range names {
		e, err := coherence.NewByName(n, cfg)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	return Run(rd, engines, opts)
}

// Combine merges per-trace results for the same scheme into one aggregate,
// the way the paper averages event frequencies "across the three traces"
// (reference-weighted, which merging raw counts achieves).
func Combine(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("sim: nothing to combine")
	}
	agg := &coherence.Stats{}
	for _, r := range results {
		if r.Scheme != results[0].Scheme {
			return Result{}, fmt.Errorf("sim: cannot combine %s with %s", r.Scheme, results[0].Scheme)
		}
		agg.Refs += r.Stats.Refs
		agg.Events.Merge(r.Stats.Events)
		agg.Ops.Merge(r.Stats.Ops)
		agg.Transactions += r.Stats.Transactions
		agg.InvalFanout.Add(&r.Stats.InvalFanout)
		agg.InvalEvents += r.Stats.InvalEvents
		agg.DirectedInvals += r.Stats.DirectedInvals
		agg.BroadcastInvals += r.Stats.BroadcastInvals
		agg.WastedInvals += r.Stats.WastedInvals
		agg.PointerEvictions += r.Stats.PointerEvictions
		agg.DirAccesses += r.Stats.DirAccesses
		agg.MemAccesses += r.Stats.MemAccesses
		agg.Evictions += r.Stats.Evictions
		agg.EvictionWriteBacks += r.Stats.EvictionWriteBacks
		agg.DirEntryEvictions += r.Stats.DirEntryEvictions
		agg.Snarfs += r.Stats.Snarfs
		for i, ct := range r.Stats.PerCache {
			for i >= len(agg.PerCache) {
				agg.PerCache = append(agg.PerCache, coherence.CacheTally{})
			}
			agg.PerCache[i].Hits += ct.Hits
			agg.PerCache[i].Misses += ct.Misses
			agg.PerCache[i].Writes += ct.Writes
		}
	}
	return Result{Scheme: results[0].Scheme, Stats: agg, adjust: results[0].adjust}, nil
}
