// Package sim drives coherence protocol engines over multiprocessor
// address traces, reproducing the methodology of Section 4.
//
// The driver streams a trace once: references are decoded into batches —
// cache attribution resolved, block number computed, the paper's
// first-reference exclusion applied from a single shared seen-set ("we
// exclude the misses caused by the first reference to a block in the trace
// because these occur in a uniprocessor infinite cache as well") — and the
// batches are fed to every engine. With Options.Parallel > 1 the batches
// fan out to engines running on bounded worker goroutines; each engine
// still sees the full stream in order, so the results are bitwise
// identical to the sequential driver. Results carry the Table 4 event
// counts, the bus-operation tallies priced by internal/bus, and the
// Figure 1 invalidation-fanout histogram.
package sim

import (
	"context"
	"fmt"
	"io"
	"sync"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/flight"
	"dirsim/internal/trace"
)

// CacheBy selects which trace field identifies the cache a reference goes
// to.
type CacheBy int

const (
	// ByCPU assigns references to per-processor caches (the physical
	// arrangement).
	ByCPU CacheBy = iota
	// ByProcess assigns references to per-process caches, eliminating
	// migration-induced sharing — the attribution the paper prefers
	// (Section 4.4). Process IDs are mapped densely to cache indices in
	// order of first appearance.
	ByProcess
)

// Options configures a simulation run.
type Options struct {
	// BlockBytes is the coherence block size; zero means the paper's 16
	// bytes. Must be a power of two.
	BlockBytes int
	// CacheBy selects per-CPU (default) or per-process caches.
	CacheBy CacheBy
	// IncludeFirstRefCosts prices cold misses instead of excluding them.
	// The paper's methodology excludes them; finite-cache studies may
	// want them included.
	IncludeFirstRefCosts bool
	// WarmupRefs, when positive, runs that many leading references
	// through the engines to populate caches and directories, then
	// discards the tallies: only the remainder of the trace is measured.
	// An alternative to first-reference exclusion for finite-cache
	// studies (the two compose).
	WarmupRefs int
	// Parallel is the number of engine worker goroutines the driver may
	// use. 0 or 1 keeps the classic sequential lockstep loop; higher
	// values fan decoded reference batches out to engines running
	// concurrently (at most one worker per engine is useful). Every
	// engine sees the full stream in order either way, so results are
	// identical.
	Parallel int
	// OnProgress, when non-nil, is called with the number of references
	// decoded since the previous call, at batch granularity, from the
	// goroutine that called Run. It must be fast.
	OnProgress func(n int)
	// Recorder, when non-nil and enabled, captures sampled protocol
	// events and run-phase spans into flight rings. It is a pure
	// observer: engine Stats are bitwise identical with and without it.
	Recorder *flight.Recorder
}

func (o Options) blockBytes() int {
	if o.BlockBytes == 0 {
		return trace.DefaultBlockBytes
	}
	return o.BlockBytes
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.BlockBytes != 0 && !trace.IsPow2(o.BlockBytes) {
		return fmt.Errorf("sim: block size %d is not a power of two", o.BlockBytes)
	}
	if o.CacheBy != ByCPU && o.CacheBy != ByProcess {
		return fmt.Errorf("sim: unknown CacheBy %d", o.CacheBy)
	}
	if o.WarmupRefs < 0 {
		return fmt.Errorf("sim: negative WarmupRefs %d", o.WarmupRefs)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("sim: negative Parallel %d", o.Parallel)
	}
	return nil
}

// workers returns the number of engine workers to use for n engines.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result is the outcome of running one engine over one trace.
type Result struct {
	// Scheme is the engine's name.
	Scheme string
	// Stats are the engine's accumulated tallies (shared with the
	// engine; treat as read-only after the run).
	Stats *coherence.Stats
	// adjust rewrites cost models for engines with a published cost
	// derivation (Berkeley's free directory checks); identity otherwise.
	adjust func(bus.CostModel) bus.CostModel
}

// Model returns the cost model as this scheme prices it (applying, e.g.,
// Berkeley's zero-cost directory checks).
func (r Result) Model(m bus.CostModel) bus.CostModel {
	if r.adjust != nil {
		return r.adjust(m)
	}
	return m
}

// CyclesPerRef prices the run under m, per reference — the paper's primary
// metric.
func (r Result) CyclesPerRef(m bus.CostModel) float64 {
	return r.Stats.CyclesPerRef(r.Model(m))
}

// CyclesPerRefWithOverhead adds Section 5.1's per-transaction overhead q.
func (r Result) CyclesPerRefWithOverhead(m bus.CostModel, q float64) float64 {
	return r.Stats.CyclesPerRefWithOverhead(r.Model(m), q)
}

// CyclesPerTransaction is Figure 5's metric.
func (r Result) CyclesPerTransaction(m bus.CostModel) float64 {
	return r.Stats.CyclesPerTransaction(r.Model(m))
}

// CyclesByOp returns the Table 5 per-operation breakdown.
func (r Result) CyclesByOp(m bus.CostModel) [bus.NumOps]float64 {
	return r.Model(m).CyclesByOp(r.Stats.Ops)
}

// EventFrequency returns an event's frequency as a fraction of all
// references (Table 4's unit, which prints it as a percentage).
func (r Result) EventFrequency(t events.Type) float64 {
	return r.Stats.Events.Frequency(t)
}

// AvgAccessTime prices the run under a processor-latency model — Section
// 5.1's "average memory access time as seen by each processor". The
// latency model's operation costs are adjusted the same way the scheme's
// cost model is (Berkeley's free directory checks).
func (r Result) AvgAccessTime(l bus.LatencyModel) float64 {
	base := bus.CostModel{Name: l.Name, Cost: l.Cost}
	adjusted := r.Model(base)
	l.Cost = adjusted.Cost
	return l.AvgAccessTime(r.Stats.Refs, r.Stats.Transactions, r.Stats.Ops)
}

// DirToMemBandwidthRatio compares directory accesses with memory accesses,
// quantifying Section 5's finding that "the required directory bandwidth is
// only slightly higher than the bandwidth to memory".
func (r Result) DirToMemBandwidthRatio() float64 {
	if r.Stats.MemAccesses == 0 {
		return 0
	}
	return float64(r.Stats.DirAccesses) / float64(r.Stats.MemAccesses)
}

// batchRefs is the decode granularity: cancellation checks, progress
// callbacks and the parallel fan-out all operate on batches of this many
// references, so a cancelled run returns within one batch.
const batchRefs = 4096

// decodedRef is one reference after the trace-level work is done: cache
// attribution resolved, block number computed, first-reference flag set
// from the shared seen-set.
type decodedRef struct {
	cache int
	kind  trace.Kind
	block uint64
	first bool
}

// decoder turns the raw reference stream into decodedRef batches. The
// shared seen-set and process-to-cache mapping live here, computed once
// in the decode stage, which is what makes the engines independent of
// each other and safe to fan out.
type decoder struct {
	rd         trace.Reader
	opts       Options
	caches     int
	blockBytes int
	seen       map[uint64]bool
	pidToCache map[uint16]int
}

func newDecoder(rd trace.Reader, caches int, opts Options) *decoder {
	return &decoder{
		rd:         rd,
		opts:       opts,
		caches:     caches,
		blockBytes: opts.blockBytes(),
		seen:       map[uint64]bool{},
		pidToCache: map[uint16]int{},
	}
}

// nextBatch appends up to batchRefs decoded references to buf[:0] and
// returns the batch. It returns io.EOF (possibly alongside a final
// partial batch) when the trace ends.
func (d *decoder) nextBatch(buf []decodedRef) ([]decodedRef, error) {
	batch := buf[:0]
	for len(batch) < batchRefs {
		ref, err := d.rd.Next()
		if err != nil {
			if err == io.EOF {
				return batch, io.EOF
			}
			return batch, err
		}
		var c int
		switch d.opts.CacheBy {
		case ByCPU:
			c = int(ref.CPU)
		case ByProcess:
			var ok bool
			c, ok = d.pidToCache[ref.PID]
			if !ok {
				c = len(d.pidToCache)
				d.pidToCache[ref.PID] = c
			}
		}
		if c >= d.caches {
			return batch, fmt.Errorf("sim: reference needs cache %d but engines have %d caches", c, d.caches)
		}
		block := trace.Block(ref.Addr, d.blockBytes)
		first := false
		if ref.Kind != trace.Instr && !d.opts.IncludeFirstRefCosts && !d.seen[block] {
			d.seen[block] = true
			first = true
		}
		batch = append(batch, decodedRef{cache: c, kind: ref.Kind, block: block, first: first})
	}
	return batch, nil
}

// applyBatch feeds one batch to a group of engines, handling the end of
// the warm-up window exactly where the sequential driver always has:
// after reference number WarmupRefs. processed is the group's reference
// count before the batch; the updated count is returned.
func applyBatch(batch []decodedRef, engines []coherence.Engine, warmup, processed int) int {
	for _, r := range batch {
		for _, e := range engines {
			e.Access(r.cache, r.kind, r.block, r.first)
		}
		processed++
		if processed == warmup {
			// End of warm-up: keep all protocol state, measure only
			// what follows.
			for _, e := range engines {
				e.ResetStats()
			}
		}
	}
	return processed
}

// runTrace holds the per-run flight-recorder wiring: the sampling
// interval, the driver track, and one track per engine (aligned with the
// engine slice, so workers index it with the same lo:hi bounds they use
// for their engine group). Phase ids are interned up front so the hot
// path never touches the recorder's name tables.
type runTrace struct {
	rec      *flight.Recorder
	sample   uint64
	spans    bool
	driver   uint16
	tracks   []uint16
	decodeID uint32
	simID    uint32
	fanoutID uint32
}

// newRunTrace registers the run's tracks and phases on rec. It returns
// nil when the recorder captures nothing, which keeps every traced code
// path behind one nil check.
func newRunTrace(rec *flight.Recorder, engines []coherence.Engine) *runTrace {
	if !rec.Enabled() {
		return nil
	}
	tr := &runTrace{
		rec:    rec,
		sample: uint64(rec.SampleEvery()),
		spans:  rec.SpansEnabled(),
		driver: rec.AddTrack("driver"),
		tracks: make([]uint16, len(engines)),
	}
	for i, e := range engines {
		tr.tracks[i] = rec.AddTrack(e.Name())
	}
	tr.decodeID = rec.PhaseID("decode")
	tr.simID = rec.PhaseID("simulate")
	tr.fanoutID = rec.PhaseID("fan-out")
	return tr
}

// spanDur clamps a reference count to the Event.Dur field width.
func spanDur(n uint64) uint32 {
	if n > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(n)
}

// applyBatchTraced is applyBatch with the flight recorder attached:
// every tr.sample-th reference (by global reference ordinal, so the
// choice is deterministic) has its Table 4 classification recorded on
// each engine's track, plus any directory protocol actions the access
// triggered — derived by diffing the engine's own Stats counters around
// the call, so the engines themselves are untouched and their tallies
// provably unchanged. tracks is tr.tracks sliced to this engine group;
// ring is this worker's single-writer buffer.
func applyBatchTraced(batch []decodedRef, engines []coherence.Engine, tracks []uint16, tr *runTrace, ring *flight.Ring, warmup, processed int) int {
	if tr == nil {
		return applyBatch(batch, engines, warmup, processed)
	}
	start := uint64(processed)
	// One division per batch instead of a modulo per reference: sampled
	// ordinals are the multiples of tr.sample, so the loop below runs
	// applyBatch's plain inner loop over the stretches between them and
	// pays the recording cost only at the sample points themselves.
	nextSample := ^uint64(0)
	if tr.sample > 0 {
		nextSample = (start + tr.sample - 1) / tr.sample * tr.sample
	}
	for i := 0; i < len(batch); {
		seq := uint64(processed)
		if seq == nextSample {
			nextSample += tr.sample
			r := batch[i]
			for ei, e := range engines {
				st := e.Stats()
				di := st.DirectedInvals
				bi := st.BroadcastInvals
				pe := st.PointerEvictions
				de := st.DirEntryEvictions
				typ := e.Access(r.cache, r.kind, r.block, r.first)
				ring.Emit(flight.Event{Seq: seq, Block: r.block, Track: tracks[ei], Cache: int16(r.cache), Kind: flight.Kind(typ)})
				if n := st.DirectedInvals - di; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindInval})
				}
				if n := st.BroadcastInvals - bi; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindBroadcast})
				}
				if n := st.PointerEvictions - pe; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindPointerEviction})
				}
				if n := st.DirEntryEvictions - de; n > 0 {
					ring.Emit(flight.Event{Seq: seq, Block: r.block, Arg: uint32(n), Track: tracks[ei], Cache: int16(r.cache), Kind: flight.KindDirOverflow})
				}
			}
			processed++
			i++
			if processed == warmup {
				for _, e := range engines {
					e.ResetStats()
				}
			}
			continue
		}
		// Plain stretch: up to the next sample point, the warm-up
		// boundary or the end of the batch, exactly applyBatch's loop.
		end := len(batch)
		if nextSample != ^uint64(0) && uint64(end-i) > nextSample-seq {
			end = i + int(nextSample-seq)
		}
		if warmup > processed && warmup-processed < end-i {
			end = i + (warmup - processed)
		}
		for _, r := range batch[i:end] {
			for _, e := range engines {
				e.Access(r.cache, r.kind, r.block, r.first)
			}
		}
		processed += end - i
		i = end
		if processed == warmup {
			for _, e := range engines {
				e.ResetStats()
			}
		}
	}
	if tr.spans && len(batch) > 0 {
		for _, t := range tracks {
			ring.Emit(flight.Event{Seq: start, Dur: spanDur(uint64(len(batch))), Track: t, Cache: -1, Kind: flight.KindSpan, Arg: tr.simID})
		}
	}
	return processed
}

// Run streams rd through every engine and returns one Result per engine,
// in order. All engines must have the same cache count, and the trace
// must fit within it. The context cancels the run between batches; with
// opts.Parallel > 1 the engines run on worker goroutines, with results
// identical to the sequential path.
func Run(ctx context.Context, rd trace.Reader, engines []coherence.Engine, opts Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: no engines")
	}
	caches := engines[0].Caches()
	for _, e := range engines[1:] {
		if e.Caches() != caches {
			return nil, fmt.Errorf("sim: engine %s has %d caches, %s has %d",
				e.Name(), e.Caches(), engines[0].Name(), caches)
		}
	}
	d := newDecoder(rd, caches, opts)
	tr := newRunTrace(opts.Recorder, engines)
	var err error
	if opts.workers(len(engines)) > 1 {
		err = runParallel(ctx, d, engines, opts, tr)
	} else {
		err = runSequential(ctx, d, engines, opts, tr)
	}
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(engines))
	for i, e := range engines {
		results[i] = Result{Scheme: e.Name(), Stats: e.Stats()}
		if adj, ok := e.(coherence.ModelAdjuster); ok {
			results[i].adjust = adj.AdjustModel
		}
	}
	return results, nil
}

// runSequential is the classic driver: decode a batch, feed every engine
// in lockstep, repeat.
func runSequential(ctx context.Context, d *decoder, engines []coherence.Engine, opts Options, tr *runTrace) error {
	var ring *flight.Ring
	var tracks []uint16
	if tr != nil {
		ring = tr.rec.NewRing()
		tracks = tr.tracks
	}
	buf := make([]decodedRef, 0, batchRefs)
	processed := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch, err := d.nextBatch(buf)
		if err != nil && err != io.EOF {
			return err
		}
		if tr != nil && tr.spans && len(batch) > 0 {
			ring.Emit(flight.Event{Seq: uint64(processed), Dur: spanDur(uint64(len(batch))), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.decodeID})
		}
		processed = applyBatchTraced(batch, engines, tracks, tr, ring, opts.WarmupRefs, processed)
		if opts.OnProgress != nil && len(batch) > 0 {
			opts.OnProgress(len(batch))
		}
		if err == io.EOF {
			break
		}
	}
	if processed < opts.WarmupRefs {
		// The trace ended inside the warm-up window: nothing measured.
		for _, e := range engines {
			e.ResetStats()
		}
	}
	return nil
}

// runParallel decodes on the calling goroutine and fans each batch out to
// a bounded set of workers, each owning a contiguous group of engines.
// Batches arrive on every worker's channel in decode order, so each
// engine processes the full stream in order and accumulates exactly the
// same Stats as under runSequential.
func runParallel(ctx context.Context, d *decoder, engines []coherence.Engine, opts Options, tr *runTrace) error {
	workers := opts.workers(len(engines))
	chans := make([]chan []decodedRef, workers)
	var drvRing *flight.Ring
	if tr != nil {
		drvRing = tr.rec.NewRing()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous engine groups: the first len%workers groups take one
		// extra engine.
		lo := w * len(engines) / workers
		hi := (w + 1) * len(engines) / workers
		ch := make(chan []decodedRef, 4)
		chans[w] = ch
		var ring *flight.Ring
		var tracks []uint16
		if tr != nil {
			// One ring per worker keeps emission single-writer.
			ring = tr.rec.NewRing()
			tracks = tr.tracks[lo:hi]
		}
		wg.Add(1)
		go func(group []coherence.Engine, tracks []uint16, ring *flight.Ring) {
			defer wg.Done()
			processed := 0
			for batch := range ch {
				processed = applyBatchTraced(batch, group, tracks, tr, ring, opts.WarmupRefs, processed)
			}
		}(engines[lo:hi], tracks, ring)
	}
	var err error
	total := 0
decode:
	for {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		// Workers read batches concurrently, so each batch needs its own
		// backing array.
		batch, derr := d.nextBatch(make([]decodedRef, 0, batchRefs))
		if derr != nil && derr != io.EOF {
			err = derr
			break
		}
		if len(batch) > 0 {
			if tr != nil && tr.spans {
				drvRing.Emit(flight.Event{Seq: uint64(total), Dur: spanDur(uint64(len(batch))), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.decodeID})
			}
			for _, ch := range chans {
				select {
				case ch <- batch:
				case <-ctx.Done():
					err = ctx.Err()
					break decode
				}
			}
			total += len(batch)
			if opts.OnProgress != nil {
				opts.OnProgress(len(batch))
			}
		}
		if derr == io.EOF {
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if tr != nil && tr.spans && total > 0 {
		// One span covering the whole fan-out on the driver track.
		drvRing.Emit(flight.Event{Seq: 0, Dur: spanDur(uint64(total)), Track: tr.driver, Cache: -1, Kind: flight.KindSpan, Arg: tr.fanoutID})
	}
	if err != nil {
		return err
	}
	if total < opts.WarmupRefs {
		for _, e := range engines {
			e.ResetStats()
		}
	}
	return nil
}

// RunSchemes builds the named engines and runs rd through them.
func RunSchemes(ctx context.Context, rd trace.Reader, names []string, cfg coherence.Config, opts Options) ([]Result, error) {
	engines := make([]coherence.Engine, len(names))
	for i, n := range names {
		e, err := coherence.NewByName(n, cfg)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	return Run(ctx, rd, engines, opts)
}

// Combine merges per-trace results for the same scheme into one aggregate,
// the way the paper averages event frequencies "across the three traces"
// (reference-weighted, which merging raw counts achieves).
func Combine(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("sim: nothing to combine")
	}
	agg := &coherence.Stats{}
	maxCaches := 0
	for _, r := range results {
		if n := len(r.Stats.PerCache); n > maxCaches {
			maxCaches = n
		}
	}
	if maxCaches > 0 {
		agg.PerCache = make([]coherence.CacheTally, maxCaches)
	}
	for _, r := range results {
		if r.Scheme != results[0].Scheme {
			return Result{}, fmt.Errorf("sim: cannot combine %s with %s", r.Scheme, results[0].Scheme)
		}
		agg.Refs += r.Stats.Refs
		agg.Events.Merge(r.Stats.Events)
		agg.Ops.Merge(r.Stats.Ops)
		agg.Transactions += r.Stats.Transactions
		agg.InvalFanout.Add(&r.Stats.InvalFanout)
		agg.InvalEvents += r.Stats.InvalEvents
		agg.DirectedInvals += r.Stats.DirectedInvals
		agg.BroadcastInvals += r.Stats.BroadcastInvals
		agg.WastedInvals += r.Stats.WastedInvals
		agg.PointerEvictions += r.Stats.PointerEvictions
		agg.DirAccesses += r.Stats.DirAccesses
		agg.MemAccesses += r.Stats.MemAccesses
		agg.Evictions += r.Stats.Evictions
		agg.EvictionWriteBacks += r.Stats.EvictionWriteBacks
		agg.DirEntryEvictions += r.Stats.DirEntryEvictions
		agg.Snarfs += r.Stats.Snarfs
		for i, ct := range r.Stats.PerCache {
			agg.PerCache[i].Hits += ct.Hits
			agg.PerCache[i].Misses += ct.Misses
			agg.PerCache[i].Writes += ct.Writes
		}
	}
	return Result{Scheme: results[0].Scheme, Stats: agg, adjust: results[0].adjust}, nil
}
