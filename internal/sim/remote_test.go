package sim

import (
	"context"
	"math"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/tracegen"
)

// A rebuilt remote result must price identically to the local result it
// mirrors — including Berkeley's cost-model adjustment, which does not
// survive serialisation and has to be rederived from the scheme name.
func TestRemoteResultMatchesLocal(t *testing.T) {
	cfg := coherence.Config{Caches: 4}
	g, err := tracegen.New(tracegen.POPS(5_000))
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunSchemes(context.Background(), g, []string{"berkeley", "dir0b"}, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pip := bus.Pipelined()
	for _, lr := range local {
		rr, err := RemoteResult(lr.Scheme, cfg, lr.Stats)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Scheme != lr.Scheme {
			t.Errorf("scheme = %q, want %q", rr.Scheme, lr.Scheme)
		}
		if got, want := rr.CyclesPerRef(pip), lr.CyclesPerRef(pip); math.Abs(got-want) > 0 {
			t.Errorf("%s: remote cycles/ref %v != local %v", lr.Scheme, got, want)
		}
	}
	if _, err := RemoteResult("nosuchscheme", cfg, local[0].Stats); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RemoteResult("dir0b", cfg, nil); err == nil {
		t.Error("nil stats accepted")
	}
}
