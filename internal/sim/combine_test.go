package sim

import (
	"fmt"
	"reflect"
	"testing"

	"dirsim/internal/coherence"
)

// fillNumericLeaves walks every exported numeric leaf reachable from v
// (through structs, arrays and slices; nil slices get three elements) and
// sets each to a distinct value from the counter, so a later sum check can
// tell the leaves apart.
func fillNumericLeaves(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		v.SetUint(*next)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(int64(*next))
	case reflect.Float32, reflect.Float64:
		*next++
		v.SetFloat(float64(*next))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fillNumericLeaves(f, next)
			}
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillNumericLeaves(v.Index(i), next)
		}
	case reflect.Slice:
		if v.IsNil() && v.CanSet() {
			v.Set(reflect.MakeSlice(v.Type(), 3, 3))
		}
		for i := 0; i < v.Len(); i++ {
			fillNumericLeaves(v.Index(i), next)
		}
	}
}

// checkSummed asserts agg == a + b at every exported numeric leaf,
// reporting the field path of any leaf Combine forgot to merge.
func checkSummed(t *testing.T, path string, agg, a, b reflect.Value) {
	t.Helper()
	switch agg.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if agg.Uint() != a.Uint()+b.Uint() {
			t.Errorf("%s: combined %d, want %d + %d — field not merged by Combine",
				path, agg.Uint(), a.Uint(), b.Uint())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if agg.Int() != a.Int()+b.Int() {
			t.Errorf("%s: combined %d, want %d + %d", path, agg.Int(), a.Int(), b.Int())
		}
	case reflect.Float32, reflect.Float64:
		if agg.Float() != a.Float()+b.Float() {
			t.Errorf("%s: combined %v, want %v + %v", path, agg.Float(), a.Float(), b.Float())
		}
	case reflect.Struct:
		for i := 0; i < agg.NumField(); i++ {
			if !agg.Field(i).CanSet() {
				continue // unexported: not reachable by the filler either
			}
			checkSummed(t, path+"."+agg.Type().Field(i).Name, agg.Field(i), a.Field(i), b.Field(i))
		}
	case reflect.Array, reflect.Slice:
		if agg.Len() < a.Len() || agg.Len() < b.Len() {
			t.Errorf("%s: combined length %d shorter than inputs (%d, %d)",
				path, agg.Len(), a.Len(), b.Len())
			return
		}
		zero := reflect.New(agg.Type().Elem()).Elem()
		at := func(v reflect.Value, i int) reflect.Value {
			if i < v.Len() {
				return v.Index(i)
			}
			return zero
		}
		for i := 0; i < agg.Len(); i++ {
			checkSummed(t, fmt.Sprintf("%s[%d]", path, i), agg.Index(i), at(a, i), at(b, i))
		}
	}
}

// TestCombineMergesEveryStatsField fills every exported numeric leaf of
// two Stats with distinct values and asserts Combine sums each one — so a
// new Stats field that is not added to Combine fails this test by name
// instead of silently dropping data from multi-trace aggregates.
func TestCombineMergesEveryStatsField(t *testing.T) {
	var next uint64
	a, b := &coherence.Stats{}, &coherence.Stats{}
	fillNumericLeaves(reflect.ValueOf(a).Elem(), &next)
	fillNumericLeaves(reflect.ValueOf(b).Elem(), &next)
	agg, err := Combine([]Result{{Scheme: "X", Stats: a}, {Scheme: "X", Stats: b}})
	if err != nil {
		t.Fatal(err)
	}
	checkSummed(t, "Stats", reflect.ValueOf(agg.Stats).Elem(),
		reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem())
}

// Combine must preallocate the aggregate's PerCache to the widest input
// and still merge narrower ones correctly.
func TestCombinePerCacheDifferingLengths(t *testing.T) {
	a := &coherence.Stats{Refs: 1, PerCache: []coherence.CacheTally{{Hits: 1}, {Misses: 2}}}
	b := &coherence.Stats{Refs: 1, PerCache: []coherence.CacheTally{{Hits: 10}, {Misses: 20}, {Writes: 30}, {Hits: 40}}}
	agg, err := Combine([]Result{{Scheme: "X", Stats: a}, {Scheme: "X", Stats: b}})
	if err != nil {
		t.Fatal(err)
	}
	pc := agg.Stats.PerCache
	if len(pc) != 4 {
		t.Fatalf("PerCache length = %d, want 4", len(pc))
	}
	want := []coherence.CacheTally{{Hits: 11}, {Misses: 22}, {Writes: 30}, {Hits: 40}}
	if !reflect.DeepEqual(pc, want) {
		t.Errorf("PerCache = %+v, want %+v", pc, want)
	}
	// Order must not matter for the preallocation.
	rev, err := Combine([]Result{{Scheme: "X", Stats: b}, {Scheme: "X", Stats: a}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rev.Stats.PerCache, want) {
		t.Errorf("reversed PerCache = %+v, want %+v", rev.Stats.PerCache, want)
	}
}
