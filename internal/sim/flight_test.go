package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestTracedStatsIdenticalAllEngines is the recorder's core contract:
// tracing is a pure observer, so with sampling and spans on — even at
// sample=1, the densest setting — every engine's Stats must be bitwise
// identical to an untraced run. Checked across all 17 registered schemes,
// sequentially and through the parallel fan-out.
func TestTracedStatsIdenticalAllEngines(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.POPS(30_000))
	if err != nil {
		t.Fatal(err)
	}
	schemes := coherence.EngineNames()
	cfg := coherence.Config{Caches: 4}
	plain, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential-sample1", Options{Recorder: flight.New(flight.Options{Sample: 1, Spans: true})}},
		{"sequential-default", Options{Recorder: flight.New(flight.Options{Sample: flight.DefaultSample})}},
		{"parallel-sample1", Options{Parallel: 4, Recorder: flight.New(flight.Options{Sample: 1, Spans: true})}},
	} {
		traced, err := RunSchemes(context.Background(), trace.NewSliceReader(tr), schemes, cfg, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range plain {
			if !reflect.DeepEqual(traced[i].Stats, plain[i].Stats) {
				t.Errorf("%s: %s stats differ from untraced run", tc.name, traced[i].Scheme)
			}
		}
		if evs := tc.opts.Recorder.Events(); len(evs) == 0 {
			t.Errorf("%s: recorder captured no events", tc.name)
		}
	}
}

// sharingTrace2 is a fixed 2-CPU workload with enough write sharing to
// exercise directed and broadcast invalidations.
func sharingTrace2() trace.Slice {
	return trace.Slice{
		{CPU: 0, PID: 1, Kind: trace.Read, Addr: 0x100},
		{CPU: 1, PID: 2, Kind: trace.Read, Addr: 0x100},
		{CPU: 0, PID: 1, Kind: trace.Write, Addr: 0x100},
		{CPU: 1, PID: 2, Kind: trace.Read, Addr: 0x100},
		{CPU: 1, PID: 2, Kind: trace.Write, Addr: 0x100},
		{CPU: 0, PID: 1, Kind: trace.Read, Addr: 0x200},
		{CPU: 0, PID: 1, Kind: trace.Write, Addr: 0x200},
		{CPU: 1, PID: 2, Kind: trace.Write, Addr: 0x200},
		{CPU: 0, PID: 1, Kind: trace.Instr, Addr: 0x1000},
		{CPU: 1, PID: 2, Kind: trace.Read, Addr: 0x200},
	}
}

// TestChromeTraceGolden runs 2 CPUs through 2 engines at sample=1 with
// spans and checks the Chrome export against a committed golden file
// (refresh with `go test ./internal/sim -run Golden -update`), then
// re-parses it: valid JSON, and within every (pid, tid) track the
// timestamps must be monotonically non-decreasing.
func TestChromeTraceGolden(t *testing.T) {
	rec := flight.New(flight.Options{Sample: 1, Spans: true, Label: "golden"})
	_, err := RunSchemes(context.Background(), trace.NewSliceReader(sharingTrace2()),
		[]string{"dir1b", "dir0b"}, coherence.Config{Caches: 2}, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flight.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_2cpu2eng.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden %s (refresh with -update if the change is intended)", golden)
	}

	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  uint64 `json:"ts"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	last := map[[2]int]uint64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		key := [2]int{e.Pid, e.Tid}
		if prev, ok := last[key]; ok && e.Ts < prev {
			t.Fatalf("track pid=%d tid=%d: ts %d after %d — not monotonic", e.Pid, e.Tid, e.Ts, prev)
		}
		last[key] = e.Ts
	}
	if len(last) < 3 {
		t.Fatalf("only %d tracks with events, want driver + 2 engines", len(last))
	}
}

// TestSampleZeroEmitsNothing mirrors -trace-sample=0: a recorder with
// sampling off and no spans captures nothing, and the run's Stats are
// bit-for-bit those of a run with no recorder at all.
func TestSampleZeroEmitsNothing(t *testing.T) {
	run := func(opts Options) []Result {
		rs, err := RunSchemes(context.Background(), trace.NewSliceReader(sharingTrace2()),
			[]string{"dir1b", "dir0b"}, coherence.Config{Caches: 2}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	plain := run(Options{})
	rec := flight.New(flight.Options{Sample: 0})
	if rec.Enabled() {
		t.Fatal("sample=0 recorder without spans reports enabled")
	}
	traced := run(Options{Recorder: rec})
	if n := len(rec.Events()); n != 0 {
		t.Fatalf("sample=0 captured %d events, want 0", n)
	}
	for i := range plain {
		if !reflect.DeepEqual(traced[i].Stats, plain[i].Stats) {
			t.Errorf("%s stats changed under a disabled recorder", traced[i].Scheme)
		}
	}
	// A nil recorder takes the identical path.
	nilRec := run(Options{Recorder: nil})
	for i := range plain {
		if !reflect.DeepEqual(nilRec[i].Stats, plain[i].Stats) {
			t.Errorf("%s stats changed under a nil recorder", nilRec[i].Scheme)
		}
	}
}
