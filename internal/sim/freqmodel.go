package sim

import (
	"fmt"

	"dirsim/internal/bus"
	"dirsim/internal/events"
)

// PerEventOps returns, for schemes whose bus operations are a fixed
// function of the event type, the operations one occurrence of each event
// implies. This is the paper's Section 4.1 methodology in executable form:
// event frequencies are measured once, then "weighted by their respective
// costs in bus cycles" for any hardware model.
//
// It is defined for Dir1NB, Dir0B, Berkeley, WTI and Dragon. Schemes with
// data-dependent operation counts (sequential invalidations in Dir_nNB,
// Dir_iB's conditional broadcast, coded-set supersets) need the fan-out
// distribution as well and are not expressible as a per-event table; for
// them the engine's direct operation tally is authoritative.
func PerEventOps(scheme string) (map[events.Type]bus.OpCounts, bool) {
	mk := func(ops ...bus.Op) bus.OpCounts {
		var c bus.OpCounts
		for _, op := range ops {
			c.Inc(op)
		}
		return c
	}
	switch scheme {
	case "Dir1NB":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:     mk(bus.OpDirCheckOverlapped, bus.OpInvalidate, bus.OpMemRead),
			events.ReadMissDirty:     mk(bus.OpDirCheckOverlapped, bus.OpInvalidate, bus.OpWriteBack),
			events.ReadMissUncached:  mk(bus.OpDirCheckOverlapped, bus.OpMemRead),
			events.WriteMissClean:    mk(bus.OpDirCheckOverlapped, bus.OpInvalidate, bus.OpMemRead),
			events.WriteMissDirty:    mk(bus.OpDirCheckOverlapped, bus.OpInvalidate, bus.OpWriteBack),
			events.WriteMissUncached: mk(bus.OpDirCheckOverlapped, bus.OpMemRead),
		}, true
	case "Dir0B", "Berkeley":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:       mk(bus.OpDirCheckOverlapped, bus.OpMemRead),
			events.ReadMissDirty:       mk(bus.OpDirCheckOverlapped, bus.OpBroadcastInvalidate, bus.OpWriteBack),
			events.ReadMissUncached:    mk(bus.OpDirCheckOverlapped, bus.OpMemRead),
			events.WriteHitCleanSole:   mk(bus.OpDirCheck),
			events.WriteHitCleanShared: mk(bus.OpDirCheck, bus.OpBroadcastInvalidate),
			events.WriteMissClean:      mk(bus.OpDirCheckOverlapped, bus.OpMemRead, bus.OpBroadcastInvalidate),
			events.WriteMissDirty:      mk(bus.OpDirCheckOverlapped, bus.OpBroadcastInvalidate, bus.OpWriteBack),
			events.WriteMissUncached:   mk(bus.OpDirCheckOverlapped, bus.OpMemRead),
		}, true
	case "WTI":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:       mk(bus.OpMemRead),
			events.ReadMissDirty:       mk(bus.OpMemRead),
			events.ReadMissUncached:    mk(bus.OpMemRead),
			events.WriteHitDirty:       mk(bus.OpWriteThrough),
			events.WriteHitCleanSole:   mk(bus.OpWriteThrough),
			events.WriteHitCleanShared: mk(bus.OpWriteThrough),
			events.WriteMissClean:      mk(bus.OpMemRead, bus.OpWriteThrough),
			events.WriteMissDirty:      mk(bus.OpMemRead, bus.OpWriteThrough),
			events.WriteMissUncached:   mk(bus.OpMemRead, bus.OpWriteThrough),
		}, true
	case "Dragon", "Firefly":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:     mk(bus.OpMemRead),
			events.ReadMissDirty:     mk(bus.OpCacheRead),
			events.ReadMissUncached:  mk(bus.OpMemRead),
			events.WriteHitUpdate:    mk(bus.OpWriteUpdate),
			events.WriteMissClean:    mk(bus.OpMemRead, bus.OpWriteUpdate),
			events.WriteMissDirty:    mk(bus.OpCacheRead, bus.OpWriteUpdate),
			events.WriteMissUncached: mk(bus.OpMemRead),
		}, true
	case "MESI":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:       mk(bus.OpCacheRead),
			events.ReadMissDirty:       mk(bus.OpWriteBack),
			events.ReadMissUncached:    mk(bus.OpMemRead),
			events.WriteHitCleanShared: mk(bus.OpBroadcastInvalidate),
			events.WriteMissClean:      mk(bus.OpCacheRead),
			events.WriteMissDirty:      mk(bus.OpWriteBack),
			events.WriteMissUncached:   mk(bus.OpMemRead),
		}, true
	case "WriteOnce":
		return map[events.Type]bus.OpCounts{
			events.ReadMissClean:       mk(bus.OpMemRead),
			events.ReadMissDirty:       mk(bus.OpWriteBack),
			events.ReadMissUncached:    mk(bus.OpMemRead),
			events.WriteHitCleanSole:   mk(bus.OpWriteThrough),
			events.WriteHitCleanShared: mk(bus.OpWriteThrough),
			events.WriteMissClean:      mk(bus.OpMemRead, bus.OpWriteThrough),
			events.WriteMissDirty:      mk(bus.OpWriteBack, bus.OpWriteThrough),
			events.WriteMissUncached:   mk(bus.OpMemRead, bus.OpWriteThrough),
		}, true
	default:
		return nil, false
	}
}

// OpsFromEvents reconstructs the bus-operation tally of a run from its
// event counts using the per-event table. For the schemes PerEventOps
// covers, this must equal the engine's directly measured Stats.Ops — the
// property tests assert it, validating both accounting paths.
func OpsFromEvents(scheme string, ev events.Counts) (bus.OpCounts, error) {
	table, ok := PerEventOps(scheme)
	if !ok {
		return bus.OpCounts{}, fmt.Errorf("sim: scheme %s has data-dependent operation counts", scheme)
	}
	var out bus.OpCounts
	for ty, ops := range table {
		n := ev[ty]
		for op, k := range ops {
			out[op] += k * n
		}
	}
	return out, nil
}

// VerifyAccounting checks that the frequency path (events × per-event
// operations) reproduces the engine's direct operation tally, where the
// scheme admits a per-event table. It returns nil for schemes that do not.
func VerifyAccounting(r Result) error {
	want, err := OpsFromEvents(r.Scheme, r.Stats.Events)
	if err != nil {
		return nil // data-dependent scheme; direct tally is authoritative
	}
	if want != r.Stats.Ops {
		return fmt.Errorf("sim: %s accounting mismatch:\n events-derived %v\n measured       %v",
			r.Scheme, want, r.Stats.Ops)
	}
	return nil
}
