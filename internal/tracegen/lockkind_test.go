package tracegen

import (
	"testing"

	"dirsim/internal/trace"
)

func TestLockKindValidation(t *testing.T) {
	cfg := POPS(1000)
	cfg.LockKind = LockKind(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown LockKind accepted")
	}
	cfg.LockKind = TestAndSet
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTestAndSetSpinsAreWrites(t *testing.T) {
	cfg := POPS(200_000)
	cfg.LockKind = TestAndSet
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lockReads, lockWrites uint64
	for _, r := range tr {
		if !r.Lock {
			continue
		}
		switch r.Kind {
		case trace.Read:
			lockReads++
		case trace.Write:
			lockWrites++
		}
	}
	if lockWrites == 0 {
		t.Fatal("test-and-set generated no failing set writes")
	}
	if lockReads != 0 {
		t.Fatalf("test-and-set generated %d lock-probe reads", lockReads)
	}
}

func TestTestAndTestAndSetSpinsAreReads(t *testing.T) {
	tr, err := Generate(POPS(200_000))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr {
		if r.Lock && r.Kind != trace.Read {
			t.Fatalf("ref %d: TTS lock probe is a %v", i, r.Kind)
		}
	}
}

func TestLockKindsShareNonLockStructure(t *testing.T) {
	// The primitive only changes the spin probes; acquisitions and
	// critical sections still happen, and all locks are still released.
	cfg := POPS(200_000)
	cfg.LockKind = TestAndSet
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	held := map[uint64]bool{}
	acquisitions := 0
	for _, r := range tr {
		if r.Addr < regionLocks || r.Addr >= regionLockDat || r.Kind != trace.Write || r.Lock {
			continue // Lock=true writes are failing probes, not acquisitions
		}
		if held[r.Addr] {
			held[r.Addr] = false
		} else {
			held[r.Addr] = true
			acquisitions++
		}
	}
	if acquisitions == 0 {
		t.Fatal("no acquisitions under test-and-set")
	}
}
