package tracegen

import (
	"reflect"
	"testing"

	"dirsim/internal/trace"
)

func TestValidate(t *testing.T) {
	good := POPS(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("POPS preset invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.CPUs = 0 },
		func(c *Config) { c.CPUs = 300 },
		func(c *Config) { c.ProcsPerCPU = 0 },
		func(c *Config) { c.Refs = -1 },
		func(c *Config) { c.SharedBlocks = 0 },
		func(c *Config) { c.PrivateBlocks = 0 },
		func(c *Config) { c.Locks = -1 },
		func(c *Config) { c.Quantum = 0 },
		func(c *Config) { c.InstrFrac = 1.5 },
		func(c *Config) { c.WriteFrac = -0.1 },
		func(c *Config) { c.MigrationRate = 2 },
		func(c *Config) { c.CriticalLen = 0 },
	}
	for i, mutate := range cases {
		c := POPS(1000)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(POPS(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(POPS(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := POPS(5000)
	c.Seed++
	d, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestExactLength(t *testing.T) {
	for _, n := range []int{0, 1, 59, 60, 61, 1000} {
		cfg := THOR(n)
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != n {
			t.Errorf("Refs=%d produced %d refs", n, len(tr))
		}
	}
}

func TestRefFieldsInRange(t *testing.T) {
	cfg := THOR(20000)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr {
		if int(r.CPU) >= cfg.CPUs {
			t.Fatalf("CPU %d out of range", r.CPU)
		}
		if r.PID == 0 || int(r.PID) > cfg.CPUs*cfg.ProcsPerCPU {
			t.Fatalf("PID %d out of range", r.PID)
		}
		if !r.Kind.Valid() {
			t.Fatalf("invalid kind %d", r.Kind)
		}
		if r.Lock && r.Kind != trace.Read {
			t.Fatalf("lock annotation on %v", r.Kind)
		}
	}
}

// The Table 3 shape: ~half instructions, high read/write ratio, roughly the
// configured kernel fraction, and all CPUs active.
func statsFor(t *testing.T, cfg Config) trace.Stats {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.CollectStats(g, trace.DefaultBlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPOPSShape(t *testing.T) {
	st := statsFor(t, POPS(300000))
	instrFrac := float64(st.Instr) / float64(st.Refs)
	if instrFrac < 0.35 || instrFrac > 0.60 {
		t.Errorf("instruction fraction = %.3f, want ~0.5", instrFrac)
	}
	if r := st.ReadWriteRatio(); r < 3 || r > 8 {
		t.Errorf("read/write ratio = %.2f, want 3-8 (paper: 4.8)", r)
	}
	// Section 4.4: roughly one third of reads are lock spins.
	if f := st.LockReadFraction(); f < 0.18 || f > 0.5 {
		t.Errorf("lock read fraction = %.3f, want ~1/3", f)
	}
	if st.CPUs != 4 {
		t.Errorf("CPUs = %d, want 4", st.CPUs)
	}
	sysFrac := float64(st.Sys) / float64(st.Refs)
	if sysFrac < 0.05 || sysFrac > 0.20 {
		t.Errorf("kernel fraction = %.3f, want ~0.10", sysFrac)
	}
}

func TestPEROSharesLessThanPOPS(t *testing.T) {
	pops := statsFor(t, POPS(200000))
	pero := statsFor(t, PERO(200000))
	if pero.SharedRefFraction() >= pops.SharedRefFraction()/2 {
		t.Errorf("PERO shared fraction %.4f not well below POPS %.4f",
			pero.SharedRefFraction(), pops.SharedRefFraction())
	}
	// PERO should spin far less.
	if pero.LockReadFraction() >= pops.LockReadFraction()/2 {
		t.Errorf("PERO lock fraction %.4f not well below POPS %.4f",
			pero.LockReadFraction(), pops.LockReadFraction())
	}
}

func TestSharingIsProcessSharing(t *testing.T) {
	// With one process per CPU and no migration, process sharing and
	// processor sharing coincide exactly (Section 4.4 found them nearly
	// identical because migration was rare).
	cfg := THOR(200000)
	cfg.MigrationRate = 0
	st := statsFor(t, cfg)
	if st.SharedBlocksByProcess == 0 {
		t.Fatal("no process-shared blocks generated")
	}
	if st.SharedBlocksByCPU != st.SharedBlocksByProcess {
		t.Errorf("processor-shared %d != process-shared %d with no migration",
			st.SharedBlocksByCPU, st.SharedBlocksByProcess)
	}
}

func TestMigrationRare(t *testing.T) {
	st := statsFor(t, POPS(300000))
	if st.MigratedProcesses > st.Processes/2+1 {
		t.Errorf("%d of %d processes migrated; migration should be rare",
			st.MigratedProcesses, st.Processes)
	}
}

func TestLocksEventuallyReleased(t *testing.T) {
	// Generate a long trace and confirm every lock acquisition (write to
	// a lock address after lock-test reads) has a matching release, i.e.
	// no lock is held forever and spins terminate.
	cfg := POPS(200000)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	held := map[uint64]uint16{}
	acquisitions := 0
	for i, r := range tr {
		if r.Addr < regionLocks || r.Addr >= regionLockDat {
			continue
		}
		if r.Kind != trace.Write {
			continue
		}
		if owner, ok := held[r.Addr]; ok {
			if owner != r.PID {
				t.Fatalf("ref %d: lock %x released by %d, held by %d", i, r.Addr, r.PID, owner)
			}
			delete(held, r.Addr)
		} else {
			held[r.Addr] = r.PID
			acquisitions++
		}
	}
	if acquisitions == 0 {
		t.Fatal("no lock acquisitions generated")
	}
	if len(held) > cfg.Locks {
		t.Fatalf("%d locks left held", len(held))
	}
}

func TestGeneratorStreamsMatchGenerate(t *testing.T) {
	cfg := PERO(5000)
	whole, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, streamed) {
		t.Fatal("streaming and batch generation differ")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(100)
	if len(ps) != 3 {
		t.Fatalf("Presets returned %d configs", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Refs != 100 {
			t.Errorf("%s Refs = %d", p.Name, p.Refs)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"POPS", "THOR", "PERO"} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := POPS(10)
	cfg.CPUs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted by New")
	}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid config accepted by Generate")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := POPS(100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
