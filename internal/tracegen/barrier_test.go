package tracegen

import (
	"testing"

	"dirsim/internal/trace"
)

const (
	barrierCounterAddr = uint64(regionBarrier)
	barrierGenAddr     = uint64(regionBarrier) + trace.DefaultBlockBytes
)

func barrierCfg(refs int) Config {
	cfg := PERO(refs)
	cfg.BarrierInterval = 800
	return cfg
}

func TestBarrierValidation(t *testing.T) {
	cfg := POPS(100)
	cfg.BarrierInterval = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative BarrierInterval accepted")
	}
}

func TestBarrierProtocolShape(t *testing.T) {
	tr, err := Generate(barrierCfg(300_000))
	if err != nil {
		t.Fatal(err)
	}
	// Replay the barrier protocol: arrivals increment the counter; after
	// every len(procs)-th arrival a release write to the generation word
	// follows (from the same process, before any further arrival).
	const procs = 4
	arrivalWrites := 0
	releases := 0
	pendingRelease := false
	for i, r := range tr {
		switch {
		case r.Addr == barrierCounterAddr && r.Kind == trace.Write:
			if pendingRelease {
				t.Fatalf("ref %d: new arrival before the release write", i)
			}
			arrivalWrites++
			if arrivalWrites%procs == 0 {
				pendingRelease = true
			}
		case r.Addr == barrierGenAddr && r.Kind == trace.Write:
			if !pendingRelease {
				t.Fatalf("ref %d: release write without a full barrier", i)
			}
			pendingRelease = false
			releases++
		}
	}
	if releases == 0 {
		t.Fatal("no barrier completed")
	}
	// Each arrival write is preceded by a read of the counter (the RMW).
	reads := 0
	for _, r := range tr {
		if r.Addr == barrierCounterAddr && r.Kind == trace.Read {
			reads++
		}
	}
	if reads != arrivalWrites {
		t.Errorf("counter reads %d != arrival writes %d", reads, arrivalWrites)
	}
}

func TestBarrierSpinsAreLockMarked(t *testing.T) {
	tr, err := Generate(barrierCfg(300_000))
	if err != nil {
		t.Fatal(err)
	}
	spins := 0
	for _, r := range tr {
		if r.Addr == barrierGenAddr && r.Kind == trace.Read && r.Lock {
			spins++
		}
	}
	if spins == 0 {
		t.Fatal("no barrier spin reads generated")
	}
}

func TestBarrierDisabledByDefault(t *testing.T) {
	for _, cfg := range Presets(50_000) {
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range tr {
			if r.Addr >= regionBarrier && r.Addr < regionBarrier+perProcStride {
				t.Fatalf("%s ref %d touches the barrier region", cfg.Name, i)
			}
		}
	}
}

func TestBarrierTraceStillTerminatesAndBalances(t *testing.T) {
	// With barriers on, lock accounting still balances (no interaction
	// between the two synchronisation mechanisms).
	cfg := POPS(200_000)
	cfg.BarrierInterval = 2000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 200_000 {
		t.Fatalf("generated %d refs", len(tr))
	}
	held := map[uint64]bool{}
	for _, r := range tr {
		if r.Addr < regionLocks || r.Addr >= regionLockDat || r.Kind != trace.Write || r.Lock {
			continue
		}
		held[r.Addr] = !held[r.Addr]
	}
	stuck := 0
	for _, h := range held {
		if h {
			stuck++
		}
	}
	if stuck > cfg.Locks {
		t.Fatalf("%d locks left held", stuck)
	}
}
