package tracegen

import "io"

// errEOF is returned by Generator.Next when the configured number of
// references has been produced.
var errEOF = io.EOF
