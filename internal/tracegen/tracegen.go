// Package tracegen generates synthetic multiprocessor address traces.
//
// The paper drives its simulations with ATUM traces of three parallel
// applications (POPS, THOR, PERO) captured on a 4-CPU VAX 8350 under MACH.
// Those traces are unavailable, so this package synthesises reference
// streams with the same statistical structure the paper reports
// (Section 4.4, Table 3):
//
//   - roughly half of all references are instruction fetches;
//   - a high data read-to-write ratio, inflated in POPS and THOR by
//     test-and-test-and-set spins, which account for about one third of all
//     reads;
//   - about 10% operating-system activity;
//   - sharing dominated by inter-process (not migration-induced) sharing,
//     with PERO sharing far less than POPS and THOR;
//   - process migration rare.
//
// The generator models processes pinned to CPUs (with optional migration)
// executing a loop of instruction fetches, private-data references with
// working-set locality, shared-heap references, and critical sections
// guarded by test-and-test-and-set spin locks. All randomness is drawn from
// a seeded source, so a given Config always yields the identical trace.
package tracegen

import (
	"fmt"
	"math/rand"

	"dirsim/internal/trace"
)

// Address-space layout. Regions are separated by high bits so distinct
// pools can never collide regardless of pool sizes.
const (
	regionCode    = 0x0100_0000_0000
	regionPrivate = 0x0200_0000_0000
	regionShared  = 0x0300_0000_0000
	regionLocks   = 0x0400_0000_0000
	regionLockDat = 0x0500_0000_0000
	regionKernel  = 0x0600_0000_0000
	regionPaired  = 0x0700_0000_0000
	regionBarrier = 0x0800_0000_0000

	perProcStride = 1 << 32 // spacing of per-process sub-regions
	perLockStride = 1 << 20 // spacing of lock-protected data regions
)

// Config parameterises a synthetic workload. Use a preset (POPS, THOR,
// PERO) as a starting point.
type Config struct {
	// Name labels the trace in reports.
	Name string
	// Seed fixes the random stream; equal configs generate equal traces.
	Seed int64
	// CPUs is the number of processors (the paper traces four).
	CPUs int
	// ProcsPerCPU is how many application processes run on each CPU.
	ProcsPerCPU int
	// Refs is the total number of references to emit.
	Refs int

	// InstrFrac is the fraction of references that are instruction
	// fetches (Table 3: roughly one half).
	InstrFrac float64
	// WriteFrac is the fraction of ordinary (non-lock) data references
	// that are writes.
	WriteFrac float64
	// SharedFrac is the fraction of ordinary data references that target
	// the shared heap rather than private data.
	SharedFrac float64
	// SharedBlocks is the number of 16-byte blocks in the shared heap.
	SharedBlocks int
	// SharedWriteFrac is the write fraction for shared-heap references.
	// Shared data in the paper's traces is read far more than written;
	// when zero, WriteFrac applies.
	SharedWriteFrac float64

	// PairedFrac is the fraction of ordinary data references that follow
	// a producer-consumer (migratory) pattern: each process writes its
	// own staging region and reads its neighbour's. Writes there
	// invalidate at most one other copy, the dominant case Figure 1
	// reports.
	PairedFrac float64
	// PairedBlocks is the size of each process's staging region.
	PairedBlocks int
	// PairedWriteFrac is the write fraction when a process touches its
	// own staging region.
	PairedWriteFrac float64

	// LockDataBlocks is the number of blocks in each lock's protected
	// region (the data a critical section manipulates).
	LockDataBlocks int
	// PrivateBlocks is the number of blocks in each process's private
	// region.
	PrivateBlocks int
	// HotFrac is the fraction of a pool that forms its hot working set;
	// HotBias is the probability a reference stays inside the hot set.
	HotFrac, HotBias float64

	// Locks is the number of spin locks.
	Locks int
	// LockKind selects the spin primitive: TestAndTestAndSet (the
	// default; waiters spin on reads and only write when the lock looks
	// free) or TestAndSet (every spin attempt is a write, the pathological
	// primitive Section 5.2's discussion warns about).
	LockKind LockKind
	// LockAttemptRate is the per-data-reference probability that a
	// process not holding a lock tries to enter a critical section.
	LockAttemptRate float64
	// CriticalLen is the number of data references executed while
	// holding a lock (the lock-protected data region is shared).
	CriticalLen int
	// CriticalWriteFrac is the write fraction inside critical sections.
	CriticalWriteFrac float64

	// BarrierInterval, when positive, is the expected number of ordinary
	// data references a process executes between joining global
	// barriers. A barrier is a counter the arrivals increment plus a
	// generation word the waiters spin on; the releasing write
	// invalidates (or updates) every waiter's copy at once. Zero
	// disables barriers (the presets' default — the paper's traces gate
	// with locks).
	BarrierInterval int

	// KernelFrac is the fraction of references issued in kernel mode
	// (Table 3: roughly 10%).
	KernelFrac float64
	// MigrationRate is the per-quantum probability that a process
	// migrates to another CPU (the paper observes few migrations).
	MigrationRate float64
	// Quantum is the number of references a process issues per
	// scheduling turn before the generator rotates to the next CPU.
	Quantum int
}

// LockKind is the synchronisation primitive processes spin with.
type LockKind uint8

const (
	// TestAndTestAndSet spins on ordinary reads of the lock word and
	// attempts the atomic set only when the lock is observed free. The
	// spin reads hit in the waiter's cache under multiple-copy schemes.
	TestAndTestAndSet LockKind = iota
	// TestAndSet retries the atomic set itself: every spin iteration is
	// a write that must gain exclusive access, invalidating the other
	// waiters' copies each time.
	TestAndSet
)

// Validate checks the configuration for nonsensical values.
func (c Config) Validate() error {
	switch {
	case c.CPUs <= 0 || c.CPUs > 256:
		return fmt.Errorf("tracegen: CPUs = %d out of range [1,256]", c.CPUs)
	case c.ProcsPerCPU <= 0:
		return fmt.Errorf("tracegen: ProcsPerCPU = %d must be positive", c.ProcsPerCPU)
	case c.Refs < 0:
		return fmt.Errorf("tracegen: Refs = %d must be non-negative", c.Refs)
	case c.SharedBlocks <= 0 || c.PrivateBlocks <= 0:
		return fmt.Errorf("tracegen: block pools must be positive")
	case c.Locks < 0:
		return fmt.Errorf("tracegen: Locks = %d must be non-negative", c.Locks)
	case c.Quantum <= 0:
		return fmt.Errorf("tracegen: Quantum = %d must be positive", c.Quantum)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"InstrFrac", c.InstrFrac}, {"WriteFrac", c.WriteFrac},
		{"SharedFrac", c.SharedFrac}, {"HotFrac", c.HotFrac},
		{"HotBias", c.HotBias}, {"LockAttemptRate", c.LockAttemptRate},
		{"CriticalWriteFrac", c.CriticalWriteFrac}, {"KernelFrac", c.KernelFrac},
		{"MigrationRate", c.MigrationRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("tracegen: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SharedWriteFrac", c.SharedWriteFrac},
		{"PairedFrac", c.PairedFrac},
		{"PairedWriteFrac", c.PairedWriteFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("tracegen: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if c.SharedFrac+c.PairedFrac > 1 {
		return fmt.Errorf("tracegen: SharedFrac+PairedFrac = %v exceeds 1", c.SharedFrac+c.PairedFrac)
	}
	if c.PairedFrac > 0 && c.PairedBlocks <= 0 {
		return fmt.Errorf("tracegen: PairedBlocks must be positive when PairedFrac > 0")
	}
	if c.Locks > 0 && c.CriticalLen <= 0 {
		return fmt.Errorf("tracegen: CriticalLen must be positive when Locks > 0")
	}
	if c.Locks > 0 && c.LockDataBlocks <= 0 {
		return fmt.Errorf("tracegen: LockDataBlocks must be positive when Locks > 0")
	}
	if c.LockKind > TestAndSet {
		return fmt.Errorf("tracegen: unknown LockKind %d", c.LockKind)
	}
	if c.BarrierInterval < 0 {
		return fmt.Errorf("tracegen: negative BarrierInterval %d", c.BarrierInterval)
	}
	return nil
}

// POPS returns a configuration modelled on the paper's POPS trace: a
// parallel OPS5 rule-based system with heavy lock spinning (about a third of
// reads are lock tests) and substantial read sharing.
func POPS(refs int) Config {
	return Config{
		Name: "POPS", Seed: 0x9005, CPUs: 4, ProcsPerCPU: 1, Refs: refs,
		InstrFrac: 0.50, WriteFrac: 0.26, SharedFrac: 0.22, SharedWriteFrac: 0.015,
		SharedBlocks: 1024, PrivateBlocks: 4096,
		PairedFrac: 0.03, PairedBlocks: 48, PairedWriteFrac: 0.45,
		HotFrac: 0.05, HotBias: 0.85,
		Locks: 1, LockAttemptRate: 0.010, CriticalLen: 60, CriticalWriteFrac: 0.30,
		LockDataBlocks: 4,
		KernelFrac:     0.10, MigrationRate: 0, Quantum: 3,
	}
}

// THOR returns a configuration modelled on the paper's THOR trace: a
// parallel logic simulator with lock spinning like POPS but a somewhat
// higher write fraction.
func THOR(refs int) Config {
	return Config{
		Name: "THOR", Seed: 0x7406, CPUs: 4, ProcsPerCPU: 1, Refs: refs,
		InstrFrac: 0.45, WriteFrac: 0.28, SharedFrac: 0.26, SharedWriteFrac: 0.02,
		SharedBlocks: 1536, PrivateBlocks: 4096,
		PairedFrac: 0.035, PairedBlocks: 64, PairedWriteFrac: 0.5,
		HotFrac: 0.06, HotBias: 0.82,
		Locks: 1, LockAttemptRate: 0.011, CriticalLen: 55, CriticalWriteFrac: 0.35,
		LockDataBlocks: 4,
		KernelFrac:     0.15, MigrationRate: 0, Quantum: 3,
	}
}

// PERO returns a configuration modelled on the paper's PERO trace: a
// parallel VLSI router whose high read/write ratio comes from the algorithm
// rather than from spinning, and whose fraction of references to shared
// blocks is much smaller than POPS's and THOR's.
func PERO(refs int) Config {
	return Config{
		Name: "PERO", Seed: 0x9e60, CPUs: 4, ProcsPerCPU: 1, Refs: refs,
		InstrFrac: 0.52, WriteFrac: 0.24, SharedFrac: 0.04, SharedWriteFrac: 0.01,
		SharedBlocks: 2048, PrivateBlocks: 8192,
		PairedFrac: 0.008, PairedBlocks: 32, PairedWriteFrac: 0.4,
		HotFrac: 0.04, HotBias: 0.88,
		Locks: 2, LockAttemptRate: 0.0012, CriticalLen: 8, CriticalWriteFrac: 0.30,
		LockDataBlocks: 4,
		KernelFrac:     0.08, MigrationRate: 0, Quantum: 3,
	}
}

// Presets returns the three paper workloads at the given length.
func Presets(refs int) []Config {
	return []Config{POPS(refs), THOR(refs), PERO(refs)}
}

// proc is the state of one synthetic process.
type proc struct {
	pid  uint16
	cpu  int
	code uint64 // next instruction address

	privateHot, privateCold []uint64
	sharedHot, sharedCold   []uint64

	wantLock int // lock being waited for, -1 if none
	// atBarrier marks a process waiting at the global barrier;
	// barrierGen is the generation it observed on arrival.
	atBarrier  bool
	barrierGen uint64
	holdLock   int // lock held, -1 if none
	critLeft   int // critical-section references remaining
}

// Generator produces the reference stream for a Config. It implements
// trace.Reader, generating lazily one scheduling turn at a time.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	procs []*proc
	// runq[cpu] lists indices into procs currently scheduled on cpu.
	runq    [][]int
	rrCPU   int   // next CPU to schedule
	rrSlot  []int // per-CPU round-robin position
	lockPos []uint64
	holder  []int // lock → procs index of holder, -1 if free

	// Global barrier: arrival counter and generation word (one block
	// each), the current generation, and how many have arrived.
	barrierCount uint64
	barrierGen   uint64
	arrived      int

	emitted int
	buf     []trace.Ref
	bufPos  int
}

// New returns a Generator for cfg, or an error if cfg is invalid.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		runq:   make([][]int, cfg.CPUs),
		rrSlot: make([]int, cfg.CPUs),
	}
	// Partition each pool into a hot working set and a cold remainder.
	sharedAddrs := poolAddrs(regionShared, cfg.SharedBlocks)
	g.rng.Shuffle(len(sharedAddrs), func(i, j int) {
		sharedAddrs[i], sharedAddrs[j] = sharedAddrs[j], sharedAddrs[i]
	})
	hotShared := splitIdx(len(sharedAddrs), cfg.HotFrac)
	pid := uint16(1)
	for cpu := 0; cpu < cfg.CPUs; cpu++ {
		for s := 0; s < cfg.ProcsPerCPU; s++ {
			base := regionPrivate + uint64(pid)*perProcStride
			priv := poolAddrs(base, cfg.PrivateBlocks)
			hotPriv := splitIdx(len(priv), cfg.HotFrac)
			p := &proc{
				pid:         pid,
				cpu:         cpu,
				code:        regionCode + uint64(pid)*perProcStride,
				privateHot:  priv[:hotPriv],
				privateCold: priv[hotPriv:],
				// All processes share one hot set so that read sharing
				// actually occurs; cold shared references are the tail.
				sharedHot:  sharedAddrs[:hotShared],
				sharedCold: sharedAddrs[hotShared:],
				wantLock:   -1,
				holdLock:   -1,
			}
			g.procs = append(g.procs, p)
			g.runq[cpu] = append(g.runq[cpu], len(g.procs)-1)
			pid++
		}
	}
	g.lockPos = make([]uint64, cfg.Locks)
	g.holder = make([]int, cfg.Locks)
	for i := range g.lockPos {
		g.lockPos[i] = regionLocks + uint64(i)*trace.DefaultBlockBytes
		g.holder[i] = -1
	}
	return g, nil
}

func poolAddrs(base uint64, blocks int) []uint64 {
	out := make([]uint64, blocks)
	for i := range out {
		out[i] = base + uint64(i)*trace.DefaultBlockBytes
	}
	return out
}

func splitIdx(n int, frac float64) int {
	h := int(float64(n) * frac)
	if h < 1 {
		h = 1
	}
	if h > n {
		h = n
	}
	return h
}

// Next implements trace.Reader.
func (g *Generator) Next() (trace.Ref, error) {
	if g.emitted >= g.cfg.Refs {
		return trace.Ref{}, errEOF
	}
	for g.bufPos >= len(g.buf) {
		g.fillTurn()
	}
	r := g.buf[g.bufPos]
	g.bufPos++
	g.emitted++
	return r, nil
}

// fillTurn runs one scheduling turn: the next CPU's current process issues
// up to Quantum references into the buffer.
func (g *Generator) fillTurn() {
	g.buf = g.buf[:0]
	g.bufPos = 0
	// Find a CPU with runnable processes (all CPUs have some unless
	// migration empties one; then skip it).
	for tries := 0; tries < g.cfg.CPUs; tries++ {
		cpu := g.rrCPU
		g.rrCPU = (g.rrCPU + 1) % g.cfg.CPUs
		q := g.runq[cpu]
		if len(q) == 0 {
			continue
		}
		slot := g.rrSlot[cpu] % len(q)
		g.rrSlot[cpu] = (slot + 1) % len(q)
		pi := q[slot]
		g.runProc(pi)
		g.maybeMigrate(pi)
		return
	}
	// All run queues empty cannot happen (processes never exit), but fill
	// with idle instruction fetches for robustness.
	g.buf = append(g.buf, trace.Ref{Kind: trace.Instr, Addr: regionKernel})
}

// maybeMigrate moves process pi to a random other CPU with probability
// MigrationRate.
func (g *Generator) maybeMigrate(pi int) {
	if g.cfg.CPUs < 2 || g.cfg.MigrationRate <= 0 {
		return
	}
	if g.rng.Float64() >= g.cfg.MigrationRate {
		return
	}
	p := g.procs[pi]
	from := p.cpu
	to := g.rng.Intn(g.cfg.CPUs - 1)
	if to >= from {
		to++
	}
	q := g.runq[from]
	for i, idx := range q {
		if idx == pi {
			g.runq[from] = append(q[:i], q[i+1:]...)
			break
		}
	}
	g.runq[to] = append(g.runq[to], pi)
	p.cpu = to
}

// runProc emits one quantum of references for process pi.
func (g *Generator) runProc(pi int) {
	p := g.procs[pi]
	for n := 0; n < g.cfg.Quantum; n++ {
		kernel := g.rng.Float64() < g.cfg.KernelFrac
		// Waiting at the global barrier: spin on the generation word
		// until the last arrival bumps it.
		if p.atBarrier {
			if g.barrierGen != p.barrierGen {
				// Released: observe the new generation and move on.
				g.emit(p, trace.Ref{Kind: trace.Read, Addr: regionBarrier + trace.DefaultBlockBytes, Kernel: kernel})
				p.atBarrier = false
				continue
			}
			if g.rng.Float64() < g.cfg.InstrFrac {
				g.emit(p, trace.Ref{Kind: trace.Instr, Addr: p.code, Kernel: kernel})
			} else {
				g.emit(p, trace.Ref{Kind: trace.Read, Addr: regionBarrier + trace.DefaultBlockBytes, Lock: true, Kernel: kernel})
			}
			continue
		}
		// Spinning on a lock: emit the test read of the
		// test-and-test-and-set. The whole quantum is consumed by
		// spinning if the lock stays held, which is exactly the
		// behaviour that penalises Dir1NB in Section 5.2.
		if p.wantLock >= 0 {
			if g.holder[p.wantLock] == -1 {
				// The lock is free. Test-and-test-and-set observes that
				// with one more test read before the set; plain
				// test-and-set just succeeds on its next attempt.
				if g.cfg.LockKind == TestAndTestAndSet {
					g.emit(p, trace.Ref{Kind: trace.Read, Addr: g.lockPos[p.wantLock], Lock: true, Kernel: kernel})
					n++ // the test consumed a slot too
				}
				g.emit(p, trace.Ref{Kind: trace.Write, Addr: g.lockPos[p.wantLock], Kernel: kernel})
				g.holder[p.wantLock] = pi
				p.holdLock = p.wantLock
				p.wantLock = -1
				p.critLeft = g.cfg.CriticalLen
				continue
			}
			// The spin loop's own code: a test-and-branch sequence, so
			// instruction fetches interleave with the lock probes at
			// roughly the workload's instruction fraction. Under
			// test-and-test-and-set the probe is a read; under plain
			// test-and-set every probe is a (failing) atomic write.
			if g.rng.Float64() < g.cfg.InstrFrac {
				g.emit(p, trace.Ref{Kind: trace.Instr, Addr: p.code, Kernel: kernel})
			} else if g.cfg.LockKind == TestAndSet {
				g.emit(p, trace.Ref{Kind: trace.Write, Addr: g.lockPos[p.wantLock], Lock: true, Kernel: kernel})
			} else {
				g.emit(p, trace.Ref{Kind: trace.Read, Addr: g.lockPos[p.wantLock], Lock: true, Kernel: kernel})
			}
			continue
		}
		// Instruction fetch?
		if g.rng.Float64() < g.cfg.InstrFrac {
			g.emit(p, trace.Ref{Kind: trace.Instr, Addr: p.code, Kernel: kernel})
			p.code += 4
			if g.rng.Float64() < 0.05 { // occasional branch
				p.code = regionCode + uint64(p.pid)*perProcStride + uint64(g.rng.Intn(1<<16))*4
			}
			continue
		}
		// Inside a critical section: references to the lock's shared
		// data region, then the releasing write.
		if p.holdLock >= 0 {
			if p.critLeft > 0 {
				p.critLeft--
				addr := regionLockDat + uint64(p.holdLock)*perLockStride +
					uint64(g.rng.Intn(g.cfg.LockDataBlocks))*trace.DefaultBlockBytes
				kind := trace.Read
				if g.rng.Float64() < g.cfg.CriticalWriteFrac {
					kind = trace.Write
				}
				g.emit(p, trace.Ref{Kind: kind, Addr: addr, Kernel: kernel})
				continue
			}
			g.emit(p, trace.Ref{Kind: trace.Write, Addr: g.lockPos[p.holdLock], Kernel: kernel})
			g.holder[p.holdLock] = -1
			p.holdLock = -1
			continue
		}
		// Join the global barrier?
		if g.cfg.BarrierInterval > 0 && g.rng.Float64() < 1/float64(g.cfg.BarrierInterval) {
			// Arrive: atomically bump the shared counter (read + write).
			g.emit(p, trace.Ref{Kind: trace.Read, Addr: regionBarrier, Kernel: kernel})
			g.emit(p, trace.Ref{Kind: trace.Write, Addr: regionBarrier, Kernel: kernel})
			g.arrived++
			n++ // the counter update consumed a slot too
			if g.arrived == len(g.procs) {
				// Last arrival releases everyone: reset the counter
				// and publish the next generation.
				g.arrived = 0
				g.barrierGen++
				g.emit(p, trace.Ref{Kind: trace.Write, Addr: regionBarrier + trace.DefaultBlockBytes, Kernel: kernel})
			} else {
				p.atBarrier = true
				p.barrierGen = g.barrierGen
			}
			continue
		}
		// Try to enter a critical section?
		if g.cfg.Locks > 0 && g.rng.Float64() < g.cfg.LockAttemptRate {
			p.wantLock = g.rng.Intn(g.cfg.Locks)
			// First test happens on the next iteration.
			n--
			continue
		}
		// Ordinary data reference: read-mostly shared heap,
		// producer-consumer staging regions, or private data.
		var addr uint64
		kind := trace.Read
		switch r := g.rng.Float64(); {
		case r < g.cfg.SharedFrac:
			addr = g.pick(p.sharedHot, p.sharedCold)
			wf := g.cfg.SharedWriteFrac
			if wf <= 0 {
				wf = g.cfg.WriteFrac
			}
			if g.rng.Float64() < wf {
				kind = trace.Write
			}
		case r < g.cfg.SharedFrac+g.cfg.PairedFrac:
			// Producer-consumer: write own staging region, read the
			// neighbouring process's. Such writes invalidate at most
			// one other copy — Figure 1's dominant case.
			if g.rng.Float64() < 0.5 {
				addr = g.pairedAddr(int(p.pid))
				if g.rng.Float64() < g.cfg.PairedWriteFrac {
					kind = trace.Write
				}
			} else {
				addr = g.pairedAddr(g.neighbour(int(p.pid)))
			}
		default:
			addr = g.pick(p.privateHot, p.privateCold)
			if g.rng.Float64() < g.cfg.WriteFrac {
				kind = trace.Write
			}
		}
		g.emit(p, trace.Ref{Kind: kind, Addr: addr, Kernel: kernel})
	}
}

// pairedAddr picks a block in process pid's staging region.
func (g *Generator) pairedAddr(pid int) uint64 {
	return regionPaired + uint64(pid)*perLockStride +
		uint64(g.rng.Intn(g.cfg.PairedBlocks))*trace.DefaultBlockBytes
}

// neighbour returns the producer whose staging region pid consumes (PIDs
// are assigned 1..n).
func (g *Generator) neighbour(pid int) int {
	n := g.cfg.CPUs * g.cfg.ProcsPerCPU
	return (pid % n) + 1
}

// pick selects an address with working-set locality.
func (g *Generator) pick(hot, cold []uint64) uint64 {
	if len(cold) == 0 || g.rng.Float64() < g.cfg.HotBias {
		return hot[g.rng.Intn(len(hot))]
	}
	return cold[g.rng.Intn(len(cold))]
}

func (g *Generator) emit(p *proc, r trace.Ref) {
	r.CPU = uint8(p.cpu)
	r.PID = p.pid
	g.buf = append(g.buf, r)
}

// Generate produces the full trace for cfg in memory.
func Generate(cfg Config) (trace.Slice, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(g)
}
