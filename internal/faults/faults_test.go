package faults

import (
	"errors"
	"io"
	"strings"
	"testing"

	"dirsim/internal/trace"
)

// input builds a small deterministic trace.
func input(n int) trace.Slice {
	refs := make(trace.Slice, n)
	for i := range refs {
		refs[i] = trace.Ref{CPU: uint8(i % 4), PID: uint16(i % 7), Kind: trace.Read, Addr: uint64(i * 16)}
	}
	return refs
}

// drain reads everything, returning refs and the terminal error.
func drain(rd trace.Reader) (trace.Slice, error) {
	var out trace.Slice
	for {
		ref, err := rd.Next()
		if err != nil {
			return out, err
		}
		out = append(out, ref)
		if len(out) > 1<<20 {
			return out, errors.New("reader did not terminate")
		}
	}
}

func TestWrapInertConfigReturnsReader(t *testing.T) {
	rd := trace.NewSliceReader(input(3))
	if got := Wrap(rd, Config{Seed: 7}); got != trace.Reader(rd) {
		t.Fatal("inert config should return the reader unchanged")
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	cfg := Config{Seed: 42, CorruptProb: 0.2, DuplicateProb: 0.1, ReorderProb: 0.1}
	a, erra := drain(Wrap(trace.NewSliceReader(input(500)), cfg))
	b, errb := drain(Wrap(trace.NewSliceReader(input(500)), cfg))
	if erra != io.EOF || errb != io.EOF {
		t.Fatalf("terminal errors: %v, %v", erra, errb)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, _ := drain(Wrap(trace.NewSliceReader(input(500)), Config{Seed: 43, CorruptProb: 0.2}))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical faulted streams")
	}
}

func TestTruncate(t *testing.T) {
	got, err := drain(Wrap(trace.NewSliceReader(input(100)), Config{TruncateAfter: 40}))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("terminal error %v, want ErrTruncated", err)
	}
	if len(got) != 40 {
		t.Fatalf("delivered %d refs, want 40", len(got))
	}
}

func TestCorruptAlwaysPerturbsButPreservesLength(t *testing.T) {
	in := input(200)
	got, err := drain(Wrap(trace.NewSliceReader(in), Config{Seed: 1, CorruptProb: 1}))
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("corruption changed stream length: %d vs %d", len(got), len(in))
	}
	changed := 0
	for i := range got {
		if got[i] != in[i] {
			changed++
		}
	}
	if changed != len(in) {
		t.Fatalf("CorruptProb=1 changed %d of %d refs", changed, len(in))
	}
}

func TestDuplicateDoublesStream(t *testing.T) {
	got, err := drain(Wrap(trace.NewSliceReader(input(50)), Config{Seed: 1, DuplicateProb: 1}))
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d refs, want 100", len(got))
	}
	for i := 0; i < len(got); i += 2 {
		if got[i] != got[i+1] {
			t.Fatalf("refs %d and %d should be duplicates: %+v vs %+v", i, i+1, got[i], got[i+1])
		}
	}
}

func TestReorderPreservesMultiset(t *testing.T) {
	in := input(101)
	got, err := drain(Wrap(trace.NewSliceReader(in), Config{Seed: 9, ReorderProb: 0.5}))
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("reorder changed stream length: %d vs %d", len(got), len(in))
	}
	count := map[trace.Ref]int{}
	for _, r := range in {
		count[r]++
	}
	for _, r := range got {
		count[r]--
	}
	for _, c := range count {
		if c != 0 {
			t.Fatal("reorder lost or invented references")
		}
	}
	inOrder := true
	for i := range got {
		if got[i] != in[i] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("ReorderProb=0.5 left the stream untouched")
	}
}

func TestStallHookFires(t *testing.T) {
	stalls := 0
	cfg := Config{StallEvery: 10, Stall: func() { stalls++ }}
	if _, err := drain(Wrap(trace.NewSliceReader(input(35)), cfg)); err != io.EOF {
		t.Fatal(err)
	}
	if stalls != 3 {
		t.Fatalf("stall hook fired %d times, want 3 (refs 10, 20, 30)", stalls)
	}
}

func TestPanicAfter(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic injected")
		}
		if !strings.Contains(v.(string), "injected panic") {
			t.Fatalf("unexpected panic value %v", v)
		}
	}()
	drain(Wrap(trace.NewSliceReader(input(100)), Config{PanicAfter: 10}))
}
