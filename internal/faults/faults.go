// Package faults injects deterministic, seedable faults into trace
// streams for robustness testing: bit-flip corruption, truncation,
// mid-stream stalls, duplicated and reordered references, and injected
// panics. Wrapping the same reader with the same Config always produces
// the same faulted stream, so a failure found under injection reproduces
// exactly.
//
// The wrappers model imperfect *inputs*; transient *infrastructure*
// failures (the kind a retry policy should absorb) are injected one layer
// up, through internal/runner's Options.TransientFault hook.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"dirsim/internal/trace"
)

// ErrTruncated is the error a truncating reader returns in place of a
// clean end-of-trace. It is deliberately not io.EOF and not transient: a
// truncated trace stays truncated on retry, so the job must fail and be
// reported rather than spin.
var ErrTruncated = errors.New("faults: trace truncated")

// Config selects which faults to inject. The zero value injects nothing
// (Wrap returns the reader unchanged). All randomness comes from Seed:
// the same Config over the same input yields the same faulted stream.
type Config struct {
	// Seed drives every probabilistic knob below.
	Seed int64
	// CorruptProb is the per-reference probability of flipping one
	// random bit of the reference — usually an address bit (silently
	// perturbing sharing patterns), occasionally a CPU bit (which the
	// simulator detects as a cache index out of range). Models bit rot
	// in stored traces.
	CorruptProb float64
	// TruncateAfter, when positive, ends the stream with ErrTruncated
	// after that many references — a partially written trace file.
	TruncateAfter int
	// DuplicateProb is the per-reference probability the reference is
	// delivered twice — replayed batches after an ingest retry.
	DuplicateProb float64
	// ReorderProb is the per-reference probability the reference is
	// swapped with its successor — out-of-order delivery.
	ReorderProb float64
	// StallEvery, when positive together with Stall, invokes the Stall
	// hook before every StallEvery-th reference — a stream that hangs
	// mid-flight. The hook is injected (e.g. a bounded time.Sleep from
	// the cmd layer, or a channel wait in tests) so this package stays
	// clock-free.
	StallEvery int
	// Stall is the hook StallEvery invokes; nil means no stalls.
	Stall func()
	// PanicAfter, when positive, panics after that many references —
	// the blunt failure mode the runner's per-job recovery must contain.
	PanicAfter int
}

// enabled reports whether cfg injects any fault at all.
func (c Config) enabled() bool {
	return c.CorruptProb > 0 || c.TruncateAfter > 0 || c.DuplicateProb > 0 ||
		c.ReorderProb > 0 || (c.StallEvery > 0 && c.Stall != nil) || c.PanicAfter > 0
}

// Wrap returns rd with cfg's faults injected, or rd itself when the
// config is inert.
func Wrap(rd trace.Reader, cfg Config) trace.Reader {
	if !cfg.enabled() {
		return rd
	}
	return &reader{rd: rd, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// reader applies Config to an underlying stream.
type reader struct {
	rd   trace.Reader
	cfg  Config
	rng  *rand.Rand
	n    int         // references delivered so far
	pend []trace.Ref // queued duplicates/reordered refs, delivered first
}

// Next implements trace.Reader.
func (r *reader) Next() (trace.Ref, error) {
	if r.cfg.PanicAfter > 0 && r.n >= r.cfg.PanicAfter {
		panic(fmt.Sprintf("faults: injected panic after %d refs", r.n))
	}
	if r.cfg.TruncateAfter > 0 && r.n >= r.cfg.TruncateAfter {
		return trace.Ref{}, fmt.Errorf("faults: after %d refs: %w", r.n, ErrTruncated)
	}
	if r.cfg.StallEvery > 0 && r.cfg.Stall != nil && r.n > 0 && r.n%r.cfg.StallEvery == 0 {
		r.cfg.Stall()
	}
	ref, err := r.next()
	if err != nil {
		return trace.Ref{}, err
	}
	r.n++
	return ref, nil
}

// next pops the pending queue or pulls (and possibly corrupts,
// duplicates or reorders) the next underlying reference.
func (r *reader) next() (trace.Ref, error) {
	if len(r.pend) > 0 {
		ref := r.pend[0]
		r.pend = r.pend[1:]
		return ref, nil
	}
	ref, err := r.rd.Next()
	if err != nil {
		return trace.Ref{}, err
	}
	if r.cfg.CorruptProb > 0 && r.rng.Float64() < r.cfg.CorruptProb {
		ref = r.corrupt(ref)
	}
	if r.cfg.DuplicateProb > 0 && r.rng.Float64() < r.cfg.DuplicateProb {
		r.pend = append(r.pend, ref)
	}
	if r.cfg.ReorderProb > 0 && r.rng.Float64() < r.cfg.ReorderProb {
		// Swap with the successor: deliver it now, queue ref behind it.
		succ, err := r.rd.Next()
		if err == nil {
			r.pend = append(r.pend, ref)
			return succ, nil
		}
		// Stream ended at the swap point; deliver ref as-is and let the
		// next call surface the end.
	}
	return ref, nil
}

// corrupt flips one random bit: 7 times in 8 an address bit (a silent
// data fault), 1 in 8 a CPU bit (a structural fault the simulator's
// cache-range check catches).
func (r *reader) corrupt(ref trace.Ref) trace.Ref {
	if r.rng.Intn(8) == 0 {
		ref.CPU ^= 1 << uint(r.rng.Intn(8))
	} else {
		ref.Addr ^= 1 << uint(r.rng.Intn(48))
	}
	return ref
}
