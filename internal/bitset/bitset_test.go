package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Contains(3) {
		t.Fatal("zero value should contain nothing")
	}
	s.Add(3)
	if !s.Contains(3) {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(8)
	for _, i := range []int{0, 7, 63, 64, 65, 200} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Fatal("Contains(63) after Remove")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// Removing an absent or out-of-range element is a no-op.
	s.Remove(63)
	s.Remove(100000)
	s.Remove(-1)
	if got := s.Count(); got != 5 {
		t.Fatalf("Count after no-op removes = %d, want 5", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestAddIdempotent(t *testing.T) {
	s := New(4)
	s.Add(2)
	s.Add(2)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	s := New(128)
	if _, ok := s.Min(); ok {
		t.Fatal("Min on empty set returned ok")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max on empty set returned ok")
	}
	for _, i := range []int{90, 5, 64} {
		s.Add(i)
	}
	if min, ok := s.Min(); !ok || min != 5 {
		t.Fatalf("Min = %d,%v want 5,true", min, ok)
	}
	if max, ok := s.Max(); !ok || max != 90 {
		t.Fatalf("Max = %d,%v want 90,true", max, ok)
	}
}

func TestSole(t *testing.T) {
	s := New(128)
	if _, ok := s.Sole(); ok {
		t.Fatal("Sole on empty returned ok")
	}
	s.Add(77)
	if e, ok := s.Sole(); !ok || e != 77 {
		t.Fatalf("Sole = %d,%v want 77,true", e, ok)
	}
	s.Add(3)
	if _, ok := s.Sole(); ok {
		t.Fatal("Sole on two-element set returned ok")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{1, 64, 65, 255}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	var visited []int
	s.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if !reflect.DeepEqual(visited, []int{1, 64}) {
		t.Fatalf("early stop visited %v", visited)
	}
}

func TestContainsOther(t *testing.T) {
	s := New(8)
	s.Add(3)
	if s.ContainsOther(3) {
		t.Fatal("ContainsOther(3) on {3} should be false")
	}
	if !s.ContainsOther(4) {
		t.Fatal("ContainsOther(4) on {3} should be true")
	}
	s.Add(70)
	if !s.ContainsOther(3) {
		t.Fatal("ContainsOther(3) on {3,70} should be true")
	}
}

func TestCountExcluding(t *testing.T) {
	s := New(8)
	s.Add(1)
	s.Add(2)
	if got := s.CountExcluding(1); got != 1 {
		t.Fatalf("CountExcluding(1) = %d, want 1", got)
	}
	if got := s.CountExcluding(5); got != 2 {
		t.Fatalf("CountExcluding(5) = %d, want 2", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(8)
	s.Add(1)
	c := s.Clone()
	c.Add(2)
	if s.Contains(2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Contains(1) {
		t.Fatal("clone lost element")
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a := New(1)
	b := New(1000)
	a.Add(0)
	b.Add(0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with same elements but different capacity not Equal")
	}
	b.Add(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("different sets reported Equal")
	}
}

func TestClear(t *testing.T) {
	s := New(8)
	s.Add(1)
	s.Add(100)
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements behind")
	}
}

func TestString(t *testing.T) {
	s := New(8)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(2)
	s.Add(5)
	if got := s.String(); got != "{2, 5}" {
		t.Fatalf("String = %q, want {2, 5}", got)
	}
}

// Property: a Set behaves exactly like a map[int]bool reference model under
// a random operation sequence.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(0)
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op % 512)
			switch (op / 512) % 3 {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		var want []int
		for k := range model {
			want = append(want, k)
		}
		sort.Ints(want)
		got := s.Elems()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the length of Elems, and Min/Max bound all elements.
func TestQuickCountMinMaxConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(0)
		for _, r := range raw {
			s.Add(int(r % 1024))
		}
		elems := s.Elems()
		if len(elems) != s.Count() {
			return false
		}
		if len(elems) == 0 {
			_, okMin := s.Min()
			_, okMax := s.Max()
			return !okMin && !okMax
		}
		min, _ := s.Min()
		max, _ := s.Max()
		return min == elems[0] && max == elems[len(elems)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(64)
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := idx[i%len(idx)]
		s.Add(j)
		if !s.Contains(j) {
			b.Fatal("missing")
		}
	}
}
