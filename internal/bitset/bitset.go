// Package bitset provides a dense, growable bit set used throughout the
// simulator to track which caches hold a copy of a memory block.
//
// The set is optimised for the common case of small multiprocessors (n ≤ 64
// caches fit in a single word) but supports arbitrary sizes. The zero value
// is an empty set ready for use.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over non-negative integers. The zero value is empty
// and ready to use. Set is not safe for concurrent mutation.
type Set struct {
	words []uint64
}

// New returns a set with capacity preallocated for indices in [0, n).
// Indices beyond n may still be added; the set grows as needed.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can hold bit i.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set. Negative indices panic: they indicate a
// programming error (cache identifiers are never negative).
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Min returns the smallest element and true, or (0, false) if empty.
func (s *Set) Min() (int, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Max returns the largest element and true, or (0, false) if empty.
func (s *Set) Max() (int, bool) {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// Sole returns the single element of a one-element set. It returns
// (elem, true) only when Count() == 1.
func (s *Set) Sole() (int, bool) {
	found := -1
	for wi, w := range s.words {
		switch bits.OnesCount64(w) {
		case 0:
		case 1:
			if found >= 0 {
				return 0, false
			}
			found = wi*wordBits + bits.TrailingZeros64(w)
		default:
			return 0, false
		}
	}
	if found < 0 {
		return 0, false
	}
	return found, true
}

// Next returns the smallest element ≥ i, or -1 when no such element
// exists. It enables allocation-free iteration without the closure a
// ForEach call costs — the shape required on engine hot paths:
//
//	for h := s.Next(0); h >= 0; h = s.Next(h + 1) { ... }
//
// Removing the current element (or any smaller one) during such a loop is
// safe: Next re-reads the words on every call and only looks forward.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(s.words) {
		return -1
	}
	if w := s.words[wi] >> uint(i%wordBits); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early. The closure argument allocates when it
// captures; on allocation-free paths use Next instead.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the elements in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// CountExcluding returns the number of elements other than i.
func (s *Set) CountExcluding(i int) int {
	n := s.Count()
	if s.Contains(i) {
		n--
	}
	return n
}

// ContainsOther reports whether the set holds any element other than i.
func (s *Set) ContainsOther(i int) bool {
	for wi, w := range s.words {
		if i >= wi*wordBits && i < (wi+1)*wordBits {
			w &^= 1 << uint(i%wordBits)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Equal reports whether the two sets contain the same elements.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// String renders the set as "{0, 3, 17}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
