// Package bitset provides a dense, growable bit set used throughout the
// simulator to track which caches hold a copy of a memory block.
//
// The set is optimised for the common case of small multiprocessors: the
// first 64 bits live inline in the struct, so for n ≤ 64 caches a Set in a
// struct-of-arrays row (sharers []Set) is pointer-free — membership tests
// touch only the row's cache line, and building one allocates nothing.
// Larger sets spill bits 64+ to a heap slice. The zero value is an empty
// set ready for use.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over non-negative integers. The zero value is empty
// and ready to use. Set is not safe for concurrent mutation.
type Set struct {
	// w0 holds bits 0..63 inline.
	w0 uint64
	// hi holds bits 64+ (hi[k] covers bits 64(k+1)..64(k+2)-1); nil until
	// an element ≥ 64 is added.
	hi []uint64
}

// New returns a set with capacity preallocated for indices in [0, n).
// Indices beyond n may still be added; the set grows as needed.
func New(n int) *Set {
	s := &Set{}
	if n > wordBits {
		s.hi = make([]uint64, (n-1)/wordBits)
	}
	return s
}

// grow ensures the set can hold bit i (callers guarantee i ≥ wordBits).
func (s *Set) grow(i int) {
	need := i / wordBits // hi words needed: bit i lives in hi[i/64 - 1]
	if need <= len(s.hi) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.hi)
	s.hi = w
}

// Add inserts i into the set. Negative indices panic: they indicate a
// programming error (cache identifiers are never negative).
func (s *Set) Add(i int) {
	if uint(i) < wordBits {
		s.w0 |= 1 << uint(i)
		return
	}
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	s.grow(i)
	s.hi[i/wordBits-1] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if uint(i) < wordBits {
		s.w0 &^= 1 << uint(i)
		return
	}
	if i < 0 || i/wordBits-1 >= len(s.hi) {
		return
	}
	s.hi[i/wordBits-1] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if uint(i) < wordBits {
		return s.w0&(1<<uint(i)) != 0
	}
	if i < 0 || i/wordBits-1 >= len(s.hi) {
		return false
	}
	return s.hi[i/wordBits-1]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := bits.OnesCount64(s.w0)
	for _, w := range s.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	if s.w0 != 0 {
		return false
	}
	for _, w := range s.hi {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	s.w0 = 0
	for i := range s.hi {
		s.hi[i] = 0
	}
}

// Min returns the smallest element and true, or (0, false) if empty.
func (s *Set) Min() (int, bool) {
	if s.w0 != 0 {
		return bits.TrailingZeros64(s.w0), true
	}
	for wi, w := range s.hi {
		if w != 0 {
			return (wi+1)*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// Max returns the largest element and true, or (0, false) if empty.
func (s *Set) Max() (int, bool) {
	for wi := len(s.hi) - 1; wi >= 0; wi-- {
		if w := s.hi[wi]; w != 0 {
			return (wi+2)*wordBits - 1 - bits.LeadingZeros64(w), true
		}
	}
	if s.w0 != 0 {
		return wordBits - 1 - bits.LeadingZeros64(s.w0), true
	}
	return 0, false
}

// Sole returns the single element of a one-element set. It returns
// (elem, true) only when Count() == 1.
func (s *Set) Sole() (int, bool) {
	found := -1
	if s.w0 != 0 {
		if bits.OnesCount64(s.w0) > 1 {
			return 0, false
		}
		found = bits.TrailingZeros64(s.w0)
	}
	for wi, w := range s.hi {
		switch bits.OnesCount64(w) {
		case 0:
		case 1:
			if found >= 0 {
				return 0, false
			}
			found = (wi+1)*wordBits + bits.TrailingZeros64(w)
		default:
			return 0, false
		}
	}
	if found < 0 {
		return 0, false
	}
	return found, true
}

// Next returns the smallest element ≥ i, or -1 when no such element
// exists. It enables allocation-free iteration without the closure a
// ForEach call costs — the shape required on engine hot paths:
//
//	for h := s.Next(0); h >= 0; h = s.Next(h + 1) { ... }
//
// Removing the current element (or any smaller one) during such a loop is
// safe: Next re-reads the words on every call and only looks forward.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i < wordBits {
		if w := s.w0 >> uint(i); w != 0 {
			return i + bits.TrailingZeros64(w)
		}
		i = wordBits
	}
	wi := i/wordBits - 1
	if wi >= len(s.hi) {
		return -1
	}
	if w := s.hi[wi] >> uint(i%wordBits); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.hi); wi++ {
		if w := s.hi[wi]; w != 0 {
			return (wi+1)*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early. The closure argument allocates when it
// captures; on allocation-free paths use Next instead.
func (s *Set) ForEach(fn func(i int) bool) {
	for w := s.w0; w != 0; {
		b := bits.TrailingZeros64(w)
		if !fn(b) {
			return
		}
		w &^= 1 << uint(b)
	}
	for wi, w := range s.hi {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn((wi+1)*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the elements in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// CountExcluding returns the number of elements other than i.
func (s *Set) CountExcluding(i int) int {
	n := s.Count()
	if s.Contains(i) {
		n--
	}
	return n
}

// ContainsOther reports whether the set holds any element other than i.
func (s *Set) ContainsOther(i int) bool {
	w0 := s.w0
	if uint(i) < wordBits {
		w0 &^= 1 << uint(i)
	}
	if w0 != 0 {
		return true
	}
	for wi, w := range s.hi {
		if i >= (wi+1)*wordBits && i < (wi+2)*wordBits {
			w &^= 1 << uint(i%wordBits)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{w0: s.w0}
	if len(s.hi) > 0 {
		c.hi = make([]uint64, len(s.hi))
		copy(c.hi, s.hi)
	}
	return c
}

// Equal reports whether the two sets contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.w0 != t.w0 {
		return false
	}
	long, short := s.hi, t.hi
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// String renders the set as "{0, 3, 17}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
