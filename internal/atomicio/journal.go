package atomicio

import (
	"bytes"
	"fmt"
	"os"
)

// Journal is an append-only, crash-safe record log: the durability
// primitive behind the daemon's persistent job store. Where File gives
// whole-artifact atomicity (temp + rename), Journal gives per-record
// durability — each Append writes one newline-terminated record and
// fsyncs before returning, so an acknowledged record survives SIGKILL.
//
// The crash discipline is the mirror image of File's: a crash mid-append
// can leave at most one torn record at the tail, and ReadJournal
// discards exactly that — an unterminated final line. Everything before
// it was fsynced by an earlier Append and is intact. Records must not
// contain newlines; the caller's encoding (NDJSON in practice) owns
// that invariant.
type Journal struct {
	f    *os.File
	path string
}

// OpenJournal opens (creating if absent) the journal at path for
// appending. The parent directory must exist.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atomicio: journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably writes one record: the bytes, a terminating newline,
// then fsync. It returns only once the record would survive a crash.
// rec must not contain a newline — that would split it into two records
// on replay — and empty records are rejected for the same reason.
func (j *Journal) Append(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("atomicio: journal %s: empty record", j.path)
	}
	if bytes.IndexByte(rec, '\n') >= 0 {
		return fmt.Errorf("atomicio: journal %s: record contains newline", j.path)
	}
	buf := make([]byte, 0, len(rec)+1)
	buf = append(buf, rec...)
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("atomicio: journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("atomicio: journal %s: sync: %w", j.path, err)
	}
	return nil
}

// Close closes the underlying file. Appends after Close fail.
func (j *Journal) Close() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("atomicio: journal %s: %w", j.path, err)
	}
	return nil
}

// ReadJournal returns the journal's complete records in append order. A
// missing file is an empty journal. An unterminated final line — the
// only damage a crash mid-Append can cause — is silently discarded;
// any record is returned exactly as it was passed to Append.
func ReadJournal(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("atomicio: journal %s: %w", path, err)
	}
	var recs [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break // torn tail: the crash-interrupted append, dropped
		}
		if i > 0 {
			rec := make([]byte, i)
			copy(rec, data[:i])
			recs = append(recs, rec)
		}
		data = data[i+1:]
	}
	return recs, nil
}

// RewriteJournal atomically replaces the journal at path with exactly
// recs (compaction: drop records made obsolete by later ones). It uses
// the package's temp+fsync+rename discipline, so a crash mid-compaction
// leaves the previous journal intact.
func RewriteJournal(path string, recs [][]byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if len(rec) == 0 || bytes.IndexByte(rec, '\n') >= 0 {
			f.Abort()
			return fmt.Errorf("atomicio: journal %s: bad record in rewrite", path)
		}
		if _, err := f.Write(rec); err != nil {
			f.Abort()
			return fmt.Errorf("atomicio: journal %s: %w", path, err)
		}
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Abort()
			return fmt.Errorf("atomicio: journal %s: %w", path, err)
		}
	}
	return f.Commit()
}
