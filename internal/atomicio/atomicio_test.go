package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommitReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("new ")); err != nil {
		t.Fatal(err)
	}
	// Until Commit, the final path still holds the old artifact.
	if got, _ := os.ReadFile(path); string(got) != "old contents" {
		t.Fatalf("final path changed before commit: %q", got)
	}
	if _, err := f.Write([]byte("contents")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("got %q, want %q", got, "new contents")
	}
	assertNoTempFiles(t, dir)
}

func TestAbortLeavesOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte("x"), 1<<20)); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("abort disturbed the final path: %q", got)
	}
	assertNoTempFiles(t, dir)
	// Abort after Abort and writes after Abort are rejected, not panics.
	f.Abort()
	if _, err := f.Write([]byte("y")); err == nil {
		t.Fatal("write after abort succeeded")
	}
	if err := f.Commit(); err == nil {
		t.Fatal("commit after abort succeeded")
	}
}

func TestAbortAfterCommitIsNoOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if got, _ := os.ReadFile(path); string(got) != "data" {
		t.Fatalf("abort after commit removed the artifact: %q", got)
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := WriteFile(path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Fatalf("got %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("Create in a missing directory succeeded")
	}
}

// assertNoTempFiles checks neither commit nor abort leaks temp files.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}
