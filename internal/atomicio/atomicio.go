// Package atomicio provides crash-safe writes for result artifacts.
//
// Every file the toolchain leaves behind — sweep CSVs, paper tables,
// generated traces, checkpoints, failure manifests, profiles — is written
// through this package: bytes go to a hidden temporary file in the
// destination directory, are fsynced, and the temp file is atomically
// renamed over the final path. A crash at any point leaves either the old
// artifact or the new one, never a torn file, and readers polling the
// final path never observe a partial write. The atomicwrite lint rule
// flags direct os.Create/os.WriteFile calls outside this package.
package atomicio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// File is an artifact in the making: an io.Writer over a temporary file
// destined for a final path. Exactly one of Commit or Abort must be
// called; Abort after Commit is a no-op, so `defer f.Abort()` is safe.
type File struct {
	path string
	tmp  *os.File
	bw   *bufio.Writer
	done bool
}

// Create opens a temporary file next to path (same directory, so the
// final rename cannot cross filesystems) and returns a File writing to
// it. The final path is untouched until Commit.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{path: path, tmp: tmp, bw: bufio.NewWriter(tmp)}, nil
}

// Name returns the final path the file will be committed to.
func (f *File) Name() string { return f.path }

// Write implements io.Writer, buffering into the temporary file.
func (f *File) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("atomicio: write to %s after commit or abort", f.path)
	}
	return f.bw.Write(p)
}

// Commit flushes buffered data, fsyncs the temporary file, renames it
// over the final path and fsyncs the directory, making the artifact
// durable. Any failure — including a short write surfacing at flush or
// sync — removes the temporary file and leaves the final path as it was.
func (f *File) Commit() error {
	if f.done {
		return fmt.Errorf("atomicio: %s already committed or aborted", f.path)
	}
	f.done = true
	if err := f.bw.Flush(); err != nil {
		f.discard()
		return fmt.Errorf("atomicio: flush %s: %w", f.path, err)
	}
	if err := f.tmp.Sync(); err != nil {
		f.discard()
		return fmt.Errorf("atomicio: sync %s: %w", f.path, err)
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: close %s: %w", f.path, err)
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(filepath.Dir(f.path))
}

// Abort discards the temporary file. It is a no-op after Commit or a
// previous Abort.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.discard()
}

func (f *File) discard() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// WriteFile atomically replaces path with data: the convenience form for
// artifacts rendered in memory (checkpoints, manifests).
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// syncDir fsyncs a directory so the rename itself is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", dir, err)
	}
	return nil
}
