package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Appended records must come back verbatim, in order, across close and
// reopen — the replay path a daemon restart exercises.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte(`{"op":"accept","id":"a"}`), []byte(`{"op":"done","id":"a"}`), []byte("third")}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}

	// Reopening for append must preserve the existing records.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append([]byte("fourth")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || string(got[3]) != "fourth" {
		t.Fatalf("after reopen: %d records, last %q", len(got), got[len(got)-1])
	}
}

// A missing journal is an empty journal, not an error: first boot of a
// daemon with a fresh state dir.
func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from a missing journal", len(recs))
	}
}

// A crash mid-append leaves an unterminated tail; replay must drop
// exactly that line and keep everything fsynced before it.
func TestJournalTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the torn write: bytes landed, no terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"acc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("torn journal read %q, want the two intact records", recs)
	}
}

// Records carrying newlines would shear into two on replay; Append must
// refuse them up front, as must the empty record.
func TestJournalRejectsUnframeableRecords(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("a\nb")); err == nil {
		t.Error("Append accepted a record containing a newline")
	}
	if err := j.Append(nil); err == nil {
		t.Error("Append accepted an empty record")
	}
}

// Compaction rewrites the journal to exactly the surviving records,
// atomically, and the result replays cleanly.
func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"a", "b", "c", "d"} {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	if err := RewriteJournal(path, [][]byte{[]byte("b"), []byte("d")}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "b" || string(recs[1]) != "d" {
		t.Fatalf("compacted journal = %q, want [b d]", recs)
	}

	if err := RewriteJournal(path, [][]byte{[]byte("x\ny")}); err == nil {
		t.Error("RewriteJournal accepted a record containing a newline")
	}
}
