package trace

import (
	"encoding/json"
	"math"
	"testing"
)

func statsTrace() Slice {
	return Slice{
		{CPU: 0, PID: 1, Kind: Instr, Addr: 0x1000},
		{CPU: 0, PID: 1, Kind: Read, Addr: 0x10},
		{CPU: 0, PID: 1, Kind: Read, Addr: 0x20, Lock: true},
		{CPU: 1, PID: 2, Kind: Write, Addr: 0x10},
		{CPU: 1, PID: 2, Kind: Read, Addr: 0x30, Kernel: true},
		{CPU: 1, PID: 2, Kind: Instr, Addr: 0x1010, Kernel: true},
	}
}

func TestCollectStatsTable3Columns(t *testing.T) {
	st, err := CollectStats(NewSliceReader(statsTrace()), 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refs != 6 {
		t.Errorf("Refs = %d, want 6", st.Refs)
	}
	if st.Instr != 2 {
		t.Errorf("Instr = %d, want 2", st.Instr)
	}
	if st.DataRd != 3 {
		t.Errorf("DataRd = %d, want 3", st.DataRd)
	}
	if st.DataWr != 1 {
		t.Errorf("DataWr = %d, want 1", st.DataWr)
	}
	if st.User != 4 || st.Sys != 2 {
		t.Errorf("User/Sys = %d/%d, want 4/2", st.User, st.Sys)
	}
	if st.LockReads != 1 {
		t.Errorf("LockReads = %d, want 1", st.LockReads)
	}
	if st.CPUs != 2 || st.Processes != 2 {
		t.Errorf("CPUs/Processes = %d/%d, want 2/2", st.CPUs, st.Processes)
	}
}

func TestCollectStatsSharing(t *testing.T) {
	st, err := CollectStats(NewSliceReader(statsTrace()), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0x1 (addr 0x10) is touched by PID 1 and PID 2 → shared.
	// Blocks 0x2 and 0x3 are private.
	if st.DataBlocks != 3 {
		t.Errorf("DataBlocks = %d, want 3", st.DataBlocks)
	}
	if st.SharedBlocksByProcess != 1 {
		t.Errorf("SharedBlocksByProcess = %d, want 1", st.SharedBlocksByProcess)
	}
	if st.SharedBlocksByCPU != 1 {
		t.Errorf("SharedBlocksByCPU = %d, want 1", st.SharedBlocksByCPU)
	}
	// Data refs: 4; refs to shared block 0x1: 2 (the read and the write).
	if st.DataRefs != 4 {
		t.Errorf("DataRefs = %d, want 4", st.DataRefs)
	}
	if st.RefsToSharedByProcess != 2 {
		t.Errorf("RefsToSharedByProcess = %d, want 2", st.RefsToSharedByProcess)
	}
	if got := st.SharedRefFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SharedRefFraction = %v, want 0.5", got)
	}
	if st.MigratedProcesses != 0 {
		t.Errorf("MigratedProcesses = %d, want 0", st.MigratedProcesses)
	}
}

func TestCollectStatsMigration(t *testing.T) {
	tr := Slice{
		{CPU: 0, PID: 5, Kind: Read, Addr: 0x10},
		{CPU: 1, PID: 5, Kind: Read, Addr: 0x20},
	}
	st, err := CollectStats(NewSliceReader(tr), 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.MigratedProcesses != 1 {
		t.Errorf("MigratedProcesses = %d, want 1", st.MigratedProcesses)
	}
}

func TestCollectStatsRejectsBadBlockSize(t *testing.T) {
	if _, err := CollectStats(NewSliceReader(nil), 12); err == nil {
		t.Fatal("block size 12 accepted")
	}
}

func TestStatsRatios(t *testing.T) {
	st := Stats{DataRd: 30, DataWr: 10, LockReads: 10}
	if got := st.ReadWriteRatio(); got != 3 {
		t.Errorf("ReadWriteRatio = %v, want 3", got)
	}
	if got := st.LockReadFraction(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("LockReadFraction = %v, want 1/3", got)
	}
	zero := Stats{}
	if zero.ReadWriteRatio() != 0 || zero.LockReadFraction() != 0 || zero.SharedRefFraction() != 0 {
		t.Error("zero stats should give zero ratios")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Max() != -1 {
		t.Errorf("empty Max = %d, want -1", h.Max())
	}
	for _, v := range []int{0, 1, 1, 3} {
		h.Observe(v)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if got := h.Fraction(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Fraction(1) = %v, want 0.5", got)
	}
	if got := h.CumulativeFraction(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CumulativeFraction(1) = %v, want 0.75", got)
	}
	if got := h.Mean(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Mean = %v, want 1.25", got)
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d, want 3", h.Max())
	}
	if h.Fraction(99) != 0 {
		t.Error("Fraction(out of range) != 0")
	}
}

func TestHistogramAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(0)
	b.Observe(2)
	b.Observe(2)
	a.Add(&b)
	if a.Total() != 3 {
		t.Errorf("Total = %d, want 3", a.Total())
	}
	if a.Counts[2] != 2 {
		t.Errorf("Counts[2] = %d, want 2", a.Counts[2])
	}
}

// A histogram must survive the JSON round trip with its derived state
// intact: remote results carry InvalFanout across the daemon boundary.
func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 1, 3} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() {
		t.Errorf("Total = %d, want %d", back.Total(), h.Total())
	}
	if math.Abs(back.Mean()-h.Mean()) > 1e-12 {
		t.Errorf("Mean = %v, want %v", back.Mean(), h.Mean())
	}
	if math.Abs(back.CumulativeFraction(1)-h.CumulativeFraction(1)) > 1e-12 {
		t.Errorf("CumulativeFraction(1) = %v, want %v",
			back.CumulativeFraction(1), h.CumulativeFraction(1))
	}
	var empty Histogram
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 0 || back.Max() != -1 {
		t.Errorf("empty round trip: Total=%d Max=%d", back.Total(), back.Max())
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Observe(-1) did not panic")
		}
	}()
	var h Histogram
	h.Observe(-1)
}

func TestTopPIDs(t *testing.T) {
	refs := []Ref{
		{PID: 3}, {PID: 3}, {PID: 3},
		{PID: 1}, {PID: 1},
		{PID: 2}, {PID: 9}, {PID: 9},
	}
	got := TopPIDs(refs, 2)
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("TopPIDs = %v", got)
	}
	// 1 and 9 tie at 2 refs; smaller PID wins second place.
	if got[1] != 1 {
		t.Fatalf("TopPIDs tie break = %v", got)
	}
}
