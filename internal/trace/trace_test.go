package trace

import (
	"io"
	"reflect"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Instr:   "instr",
		Read:    "read",
		Write:   "write",
		Kind(9): "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if !Instr.Valid() || !Read.Valid() || !Write.Valid() {
		t.Fatal("defined kinds reported invalid")
	}
	if Kind(3).Valid() {
		t.Fatal("Kind(3) reported valid")
	}
}

func TestBlockMapping(t *testing.T) {
	if got := Block(0x1234, 16); got != 0x123 {
		t.Fatalf("Block(0x1234, 16) = %#x, want 0x123", got)
	}
	if got := Block(15, 16); got != 0 {
		t.Fatalf("Block(15, 16) = %d, want 0", got)
	}
	if got := Block(16, 16); got != 1 {
		t.Fatalf("Block(16, 16) = %d, want 1", got)
	}
	if got := Block(100, 4); got != 25 {
		t.Fatalf("Block(100, 4) = %d, want 25", got)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 16, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -4, 3, 12, 17} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestSliceReaderAndReset(t *testing.T) {
	refs := []Ref{
		{CPU: 0, Kind: Read, Addr: 0x10},
		{CPU: 1, Kind: Write, Addr: 0x20},
	}
	r := NewSliceReader(refs)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]Ref(got), refs) {
		t.Fatalf("ReadAll = %v, want %v", got, refs)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	r.Reset()
	first, err := r.Next()
	if err != nil || first != refs[0] {
		t.Fatalf("after Reset Next = %v, %v", first, err)
	}
}

func TestSliceWriterCopy(t *testing.T) {
	src := Slice{{Kind: Read, Addr: 1}, {Kind: Instr, Addr: 2}, {Kind: Write, Addr: 3}}
	var dst Slice
	n, err := Copy(&dst, NewSliceReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Copy count = %d, want 3", n)
	}
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("Copy dst = %v, want %v", dst, src)
	}
}

func TestFilterDropLockSpins(t *testing.T) {
	src := Slice{
		{Kind: Read, Addr: 1, Lock: true},
		{Kind: Read, Addr: 2},
		{Kind: Write, Addr: 3},
		{Kind: Read, Addr: 4, Lock: true},
	}
	got, err := ReadAll(DropLockSpins(NewSliceReader(src)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != 2 || got[1].Addr != 3 {
		t.Fatalf("DropLockSpins = %v", got)
	}
}

func TestFilterDropInstructions(t *testing.T) {
	src := Slice{
		{Kind: Instr, Addr: 1},
		{Kind: Read, Addr: 2},
		{Kind: Instr, Addr: 3},
	}
	got, err := ReadAll(DataOnly(NewSliceReader(src)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != 2 {
		t.Fatalf("DataOnly = %v", got)
	}
}

func TestLimit(t *testing.T) {
	src := Slice{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	got, err := ReadAll(Limit(NewSliceReader(src), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Limit(2) yielded %d refs", len(got))
	}
	got, err = ReadAll(Limit(NewSliceReader(src), 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("Limit(0) = %v, %v", got, err)
	}
	got, err = ReadAll(Limit(NewSliceReader(src), 10))
	if err != nil || len(got) != 3 {
		t.Fatalf("Limit(10) = %v, %v", got, err)
	}
}

func TestConcat(t *testing.T) {
	a := Slice{{Addr: 1}}
	b := Slice{}
	c := Slice{{Addr: 2}, {Addr: 3}}
	got, err := ReadAll(Concat(NewSliceReader(a), NewSliceReader(b), NewSliceReader(c)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Addr != 1 || got[2].Addr != 3 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestRemapCPU(t *testing.T) {
	src := Slice{{CPU: 0, Addr: 1}, {CPU: 3, Addr: 2}, {CPU: 7, Addr: 3}}
	got, err := ReadAll(RemapCPU(NewSliceReader(src), map[uint8]uint8{3: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].CPU != 0 || got[1].CPU != 1 || got[2].CPU != 7 {
		t.Fatalf("RemapCPU = %v", got)
	}
}
