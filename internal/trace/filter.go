package trace

import "io"

// FilterFunc reports whether a reference should be kept.
type FilterFunc func(Ref) bool

// Filter wraps rd, yielding only references for which keep returns true.
func Filter(rd Reader, keep FilterFunc) Reader {
	return &filterReader{rd: rd, keep: keep}
}

type filterReader struct {
	rd   Reader
	keep FilterFunc
}

func (f *filterReader) Next() (Ref, error) {
	for {
		ref, err := f.rd.Next()
		if err != nil {
			return Ref{}, err
		}
		if f.keep(ref) {
			return ref, nil
		}
	}
}

// DropLockSpins removes spin-lock test reads from the trace. This is the
// Section 5.2 experiment: "we ran a set of experiments excluding all the
// tests on locks in the three traces".
func DropLockSpins(rd Reader) Reader {
	return Filter(rd, func(r Ref) bool { return !r.Lock })
}

// DropInstructions removes instruction fetches, leaving the data stream.
func DropInstructions(rd Reader) Reader {
	return Filter(rd, func(r Ref) bool { return r.Kind != Instr })
}

// DataOnly is an alias for DropInstructions, matching the paper's focus on
// data references for consistency traffic.
func DataOnly(rd Reader) Reader { return DropInstructions(rd) }

// Limit yields at most n references from rd.
func Limit(rd Reader, n int) Reader {
	return &limitReader{rd: rd, remain: n}
}

type limitReader struct {
	rd     Reader
	remain int
}

func (l *limitReader) Next() (Ref, error) {
	if l.remain <= 0 {
		return Ref{}, io.EOF
	}
	ref, err := l.rd.Next()
	if err != nil {
		return Ref{}, err
	}
	l.remain--
	return ref, nil
}

// Concat yields the references of each reader in turn.
func Concat(readers ...Reader) Reader {
	return &concatReader{readers: readers}
}

type concatReader struct {
	readers []Reader
}

func (c *concatReader) Next() (Ref, error) {
	for len(c.readers) > 0 {
		ref, err := c.readers[0].Next()
		if err == io.EOF {
			c.readers = c.readers[1:]
			continue
		}
		return ref, err
	}
	return Ref{}, io.EOF
}

// RemapCPU rewrites each reference's CPU through the supplied mapping. It is
// useful for folding a trace onto fewer processors. Missing CPUs map to
// themselves.
func RemapCPU(rd Reader, mapping map[uint8]uint8) Reader {
	return &remapReader{rd: rd, mapping: mapping}
}

type remapReader struct {
	rd      Reader
	mapping map[uint8]uint8
}

func (m *remapReader) Next() (Ref, error) {
	ref, err := m.rd.Next()
	if err != nil {
		return Ref{}, err
	}
	if to, ok := m.mapping[ref.CPU]; ok {
		ref.CPU = to
	}
	return ref, nil
}
