// Package trace defines the multiprocessor memory-reference trace model used
// throughout the simulator.
//
// A trace is an ordered stream of references, each tagged with the issuing
// processor and process, mirroring the ATUM multiprocessor traces of Sites &
// Agarwal that the paper simulates ("CPU numbers and process identifiers of
// the active processes are also included in the trace"). References are
// additionally annotated with two bits the generators know and the paper's
// analyses need: whether the reference is the read half of a
// test-and-test-and-set spin (Section 5.2) and whether it was issued in
// kernel mode (Table 3's User/Sys split).
//
// The package provides streaming readers and writers in both a compact
// binary format and a human-readable text format, plus filters and the
// Table 3 statistics.
package trace

import (
	"fmt"
	"io"
)

// errEOF is the sentinel returned by readers at end of trace. It is io.EOF
// so callers can use the standard idiom.
var errEOF = io.EOF

// Kind classifies a memory reference.
type Kind uint8

const (
	// Instr is an instruction fetch. Per Section 4, instruction references
	// cause no consistency traffic and their misses are not priced.
	Instr Kind = iota
	// Read is a data read.
	Read
	// Write is a data write.
	Write
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k <= Write }

// Ref is one memory reference in a multiprocessor trace.
type Ref struct {
	// CPU is the processor that issued the reference.
	CPU uint8
	// PID identifies the process that issued the reference. The paper
	// attributes sharing to processes rather than processors so that
	// migration-induced sharing can be excluded (Section 4.4).
	PID uint16
	// Kind is the reference type.
	Kind Kind
	// Addr is the byte address referenced.
	Addr uint64
	// Lock marks a spinning lock probe: the test read of a
	// test-and-test-and-set, or a failing test-and-set attempt (a
	// write). Section 5.2 removes these references to isolate their
	// effect.
	Lock bool
	// Kernel marks operating-system activity (Table 3's "Sys" column).
	Kernel bool
}

// DefaultBlockBytes is the paper's block size: 4 words of 4 bytes
// ("The block size used throughout this paper is 4 words (16 bytes)").
const DefaultBlockBytes = 16

// Block maps a byte address to a block number for the given block size,
// which must be a power of two.
func Block(addr uint64, blockBytes int) uint64 {
	return addr / uint64(blockBytes)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Reader yields references in trace order. Next returns io.EOF after the
// final reference.
type Reader interface {
	Next() (Ref, error)
}

// Writer consumes references in trace order.
type Writer interface {
	Append(Ref) error
}

// Slice is an in-memory trace. It implements Writer via pointer receiver and
// can be replayed any number of times via NewSliceReader.
type Slice []Ref

// Append implements Writer.
func (s *Slice) Append(r Ref) error {
	*s = append(*s, r)
	return nil
}

// SliceReader replays an in-memory trace.
type SliceReader struct {
	refs []Ref
	pos  int
}

// NewSliceReader returns a Reader over refs. The slice is not copied.
func NewSliceReader(refs []Ref) *SliceReader { return &SliceReader{refs: refs} }

// Next implements Reader.
func (r *SliceReader) Next() (Ref, error) {
	if r.pos >= len(r.refs) {
		return Ref{}, errEOF
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, nil
}

// Reset rewinds the reader to the beginning of the trace.
func (r *SliceReader) Reset() { r.pos = 0 }

// Take returns up to n references starting at the current position and
// advances past them, letting batch consumers skip the per-reference Next
// call. It returns an empty slice at end of trace.
func (r *SliceReader) Take(n int) []Ref {
	rem := r.refs[r.pos:]
	if len(rem) > n {
		rem = rem[:n]
	}
	r.pos += len(rem)
	return rem
}

// ReadAll drains rd into a Slice. It is intended for tests and small traces;
// simulation should stream instead.
func ReadAll(rd Reader) (Slice, error) {
	var out Slice
	for {
		ref, err := rd.Next()
		if err != nil {
			if err == errEOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ref)
	}
}

// Copy streams every reference from rd to w and reports the count.
func Copy(w Writer, rd Reader) (int, error) {
	n := 0
	for {
		ref, err := rd.Next()
		if err != nil {
			if err == errEOF {
				return n, nil
			}
			return n, err
		}
		if err := w.Append(ref); err != nil {
			return n, err
		}
		n++
	}
}
