package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzParseRef checks that the text parser never panics and that anything
// it accepts round-trips through the writer.
func FuzzParseRef(f *testing.F) {
	f.Add("0 1 r 10")
	f.Add("3 200 w ffffffffffffffff lock kernel")
	f.Add("0 0 i 0")
	f.Add("x y z")
	f.Fuzz(func(t *testing.T, line string) {
		ref, err := ParseRef(line)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewTextWriter(&buf)
		if err := w.Append(ref); err != nil {
			t.Fatalf("accepted ref failed to encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := NewTextReader(&buf).Next()
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back != ref {
			t.Fatalf("round trip changed ref: %+v vs %+v", back, ref)
		}
	})
}

// FuzzTextReader checks the text decoder never panics on arbitrary bytes,
// terminates (every Next consumes input or errors), and only hands out
// well-formed references.
func FuzzTextReader(f *testing.F) {
	f.Add([]byte("0 1 r 10\n3 200 w ffffffffffffffff lock kernel\n"))
	f.Add([]byte("# comment\n\n0 0 i 0\n"))
	f.Add([]byte("x y z\n0 1 r 10"))
	f.Add([]byte{0x00, 0xff, '\n', '\r'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewTextReader(bytes.NewReader(data))
		// A text trace yields at most one ref per input line; anything
		// more means the reader is not consuming input.
		bound := bytes.Count(data, []byte("\n")) + 2
		for reads := 0; ; reads++ {
			if reads > bound {
				t.Fatalf("reader did not terminate within %d reads on %d bytes", bound, len(data))
			}
			ref, err := r.Next()
			if err != nil {
				break
			}
			if !ref.Kind.Valid() {
				t.Fatalf("decoder handed out invalid kind %v", ref.Kind)
			}
		}
	})
}

// FuzzBinaryReader checks the binary decoder never panics on arbitrary
// bytes and that every successfully decoded prefix re-encodes to the same
// bytes.
func FuzzBinaryReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewBinaryWriter(&seed)
	_ = w.Append(Ref{CPU: 1, PID: 2, Kind: Read, Addr: 0x1234, Lock: true})
	_ = w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte("DIRTRC01"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		var decoded []Ref
		for {
			ref, err := r.Next()
			if err != nil {
				break
			}
			decoded = append(decoded, ref)
			if len(decoded) > 1<<16 {
				break
			}
		}
		// Whatever decoded must re-encode and decode identically.
		var buf bytes.Buffer
		bw := NewBinaryWriter(&buf)
		for _, ref := range decoded {
			if err := bw.Append(ref); err != nil {
				t.Fatalf("decoded ref failed to encode: %v", err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		br := NewBinaryReader(&buf)
		for i, want := range decoded {
			got, err := br.Next()
			if err != nil {
				t.Fatalf("re-decode %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("re-decode %d changed ref", i)
			}
		}
		if _, err := br.Next(); err != io.EOF {
			t.Fatalf("trailing data after re-decode: %v", err)
		}
	})
}
