package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format
//
// The file begins with an 8-byte magic ("DIRTRC01") followed by records.
// Each record is:
//
//	byte 0      CPU
//	bytes 1-2   PID (little endian)
//	byte 3      flags: bits 0-1 Kind, bit 2 Lock, bit 3 Kernel
//	bytes 4-11  Addr (little endian)
//
// The fixed 12-byte record keeps the codec trivially seekable and fast; the
// traces in this study are a few million records, i.e. tens of megabytes.

// BinaryMagic identifies the binary trace format.
const BinaryMagic = "DIRTRC01"

const recordSize = 12

const (
	flagKindMask = 0x03
	flagLock     = 0x04
	flagKernel   = 0x08
)

// BinaryWriter streams references to an io.Writer in the binary format.
type BinaryWriter struct {
	w     *bufio.Writer
	wrote bool
	buf   [recordSize]byte
}

// NewBinaryWriter returns a BinaryWriter targeting w. The magic header is
// written lazily on the first Append so that creating a writer is free.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Append implements Writer.
func (bw *BinaryWriter) Append(r Ref) error {
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	if !bw.wrote {
		if _, err := bw.w.WriteString(BinaryMagic); err != nil {
			return err
		}
		bw.wrote = true
	}
	bw.buf[0] = r.CPU
	binary.LittleEndian.PutUint16(bw.buf[1:3], r.PID)
	flags := byte(r.Kind) & flagKindMask
	if r.Lock {
		flags |= flagLock
	}
	if r.Kernel {
		flags |= flagKernel
	}
	bw.buf[3] = flags
	binary.LittleEndian.PutUint64(bw.buf[4:12], r.Addr)
	_, err := bw.w.Write(bw.buf[:])
	return err
}

// Flush writes any buffered records to the underlying writer. It must be
// called when the trace is complete.
func (bw *BinaryWriter) Flush() error {
	if !bw.wrote {
		// An empty trace still gets a header so it round-trips.
		if _, err := bw.w.WriteString(BinaryMagic); err != nil {
			return err
		}
		bw.wrote = true
	}
	return bw.w.Flush()
}

// BinaryReader streams references from an io.Reader in the binary format.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	buf    [recordSize]byte
}

// NewBinaryReader returns a BinaryReader over r. The magic header is
// validated on the first Next call.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next implements Reader.
func (br *BinaryReader) Next() (Ref, error) {
	if !br.header {
		var magic [len(BinaryMagic)]byte
		if _, err := io.ReadFull(br.r, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Ref{}, fmt.Errorf("trace: short or missing header: %w", err)
			}
			return Ref{}, err
		}
		if string(magic[:]) != BinaryMagic {
			return Ref{}, fmt.Errorf("trace: bad magic %q", magic)
		}
		br.header = true
	}
	if _, err := io.ReadFull(br.r, br.buf[:]); err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Ref{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Ref{}, err
	}
	var ref Ref
	ref.CPU = br.buf[0]
	ref.PID = binary.LittleEndian.Uint16(br.buf[1:3])
	flags := br.buf[3]
	ref.Kind = Kind(flags & flagKindMask)
	if !ref.Kind.Valid() {
		return Ref{}, fmt.Errorf("trace: invalid kind %d in record", flags&flagKindMask)
	}
	ref.Lock = flags&flagLock != 0
	ref.Kernel = flags&flagKernel != 0
	ref.Addr = binary.LittleEndian.Uint64(br.buf[4:12])
	return ref, nil
}

// Text trace format
//
// One reference per line:
//
//	<cpu> <pid> <kind> <hex addr> [lock] [kernel]
//
// kind is one of i, r, w. Blank lines and lines starting with '#' are
// ignored. The format is intended for hand-written test inputs and for
// inspecting generated traces.

// TextWriter streams references in the text format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter returns a TextWriter targeting w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Append implements Writer.
func (tw *TextWriter) Append(r Ref) error {
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	var k byte
	switch r.Kind {
	case Instr:
		k = 'i'
	case Read:
		k = 'r'
	case Write:
		k = 'w'
	}
	if _, err := fmt.Fprintf(tw.w, "%d %d %c %x", r.CPU, r.PID, k, r.Addr); err != nil {
		return err
	}
	if r.Lock {
		if _, err := tw.w.WriteString(" lock"); err != nil {
			return err
		}
	}
	if r.Kernel {
		if _, err := tw.w.WriteString(" kernel"); err != nil {
			return err
		}
	}
	return tw.w.WriteByte('\n')
}

// Flush writes buffered output.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader streams references from the text format.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader returns a TextReader over r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{s: bufio.NewScanner(r)}
}

// Next implements Reader.
func (tr *TextReader) Next() (Ref, error) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ref, err := ParseRef(line)
		if err != nil {
			return Ref{}, fmt.Errorf("trace: line %d: %w", tr.line, err)
		}
		return ref, nil
	}
	if err := tr.s.Err(); err != nil {
		return Ref{}, err
	}
	return Ref{}, io.EOF
}

// ParseRef parses a single text-format reference line.
func ParseRef(line string) (Ref, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Ref{}, fmt.Errorf("want at least 4 fields, got %d", len(fields))
	}
	cpu, err := strconv.ParseUint(fields[0], 10, 8)
	if err != nil {
		return Ref{}, fmt.Errorf("bad cpu %q: %w", fields[0], err)
	}
	pid, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return Ref{}, fmt.Errorf("bad pid %q: %w", fields[1], err)
	}
	var kind Kind
	switch fields[2] {
	case "i":
		kind = Instr
	case "r":
		kind = Read
	case "w":
		kind = Write
	default:
		return Ref{}, fmt.Errorf("bad kind %q (want i, r or w)", fields[2])
	}
	addr, err := strconv.ParseUint(fields[3], 16, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("bad addr %q: %w", fields[3], err)
	}
	ref := Ref{CPU: uint8(cpu), PID: uint16(pid), Kind: kind, Addr: addr}
	for _, f := range fields[4:] {
		switch f {
		case "lock":
			ref.Lock = true
		case "kernel":
			ref.Kernel = true
		default:
			return Ref{}, fmt.Errorf("unknown annotation %q", f)
		}
	}
	return ref, nil
}
