package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func randomRefs(rng *rand.Rand, n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{
			CPU:    uint8(rng.Intn(8)),
			PID:    uint16(rng.Intn(64)),
			Kind:   Kind(rng.Intn(3)),
			Addr:   rng.Uint64(),
			Lock:   rng.Intn(4) == 0,
			Kernel: rng.Intn(8) == 0,
		}
		if refs[i].Kind != Read {
			refs[i].Lock = false
		}
	}
	return refs
}

func TestBinaryRoundTrip(t *testing.T) {
	refs := randomRefs(rand.New(rand.NewSource(42)), 500)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]Ref(got), refs) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != BinaryMagic {
		t.Fatalf("empty trace bytes = %q", buf.String())
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace yielded %d refs", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("NOTMAGIC" + strings.Repeat("x", 12)))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Append(Ref{Kind: Read, Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r := NewBinaryReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBinaryRejectsInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Append(Ref{Kind: Kind(3)}); err == nil {
		t.Fatal("invalid kind accepted by writer")
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := randomRefs(rand.New(rand.NewSource(7)), 200)
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]Ref(got), refs) {
		t.Fatal("text round trip mismatch")
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := `
# a comment
0 1 r 10 lock

1 2 w ff kernel
`
	got, err := ReadAll(NewTextReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{
		{CPU: 0, PID: 1, Kind: Read, Addr: 0x10, Lock: true},
		{CPU: 1, PID: 2, Kind: Write, Addr: 0xff, Kernel: true},
	}
	if !reflect.DeepEqual([]Ref(got), want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseRefErrors(t *testing.T) {
	bad := []string{
		"",
		"0 1 r",           // too few fields
		"x 1 r 10",        // bad cpu
		"0 y r 10",        // bad pid
		"0 1 q 10",        // bad kind
		"0 1 r zz",        // bad addr
		"0 1 r 10 wibble", // unknown annotation
		"300 1 r 10",      // cpu out of range
	}
	for _, line := range bad {
		if _, err := ParseRef(line); err == nil {
			t.Errorf("ParseRef(%q) accepted", line)
		}
	}
}

func TestTextReaderReportsLineNumber(t *testing.T) {
	input := "0 1 r 10\nbogus line here\n"
	r := NewTextReader(strings.NewReader(input))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

// Property: binary encode/decode is the identity on arbitrary refs with
// valid kinds.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(cpu uint8, pid uint16, kindRaw uint8, addr uint64, lock, kernel bool) bool {
		ref := Ref{
			CPU: cpu, PID: pid, Kind: Kind(kindRaw % 3), Addr: addr,
			Lock: lock, Kernel: kernel,
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := w.Append(ref); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewBinaryReader(&buf)
		got, err := r.Next()
		if err != nil {
			return false
		}
		if _, err := r.Next(); err != io.EOF {
			return false
		}
		return got == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
