package trace

import (
	"fmt"
	"io"
)

// SharingProfile measures the sharing structure of a trace: Section 2
// demands that "we must also examine the dynamic numbers of caches that
// contain a shared datum to evaluate the actual frequency of occurrence"
// before trusting limited-pointer directories. The profile reports both a
// static view (how many distinct processes ever touch each block) and a
// dynamic view (at each write, how many processes touched the block since
// its previous write — the copies an invalidation protocol would find).
type SharingProfile struct {
	// BlockBytes is the block size profiled.
	BlockBytes int
	// StaticDegree[k] counts data blocks touched by exactly k distinct
	// processes over the whole trace (k ≥ 1).
	StaticDegree Histogram
	// RefWeightedDegree[k] counts data references to blocks whose total
	// sharing degree is k — the exposure view (a widely shared block
	// that is barely referenced matters little).
	RefWeightedDegree Histogram
	// DynamicReaders[k] counts writes that found exactly k distinct
	// processes (other than the writer) having touched the block since
	// the previous write — the invalidation fan-out an exact directory
	// would see, measured on the trace alone with no protocol model.
	DynamicReaders Histogram
	// DataRefs is the number of data references profiled.
	DataRefs uint64
	// WritesProfiled is the number of writes contributing to
	// DynamicReaders.
	WritesProfiled uint64
}

// Profile drains rd and computes the sharing profile for the given block
// size.
func Profile(rd Reader, blockBytes int) (*SharingProfile, error) {
	if !IsPow2(blockBytes) {
		return nil, fmt.Errorf("trace: block size %d is not a power of two", blockBytes)
	}
	type blockInfo struct {
		everPIDs  map[uint16]bool // all processes that ever touched it
		sincePIDs map[uint16]bool // processes since the last write
		refs      uint64
	}
	blocks := map[uint64]*blockInfo{}
	p := &SharingProfile{BlockBytes: blockBytes}
	for {
		r, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if r.Kind == Instr {
			continue
		}
		p.DataRefs++
		b := Block(r.Addr, blockBytes)
		bi := blocks[b]
		if bi == nil {
			bi = &blockInfo{everPIDs: map[uint16]bool{}, sincePIDs: map[uint16]bool{}}
			blocks[b] = bi
		}
		bi.refs++
		bi.everPIDs[r.PID] = true
		if r.Kind == Write {
			// Readers-to-invalidate: distinct processes that touched
			// the block since the previous write, excluding the writer.
			n := len(bi.sincePIDs)
			if bi.sincePIDs[r.PID] {
				n--
			}
			p.DynamicReaders.Observe(n)
			p.WritesProfiled++
			bi.sincePIDs = map[uint16]bool{r.PID: true}
		} else {
			bi.sincePIDs[r.PID] = true
		}
	}
	for _, bi := range blocks {
		k := len(bi.everPIDs)
		p.StaticDegree.Observe(k)
		p.addWeighted(k, bi.refs)
	}
	return p, nil
}

// addWeighted records n observations of degree k in the reference-weighted
// histogram without looping.
func (p *SharingProfile) addWeighted(k int, n uint64) {
	for k >= len(p.RefWeightedDegree.Counts) {
		p.RefWeightedDegree.Counts = append(p.RefWeightedDegree.Counts, 0)
	}
	p.RefWeightedDegree.Counts[k] += n
	p.RefWeightedDegree.addTotal(n)
}

// SharedBlockFraction returns the fraction of data blocks touched by more
// than one process.
func (p *SharingProfile) SharedBlockFraction() float64 {
	if p.StaticDegree.Total() == 0 {
		return 0
	}
	return 1 - p.StaticDegree.Fraction(1)
}

// PointerSufficiency returns the fraction of writes whose invalidation
// fan-out fits within i directory pointers — the quantity that justifies
// a Dir_iB design (Section 6 keeps "exactly one pointer" for the common
// case).
func (p *SharingProfile) PointerSufficiency(i int) float64 {
	if p.DynamicReaders.Total() == 0 {
		return 0
	}
	return p.DynamicReaders.CumulativeFraction(i)
}

// WorkingSets computes Denning-style working-set sizes: the number of
// distinct data blocks touched in each consecutive window of `window` data
// references. The curve sizes caches and sparse directories: a directory
// needs roughly the working set's entries to avoid thrashing.
func WorkingSets(rd Reader, blockBytes, window int) ([]int, error) {
	if !IsPow2(blockBytes) {
		return nil, fmt.Errorf("trace: block size %d is not a power of two", blockBytes)
	}
	if window < 1 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	var out []int
	seen := map[uint64]bool{}
	n := 0
	for {
		r, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if r.Kind == Instr {
			continue
		}
		seen[Block(r.Addr, blockBytes)] = true
		n++
		if n == window {
			out = append(out, len(seen))
			seen = map[uint64]bool{}
			n = 0
		}
	}
	if n > 0 {
		out = append(out, len(seen))
	}
	return out, nil
}
