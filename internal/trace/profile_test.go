package trace

import (
	"math"
	"testing"
)

func TestProfileStaticDegrees(t *testing.T) {
	tr := Slice{
		{PID: 1, Kind: Read, Addr: 0x10}, // block 1: PIDs {1,2}
		{PID: 2, Kind: Read, Addr: 0x10},
		{PID: 1, Kind: Read, Addr: 0x20},  // block 2: PID {1}
		{PID: 3, Kind: Write, Addr: 0x30}, // block 3: PID {3}
		{PID: 1, Kind: Instr, Addr: 0x99}, // ignored
	}
	p, err := Profile(NewSliceReader(tr), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataRefs != 4 {
		t.Fatalf("DataRefs = %d", p.DataRefs)
	}
	if p.StaticDegree.Counts[1] != 2 || p.StaticDegree.Counts[2] != 1 {
		t.Fatalf("StaticDegree = %v", p.StaticDegree.Counts)
	}
	// Shared fraction: 1 of 3 blocks.
	if got := p.SharedBlockFraction(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("SharedBlockFraction = %v", got)
	}
	// Ref-weighted: 2 refs at degree 2, 2 refs at degree 1.
	if p.RefWeightedDegree.Counts[2] != 2 || p.RefWeightedDegree.Counts[1] != 2 {
		t.Fatalf("RefWeightedDegree = %v", p.RefWeightedDegree.Counts)
	}
	if p.RefWeightedDegree.Total() != 4 {
		t.Fatalf("weighted total = %d", p.RefWeightedDegree.Total())
	}
}

func TestProfileDynamicReaders(t *testing.T) {
	tr := Slice{
		{PID: 1, Kind: Read, Addr: 0x10},
		{PID: 2, Kind: Read, Addr: 0x10},
		{PID: 3, Kind: Write, Addr: 0x10}, // 2 other processes to invalidate
		{PID: 3, Kind: Write, Addr: 0x10}, // 0 others since the last write
		{PID: 1, Kind: Read, Addr: 0x10},
		{PID: 1, Kind: Write, Addr: 0x10}, // 1 other: PID 3 still holds its copy
	}
	p, err := Profile(NewSliceReader(tr), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.WritesProfiled != 3 {
		t.Fatalf("WritesProfiled = %d", p.WritesProfiled)
	}
	if p.DynamicReaders.Counts[2] != 1 {
		t.Fatalf("DynamicReaders = %v, want one fan-out-2 write", p.DynamicReaders.Counts)
	}
	if p.DynamicReaders.Counts[0] != 1 || p.DynamicReaders.Counts[1] != 1 {
		t.Fatalf("DynamicReaders = %v, want one fan-out-0 and one fan-out-1 write", p.DynamicReaders.Counts)
	}
	// One pointer suffices for two of the three writes.
	if got := p.PointerSufficiency(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("PointerSufficiency(1) = %v, want 2/3", got)
	}
	if got := p.PointerSufficiency(2); got != 1 {
		t.Fatalf("PointerSufficiency(2) = %v, want 1", got)
	}
}

func TestProfileRejectsBadBlockSize(t *testing.T) {
	if _, err := Profile(NewSliceReader(nil), 10); err == nil {
		t.Fatal("block size 10 accepted")
	}
}

func TestProfileEmptyTrace(t *testing.T) {
	p, err := Profile(NewSliceReader(nil), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedBlockFraction() != 0 || p.PointerSufficiency(1) != 0 {
		t.Fatal("empty profile should report zeros")
	}
}

func TestWorkingSets(t *testing.T) {
	tr := Slice{
		{Kind: Read, Addr: 0x10},
		{Kind: Read, Addr: 0x10},
		{Kind: Write, Addr: 0x20},  // window 1: blocks {1,2}
		{Kind: Instr, Addr: 0x999}, // ignored
		{Kind: Read, Addr: 0x30},
		{Kind: Read, Addr: 0x40},
		{Kind: Read, Addr: 0x40}, // window 2: blocks {3,4}
		{Kind: Read, Addr: 0x50}, // partial window 3: {5}
	}
	ws, err := WorkingSets(NewSliceReader(tr), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 1}
	if len(ws) != len(want) {
		t.Fatalf("got %v, want %v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("got %v, want %v", ws, want)
		}
	}
}

func TestWorkingSetsErrors(t *testing.T) {
	if _, err := WorkingSets(NewSliceReader(nil), 10, 5); err == nil {
		t.Error("bad block size accepted")
	}
	if _, err := WorkingSets(NewSliceReader(nil), 16, 0); err == nil {
		t.Error("zero window accepted")
	}
	ws, err := WorkingSets(NewSliceReader(nil), 16, 5)
	if err != nil || len(ws) != 0 {
		t.Errorf("empty trace: %v, %v", ws, err)
	}
}
