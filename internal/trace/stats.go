package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Stats summarises a trace in the form of the paper's Table 3, extended with
// the sharing measurements Section 4.4 discusses.
type Stats struct {
	// Table 3 columns.
	Refs   uint64 // total references
	Instr  uint64 // instruction fetches
	DataRd uint64 // data reads
	DataWr uint64 // data writes
	User   uint64 // user-mode references
	Sys    uint64 // kernel-mode references

	// Lock behaviour (Section 4.4: "Roughly one-third of all the reads
	// correspond to reads due to spinning on a lock" in POPS and THOR).
	LockReads uint64

	// Population.
	CPUs      int
	Processes int

	// Sharing, attributed to processes (the paper's model) and to
	// processors. A data block is shared if more than one process
	// (respectively processor) references it anywhere in the trace.
	DataBlocks            int
	SharedBlocksByProcess int
	SharedBlocksByCPU     int
	RefsToSharedByProcess uint64 // data refs to process-shared blocks
	DataRefs              uint64 // total data refs (reads+writes)
	MigratedProcesses     int    // processes observed on >1 CPU
	BlockBytes            int
}

// CollectStats drains rd and computes Stats using the given block size.
func CollectStats(rd Reader, blockBytes int) (Stats, error) {
	if !IsPow2(blockBytes) {
		return Stats{}, fmt.Errorf("trace: block size %d is not a power of two", blockBytes)
	}
	st := Stats{BlockBytes: blockBytes}
	cpus := map[uint8]bool{}
	pidCPUs := map[uint16]map[uint8]bool{}
	type blockInfo struct {
		pids map[uint16]bool
		cpus map[uint8]bool
	}
	blocks := map[uint64]*blockInfo{}
	var refs []Ref // second pass for shared-ref attribution
	for {
		r, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return Stats{}, err
		}
		st.Refs++
		cpus[r.CPU] = true
		if pidCPUs[r.PID] == nil {
			pidCPUs[r.PID] = map[uint8]bool{}
		}
		pidCPUs[r.PID][r.CPU] = true
		if r.Kernel {
			st.Sys++
		} else {
			st.User++
		}
		switch r.Kind {
		case Instr:
			st.Instr++
			continue
		case Read:
			st.DataRd++
			if r.Lock {
				st.LockReads++
			}
		case Write:
			st.DataWr++
		}
		b := Block(r.Addr, blockBytes)
		bi := blocks[b]
		if bi == nil {
			bi = &blockInfo{pids: map[uint16]bool{}, cpus: map[uint8]bool{}}
			blocks[b] = bi
		}
		bi.pids[r.PID] = true
		bi.cpus[r.CPU] = true
		refs = append(refs, r)
	}
	st.CPUs = len(cpus)
	st.Processes = len(pidCPUs)
	for _, set := range pidCPUs {
		if len(set) > 1 {
			st.MigratedProcesses++
		}
	}
	st.DataBlocks = len(blocks)
	sharedByPID := map[uint64]bool{}
	for b, bi := range blocks {
		if len(bi.pids) > 1 {
			st.SharedBlocksByProcess++
			sharedByPID[b] = true
		}
		if len(bi.cpus) > 1 {
			st.SharedBlocksByCPU++
		}
	}
	for _, r := range refs {
		st.DataRefs++
		if sharedByPID[Block(r.Addr, blockBytes)] {
			st.RefsToSharedByProcess++
		}
	}
	return st, nil
}

// SharedRefFraction returns the fraction of data references that touch
// process-shared blocks. Section 5 attributes PERO's low bus traffic to
// this fraction being much smaller than in POPS and THOR.
func (s Stats) SharedRefFraction() float64 {
	if s.DataRefs == 0 {
		return 0
	}
	return float64(s.RefsToSharedByProcess) / float64(s.DataRefs)
}

// LockReadFraction returns the fraction of data reads that are spin-lock
// tests.
func (s Stats) LockReadFraction() float64 {
	if s.DataRd == 0 {
		return 0
	}
	return float64(s.LockReads) / float64(s.DataRd)
}

// ReadWriteRatio returns data reads per data write.
func (s Stats) ReadWriteRatio() float64 {
	if s.DataWr == 0 {
		return 0
	}
	return float64(s.DataRd) / float64(s.DataWr)
}

// Histogram is an integer-bucketed histogram with a dense bucket slice.
// Bucket i counts observations of value i; values beyond the last bucket
// grow the slice.
type Histogram struct {
	Counts []uint64
	total  uint64
}

// Observe records one observation of value v (v ≥ 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		panic(fmt.Sprintf("trace: negative histogram value %d", v))
	}
	for v >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the fraction of observations with value v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.total)
}

// CumulativeFraction returns the fraction of observations with value ≤ v.
func (h *Histogram) CumulativeFraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for i := 0; i <= v && i < len(h.Counts); i++ {
		sum += h.Counts[i]
	}
	return float64(sum) / float64(h.total)
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for v, c := range h.Counts {
		sum += uint64(v) * c
	}
	return float64(sum) / float64(h.total)
}

// Max returns the largest observed value, or -1 if empty.
func (h *Histogram) Max() int {
	for v := len(h.Counts) - 1; v >= 0; v-- {
		if h.Counts[v] > 0 {
			return v
		}
	}
	return -1
}

// addTotal adjusts the observation count when buckets are filled in bulk.
func (h *Histogram) addTotal(n uint64) { h.total += n }

// histogramJSON is the wire form of a Histogram. The observation count is
// not serialised: it is, invariantly, the sum of the buckets, and
// recomputing it on decode means a histogram can never arrive with the
// two out of step.
type histogramJSON struct {
	Counts []uint64 `json:"counts"`
}

// MarshalJSON encodes the bucket slice; see histogramJSON.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Counts: h.Counts})
}

// UnmarshalJSON decodes the bucket slice and recomputes the observation
// count, so Mean, Fraction and Total keep working on a decoded histogram.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.Counts = w.Counts
	h.total = 0
	for _, c := range w.Counts {
		h.total += c
	}
	return nil
}

// Add accumulates other into h.
func (h *Histogram) Add(other *Histogram) {
	for v, c := range other.Counts {
		for v >= len(h.Counts) {
			h.Counts = append(h.Counts, 0)
		}
		h.Counts[v] += c
	}
	h.total += other.total
}

// TopPIDs returns the n most frequent process IDs in the trace, for
// diagnostics. Ties break toward smaller PIDs.
func TopPIDs(refs []Ref, n int) []uint16 {
	counts := map[uint16]int{}
	for _, r := range refs {
		counts[r.PID]++
	}
	pids := make([]uint16, 0, len(counts))
	for p := range counts {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool {
		if counts[pids[i]] != counts[pids[j]] {
			return counts[pids[i]] > counts[pids[j]]
		}
		return pids[i] < pids[j]
	})
	if len(pids) > n {
		pids = pids[:n]
	}
	return pids
}
