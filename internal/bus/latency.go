package bus

import "fmt"

// LatencyModel prices operations by the stall time the *processor* sees,
// rather than by the bus occupancy the CostModel charges. Section 5.1
// argues that "a better metric [than bus cycles] … is average memory
// access time as seen by each processor", and that every bus transaction
// carries a fixed latency overhead (cache access, bus controller
// propagation, arbitration) of at least one bus cycle that the occupancy
// metric hides.
//
// The model is deliberately simple, matching the paper's first-order
// treatment: a reference that stays in the cache costs HitCycles; a
// reference that uses the bus additionally stalls for the priced
// operations plus a fixed Overhead per transaction.
type LatencyModel struct {
	// Name identifies the model in reports.
	Name string
	// HitCycles is the processor-visible cost of a cache hit.
	HitCycles float64
	// Overhead is the fixed per-transaction latency (arbitration,
	// controller propagation, initial cache probe) — the paper's
	// "additional waiting time … will be at least one bus cycle".
	Overhead float64
	// Cost holds the stall cycles per operation, typically the bus
	// occupancy costs of the corresponding CostModel.
	Cost [NumOps]float64
}

// Latency derives a processor-latency model from a bus cost model with the
// given per-transaction overhead.
func (m CostModel) Latency(hitCycles, overhead float64) LatencyModel {
	return LatencyModel{
		Name:      m.Name,
		HitCycles: hitCycles,
		Overhead:  overhead,
		Cost:      m.Cost,
	}
}

// Validate checks the model.
func (l LatencyModel) Validate() error {
	if l.HitCycles < 0 || l.Overhead < 0 {
		return fmt.Errorf("bus: negative latency parameters")
	}
	return nil
}

// AvgAccessTime computes the mean processor-visible cycles per reference:
// every reference pays the hit time; references that used the bus
// additionally pay their operations and the fixed overhead.
// refs and transactions come from a run's Stats; ops is its operation
// tally.
func (l LatencyModel) AvgAccessTime(refs, transactions uint64, ops OpCounts) float64 {
	if refs == 0 {
		return 0
	}
	var stall float64
	for op, n := range ops {
		stall += float64(n) * l.Cost[op]
	}
	stall += float64(transactions) * l.Overhead
	return l.HitCycles + stall/float64(refs)
}
