// Package bus models the shared-bus (or network) communication costs of
// Section 4.3 of the paper.
//
// The paper's basic metric is "bus cycles per memory reference": event
// frequencies measured by simulation are weighted by per-event costs derived
// from a small table of fundamental bus operation timings (Table 1) under
// two bus organisations of widely diverse complexity — a pipelined bus with
// separate address and data paths, and a non-pipelined bus that multiplexes
// address and data (Table 2). Because the cost model is independent of the
// event frequencies, one simulation run per protocol suffices and hardware
// assumptions can be varied afterwards; this package is that second half.
package bus

import "fmt"

// Op enumerates the bus operations coherence engines emit. Each operation
// corresponds to one cost row of Table 2.
type Op uint8

const (
	// OpMemRead is a block fetch supplied by main memory.
	OpMemRead Op = iota
	// OpCacheRead is a block fetch supplied by another cache.
	OpCacheRead
	// OpWriteBack is a dirty block copied back to memory. Per Section
	// 4.3, the requesting cache (if any) receives the data during the
	// write-back, so no separate fetch follows.
	OpWriteBack
	// OpWriteThrough is a single-word write transmitted to memory (WTI).
	OpWriteThrough
	// OpWriteUpdate is a single-word update broadcast to other caches
	// (Dragon).
	OpWriteUpdate
	// OpDirCheck is a directory lookup that cannot be overlapped with a
	// memory access (e.g. a write hit to a clean block in Dir0B).
	OpDirCheck
	// OpDirCheckOverlapped is a directory lookup whose address transfer
	// and wait are fully hidden behind a concurrent memory access. It
	// costs zero bus cycles but is counted so that directory bandwidth
	// can be compared with memory bandwidth (Section 5's "the required
	// directory bandwidth is only slightly higher than the bandwidth to
	// memory").
	OpDirCheckOverlapped
	// OpInvalidate is one directed invalidation message to one cache.
	OpInvalidate
	// OpBroadcastInvalidate is a bus-wide invalidation broadcast. The
	// paper's base model charges it one cycle, like a single invalidate;
	// Section 6 studies the effect of making it cost b cycles.
	OpBroadcastInvalidate

	// NumOps is the number of operation kinds.
	NumOps = int(OpBroadcastInvalidate) + 1
)

var opNames = [NumOps]string{
	"mem access", "cache access", "write-back", "write-through",
	"write update", "dir access", "dir access (overlapped)",
	"invalidate", "broadcast invalidate",
}

// String returns the Table 5 row label for the operation.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Ops lists every operation in declaration order.
func Ops() []Op {
	out := make([]Op, NumOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// OpCounts tallies emitted operations.
type OpCounts [NumOps]uint64

// Add increments the count for op by n.
func (c *OpCounts) Add(op Op, n uint64) { c[op] += n }

// Inc increments the count for op by one.
func (c *OpCounts) Inc(op Op) { c[op]++ }

// Merge accumulates other into c.
func (c *OpCounts) Merge(other OpCounts) {
	for i, v := range other {
		c[i] += v
	}
}

// Total returns the total number of operations (including zero-cost
// overlapped directory checks).
func (c *OpCounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Timing holds the fundamental bus operation timings of Table 1, plus the
// block size in words (the paper transfers 4-word blocks over a one-word
// bus).
type Timing struct {
	TransferAddress  int // cycles to send an address
	TransferDataWord int // cycles to move one data word
	Invalidate       int // cycles for one invalidation message
	WaitDirectory    int // directory access latency
	WaitMemory       int // memory access latency
	WaitCache        int // non-local cache access latency
	WordsPerBlock    int // block transfer length in words
}

// DefaultTiming returns Table 1 exactly: one-cycle address and data-word
// transfers and invalidates, two-cycle directory and memory waits, a
// one-cycle cache wait, and four-word blocks.
func DefaultTiming() Timing {
	return Timing{
		TransferAddress:  1,
		TransferDataWord: 1,
		Invalidate:       1,
		WaitDirectory:    2,
		WaitMemory:       2,
		WaitCache:        1,
		WordsPerBlock:    4,
	}
}

// Validate checks the timing for nonsensical values.
func (t Timing) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"TransferAddress", t.TransferAddress},
		{"TransferDataWord", t.TransferDataWord},
		{"Invalidate", t.Invalidate},
		{"WordsPerBlock", t.WordsPerBlock},
	} {
		if f.v <= 0 {
			return fmt.Errorf("bus: %s = %d must be positive", f.name, f.v)
		}
	}
	if t.WaitDirectory < 0 || t.WaitMemory < 0 || t.WaitCache < 0 {
		return fmt.Errorf("bus: wait times must be non-negative")
	}
	return nil
}

// CostModel maps operations to bus-cycle costs. It corresponds to one
// column pair of Table 2.
type CostModel struct {
	// Name identifies the model in reports ("pipelined"/"non-pipelined").
	Name string
	// Cost holds bus cycles per operation.
	Cost [NumOps]float64
}

// Pipelined derives the paper's pipelined-bus cost model from t: separate
// address and data paths, and the bus is not held during memory or cache
// access waits. A block access costs the address transfer plus the block's
// data words; a write-back streams the block in WordsPerBlock cycles with
// the address riding alongside the first word; single-word writes take one
// data-word transfer; a standalone directory check is just the address
// send; invalidates take their Table 1 cost.
func (t Timing) Pipelined() CostModel {
	block := float64(t.TransferAddress + t.WordsPerBlock*t.TransferDataWord)
	var m CostModel
	m.Name = "pipelined"
	m.Cost[OpMemRead] = block
	m.Cost[OpCacheRead] = block
	m.Cost[OpWriteBack] = float64(t.WordsPerBlock * t.TransferDataWord)
	m.Cost[OpWriteThrough] = float64(t.TransferDataWord)
	m.Cost[OpWriteUpdate] = float64(t.TransferDataWord)
	m.Cost[OpDirCheck] = float64(t.TransferAddress)
	m.Cost[OpDirCheckOverlapped] = 0
	m.Cost[OpInvalidate] = float64(t.Invalidate)
	m.Cost[OpBroadcastInvalidate] = float64(t.Invalidate)
	return m
}

// NonPipelined derives the paper's non-pipelined-bus cost model from t:
// address and data multiplex one set of lines and the bus is held during
// the access wait. Memory reads add the memory wait, cache reads the cache
// wait; write-backs still stream in WordsPerBlock cycles (the memory-side
// wait is not on the bus's critical path); single-word writes send address
// then data; a standalone directory check sends the address and waits out
// the directory latency.
func (t Timing) NonPipelined() CostModel {
	var m CostModel
	m.Name = "non-pipelined"
	m.Cost[OpMemRead] = float64(t.TransferAddress + t.WaitMemory + t.WordsPerBlock*t.TransferDataWord)
	m.Cost[OpCacheRead] = float64(t.TransferAddress + t.WaitCache + t.WordsPerBlock*t.TransferDataWord)
	m.Cost[OpWriteBack] = float64(t.WordsPerBlock * t.TransferDataWord)
	m.Cost[OpWriteThrough] = float64(t.TransferAddress + t.TransferDataWord)
	m.Cost[OpWriteUpdate] = float64(t.TransferAddress + t.TransferDataWord)
	m.Cost[OpDirCheck] = float64(t.TransferAddress + t.WaitDirectory)
	m.Cost[OpDirCheckOverlapped] = 0
	m.Cost[OpInvalidate] = float64(t.Invalidate)
	m.Cost[OpBroadcastInvalidate] = float64(t.Invalidate)
	return m
}

// Pipelined returns the default pipelined cost model (Table 2, left column).
func Pipelined() CostModel { return DefaultTiming().Pipelined() }

// NonPipelined returns the default non-pipelined cost model (Table 2, right
// column).
func NonPipelined() CostModel { return DefaultTiming().NonPipelined() }

// WithBroadcastCost returns a copy of m in which a broadcast invalidation
// costs b cycles. Section 6 models a Dir1B scheme as 0.0485 + 0.0006·b
// cycles per reference using exactly this knob.
func (m CostModel) WithBroadcastCost(b float64) CostModel {
	m.Cost[OpBroadcastInvalidate] = b
	return m
}

// WithDirCheckCost returns a copy of m in which a standalone directory
// check costs d cycles. Section 5 derives the Berkeley Ownership cost model
// from Dir0B "by trivially setting the directory access cost to 0 bus
// cycles" — the snooping caches already know whether an invalidation is
// needed.
func (m CostModel) WithDirCheckCost(d float64) CostModel {
	m.Cost[OpDirCheck] = d
	return m
}

// Cycles prices an operation tally under the model.
func (m CostModel) Cycles(counts OpCounts) float64 {
	var total float64
	for op, n := range counts {
		total += float64(n) * m.Cost[op]
	}
	return total
}

// CyclesByOp prices each operation class separately (Table 5's rows).
func (m CostModel) CyclesByOp(counts OpCounts) [NumOps]float64 {
	var out [NumOps]float64
	for op, n := range counts {
		out[op] = float64(n) * m.Cost[op]
	}
	return out
}

// EffectiveProcessors computes the paper's closing back-of-envelope bound:
// the maximum number of processors a single bus sustains. cyclesPerRef is
// the protocol's bus cycles per memory reference, refsPerInstr the average
// references (instruction fetch + data) per instruction (the paper uses 2:
// "on average each instruction in the traces makes one data reference"),
// mips the processor speed in millions of instructions per second, and
// busCycleNs the bus cycle time in nanoseconds. With the paper's numbers
// (0.03 cycles/ref, 10 MIPS, 100 ns) the bound is about 15-17 processors.
func EffectiveProcessors(cyclesPerRef, refsPerInstr, mips, busCycleNs float64) float64 {
	if cyclesPerRef <= 0 || refsPerInstr <= 0 || mips <= 0 || busCycleNs <= 0 {
		return 0
	}
	busCyclesPerSec := 1e9 / busCycleNs
	cyclesPerProcPerSec := cyclesPerRef * refsPerInstr * mips * 1e6
	return busCyclesPerSec / cyclesPerProcPerSec
}
