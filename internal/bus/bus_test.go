package bus

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Table 2 of the paper, derived from Table 1. These are the exact published
// numbers; the cost-model constructors must reproduce them.
func TestTable2PipelinedCosts(t *testing.T) {
	m := Pipelined()
	want := map[Op]float64{
		OpMemRead:             5,
		OpCacheRead:           5,
		OpWriteBack:           4,
		OpWriteThrough:        1,
		OpWriteUpdate:         1,
		OpDirCheck:            1,
		OpDirCheckOverlapped:  0,
		OpInvalidate:          1,
		OpBroadcastInvalidate: 1,
	}
	for op, w := range want {
		if got := m.Cost[op]; got != w {
			t.Errorf("pipelined %v = %v, want %v", op, got, w)
		}
	}
}

func TestTable2NonPipelinedCosts(t *testing.T) {
	m := NonPipelined()
	want := map[Op]float64{
		OpMemRead:             7,
		OpCacheRead:           6,
		OpWriteBack:           4,
		OpWriteThrough:        2,
		OpWriteUpdate:         2,
		OpDirCheck:            3,
		OpDirCheckOverlapped:  0,
		OpInvalidate:          1,
		OpBroadcastInvalidate: 1,
	}
	for op, w := range want {
		if got := m.Cost[op]; got != w {
			t.Errorf("non-pipelined %v = %v, want %v", op, got, w)
		}
	}
}

func TestNonPipelinedAtLeastPipelined(t *testing.T) {
	p, np := Pipelined(), NonPipelined()
	for _, op := range Ops() {
		if np.Cost[op] < p.Cost[op] {
			t.Errorf("%v: non-pipelined %v < pipelined %v", op, np.Cost[op], p.Cost[op])
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	bad := DefaultTiming()
	bad.WordsPerBlock = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero block size accepted")
	}
	bad = DefaultTiming()
	bad.WaitMemory = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wait accepted")
	}
	bad = DefaultTiming()
	bad.TransferAddress = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero address transfer accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpMemRead.String() != "mem access" {
		t.Errorf("OpMemRead = %q", OpMemRead.String())
	}
	if OpWriteBack.String() != "write-back" {
		t.Errorf("OpWriteBack = %q", OpWriteBack.String())
	}
	if !strings.HasPrefix(Op(200).String(), "Op(") {
		t.Errorf("unknown op String = %q", Op(200).String())
	}
}

func TestOpsCoverAll(t *testing.T) {
	ops := Ops()
	if len(ops) != NumOps {
		t.Fatalf("Ops() has %d entries, want %d", len(ops), NumOps)
	}
	for i, op := range ops {
		if int(op) != i {
			t.Errorf("Ops()[%d] = %v", i, op)
		}
	}
}

func TestOpCounts(t *testing.T) {
	var c OpCounts
	c.Inc(OpMemRead)
	c.Add(OpInvalidate, 3)
	if c[OpMemRead] != 1 || c[OpInvalidate] != 3 {
		t.Fatalf("counts = %v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d, want 4", c.Total())
	}
	var d OpCounts
	d.Inc(OpMemRead)
	c.Merge(d)
	if c[OpMemRead] != 2 || c.Total() != 5 {
		t.Fatalf("after Merge: %v", c)
	}
}

func TestCycles(t *testing.T) {
	var c OpCounts
	c.Add(OpMemRead, 10)             // 10×5 = 50
	c.Add(OpWriteBack, 2)            // 2×4 = 8
	c.Add(OpInvalidate, 5)           // 5×1 = 5
	c.Add(OpDirCheckOverlapped, 100) // free
	got := Pipelined().Cycles(c)
	if got != 63 {
		t.Fatalf("Cycles = %v, want 63", got)
	}
	by := Pipelined().CyclesByOp(c)
	if by[OpMemRead] != 50 || by[OpWriteBack] != 8 || by[OpInvalidate] != 5 {
		t.Fatalf("CyclesByOp = %v", by)
	}
	var sum float64
	for _, v := range by {
		sum += v
	}
	if math.Abs(sum-got) > 1e-9 {
		t.Fatalf("CyclesByOp sum %v != Cycles %v", sum, got)
	}
}

func TestWithBroadcastCost(t *testing.T) {
	m := Pipelined().WithBroadcastCost(16)
	if m.Cost[OpBroadcastInvalidate] != 16 {
		t.Fatalf("broadcast cost = %v", m.Cost[OpBroadcastInvalidate])
	}
	// Original model unchanged (value semantics).
	if Pipelined().Cost[OpBroadcastInvalidate] != 1 {
		t.Fatal("WithBroadcastCost mutated the base model")
	}
}

func TestWithDirCheckCost(t *testing.T) {
	// Berkeley derivation: directory checks become free.
	m := Pipelined().WithDirCheckCost(0)
	if m.Cost[OpDirCheck] != 0 {
		t.Fatalf("dir check cost = %v", m.Cost[OpDirCheck])
	}
	var c OpCounts
	c.Add(OpDirCheck, 100)
	if m.Cycles(c) != 0 {
		t.Fatal("free dir checks still priced")
	}
}

// The paper's closing estimate: ~0.03 cycles/ref, 10 MIPS processors, a
// 100 ns bus ⇒ a maximum of about 15 effective processors.
func TestEffectiveProcessorsPaperNumbers(t *testing.T) {
	got := EffectiveProcessors(1.0/30, 2, 10, 100)
	if got < 14 || got > 16 {
		t.Fatalf("EffectiveProcessors = %.1f, want ≈15", got)
	}
}

func TestEffectiveProcessorsDegenerate(t *testing.T) {
	if EffectiveProcessors(0, 2, 10, 100) != 0 {
		t.Error("zero cycles/ref should give 0")
	}
	if EffectiveProcessors(0.03, 2, 0, 100) != 0 {
		t.Error("zero MIPS should give 0")
	}
}

// Property: for any valid timing, cost models are monotone in the timing
// fields (raising a Table 1 entry never lowers any Table 2 cost).
func TestQuickCostsMonotone(t *testing.T) {
	f := func(ta, td, inv, wd, wm, wc, wpb uint8) bool {
		base := Timing{
			TransferAddress:  1 + int(ta%4),
			TransferDataWord: 1 + int(td%4),
			Invalidate:       1 + int(inv%4),
			WaitDirectory:    int(wd % 5),
			WaitMemory:       int(wm % 5),
			WaitCache:        int(wc % 5),
			WordsPerBlock:    1 + int(wpb%8),
		}
		bumped := base
		bumped.WaitMemory++
		bumped.WordsPerBlock++
		for _, pair := range [][2]CostModel{
			{base.Pipelined(), bumped.Pipelined()},
			{base.NonPipelined(), bumped.NonPipelined()},
		} {
			for _, op := range Ops() {
				if pair[1].Cost[op] < pair[0].Cost[op] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cycles is linear — pricing a merged tally equals the sum of the
// individual prices.
func TestQuickCyclesLinear(t *testing.T) {
	f := func(a, b [NumOps]uint16) bool {
		var ca, cb, both OpCounts
		for i := 0; i < NumOps; i++ {
			ca[i] = uint64(a[i])
			cb[i] = uint64(b[i])
			both[i] = uint64(a[i]) + uint64(b[i])
		}
		m := NonPipelined()
		return math.Abs(m.Cycles(both)-(m.Cycles(ca)+m.Cycles(cb))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModelDerivation(t *testing.T) {
	l := Pipelined().Latency(1, 1)
	if l.Name != "pipelined" || l.HitCycles != 1 || l.Overhead != 1 {
		t.Fatalf("derived model = %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := LatencyModel{HitCycles: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative hit time accepted")
	}
}

func TestAvgAccessTime(t *testing.T) {
	l := Pipelined().Latency(1, 1)
	var ops OpCounts
	ops.Add(OpMemRead, 10) // 10×5 = 50 stall cycles
	// 100 refs, 10 transactions: 1 + (50 + 10×1)/100 = 1.6.
	if got := l.AvgAccessTime(100, 10, ops); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("AvgAccessTime = %v, want 1.6", got)
	}
	if l.AvgAccessTime(0, 0, ops) != 0 {
		t.Error("zero refs should price to zero")
	}
	// With zero overhead and zero hit time, latency per ref equals bus
	// cycles per ref.
	free := Pipelined().Latency(0, 0)
	if got := free.AvgAccessTime(100, 10, ops); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AvgAccessTime = %v, want 0.5", got)
	}
}

// Section 5.1's qualitative claim: per-transaction overhead penalises the
// scheme with more transactions, shrinking Dragon's advantage in latency
// terms relative to its bus-occupancy advantage.
func TestLatencyOverheadPenalisesFrequentTransactions(t *testing.T) {
	var dragonOps, dir0bOps OpCounts
	// Dragon: many cheap updates. Dir0B: fewer, heavier misses.
	dragonOps.Add(OpWriteUpdate, 200)
	dir0bOps.Add(OpMemRead, 40)
	m := Pipelined()
	base := m.Latency(1, 0)
	loaded := m.Latency(1, 1)
	gapNoOverhead := base.AvgAccessTime(1000, 40, dir0bOps) - base.AvgAccessTime(1000, 200, dragonOps)
	gapOverhead := loaded.AvgAccessTime(1000, 40, dir0bOps) - loaded.AvgAccessTime(1000, 200, dragonOps)
	if gapOverhead >= gapNoOverhead {
		t.Fatalf("overhead did not shrink the gap: %v → %v", gapNoOverhead, gapOverhead)
	}
}
