// Package spec is the serialisable description of simulation work: which
// trace to generate, which schemes to run over it, on what machine
// geometry, under which driver options. Every execution surface —
// cmd/sweep's grid, cmd/paper's sections, the dirsimd daemon's job API —
// describes cells with these types, so a cell means exactly the same
// thing locally and over the wire.
//
// Specs double as cache keys. Canonical renders a spec as canonical JSON
// (object keys sorted, numbers in Go's shortest round-trip form, no
// insignificant whitespace) and Hash digests that encoding with SHA-256;
// two specs hash equal if and only if they describe the same work, which
// is what lets the daemon deduplicate concurrent identical requests and
// serve repeats from its content-addressed result cache. The encoding is
// pinned by golden-hash tests: a change that shifts any hash is a cache
// format break and must be made deliberately.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dirsim/internal/coherence"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/study"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// Sim is the serialisable subset of sim.Options a cell may set. The
// driver-tuning knobs (Parallel, OnProgress) deliberately stay out: they
// change how a result is computed, never what it is, so they must not
// perturb the cache key.
type Sim struct {
	// BlockBytes overrides the coherence block size (0 = the paper's 16).
	BlockBytes int `json:"block_bytes,omitempty"`
	// CacheByProcess selects per-process caches instead of per-CPU.
	CacheByProcess bool `json:"cache_by_process,omitempty"`
	// IncludeFirstRefCosts prices cold misses instead of excluding them.
	IncludeFirstRefCosts bool `json:"include_first_ref_costs,omitempty"`
	// WarmupRefs discards the tallies of that many leading references.
	WarmupRefs int `json:"warmup_refs,omitempty"`
}

// Options expands the wire form into driver options.
func (s Sim) Options() sim.Options {
	o := sim.Options{
		BlockBytes:           s.BlockBytes,
		IncludeFirstRefCosts: s.IncludeFirstRefCosts,
		WarmupRefs:           s.WarmupRefs,
	}
	if s.CacheByProcess {
		o.CacheBy = sim.ByProcess
	}
	return o
}

// Cell is one independent simulation: a generated trace, an optional
// filter over it, and the scheme set to run in lockstep.
type Cell struct {
	// Trace parameterises the synthetic trace generator; equal configs
	// generate identical traces, which is what makes cells cacheable.
	Trace tracegen.Config `json:"trace"`
	// Filter names a trace filter from FilterNames (empty = none).
	Filter string `json:"filter,omitempty"`
	// Schemes are the coherence engines to run (coherence.NewByName
	// names, case-insensitive).
	Schemes []string `json:"schemes"`
	// Machine is the cache/directory geometry shared by all schemes.
	Machine coherence.Config `json:"machine"`
	// Sim tunes the simulation driver.
	Sim Sim `json:"sim"`
}

// filterFunc resolves a filter name. The registry is closed: adding a
// filter here extends every execution surface at once.
func filterFunc(name string) (func(trace.Reader) trace.Reader, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "none":
		return nil, nil
	case "droplockspins":
		return trace.DropLockSpins, nil
	default:
		return nil, fmt.Errorf("spec: unknown trace filter %q", name)
	}
}

// FilterNames lists the trace filters a Cell may name.
func FilterNames() []string { return []string{"droplockspins"} }

// normalized returns a copy with scheme names trimmed and lower-cased and
// the filter name in its canonical spelling, so cosmetic differences in a
// request cannot produce distinct cache keys.
func (c Cell) normalized() Cell {
	out := c
	out.Schemes = make([]string, len(c.Schemes))
	for i, s := range c.Schemes {
		out.Schemes[i] = strings.ToLower(strings.TrimSpace(s))
	}
	f := strings.ToLower(strings.TrimSpace(c.Filter))
	if f == "none" {
		f = ""
	}
	out.Filter = f
	return out
}

// Validate checks every part of the cell, including that each scheme name
// resolves to an engine under the cell's machine configuration.
func (c Cell) Validate() error {
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if err := c.Sim.Options().Validate(); err != nil {
		return err
	}
	if _, err := filterFunc(c.Filter); err != nil {
		return err
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("spec: cell has no schemes")
	}
	for _, s := range c.Schemes {
		if _, err := coherence.NewByName(s, c.Machine); err != nil {
			return err
		}
	}
	return nil
}

// Label identifies the cell in errors, progress output and manifests.
func (c Cell) Label() string {
	return fmt.Sprintf("%s cpus %d seed %d", c.Trace.Name, c.Trace.CPUs, c.Trace.Seed)
}

// Canonical renders the cell as canonical JSON: object keys sorted,
// numbers exactly as Go's shortest round-trip formatting emits them, no
// insignificant whitespace. This is the byte string cache keys digest.
func (c Cell) Canonical() ([]byte, error) {
	return canonicalJSON(c.normalized())
}

// Hash returns the hex SHA-256 of the canonical encoding — the cell's
// content address.
func (c Cell) Hash() (string, error) {
	b, err := c.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Job compiles the cell into a runner job. The trace source re-opens the
// generator (and re-applies the filter) on every attempt, so retries see
// a fresh stream.
func (c Cell) Job() (runner.Job, error) {
	if err := c.Validate(); err != nil {
		return runner.Job{}, err
	}
	filter, err := filterFunc(c.Filter)
	if err != nil {
		return runner.Job{}, err
	}
	cfg := c.Trace
	return runner.Job{
		Label: c.Label(),
		Source: func() (trace.Reader, error) {
			g, err := tracegen.New(cfg)
			if err != nil {
				return nil, err
			}
			if filter != nil {
				return filter(g), nil
			}
			return g, nil
		},
		Schemes: append([]string(nil), c.Schemes...),
		Config:  c.Machine,
		Opts:    c.Sim.Options(),
	}, nil
}

// Preset returns the named workload preset ("pops", "thor" or "pero",
// case-insensitive) sized to refs references.
func Preset(name string, refs int) (tracegen.Config, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pops":
		return tracegen.POPS(refs), nil
	case "thor":
		return tracegen.THOR(refs), nil
	case "pero":
		return tracegen.PERO(refs), nil
	default:
		return tracegen.Config{}, fmt.Errorf("spec: unknown workload %q", name)
	}
}

// CanonicalSchemes resolves each scheme name to its engine's display name
// (e.g. "dir1nb" → "Dir1NB") under a machine with the given cache count,
// failing fast on any name NewByName rejects.
func CanonicalSchemes(schemes []string, caches int) ([]string, error) {
	out := make([]string, len(schemes))
	for i, name := range schemes {
		e, err := coherence.NewByName(name, coherence.Config{Caches: caches})
		if err != nil {
			return nil, err
		}
		out[i] = e.Name()
	}
	return out, nil
}

// Sweep is a replicated grid: every workload × processor count cell,
// each run once per seed with all schemes in lockstep. It is the wire
// form of cmd/sweep's flag set.
type Sweep struct {
	// Workloads are preset names (see Preset).
	Workloads []string `json:"workloads"`
	// Schemes run in lockstep within every cell.
	Schemes []string `json:"schemes"`
	// CPUs are the machine sizes to sweep.
	CPUs []int `json:"cpus"`
	// Refs is the trace length per cell.
	Refs int `json:"refs"`
	// Seeds is the number of replications per grid point; the seed
	// values come from study.Seeds(1, Seeds), matching cmd/sweep.
	Seeds int `json:"seeds"`
}

// Validate checks the grid parameters.
func (s Sweep) Validate() error {
	if len(s.Workloads) == 0 || len(s.Schemes) == 0 || len(s.CPUs) == 0 {
		return fmt.Errorf("spec: sweep needs workloads, schemes and cpus")
	}
	if s.Refs <= 0 || s.Seeds <= 0 {
		return fmt.Errorf("spec: sweep refs and seeds must be positive")
	}
	_, err := s.Cells()
	return err
}

// Cells flattens the grid in (workload, cpus, seed) order — cell index
// i/Seeds, replication i%Seeds — the order cmd/sweep streams rows in.
func (s Sweep) Cells() ([]Cell, error) {
	if s.Refs <= 0 || s.Seeds <= 0 {
		return nil, fmt.Errorf("spec: sweep refs and seeds must be positive")
	}
	seeds := study.Seeds(1, s.Seeds)
	var cells []Cell
	for _, wl := range s.Workloads {
		base, err := Preset(wl, s.Refs)
		if err != nil {
			return nil, err
		}
		for _, n := range s.CPUs {
			if n < 1 {
				return nil, fmt.Errorf("spec: bad cpu count %d", n)
			}
			cfg := base
			cfg.CPUs = n
			for _, seed := range seeds {
				cell := Cell{
					Trace:   cfg,
					Schemes: append([]string(nil), s.Schemes...),
					Machine: coherence.Config{Caches: n},
				}
				cell.Trace.Seed = seed
				if err := cell.Validate(); err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Request is what the daemon's POST /v1/jobs accepts: exactly one of a
// single cell or a sweep grid, plus the schema version the spec was
// written against.
type Request struct {
	// Version is the spec schema version (see CurrentVersion). Zero on
	// the wire means "current"; Canonical always pins it, so the version
	// is part of every request's content hash and a schema bump can
	// never collide with a previous generation's cache entries.
	Version int    `json:"version,omitempty"`
	Cell    *Cell  `json:"cell,omitempty"`
	Sweep   *Sweep `json:"sweep,omitempty"`
}

// Validate checks that exactly one spec kind is present and valid.
func (r Request) Validate() error {
	if err := checkRequestVersion(r.Version); err != nil {
		return err
	}
	switch {
	case r.Cell != nil && r.Sweep != nil:
		return fmt.Errorf("spec: request has both cell and sweep")
	case r.Cell != nil:
		return r.Cell.Validate()
	case r.Sweep != nil:
		return r.Sweep.Validate()
	default:
		return fmt.Errorf("spec: request has neither cell nor sweep")
	}
}

// Cells expands the request into its execution cells.
func (r Request) Cells() ([]Cell, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.Cell != nil {
		return []Cell{*r.Cell}, nil
	}
	return r.Sweep.Cells()
}

// Canonical renders the request as canonical JSON (see Cell.Canonical).
// The schema version is always pinned — an unversioned wire request
// canonicalises (and hashes) identically to one pinning CurrentVersion.
func (r Request) Canonical() ([]byte, error) {
	out := r
	if out.Version == 0 {
		out.Version = CurrentVersion
	}
	if r.Cell != nil {
		c := r.Cell.normalized()
		out.Cell = &c
	}
	return canonicalJSON(out)
}

// Hash returns the request's content address: the hex SHA-256 of its
// canonical encoding.
func (r Request) Hash() (string, error) {
	b, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalJSON marshals v with encoding/json, then re-emits the value
// with object keys sorted and number literals preserved verbatim. Go's
// number formatting is already the shortest form that round-trips, so the
// result is a deterministic function of the value alone.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical emits one canonical-JSON value.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("spec: %w", err)
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(string(x))
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		buf.Write(b)
	}
	return nil
}
