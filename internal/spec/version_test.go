package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"testing"
)

// Requests from another schema generation must fail validation with the
// typed error — the daemon answers 400, it never guesses.
func TestRequestVersionValidation(t *testing.T) {
	c := testCell(t)
	for _, v := range []int{0, CurrentVersion} {
		r := Request{Version: v, Cell: &c}
		if err := r.Validate(); err != nil {
			t.Errorf("version %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{-1, CurrentVersion + 1, 99} {
		r := Request{Version: v, Cell: &c}
		err := r.Validate()
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Errorf("version %d: err = %v, want *VersionError", v, err)
		}
	}
}

// CheckDocVersion accepts exactly the current generation and classifies
// everything else as a typed mismatch.
func TestCheckDocVersion(t *testing.T) {
	ok := fmt.Sprintf(`{"spec_version":%d,"status":"done"}`, CurrentVersion)
	if err := CheckDocVersion([]byte(ok)); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	cases := []struct {
		name string
		doc  string
	}{
		{"missing", `{"status":"done"}`},
		{"null", `{"spec_version":null}`},
		{"wrong-generation", fmt.Sprintf(`{"spec_version":%d}`, CurrentVersion+1)},
		{"zero", `{"spec_version":0}`},
		{"negative", `{"spec_version":-3}`},
		{"string", `{"spec_version":"1"}`},
		{"float", `{"spec_version":1.5}`},
		{"object", `{"spec_version":{"v":1}}`},
		{"garbage-doc", `not json at all`},
		{"empty-doc", ``},
	}
	for _, tc := range cases {
		err := CheckDocVersion([]byte(tc.doc))
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Errorf("%s: err = %v, want *VersionError", tc.name, err)
		}
	}
}

// FuzzCheckDocVersion: no input may panic, and the only way to be
// accepted is to carry the integer CurrentVersion — anything else is the
// typed error, never a nil that would let a stale cache entry be served.
func FuzzCheckDocVersion(f *testing.F) {
	f.Add([]byte(fmt.Sprintf(`{"spec_version":%d}`, CurrentVersion)))
	f.Add([]byte(`{"spec_version":2}`))
	f.Add([]byte(`{"spec_version":"vintage"}`))
	f.Add([]byte(`{"spec_version":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"spec_version":18446744073709551616}`))
	f.Add([]byte(`{"spec_version":1e2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		err := CheckDocVersion(data)
		if err == nil {
			// Acceptance must imply a well-formed doc whose version field
			// independently parses to exactly CurrentVersion.
			var p struct {
				V json.RawMessage `json:"spec_version"`
			}
			if jerr := json.Unmarshal(data, &p); jerr != nil {
				t.Fatalf("accepted undecodable doc %q", data)
			}
			v, perr := strconv.Atoi(string(p.V))
			if perr != nil || v != CurrentVersion {
				t.Fatalf("accepted doc with version %q", p.V)
			}
			return
		}
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("untyped version error %T: %v", err, err)
		}
	})
}
