package spec

import (
	"encoding/json"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
)

// Wire types of the dirsimd job API, shared by the daemon and the remote
// client so the two cannot drift apart.

// SchemeResult is one engine's outcome within a cell: the full stats
// tally, from which any of the paper's metrics can be priced client-side
// exactly as a local run would.
type SchemeResult struct {
	Scheme string           `json:"scheme"`
	Stats  *coherence.Stats `json:"stats"`
}

// CellResult pairs a cell's canonical spec with its per-scheme results,
// in the cell's scheme order.
type CellResult struct {
	Spec    json.RawMessage `json:"spec"`
	Results []SchemeResult  `json:"results"`
}

// ResultDoc is the completed-job document: what GET /v1/jobs/{id}
// returns for a finished job, what the content-addressed cache stores,
// and what every concurrent identical submission receives byte for byte.
type ResultDoc struct {
	ID      string          `json:"id"`
	Status  string          `json:"status"`
	Request json.RawMessage `json:"request"`
	Cells   []CellResult    `json:"cells"`
}

// JobStatus is the response for a job that has not completed (and the
// envelope async submissions receive).
type JobStatus struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Error    string        `json:"error,omitempty"`
	Progress *obs.Snapshot `json:"progress,omitempty"`
}

// EnginesDoc is GET /v1/engines.
type EnginesDoc struct {
	Engines []string `json:"engines"`
	Filters []string `json:"filters"`
}
