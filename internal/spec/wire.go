package spec

import (
	"encoding/json"
	"fmt"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
)

// Wire types of the dirsimd job API, shared by the daemon and the remote
// client so the two cannot drift apart.

// SchemeResult is one engine's outcome within a cell: the full stats
// tally, from which any of the paper's metrics can be priced client-side
// exactly as a local run would.
type SchemeResult struct {
	Scheme string           `json:"scheme"`
	Stats  *coherence.Stats `json:"stats"`
}

// CellResult pairs a cell's canonical spec with its per-scheme results.
// Results stays raw JSON (an array of SchemeResult) so the daemon can
// splice stored per-cell documents into a merged result without a
// decode/re-encode round trip — byte identity across restarts holds by
// construction, not by trusting marshal stability.
type CellResult struct {
	Spec    json.RawMessage `json:"spec"`
	Results json.RawMessage `json:"results"`
}

// SchemeResults decodes the raw results array.
func (cr CellResult) SchemeResults() ([]SchemeResult, error) {
	var out []SchemeResult
	if err := json.Unmarshal(cr.Results, &out); err != nil {
		return nil, fmt.Errorf("spec: cell results: %w", err)
	}
	return out, nil
}

// CellDoc is one cell's durable result: what the daemon's per-cell disk
// cache stores under the cell's own content hash. A sweep interrupted by
// a crash resumes by re-reading these — cells with a stored CellDoc are
// never simulated twice. SpecVersion gates reuse exactly as it does for
// ResultDoc (see CheckDocVersion).
type CellDoc struct {
	SpecVersion int             `json:"spec_version"`
	Spec        json.RawMessage `json:"spec"`
	Results     json.RawMessage `json:"results"`
}

// VerifyCellDoc authenticates a cell document received from an
// untrusted transport (a cluster peer) against the content address it
// was requested under: the document must be from the current schema
// generation, its embedded spec must re-hash to exactly hash, and it
// must carry one result per scheme the spec names. A document that
// passes is as trustworthy as a locally simulated one — the hash the
// fetcher computed from its own cell is the ground truth, so a peer
// cannot substitute results for different work.
func VerifyCellDoc(hash string, data []byte) error {
	if err := CheckDocVersion(data); err != nil {
		return err
	}
	var cd CellDoc
	if err := json.Unmarshal(data, &cd); err != nil {
		return fmt.Errorf("spec: cell document: %w", err)
	}
	var c Cell
	if err := json.Unmarshal(cd.Spec, &c); err != nil {
		return fmt.Errorf("spec: cell document spec: %w", err)
	}
	got, err := c.Hash()
	if err != nil {
		return fmt.Errorf("spec: cell document spec: %w", err)
	}
	if got != hash {
		return fmt.Errorf("spec: cell document content address mismatch: spec hashes to %.12s…, requested %.12s…", got, hash)
	}
	var results []SchemeResult
	if err := json.Unmarshal(cd.Results, &results); err != nil {
		return fmt.Errorf("spec: cell document results: %w", err)
	}
	if len(results) != len(c.Schemes) {
		return fmt.Errorf("spec: cell document has %d results for %d schemes", len(results), len(c.Schemes))
	}
	return nil
}

// ResultDoc is the completed-job document: what GET /v1/jobs/{id}
// returns for a finished job, what the content-addressed cache stores,
// and what every concurrent identical submission receives byte for byte.
// SpecVersion records the schema generation that produced it; the cache
// refuses to serve documents from any other generation.
type ResultDoc struct {
	ID          string          `json:"id"`
	SpecVersion int             `json:"spec_version"`
	Status      string          `json:"status"`
	Request     json.RawMessage `json:"request"`
	Cells       []CellResult    `json:"cells"`
}

// JobStatus is the response for a job that has not completed (and the
// envelope async submissions receive).
type JobStatus struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Tenant   string        `json:"tenant,omitempty"`
	Class    string        `json:"class,omitempty"`
	Error    string        `json:"error,omitempty"`
	Progress *obs.Snapshot `json:"progress,omitempty"`
}

// EnginesDoc is GET /v1/engines.
type EnginesDoc struct {
	Engines []string `json:"engines"`
	Filters []string `json:"filters"`
}

// PeerMetrics is one fleet member's slice of the federated metrics
// document: its address, whether it is the answering daemon itself, and
// either its metrics snapshot (Up) or the fetch error that replaced it.
// A federation answer lists every membership peer, so a dead daemon is
// a visible row with Up=false — absence of data is itself data.
type PeerMetrics struct {
	Addr    string        `json:"addr"`
	Self    bool          `json:"self,omitempty"`
	Up      bool          `json:"up"`
	Error   string        `json:"error,omitempty"`
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ClusterMetricsDoc is GET /v1/cluster/metrics: the whole fleet's
// metrics in one response, fetched live from each peer's /metrics by
// the daemon that answers.
type ClusterMetricsDoc struct {
	Peers []PeerMetrics `json:"peers"`
}
