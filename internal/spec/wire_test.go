package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/tracegen"
)

// cellDocFor fabricates a cell document for the cell, with one result
// slot per scheme (stats may be nil: verification checks shape and
// address, not physics).
func cellDocFor(t *testing.T, c Cell) (hash string, data []byte) {
	t.Helper()
	canon, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err = c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	results := make([]SchemeResult, len(c.Schemes))
	for i, s := range c.Schemes {
		results[i] = SchemeResult{Scheme: s, Stats: &coherence.Stats{}}
	}
	rb, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(CellDoc{SpecVersion: CurrentVersion, Spec: canon, Results: rb})
	if err != nil {
		t.Fatal(err)
	}
	return hash, data
}

func verifyTestCell(t *testing.T) Cell {
	t.Helper()
	tc := tracegen.POPS(1_000)
	tc.CPUs = 2
	return Cell{Trace: tc, Schemes: []string{"dir0b", "wti"}, Machine: coherence.Config{Caches: 2}}
}

func TestVerifyCellDocAccepts(t *testing.T) {
	hash, data := cellDocFor(t, verifyTestCell(t))
	if err := VerifyCellDoc(hash, data); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

// A peer cannot substitute results for different work: a document whose
// embedded spec hashes differently from the requested address fails.
func TestVerifyCellDocWrongHash(t *testing.T) {
	_, data := cellDocFor(t, verifyTestCell(t))
	other := verifyTestCell(t)
	other.Trace.Refs = 2_000 // different cell, different address
	wrongHash, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyCellDoc(wrongHash, data)
	if err == nil || !strings.Contains(err.Error(), "content address mismatch") {
		t.Errorf("wrong-address document accepted (err=%v)", err)
	}
}

// Documents from another schema generation are refused before any
// content inspection.
func TestVerifyCellDocWrongVersion(t *testing.T) {
	c := verifyTestCell(t)
	hash, data := cellDocFor(t, c)
	var cd CellDoc
	if err := json.Unmarshal(data, &cd); err != nil {
		t.Fatal(err)
	}
	cd.SpecVersion = CurrentVersion + 1
	stale, err := json.Marshal(cd)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyCellDoc(hash, stale) == nil {
		t.Error("foreign-generation document accepted")
	}
}

// The document must carry exactly one result per scheme the spec names.
func TestVerifyCellDocResultCountMismatch(t *testing.T) {
	c := verifyTestCell(t)
	hash, data := cellDocFor(t, c)
	var cd CellDoc
	if err := json.Unmarshal(data, &cd); err != nil {
		t.Fatal(err)
	}
	var results []SchemeResult
	if err := json.Unmarshal(cd.Results, &results); err != nil {
		t.Fatal(err)
	}
	short, err := json.Marshal(results[:1])
	if err != nil {
		t.Fatal(err)
	}
	cd.Results = short
	truncated, err := json.Marshal(cd)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyCellDoc(hash, truncated)
	if err == nil || !strings.Contains(err.Error(), "results for") {
		t.Errorf("truncated results accepted (err=%v)", err)
	}
}

func TestVerifyCellDocGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("{"), []byte(`{"spec_version":0}`)} {
		if VerifyCellDoc("deadbeef", data) == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}
