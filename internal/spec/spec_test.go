package spec

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/tracegen"
)

func testCell(t *testing.T) Cell {
	t.Helper()
	return Cell{
		Trace:   tracegen.POPS(5_000),
		Schemes: []string{"dir0b", "dragon"},
		Machine: coherence.Config{Caches: 4},
	}
}

func TestCanonicalIsSortedAndStable(t *testing.T) {
	c := testCell(t)
	b1, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("canonical encoding not stable:\n%s\nvs\n%s", b1, b2)
	}
	// Keys of every object must appear sorted; spot-check the top level.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b1, &m); err != nil {
		t.Fatalf("canonical bytes are not JSON: %v", err)
	}
	s := string(b1)
	if strings.Index(s, `"filter"`) > strings.Index(s, `"machine"`) && strings.Contains(s, `"filter"`) {
		t.Errorf("keys not sorted: %s", s)
	}
	if strings.Index(s, `"machine"`) > strings.Index(s, `"schemes"`) {
		t.Errorf("keys not sorted: %s", s)
	}
	if strings.Contains(s, " ") {
		t.Errorf("canonical encoding contains whitespace: %s", s)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	c := testCell(t)
	c.Filter = "DropLockSpins"
	c.Sim = Sim{WarmupRefs: 100, IncludeFirstRefCosts: true}
	b, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Cell
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("canonical bytes do not decode into a Cell: %v", err)
	}
	b2, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("decode+re-encode drifted:\n%s\nvs\n%s", b, b2)
	}
}

// The hash IS the cache key format. If this test fails, every cached
// result on disk is invalidated: change the golden value only when the
// spec encoding is deliberately versioned.
func TestHashStability(t *testing.T) {
	c := testCell(t)
	h, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	const golden = "8dead3c941570b19f03ef87aec0d35f8e571d3a48c9ebbafbf66d207900bc4b1"
	if h != golden {
		t.Errorf("cell hash drifted: got %s want %s", h, golden)
	}
	r := Request{Cell: &c}
	rh, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately re-pinned when spec schema versioning landed: the
	// canonical request encoding gained a "version" field, which is a
	// designed cache-format break (version 1). The cell hash above is
	// unchanged — cells carry no version; their documents do.
	const goldenReq = "97801161c85c96e0791634f402bde58e1565fa410bb655428a6da6fbf499c91e"
	if rh != goldenReq {
		t.Errorf("request hash drifted: got %s want %s", rh, goldenReq)
	}
	// An unversioned wire request must hash identically to one pinning
	// the current version — "client did not say" means "current".
	pinned := Request{Version: CurrentVersion, Cell: &c}
	ph, err := pinned.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ph != rh {
		t.Errorf("pinned-version hash %s differs from unversioned %s", ph, rh)
	}
}

func TestHashInsensitiveToCosmetics(t *testing.T) {
	a := testCell(t)
	b := testCell(t)
	b.Schemes = []string{" DIR0B ", "Dragon"}
	b.Filter = "none"
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Errorf("cosmetic differences changed the hash: %s vs %s", ha, hb)
	}
	c := testCell(t)
	c.Trace.Seed = 7
	hc, _ := c.Hash()
	if hc == ha {
		t.Error("different seeds hashed equal")
	}
	d := testCell(t)
	d.Schemes = []string{"dragon", "dir0b"} // order matters: lockstep column order
	hd, _ := d.Hash()
	if hd == ha {
		t.Error("scheme order should be significant")
	}
}

func TestSweepCells(t *testing.T) {
	sw := Sweep{
		Workloads: []string{"pero", "pops"},
		Schemes:   []string{"dir0b"},
		CPUs:      []int{2, 4},
		Refs:      1_000,
		Seeds:     3,
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*3 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Order: (workload, cpus, seed); all three seeds of a grid point are
	// adjacent and distinct.
	if cells[0].Trace.Name != "PERO" || cells[0].Trace.CPUs != 2 {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[6].Trace.Name != "POPS" || cells[6].Trace.CPUs != 2 {
		t.Errorf("cell 6 = %+v", cells[6])
	}
	if cells[0].Trace.Seed == cells[1].Trace.Seed {
		t.Error("replications share a seed")
	}
	if cells[0].Machine.Caches != 2 || cells[3].Machine.Caches != 4 {
		t.Errorf("machine sizes: %d, %d", cells[0].Machine.Caches, cells[3].Machine.Caches)
	}

	if _, err := (Sweep{Workloads: []string{"nope"}, Schemes: []string{"dir0b"}, CPUs: []int{2}, Refs: 10, Seeds: 1}).Cells(); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := (Sweep{}).Validate(); err == nil {
		t.Error("empty sweep validated")
	}
}

func TestRequestValidate(t *testing.T) {
	c := testCell(t)
	sw := Sweep{Workloads: []string{"pops"}, Schemes: []string{"wti"}, CPUs: []int{2}, Refs: 100, Seeds: 1}
	cases := []struct {
		r  Request
		ok bool
	}{
		{Request{}, false},
		{Request{Cell: &c}, true},
		{Request{Sweep: &sw}, true},
		{Request{Cell: &c, Sweep: &sw}, false},
	}
	for i, tc := range cases {
		err := tc.r.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, tc.ok)
		}
	}
	cells, err := Request{Sweep: &sw}.Cells()
	if err != nil || len(cells) != 1 {
		t.Fatalf("sweep request cells = %v, %v", cells, err)
	}
}

func TestCellValidate(t *testing.T) {
	c := testCell(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Schemes = nil
	if err := bad.Validate(); err == nil {
		t.Error("no schemes accepted")
	}
	bad = c
	bad.Schemes = []string{"nosuchscheme"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = c
	bad.Filter = "nosuchfilter"
	if err := bad.Validate(); err == nil {
		t.Error("unknown filter accepted")
	}
	bad = c
	bad.Machine.Caches = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero caches accepted")
	}
}

// A compiled job must execute and produce the same results as handing the
// equivalent job to the runner by hand — spec is a refactoring of the CLI
// cell construction, not a new semantics.
func TestJobMatchesDirectRun(t *testing.T) {
	c := testCell(t)
	j, err := c.Job()
	if err != nil {
		t.Fatal(err)
	}
	if j.Label != c.Label() {
		t.Errorf("label = %q, want %q", j.Label, c.Label())
	}
	got, err := runner.Run(context.Background(), []runner.Job{j}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tracegen.New(c.Trace)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunSchemes(context.Background(), g, c.Schemes, c.Machine, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != len(want) {
		t.Fatalf("result count %d vs %d", len(got[0]), len(want))
	}
	for i := range want {
		// Stats contains slices; compare the JSON forms.
		gb, _ := json.Marshal(got[0][i].Stats)
		wb, _ := json.Marshal(want[i].Stats)
		if string(gb) != string(wb) {
			t.Errorf("scheme %s: stats differ", want[i].Scheme)
		}
		if got[0][i].Scheme != want[i].Scheme {
			t.Errorf("scheme name %q vs %q", got[0][i].Scheme, want[i].Scheme)
		}
	}
}

func TestPresetAndCanonicalSchemes(t *testing.T) {
	for _, name := range []string{"pops", "THOR", " pero "} {
		if _, err := Preset(name, 100); err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
	}
	if _, err := Preset("vax", 100); err == nil {
		t.Error("unknown preset accepted")
	}
	names, err := CanonicalSchemes([]string{"dir0b", "dragon"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "Dir0B" || names[1] != "Dragon" {
		t.Errorf("canonical names = %v", names)
	}
	if _, err := CanonicalSchemes([]string{"zzz"}, 4); err == nil {
		t.Error("unknown scheme accepted")
	}
}
