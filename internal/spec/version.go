package spec

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// CurrentVersion is the spec schema version. It is part of every
// request's canonical JSON (and therefore of its content hash) and is
// stamped into every stored result document as "spec_version". Bump it
// whenever the meaning of a spec changes — a field is added whose zero
// value used to be implied differently, a preset is retuned, a cost
// model shifts — and every cached result from the previous schema is
// automatically re-simulated instead of silently reused: version
// mismatch is a cache miss, never a cache hit.
const CurrentVersion = 1

// VersionError is the typed failure for any spec-version problem: a
// request carrying a version this build does not speak, or a stored
// document whose version field is missing, garbage, or from another
// schema generation. Callers treat it as "re-simulate", never as data.
type VersionError struct {
	// Got describes the offending version as found: a number, "missing",
	// or a short description of the malformed value.
	Got string
	// Want is the version this build speaks.
	Want int
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("spec: version %s not supported (this build speaks version %d)", e.Got, e.Want)
}

// versionProbe is the loose header parse applied to stored documents:
// only the version field, as raw bytes, so a document from any schema
// generation — or a corrupted one — can be classified without knowing
// its shape.
type versionProbe struct {
	SpecVersion json.RawMessage `json:"spec_version"`
}

// CheckDocVersion classifies a stored result document by its
// "spec_version" field. It returns nil exactly when the field is the
// integer CurrentVersion; every other outcome — unparseable document,
// missing or null field, non-integer value, other generation — is a
// *VersionError. The disk cache treats any non-nil return as a miss, so
// results written by other schema generations are re-simulated, never
// served.
func CheckDocVersion(data []byte) error {
	var p versionProbe
	if err := json.Unmarshal(data, &p); err != nil {
		return &VersionError{Got: "unreadable (not a JSON document)", Want: CurrentVersion}
	}
	raw := string(p.SpecVersion)
	if raw == "" || raw == "null" {
		return &VersionError{Got: "missing", Want: CurrentVersion}
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		if len(raw) > 32 {
			raw = raw[:32] + "…"
		}
		return &VersionError{Got: fmt.Sprintf("malformed (%s)", raw), Want: CurrentVersion}
	}
	if v != CurrentVersion {
		return &VersionError{Got: strconv.Itoa(v), Want: CurrentVersion}
	}
	return nil
}

// checkRequestVersion validates a request's wire version: 0 means "the
// client did not pin one" and is accepted as current; anything else must
// match exactly.
func checkRequestVersion(v int) error {
	if v != 0 && v != CurrentVersion {
		return &VersionError{Got: strconv.Itoa(v), Want: CurrentVersion}
	}
	return nil
}
