// Package events defines the reference-event taxonomy of Table 4.
//
// Section 4.1 computes bus cycles per reference by measuring event
// frequencies once per protocol and weighting them with hardware costs
// afterwards. The event types here are the union of every scheme's rows in
// Table 4; each protocol engine populates the subset that is meaningful for
// its state-change model.
package events

import "fmt"

// Type classifies one memory reference by what the protocol's state-change
// model says about the referenced block at the time of the access.
type Type uint8

const (
	// Instr is an instruction fetch (no consistency traffic).
	Instr Type = iota

	// ReadHit is a data read that hits in the local cache.
	ReadHit
	// ReadMissClean is a read miss to a block that is clean in at least
	// one other cache (Table 4 rm-blk-cln).
	ReadMissClean
	// ReadMissDirty is a read miss to a block dirty in another cache
	// (rm-blk-drty).
	ReadMissDirty
	// ReadMissUncached is a read miss to a block no cache holds (other
	// than cold misses, this arises only when a protocol has discarded
	// copies, e.g. Dir_iNB pointer eviction, or with finite caches).
	ReadMissUncached
	// ReadMissFirst is the first reference in the trace to the block
	// (rm-first-ref). The paper excludes its cost: it occurs in a
	// uniprocessor infinite cache as well.
	ReadMissFirst

	// WriteHitDirty is a write hit to a block already dirty in the local
	// cache (wh-blk-drty): the write proceeds with no traffic.
	WriteHitDirty
	// WriteHitCleanSole is a write hit to a clean block held by no other
	// cache (the directory answers the query; nothing to invalidate).
	WriteHitCleanSole
	// WriteHitCleanShared is a write hit to a clean block that other
	// caches also hold; they must be invalidated. Together with
	// WriteHitCleanSole this is Table 4's wh-blk-cln.
	WriteHitCleanShared
	// WriteHitUpdate is Dragon's wh-distrib: a write hit to a block that
	// other caches hold, propagated as a word update.
	WriteHitUpdate
	// WriteHitLocal is Dragon's wh-local: a write hit to a block held by
	// no other cache.
	WriteHitLocal

	// WriteMissClean is a write miss to a block clean in other caches
	// (wm-blk-cln).
	WriteMissClean
	// WriteMissDirty is a write miss to a block dirty in another cache
	// (wm-blk-drty).
	WriteMissDirty
	// WriteMissUncached is a write miss to a block no cache holds (see
	// ReadMissUncached).
	WriteMissUncached
	// WriteMissFirst is the first reference in the trace to the block
	// (wm-first-ref), excluded from costs like ReadMissFirst.
	WriteMissFirst

	// NumTypes is the number of event types.
	NumTypes = int(WriteMissFirst) + 1
)

var names = [NumTypes]string{
	"instr",
	"rd-hit", "rm-blk-cln", "rm-blk-drty", "rm-uncached", "rm-first-ref",
	"wh-blk-drty", "wh-blk-cln-sole", "wh-blk-cln-shared", "wh-distrib", "wh-local",
	"wm-blk-cln", "wm-blk-drty", "wm-uncached", "wm-first-ref",
}

var legends = [NumTypes]string{
	"Instruction fetch",
	"Read hit",
	"Read miss, block clean in another cache",
	"Read miss, block dirty in another cache",
	"Read miss, block in no cache",
	"Read miss, first reference to the block",
	"Write hit, block dirty in the same cache",
	"Write hit, clean block in no other cache",
	"Write hit, clean block also in other caches",
	"Write hit, block also in another cache (update)",
	"Write hit, block not in another cache (update protocol)",
	"Write miss, block clean in another cache",
	"Write miss, block dirty in another cache",
	"Write miss, block in no cache",
	"Write miss, first reference to the block",
}

// String returns the Table 4 mnemonic for the event.
func (t Type) String() string {
	if int(t) < NumTypes {
		return names[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Legend returns the Table 4 legend line for the event.
func (t Type) Legend() string {
	if int(t) < NumTypes {
		return legends[t]
	}
	return ""
}

// Types lists every event type in declaration order.
func Types() []Type {
	out := make([]Type, NumTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// Counts tallies events.
type Counts [NumTypes]uint64

// Inc increments the tally for t.
func (c *Counts) Inc(t Type) { c[t]++ }

// Add records n occurrences of t at once — the batched form drivers use to
// coalesce runs of same-typed events (e.g. instruction fetches).
func (c *Counts) Add(t Type, n uint64) { c[t] += n }

// Merge accumulates other into c.
func (c *Counts) Merge(other Counts) {
	for i, v := range other {
		c[i] += v
	}
}

// Total returns the total number of events (= references processed).
func (c *Counts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Frequency returns the frequency of t as a fraction of all references,
// the unit Table 4 reports (as percentages).
func (c *Counts) Frequency(t Type) float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c[t]) / float64(total)
}

// Reads returns all data-read events.
func (c *Counts) Reads() uint64 {
	return c[ReadHit] + c.ReadMisses() + c[ReadMissFirst]
}

// ReadMisses returns read misses excluding first references, matching the
// paper's rd-miss(rm) row.
func (c *Counts) ReadMisses() uint64 {
	return c[ReadMissClean] + c[ReadMissDirty] + c[ReadMissUncached]
}

// Writes returns all data-write events.
func (c *Counts) Writes() uint64 {
	return c.WriteHits() + c.WriteMisses() + c[WriteMissFirst]
}

// WriteHits returns write hits (wrt-hit(wh)).
func (c *Counts) WriteHits() uint64 {
	return c[WriteHitDirty] + c[WriteHitCleanSole] + c[WriteHitCleanShared] +
		c[WriteHitUpdate] + c[WriteHitLocal]
}

// WriteMisses returns write misses excluding first references
// (wrt-miss(wm)).
func (c *Counts) WriteMisses() uint64 {
	return c[WriteMissClean] + c[WriteMissDirty] + c[WriteMissUncached]
}

// DataMissRate returns (read+write misses excluding first refs) over all
// references — the quantity Section 5 uses to size the consistency-related
// component of the miss rate.
func (c *Counts) DataMissRate() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.ReadMisses()+c.WriteMisses()) / float64(total)
}

// Tally bits pack a type's hit/miss/write classification for branch-free
// per-cache accounting on engine hot paths.
const (
	TallyHit   uint8 = 1 << iota // IsHit
	TallyMiss                    // IsMiss
	TallyWrite                   // IsWrite
)

var tallyBits = func() [NumTypes]uint8 {
	var tb [NumTypes]uint8
	for i := 0; i < NumTypes; i++ {
		t := Type(i)
		if t.IsHit() {
			tb[i] |= TallyHit
		}
		if t.IsMiss() {
			tb[i] |= TallyMiss
		}
		if t.IsWrite() {
			tb[i] |= TallyWrite
		}
	}
	return tb
}()

// Tally returns the type's classification as TallyHit/TallyMiss/TallyWrite
// bits, precomputed from the Is* predicates: one table load replaces three
// data-dependent switches.
func (t Type) Tally() uint8 { return tallyBits[t] }

// IsHit reports whether the event is a cache hit (instruction fetches are
// not classified).
func (t Type) IsHit() bool {
	switch t {
	case ReadHit, WriteHitDirty, WriteHitCleanSole, WriteHitCleanShared,
		WriteHitUpdate, WriteHitLocal:
		return true
	}
	return false
}

// IsMiss reports whether the event is a data miss, including first
// references.
func (t Type) IsMiss() bool {
	switch t {
	case ReadMissClean, ReadMissDirty, ReadMissUncached, ReadMissFirst,
		WriteMissClean, WriteMissDirty, WriteMissUncached, WriteMissFirst:
		return true
	}
	return false
}

// IsWrite reports whether the event classifies a data write.
func (t Type) IsWrite() bool {
	switch t {
	case WriteHitDirty, WriteHitCleanSole, WriteHitCleanShared,
		WriteHitUpdate, WriteHitLocal,
		WriteMissClean, WriteMissDirty, WriteMissUncached, WriteMissFirst:
		return true
	}
	return false
}
