package events

import (
	"math"
	"strings"
	"testing"
)

func TestStringAndLegendDefined(t *testing.T) {
	seen := map[string]bool{}
	for _, ty := range Types() {
		s := ty.String()
		if s == "" || strings.HasPrefix(s, "Type(") {
			t.Errorf("type %d has no name", ty)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
		if ty.Legend() == "" {
			t.Errorf("type %s has no legend", s)
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Errorf("unknown type String = %q", Type(200).String())
	}
	if Type(200).Legend() != "" {
		t.Errorf("unknown type Legend = %q", Type(200).Legend())
	}
}

func TestTypesCount(t *testing.T) {
	if len(Types()) != NumTypes {
		t.Fatalf("Types() has %d entries, want %d", len(Types()), NumTypes)
	}
}

func TestCountsAccounting(t *testing.T) {
	var c Counts
	c.Inc(Instr)
	c.Inc(ReadHit)
	c.Inc(ReadHit)
	c.Inc(ReadMissClean)
	c.Inc(ReadMissFirst)
	c.Inc(WriteHitDirty)
	c.Inc(WriteMissDirty)
	c.Inc(WriteMissFirst)

	if c.Total() != 8 {
		t.Fatalf("Total = %d, want 8", c.Total())
	}
	if c.Reads() != 4 {
		t.Fatalf("Reads = %d, want 4", c.Reads())
	}
	if c.ReadMisses() != 1 {
		t.Fatalf("ReadMisses = %d, want 1", c.ReadMisses())
	}
	if c.Writes() != 3 {
		t.Fatalf("Writes = %d, want 3", c.Writes())
	}
	if c.WriteHits() != 1 {
		t.Fatalf("WriteHits = %d, want 1", c.WriteHits())
	}
	if c.WriteMisses() != 1 {
		t.Fatalf("WriteMisses = %d, want 1", c.WriteMisses())
	}
	if got := c.Frequency(ReadHit); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Frequency(ReadHit) = %v, want 0.25", got)
	}
	if got := c.DataMissRate(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("DataMissRate = %v, want 0.25", got)
	}
}

func TestCountsPartitionReferences(t *testing.T) {
	// Every reference lands in exactly one event type, so
	// instr + reads + writes must equal the total.
	var c Counts
	for i, ty := range Types() {
		for j := 0; j <= i; j++ {
			c.Inc(ty)
		}
	}
	if c[Instr]+c.Reads()+c.Writes() != c.Total() {
		t.Fatalf("partition violated: %d + %d + %d != %d",
			c[Instr], c.Reads(), c.Writes(), c.Total())
	}
}

func TestMergeAndZeroFrequency(t *testing.T) {
	var a, b Counts
	a.Inc(ReadHit)
	b.Inc(ReadHit)
	b.Inc(Instr)
	a.Merge(b)
	if a[ReadHit] != 2 || a[Instr] != 1 {
		t.Fatalf("Merge result = %v", a)
	}
	var empty Counts
	if empty.Frequency(ReadHit) != 0 || empty.DataMissRate() != 0 {
		t.Fatal("empty counts should report zero frequencies")
	}
}

func TestHitMissWritePartition(t *testing.T) {
	for _, ty := range Types() {
		if ty == Instr {
			if ty.IsHit() || ty.IsMiss() || ty.IsWrite() {
				t.Errorf("instr misclassified")
			}
			continue
		}
		// Every data event is exactly one of hit or miss.
		if ty.IsHit() == ty.IsMiss() {
			t.Errorf("%v: hit=%v miss=%v", ty, ty.IsHit(), ty.IsMiss())
		}
	}
	if !ReadHit.IsHit() || ReadHit.IsWrite() {
		t.Error("ReadHit misclassified")
	}
	if !WriteMissDirty.IsMiss() || !WriteMissDirty.IsWrite() {
		t.Error("WriteMissDirty misclassified")
	}
	if !WriteHitUpdate.IsHit() || !WriteHitUpdate.IsWrite() {
		t.Error("WriteHitUpdate misclassified")
	}
}
