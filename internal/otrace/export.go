package otrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dirsim/internal/flight"
)

// Export formats. Span sets are sorted canonically by (Service, Seq)
// before rendering, so the output is a deterministic function of the
// set regardless of finish order or merge order — the property
// cmd/tracecheck and the cluster smoke rely on.

// ChromePidBase is the pid of the first otrace service in a spliced
// Chrome document. Flight recorders use the job ordinal as pid; fabric
// services start here so the two ranges never collide.
const ChromePidBase = 1000

// Sort orders spans canonically: by service, then per-process seq.
func Sort(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Service != spans[j].Service {
			return spans[i].Service < spans[j].Service
		}
		return spans[i].Seq < spans[j].Seq
	})
}

// Dedup sorts spans and drops duplicate (Service, Seq) entries — the
// merge step for a fleet trace assembled from overlapping per-peer
// fetches.
func Dedup(spans []Span) []Span {
	Sort(spans)
	out := spans[:0]
	for i, s := range spans {
		if i > 0 && s.Service == out[len(out)-1].Service && s.Seq == out[len(out)-1].Seq {
			continue
		}
		out = append(out, s)
	}
	return out
}

// row is the NDJSON wire form of one span. kind and seq (monotonic per
// pid/tid track) keep the rows valid under tracecheck's generic ndjson
// contract; the rest is the span itself.
type row struct {
	Kind    string `json:"kind"`
	Pid     int    `json:"pid"`
	Tid     int    `json:"tid"`
	Seq     uint64 `json:"seq"`
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Service string `json:"service"`
	Name    string `json:"name"`
	Peer    string `json:"peer,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
}

// WriteNDJSON renders spans as newline-delimited JSON, one span per
// line, in canonical order. Each service is one pid (in service name
// order), so seq is non-decreasing per (pid, tid) track.
func WriteNDJSON(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	Sort(sorted)
	enc := json.NewEncoder(w)
	pid := ChromePidBase - 1
	for i, s := range sorted {
		if i == 0 || s.Service != sorted[i-1].Service {
			pid++
		}
		if err := enc.Encode(row{
			Kind: "span", Pid: pid, Tid: 0, Seq: s.Seq,
			Trace: s.Trace, ID: s.ID(), Parent: s.Parent,
			Service: s.Service, Name: s.Name, Peer: s.Peer,
			Outcome: s.Outcome, Start: s.Start, End: s.End,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses a WriteNDJSON stream back into spans — how
// cmd/sweep ingests the per-daemon spans served by /v1/trace/{id} when
// assembling a fleet trace. Lines that are not span rows are an error.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rw row
		if err := json.Unmarshal(sc.Bytes(), &rw); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if rw.Kind != "span" {
			return nil, fmt.Errorf("line %d: kind %q, want span", line, rw.Kind)
		}
		if rw.Service == "" || rw.Name == "" {
			return nil, fmt.Errorf("line %d: span missing service or name", line)
		}
		spans = append(spans, Span{
			Trace: rw.Trace, Service: rw.Service, Seq: rw.Seq,
			Parent: rw.Parent, Name: rw.Name, Peer: rw.Peer,
			Outcome: rw.Outcome, Start: rw.Start, End: rw.End,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// ChromeEvents renders spans as Chrome trace events: one pid per
// service (ChromePidBase + service ordinal), ph "X" complete spans with
// trace/id/parent/peer/outcome args. Timestamps are rebased to the
// earliest span start so the view begins at t=0 while cross-service
// alignment (all daemons share a wall clock) is preserved; within a
// service, events are emitted in start order so per-track ts is
// monotonic.
func ChromeEvents(spans []Span) []flight.ChromeEvent {
	if len(spans) == 0 {
		return nil
	}
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Service != sorted[j].Service {
			return sorted[i].Service < sorted[j].Service
		}
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	base := sorted[0].Start
	for _, s := range sorted {
		if s.Start < base {
			base = s.Start
		}
	}
	var events []flight.ChromeEvent
	pid := ChromePidBase - 1
	for i, s := range sorted {
		if i == 0 || s.Service != sorted[i-1].Service {
			pid++
			events = append(events, flight.ChromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": s.Service},
			})
			events = append(events, flight.ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": "spans"},
			})
		}
		durMicros := uint64(s.End-s.Start) / 1000
		if durMicros > uint64(^uint32(0)) {
			durMicros = uint64(^uint32(0))
		}
		dur := uint32(durMicros)
		args := map[string]any{"trace": s.Trace, "id": s.ID()}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if s.Peer != "" {
			args["peer"] = s.Peer
		}
		if s.Outcome != "" {
			args["outcome"] = s.Outcome
		}
		events = append(events, flight.ChromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  uint64(s.Start-base) / 1000,
			Dur: &dur, Pid: pid, Tid: 0, Args: args,
		})
	}
	return events
}

// WriteChromeTrace writes spans — and, optionally, flight recorders
// spliced into the same document — as one Chrome trace-event file.
func WriteChromeTrace(w io.Writer, spans []Span, recs ...*flight.Recorder) error {
	events := flight.ChromeEvents(recs...)
	events = append(events, ChromeEvents(spans)...)
	return flight.WriteChromeDoc(w, events)
}

// Write exports spans in the format implied by the file name, following
// the same convention as flight.Write: ".ndjson"/".jsonl" for NDJSON,
// the Chrome trace-event form otherwise.
func Write(w io.Writer, name string, spans []Span) error {
	if flight.FormatForPath(name) == "ndjson" {
		return WriteNDJSON(w, spans)
	}
	return WriteChromeTrace(w, spans)
}
