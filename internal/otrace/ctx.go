package otrace

import "context"

// ctxKey keys the trace Context inside a context.Context.
type ctxKey struct{}

// With returns a context carrying tc; remote.Client reads it back and
// stamps the X-Dirsim-Trace header on every outbound request.
func With(ctx context.Context, tc Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// From extracts the trace context, if any.
func From(ctx context.Context) (Context, bool) {
	tc, ok := ctx.Value(ctxKey{}).(Context)
	return tc, ok && tc.Trace != ""
}
