package otrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dirsim/internal/flight"
)

func sampleSpans() []Span {
	return []Span{
		{Trace: "t1", Service: "sweep", Seq: 1, Name: "cell", Start: 100, End: 900},
		{Trace: "t1", Service: "dirsimd:a", Seq: 1, Parent: "sweep#1", Name: "job", Outcome: "done", Start: 200, End: 800},
		{Trace: "t1", Service: "dirsimd:a", Seq: 2, Parent: "dirsimd:a#1", Name: "peer-fetch", Peer: "b:1", Outcome: "hit", Start: 300, End: 400},
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Span(nil), spans...)
	Sort(want)
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("span[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNDJSONDeterministicAcrossOrder(t *testing.T) {
	spans := sampleSpans()
	var a, b bytes.Buffer
	if err := WriteNDJSON(&a, spans); err != nil {
		t.Fatal(err)
	}
	reversed := []Span{spans[2], spans[0], spans[1]}
	if err := WriteNDJSON(&b, reversed); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("NDJSON output depends on input order")
	}
}

func TestReadNDJSONRejectsNonSpan(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader(`{"kind":"event","seq":1}` + "\n")); err == nil {
		t.Error("non-span row accepted")
	}
	if _, err := ReadNDJSON(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDedup(t *testing.T) {
	spans := append(sampleSpans(), sampleSpans()...)
	got := Dedup(spans)
	if len(got) != 3 {
		t.Fatalf("Dedup kept %d spans, want 3", len(got))
	}
}

func TestChromeSpliceWithFlight(t *testing.T) {
	rec := flight.New(flight.Options{Spans: true, Sample: 1, Pid: 0, Label: "job-0"})
	track := rec.AddTrack("driver")
	rec.Span(track, "simulate", 0, 100)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans(), rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[string]int{}
	type trackKey struct{ pid, tid int }
	lastTs := map[trackKey]uint64{}
	sawSpan := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Args["name"].(string)] = e.Pid
			continue
		}
		if e.Ph == "M" {
			continue
		}
		k := trackKey{e.Pid, e.Tid}
		if prev, ok := lastTs[k]; ok && e.Ts < prev {
			t.Errorf("track %v: ts %d after %d", k, e.Ts, prev)
		}
		lastTs[k] = e.Ts
		if e.Ph == "X" {
			sawSpan[e.Name] = true
		}
	}
	for _, svc := range []string{"job-0", "sweep", "dirsimd:a"} {
		if _, ok := procs[svc]; !ok {
			t.Errorf("missing process %q in %v", svc, procs)
		}
	}
	if procs["sweep"] < ChromePidBase || procs["dirsimd:a"] < ChromePidBase {
		t.Errorf("otrace pids %v below ChromePidBase — may collide with flight job pids", procs)
	}
	for _, name := range []string{"simulate", "cell", "job", "peer-fetch"} {
		if !sawSpan[name] {
			t.Errorf("missing span %q", name)
		}
	}
}

func TestWriteByExtension(t *testing.T) {
	var nd, ch bytes.Buffer
	if err := Write(&nd, "trace.ndjson", sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&ch, "trace.json", sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nd.String(), `"kind":"span"`) {
		t.Error("ndjson path did not write span rows")
	}
	if !strings.Contains(ch.String(), "traceEvents") {
		t.Error("chrome path did not write a trace document")
	}
}
