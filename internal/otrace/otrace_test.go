package otrace

import (
	"context"
	"testing"

	"dirsim/internal/obs"
)

func TestContextHeaderRoundTrip(t *testing.T) {
	cases := []Context{
		{Trace: "abc123"},
		{Trace: "abc123", Span: "dirsimd:h1#42"},
	}
	for _, tc := range cases {
		got, ok := ParseHeader(tc.String())
		if !ok || got != tc {
			t.Errorf("ParseHeader(%q) = %+v, %v; want %+v", tc.String(), got, ok, tc)
		}
	}
	for _, bad := range []string{"", "   ", ";span", "a;b;c"} {
		if got, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) = %+v, want not-ok", bad, got)
		}
	}
}

func TestTracerLogicalClockDeterminism(t *testing.T) {
	m := obs.NewMetrics()
	st := NewStore(16)
	tr := New("svc", nil, st, m)

	root := tr.Start(Root("trace-1"), "cell")
	child := tr.Start(root.Context(), "attempt")
	child.SetPeer("peer-a")
	child.SetOutcome("ok")
	child.Finish()
	root.Finish()
	root.Finish() // idempotent: must not double-record

	spans := st.ByTrace("trace-1")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	// Finish order: child first.
	if spans[0].ID() != "svc#2" || spans[1].ID() != "svc#1" {
		t.Errorf("span ids = %q, %q; want svc#2, svc#1", spans[0].ID(), spans[1].ID())
	}
	if spans[0].Parent != "svc#1" {
		t.Errorf("child parent = %q, want svc#1", spans[0].Parent)
	}
	if spans[1].Parent != "" {
		t.Errorf("root parent = %q, want empty", spans[1].Parent)
	}
	if spans[0].Peer != "peer-a" || spans[0].Outcome != "ok" {
		t.Errorf("child peer/outcome = %q/%q", spans[0].Peer, spans[0].Outcome)
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %s: end %d < start %d", s.ID(), s.End, s.Start)
		}
	}
	if n := m.Histogram(obs.HistSpanMicros).Snapshot().Count; n != 2 {
		t.Errorf("span_us count = %d, want 2", n)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(Root("x"), "noop")
	sp.SetPeer("p")
	sp.SetOutcome("o")
	sp.Finish()
	if got := sp.Context(); got.Span != "" {
		t.Errorf("nil tracer Context().Span = %q, want empty", got.Span)
	}
	if tr.Service() != "" || tr.Store() != nil {
		t.Error("nil tracer accessors not inert")
	}
}

func TestStartFinishAllocationFree(t *testing.T) {
	m := obs.NewMetrics()
	tr := New("svc", nil, NewStore(1024), m)
	root := Root("t")
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start(root, "hot")
		sp.SetOutcome("ok")
		sp.Finish()
	})
	if allocs != 0 {
		t.Errorf("Start/Finish allocates %.1f objects per span, want 0", allocs)
	}
}

func TestStoreRingWrap(t *testing.T) {
	st := NewStore(4)
	tr := New("svc", nil, st, nil)
	for i := 0; i < 6; i++ {
		sp := tr.Start(Root("t"), "s")
		sp.Finish()
	}
	if st.Added() != 6 {
		t.Errorf("Added = %d, want 6", st.Added())
	}
	spans := st.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d, want 4", len(spans))
	}
	// Oldest first: seqs 3,4,5,6 survive.
	for i, s := range spans {
		if want := uint64(i + 3); s.Seq != want {
			t.Errorf("span[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
}

func TestInjectedClock(t *testing.T) {
	now := int64(1000)
	tr := New("svc", func() int64 { return now }, NewStore(4), nil)
	sp := tr.Start(Root("t"), "timed")
	now = 5000
	sp.Finish()
	got := tr.Store().Spans()
	if len(got) != 1 || got[0].Start != 1000 || got[0].End != 5000 {
		t.Fatalf("span = %+v, want start 1000 end 5000", got)
	}
}

func TestCtxPropagation(t *testing.T) {
	ctx := context.Background()
	if _, ok := From(ctx); ok {
		t.Error("empty ctx should have no trace context")
	}
	tc := Context{Trace: "t1", Span: "svc#9"}
	if got, ok := From(With(ctx, tc)); !ok || got != tc {
		t.Errorf("From(With(...)) = %+v, %v; want %+v", got, ok, tc)
	}
	if _, ok := From(With(ctx, Context{})); ok {
		t.Error("empty trace id should read as absent")
	}
}
