package otrace

import "sync"

// DefaultStoreSpans is the span capacity NewStore uses for a
// non-positive request: enough for thousands of cells' worth of fabric
// spans while bounding a daemon's tracing memory to a few megabytes.
const DefaultStoreSpans = 1 << 14

// Store retains finished spans in a preallocated ring: Add never
// allocates (the obsring lint rule holds it to that), and once the ring
// wraps the oldest spans are overwritten. Lookups scan linearly — the
// ring is small and reads are cold (trace export endpoints).
type Store struct {
	mu   sync.Mutex
	buf  []Span
	next int
	n    uint64 // total spans ever added
}

// NewStore returns a store retaining up to capacity spans
// (DefaultStoreSpans when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreSpans
	}
	return &Store{buf: make([]Span, capacity)}
}

// Add commits one finished span, overwriting the oldest if full.
func (st *Store) Add(s Span) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.buf[st.next] = s
	st.next++
	if st.next == len(st.buf) {
		st.next = 0
	}
	st.n++
	st.mu.Unlock()
}

// Added returns the total number of spans ever added (including any
// the ring has since overwritten).
func (st *Store) Added() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.n
}

// Spans copies out the retained spans, oldest first.
func (st *Store) Spans() []Span {
	return st.filter(func(Span) bool { return true })
}

// ByTrace copies out the retained spans of one trace, oldest first.
func (st *Store) ByTrace(trace string) []Span {
	return st.filter(func(s Span) bool { return s.Trace == trace })
}

// filter copies out retained spans matching keep, in ring (finish)
// order, oldest first.
func (st *Store) filter(keep func(Span) bool) []Span {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	size := len(st.buf)
	retained := int(st.n)
	start := 0
	if st.n >= uint64(size) {
		retained = size
		start = st.next
	}
	var out []Span
	for i := 0; i < retained; i++ {
		s := st.buf[(start+i)%size]
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
