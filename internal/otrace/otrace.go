// Package otrace is a deterministic, clock-injected request-scoped
// tracing layer for the dirsimd fleet. Where internal/flight records
// protocol events inside one engine run, otrace records the service
// fabric around it: admission, queueing, chunk execution, hedged
// attempts, peer cache fetches, journal replay.
//
// Determinism contract: a trace id is the spec content hash of the job
// or cell it follows (never random), and span ids are derived from a
// per-process atomic counter — "service#seq" — so two runs of the same
// workload differ only in timestamps. Like every internal package,
// otrace never reads the wall clock itself (the nondeterm lint rule
// bans time.Now under internal/): the clock arrives as an injected
// NowNanos from the cmd layer, and a nil clock degrades to a logical
// tick counter so unit tests get fully reproducible spans.
//
// The recording hot path — Tracer.Start and Active.Finish — is
// allocation-free and guarded by the obsring lint rule alongside
// flight.Emit and obs.Observe: Active is returned by value, the span
// ring is preallocated, and span id strings are only materialized on
// the cold paths (Context, export).
package otrace

import (
	"strconv"
	"strings"
	"sync/atomic"

	"dirsim/internal/obs"
)

// HeaderName is the HTTP header that carries a trace context between
// processes: "<trace>" or "<trace>;<parent-span>".
const HeaderName = "X-Dirsim-Trace"

// Context identifies a position in a trace: which trace, and which span
// is the parent of whatever happens next. The zero Context is "no
// trace"; spans started under it still record (with an empty trace id)
// but nothing links to them.
type Context struct {
	// Trace is the trace id — by convention the spec content hash of
	// the job or cell being followed.
	Trace string
	// Span is the parent span id ("service#seq"), empty at the root.
	Span string
}

// Root returns the context that starts a fresh trace with the given id.
func Root(trace string) Context { return Context{Trace: trace} }

// String renders the context in the header wire form.
func (c Context) String() string {
	if c.Span == "" {
		return c.Trace
	}
	return c.Trace + ";" + c.Span
}

// ParseHeader decodes a header value produced by String. ok is false
// for an empty or malformed value (more than one separator).
func ParseHeader(v string) (Context, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return Context{}, false
	}
	trace, span, _ := strings.Cut(v, ";")
	if trace == "" || strings.Contains(span, ";") {
		return Context{}, false
	}
	return Context{Trace: trace, Span: strings.TrimSpace(span)}, true
}

// Span is one finished span. Spans are plain values: the store copies
// them in and out, and the export layer sorts them canonically by
// (Service, Seq) so output is a deterministic function of the set.
type Span struct {
	// Trace is the trace id this span belongs to.
	Trace string `json:"trace"`
	// Service names the recording process (e.g. "dirsimd:host:port").
	Service string `json:"service"`
	// Seq is the span's ordinal from the per-process counter; together
	// with Service it forms the span id.
	Seq uint64 `json:"seq"`
	// Parent is the parent span id ("service#seq"), empty for roots.
	Parent string `json:"parent,omitempty"`
	// Name is the span kind — see DESIGN.md §12 for the taxonomy.
	Name string `json:"name"`
	// Peer is the remote peer address, for spans that talk to one.
	Peer string `json:"peer,omitempty"`
	// Outcome classifies how the span ended (ok, error, canceled,
	// hit, miss, ...); empty means unremarkable completion.
	Outcome string `json:"outcome,omitempty"`
	// Start and End are NowNanos stamps (logical ticks under a nil
	// clock). End >= Start always.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// ID returns the span id, "service#seq".
func (s Span) ID() string {
	return s.Service + "#" + strconv.FormatUint(s.Seq, 10)
}

// Tracer mints spans for one process. The zero value and nil are inert:
// every method on a nil *Tracer (and on the Active it returns) is a
// no-op, so call sites never need a guard.
type Tracer struct {
	service string
	nowFn   func() int64
	store   *Store
	hist    *obs.Histogram

	seq  atomic.Uint64
	tick atomic.Int64
}

// New returns a tracer for the named service. nowNanos may be nil
// (logical ticks); store may be nil (spans are timed and counted but
// not retained); m may be nil (no span-duration histogram). The
// histogram is resolved once here so Finish never touches the metrics
// map on the hot path.
func New(service string, nowNanos func() int64, store *Store, m *obs.Metrics) *Tracer {
	t := &Tracer{service: service, nowFn: nowNanos, store: store}
	if m != nil {
		t.hist = m.Histogram(obs.HistSpanMicros)
	}
	return t
}

// Service returns the tracer's service name ("" for nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Store returns the tracer's span store (nil for nil).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// now reads the injected clock, or advances the logical tick.
func (t *Tracer) now() int64 {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return t.tick.Add(1)
}

// Start opens a span under parent. The returned Active is a value —
// starting a span allocates nothing — and must be finished exactly once
// via Finish (extra calls are no-ops).
func (t *Tracer) Start(parent Context, name string) Active {
	if t == nil {
		return Active{}
	}
	now := t.now()
	return Active{t: t, s: Span{
		Trace:   parent.Trace,
		Service: t.service,
		Seq:     t.seq.Add(1),
		Parent:  parent.Span,
		Name:    name,
		Start:   now,
		End:     now,
	}}
}

// Active is an in-progress span. The zero value is inert.
type Active struct {
	t *Tracer
	s Span
}

// SetPeer records the remote peer this span talked to.
func (a *Active) SetPeer(peer string) { a.s.Peer = peer }

// SetOutcome records how the span ended.
func (a *Active) SetOutcome(o string) { a.s.Outcome = o }

// Trace returns the span's trace id ("" when inert).
func (a *Active) Trace() string { return a.s.Trace }

// Context returns the context for children of this span. This is the
// cold path that materializes the span id string; it is not reachable
// from the obsring-guarded Start/Finish entry points.
func (a *Active) Context() Context {
	if a.t == nil {
		return Context{Trace: a.s.Trace}
	}
	return Context{Trace: a.s.Trace, Span: a.s.ID()}
}

// Finish stamps the end time, feeds the duration histogram and commits
// the span to the store. Idempotent: only the first call records.
func (a *Active) Finish() {
	t := a.t
	if t == nil {
		return
	}
	a.t = nil
	a.s.End = t.now()
	if a.s.End < a.s.Start {
		a.s.End = a.s.Start
	}
	if t.hist != nil {
		t.hist.Observe(uint64(a.s.End-a.s.Start) / 1000)
	}
	if t.store != nil {
		t.store.Add(a.s)
	}
}
