package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/runner"
	"dirsim/internal/spec"
	"dirsim/internal/tracegen"
)

func testRequest(t *testing.T) spec.Request {
	t.Helper()
	tc := tracegen.POPS(2_000)
	tc.CPUs = 2
	cell := spec.Cell{Trace: tc, Schemes: []string{"dir0b"}, Machine: coherence.Config{Caches: 2}}
	return spec.Request{Cell: &cell}
}

// resultFor fabricates a minimal done document for the request.
func resultFor(t *testing.T, req spec.Request) []byte {
	t.Helper()
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	doc := spec.ResultDoc{ID: hash, SpecVersion: spec.CurrentVersion, Status: "done"}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A daemon answering 429 with Retry-After must be retried on the
// deterministic backoff schedule — honouring the header as a floor —
// and the sweep succeeds once the queue drains, instead of failing
// whole on transient saturation.
func TestRunRetries429HonoringRetryAfter(t *testing.T) {
	req := testRequest(t)
	result := resultFor(t, req)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write(result)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		Retry:   runner.RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Seed: 1},
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	doc, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Status != "done" {
		t.Errorf("status = %q", doc.Status)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("daemon saw %d requests, want 4 (3 rejections + 1 success)", got)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	for i, d := range slept {
		// Retry-After: 2 floors every delay — the policy's base backoff
		// (tens of ms) is below it.
		if d < 2*time.Second {
			t.Errorf("sleep %d = %v, want ≥ 2s (Retry-After floor)", i, d)
		}
	}
}

// Attempts are capped: a permanently saturated daemon exhausts the
// policy and surfaces the 429, it does not retry forever.
func TestRunRetryAttemptsCapped(t *testing.T) {
	req := testRequest(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retry: runner.RetryPolicy{Max: 3, Base: time.Millisecond, Seed: 1}}
	_, err := c.Run(context.Background(), req)
	if err == nil {
		t.Fatal("saturated daemon did not surface an error")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("daemon saw %d requests, want exactly Max=3", got)
	}
}

// The backoff schedule is deterministic: two identical clients retrying
// the same saturation sleep exactly the same delays.
func TestRetryBackoffDeterministic(t *testing.T) {
	req := testRequest(t)
	run := func() []time.Duration {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
				return
			}
			w.Write(resultFor(t, req))
		}))
		defer ts.Close()
		var slept []time.Duration
		c := &Client{
			BaseURL: ts.URL,
			Retry:   runner.RetryPolicy{Max: 4, Base: 20 * time.Millisecond, Seed: 7},
			Sleep:   func(d time.Duration) { slept = append(slept, d) },
		}
		if _, err := c.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("sleep counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("delay %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Hard errors are not retried: a 400 comes straight back, and with no
// retry policy a 429 fails on the first answer (legacy behaviour).
func TestNoRetryOnHardErrorOrWithoutPolicy(t *testing.T) {
	req := testRequest(t)
	for _, tc := range []struct {
		status int
		client func(url string) *Client
		calls  int64
	}{
		{http.StatusBadRequest, func(u string) *Client {
			return &Client{BaseURL: u, Retry: runner.RetryPolicy{Max: 5, Base: time.Millisecond}}
		}, 1},
		{http.StatusTooManyRequests, func(u string) *Client { return &Client{BaseURL: u} }, 1},
	} {
		var calls atomic.Int64
		status := tc.status
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, fmt.Sprintf(`{"error":"status %d"}`, status), status)
		}))
		c := tc.client(ts.URL)
		if _, err := c.Run(context.Background(), req); err == nil {
			t.Errorf("status %d: no error surfaced", status)
		}
		if calls.Load() != tc.calls {
			t.Errorf("status %d: %d requests, want %d", status, calls.Load(), tc.calls)
		}
		ts.Close()
	}
}

// The API key travels as a bearer token on every request.
func TestAPIKeyHeader(t *testing.T) {
	req := testRequest(t)
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		w.Write(resultFor(t, req))
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, APIKey: "tenant-secret"}
	if _, err := c.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer tenant-secret" {
		t.Errorf("Authorization = %q", got.Load())
	}
}
