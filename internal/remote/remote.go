// Package remote is the client side of the dirsimd job API: it submits
// spec.Requests to a daemon, waits for the result document, and rebuilds
// sim.Results that price identically to a local run — including
// cost-model adjustments that do not survive serialisation, which
// sim.RemoteResult rederives from the scheme name.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dirsim/internal/sim"
	"dirsim/internal/spec"
)

// Client talks to one dirsimd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8023".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// errorBody extracts the daemon's JSON error envelope, falling back to
// the raw body.
func errorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// Run submits the request with wait semantics and returns the parsed
// result document. The call blocks until the daemon finishes the job (or
// serves it from cache); cancelling ctx disconnects, which withdraws this
// client's interest in the job.
func (c *Client) Run(ctx context.Context, req spec.Request) (*spec.ResultDoc, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs?wait=1"), bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: daemon answered %s: %s", resp.Status, errorBody(data))
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("remote: bad result document: %w", err)
	}
	if doc.Status != "done" {
		return nil, fmt.Errorf("remote: job %s ended %q", doc.ID, doc.Status)
	}
	return &doc, nil
}

// Engines fetches the daemon's engine and filter registries.
func (c *Client) Engines(ctx context.Context) (spec.EnginesDoc, error) {
	var doc spec.EnginesDoc
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/engines"), nil)
	if err != nil {
		return doc, fmt.Errorf("remote: %w", err)
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return doc, fmt.Errorf("remote: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return doc, fmt.Errorf("remote: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("remote: daemon answered %s: %s", resp.Status, errorBody(data))
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("remote: %w", err)
	}
	return doc, nil
}

// Results rebuilds runnable sim.Results from a result document, one slice
// per cell in document order. cells must be the same expansion the
// request was built from — each cell's machine config is what rederives
// the scheme's cost-model adjustment.
func Results(doc *spec.ResultDoc, cells []spec.Cell) ([][]sim.Result, error) {
	if len(doc.Cells) != len(cells) {
		return nil, fmt.Errorf("remote: result has %d cells, request expanded to %d", len(doc.Cells), len(cells))
	}
	out := make([][]sim.Result, len(cells))
	for i, cr := range doc.Cells {
		if len(cr.Results) != len(cells[i].Schemes) {
			return nil, fmt.Errorf("remote: cell %d has %d scheme results, want %d", i, len(cr.Results), len(cells[i].Schemes))
		}
		rs := make([]sim.Result, len(cr.Results))
		for k, sr := range cr.Results {
			r, err := sim.RemoteResult(sr.Scheme, cells[i].Machine, sr.Stats)
			if err != nil {
				return nil, fmt.Errorf("remote: cell %d: %w", i, err)
			}
			rs[k] = r
		}
		out[i] = rs
	}
	return out, nil
}

// RunCells is the convenience composition: submit, wait, rebuild.
func (c *Client) RunCells(ctx context.Context, req spec.Request) ([][]sim.Result, error) {
	cells, err := req.Cells()
	if err != nil {
		return nil, err
	}
	doc, err := c.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	return Results(doc, cells)
}
