// Package remote is the client side of the dirsimd job API: it submits
// spec.Requests to a daemon, waits for the result document, and rebuilds
// sim.Results that price identically to a local run — including
// cost-model adjustments that do not survive serialisation, which
// sim.RemoteResult rederives from the scheme name.
//
// Transient daemon saturation is absorbed, not fatal: a 429 (per-tenant
// quota or queue full) or a 503 (journal replay after a restart) is
// retried on the runner's deterministic exponential-backoff-with-jitter
// RetryPolicy, honouring the daemon's Retry-After header as a floor.
// Submission is idempotent by construction — jobs are content-addressed
// — so a retried POST can only attach to the same work, never duplicate
// it.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dirsim/internal/otrace"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
)

// defaultClient is the fallback transport when Client.HTTP is nil. It
// deliberately sets no overall Timeout — a ?wait=1 submission legitimately
// holds its connection open for the whole job, bounded by the caller's
// context — but every connection-establishment step is bounded, so a dead
// daemon fails the dial in seconds instead of hanging the caller forever.
var defaultClient = &http.Client{
	Transport: &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 0, // long-poll: the job runs before headers arrive
	},
}

// Client talks to one dirsimd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8023".
	BaseURL string
	// HTTP is the transport; nil means a shared client with bounded
	// dial and TLS timeouts but no overall deadline (wait=1 submissions
	// long-poll; bound them with the request context).
	HTTP *http.Client
	// APIKey, when non-empty, is sent as Authorization: Bearer on every
	// request. Daemons running with tenants configured require it.
	APIKey string
	// Retry bounds how 429/503 answers are retried (Max < 2 disables
	// retries). The schedule is runner.RetryPolicy's: deterministic
	// exponential backoff with jitter, so a saturated daemon is probed
	// on the same reproducible cadence every run.
	Retry runner.RetryPolicy
	// Sleep waits out retry backoff (cmd layers pass time.Sleep; nil
	// applies the schedule without waiting, which is what tests want).
	Sleep func(time.Duration)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// errorBody extracts the daemon's JSON error envelope, falling back to
// the raw body.
func errorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// retryable reports whether an HTTP status is transient daemon
// saturation: over quota / queue full (429) or not ready — draining or
// replaying its journal after a restart (503).
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoffFor combines the policy's deterministic schedule with the
// daemon's Retry-After hint (seconds), whichever is longer.
func (c *Client) backoffFor(attempt int, retryAfter string) time.Duration {
	d := c.Retry.Backoff(0, attempt)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	return d
}

// do issues one request with auth headers, reading the whole body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("remote: %w", err)
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	if tc, ok := otrace.From(ctx); ok {
		hreq.Header.Set(otrace.HeaderName, tc.String())
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("remote: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("remote: reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, data, nil
}

// doRetrying runs do under the retry policy: transient saturation
// answers (429/503) are retried up to Retry.Max attempts with the
// jittered backoff, honouring Retry-After; everything else — success,
// hard errors, transport failures — returns immediately.
func (c *Client) doRetrying(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	max := c.Retry.Max
	if max < 1 {
		max = 1
	}
	var (
		status int
		data   []byte
	)
	for attempt := 1; ; attempt++ {
		var (
			hdr http.Header
			err error
		)
		status, hdr, data, err = c.do(ctx, method, path, body)
		if err != nil {
			return 0, nil, err
		}
		if !retryable(status) || attempt >= max {
			return status, data, nil
		}
		delay := c.backoffFor(attempt, hdr.Get("Retry-After"))
		if c.Sleep != nil && delay > 0 {
			c.Sleep(delay)
		}
		if err := ctx.Err(); err != nil {
			return status, data, fmt.Errorf("remote: %w", err)
		}
	}
}

// Run submits the request with wait semantics and returns the parsed
// result document. The call blocks until the daemon finishes the job (or
// serves it from cache); cancelling ctx disconnects, which withdraws this
// client's interest in the job. Saturation (429) and daemon restarts
// (503) are retried per the client's Retry policy.
func (c *Client) Run(ctx context.Context, req spec.Request) (*spec.ResultDoc, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	status, data, err := c.doRetrying(ctx, http.MethodPost, "/v1/jobs?wait=1", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("remote: daemon answered %d %s: %s", status, http.StatusText(status), errorBody(data))
	}
	var doc spec.ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("remote: bad result document: %w", err)
	}
	if doc.Status != "done" {
		return nil, fmt.Errorf("remote: job %s ended %q", doc.ID, doc.Status)
	}
	return &doc, nil
}

// Engines fetches the daemon's engine and filter registries.
func (c *Client) Engines(ctx context.Context) (spec.EnginesDoc, error) {
	var doc spec.EnginesDoc
	status, data, err := c.doRetrying(ctx, http.MethodGet, "/v1/engines", nil)
	if err != nil {
		return doc, err
	}
	if status != http.StatusOK {
		return doc, fmt.Errorf("remote: daemon answered %d %s: %s", status, http.StatusText(status), errorBody(data))
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("remote: %w", err)
	}
	return doc, nil
}

// Results rebuilds runnable sim.Results from a result document, one slice
// per cell in document order. cells must be the same expansion the
// request was built from — each cell's machine config is what rederives
// the scheme's cost-model adjustment.
func Results(doc *spec.ResultDoc, cells []spec.Cell) ([][]sim.Result, error) {
	if len(doc.Cells) != len(cells) {
		return nil, fmt.Errorf("remote: result has %d cells, request expanded to %d", len(doc.Cells), len(cells))
	}
	out := make([][]sim.Result, len(cells))
	for i, cr := range doc.Cells {
		srs, err := cr.SchemeResults()
		if err != nil {
			return nil, fmt.Errorf("remote: cell %d: %w", i, err)
		}
		if len(srs) != len(cells[i].Schemes) {
			return nil, fmt.Errorf("remote: cell %d has %d scheme results, want %d", i, len(srs), len(cells[i].Schemes))
		}
		rs := make([]sim.Result, len(srs))
		for k, sr := range srs {
			r, err := sim.RemoteResult(sr.Scheme, cells[i].Machine, sr.Stats)
			if err != nil {
				return nil, fmt.Errorf("remote: cell %d: %w", i, err)
			}
			rs[k] = r
		}
		out[i] = rs
	}
	return out, nil
}

// RunCells is the convenience composition: submit, wait, rebuild.
func (c *Client) RunCells(ctx context.Context, req spec.Request) ([][]sim.Result, error) {
	cells, err := req.Cells()
	if err != nil {
		return nil, err
	}
	doc, err := c.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	return Results(doc, cells)
}
