package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/trace"
)

// This file is the pool's failure discipline: error classification
// (transient vs permanent), deterministic retry backoff, panic
// containment, the per-job watchdog plumbing, and the machine-readable
// failure manifest degraded runs emit.

// ErrStalled is the cause a job fails with when its stall watchdog fires:
// no reference-batch progress within Options.StallTimeout.
var ErrStalled = errors.New("runner: job made no progress within the stall watchdog interval")

// ErrJobDeadline is the cause a job fails with when it exceeds
// Options.JobTimeout.
var ErrJobDeadline = errors.New("runner: job exceeded its deadline")

// transientError marks an error as retryable via the Transient() bool
// method convention, so packages injecting transient failures need not
// import runner.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient wraps err so the retry policy recognises it as retryable.
func Transient(err error) error { return &transientError{err: err} }

// IsTransient reports whether err carries a Transient() bool marker
// anywhere in its chain. Only transient errors are retried: permanent
// faults (corrupt traces, panics, config errors) fail fast and land in
// the manifest instead of burning retry budget.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds how a job's transient failures are retried. The
// backoff schedule is a pure function of (Seed, job index, attempt), so
// the same policy always produces the same delays — retry behaviour is
// as reproducible as the simulation itself.
type RetryPolicy struct {
	// Max is the maximum number of attempts per job, including the
	// first; values below 2 mean no retries.
	Max int
	// Base is the backoff before the second attempt; it doubles with
	// every further attempt. Zero means retry immediately.
	Base time.Duration
	// Cap bounds a single delay; zero means uncapped.
	Cap time.Duration
	// Seed drives the jitter stream.
	Seed int64
}

// Backoff returns the delay before retrying job index after its
// attempt-th failed attempt (attempt ≥ 1): exponential in the attempt
// with deterministic jitter in [d/2, d], the spread that keeps a pool of
// simultaneously failing jobs from retrying in lockstep.
func (p RetryPolicy) Backoff(index, attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 { // 2^20× base is already beyond any real Cap
		shift = 20
	}
	d := p.Base << uint(shift)
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	const mix = int64(-0x61c8864680b583eb) // golden-ratio multiplier, as a signed 64-bit constant
	rng := rand.New(rand.NewSource(p.Seed ^ int64(index)*mix ^ int64(attempt)<<32))
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// JobError is the failure of one job, carrying its identity and how many
// attempts were spent. Run wraps every per-job error in one, so callers
// can rebuild exactly which grid cells failed from the joined error or
// the OnError callback.
type JobError struct {
	// Index is the job's position in the slice passed to Run.
	Index int
	// Label is the job's Label (may be empty).
	Label string
	// Attempts is how many attempts ran, including the failing one.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// Error implements error.
func (e *JobError) Error() string {
	name := e.Label
	if name == "" {
		name = fmt.Sprintf("job %d", e.Index)
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("%s (after %d attempts): %v", name, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s: %v", name, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a recovered panic from inside a job: the pool converts
// panics to errors so one poisoned cell can never kill a sweep.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error. The stack stays out of the message (manifests
// embed it) and is available on the field.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// guardedReader makes a job's trace reader observe its watchdog/deadline
// context between references, so a cancelled attempt unwinds promptly
// instead of decoding out the rest of a batch. It is only layered on when
// a per-job guard is configured — the per-ref ctx check stays off the
// default hot path.
type guardedReader struct {
	ctx context.Context
	rd  trace.Reader
}

// Next implements trace.Reader.
func (g *guardedReader) Next() (trace.Ref, error) {
	if g.ctx.Err() != nil {
		return trace.Ref{}, context.Cause(g.ctx)
	}
	return g.rd.Next()
}

// Manifest is the machine-readable record of a degraded run: which jobs
// failed, with what error, after how many attempts. CLIs write it next
// to their partial results so a later -resume (or a human) can replay
// exactly the missing cells.
type Manifest struct {
	// Command identifies the producing tool ("sweep", "paper", ...).
	Command string `json:"command"`
	// Total is the number of jobs (or sections) the run attempted.
	Total int `json:"jobs_total"`
	// Succeeded is Total minus the recorded failures.
	Succeeded int `json:"jobs_succeeded"`
	// Failed is the number of recorded failures.
	Failed int `json:"jobs_failed"`
	// Failures lists every failed job in completion order.
	Failures []Failure `json:"failures"`
}

// Failure is one failed job in a Manifest.
type Failure struct {
	Index    int    `json:"index"`
	Label    string `json:"label"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// NewManifest returns an empty manifest for a run of total jobs.
func NewManifest(command string, total int) *Manifest {
	return &Manifest{Command: command, Total: total, Failures: []Failure{}}
}

// Record adds one failure. index and label identify the job in the
// caller's own numbering (a resumed sweep records global grid indices,
// not pool indices); attempt count is recovered from a wrapped JobError
// when present.
func (m *Manifest) Record(index int, label string, err error) {
	attempts := 1
	var je *JobError
	if errors.As(err, &je) {
		attempts = je.Attempts
		if label == "" {
			label = je.Label
		}
		err = je.Err
	}
	m.Failed++
	m.Failures = append(m.Failures, Failure{
		Index: index, Label: label, Attempts: attempts, Error: err.Error(),
	})
}

// Write marshals the manifest and writes it crash-safely to path.
func (m *Manifest) Write(path string) error {
	m.Succeeded = m.Total - m.Failed
	if m.Succeeded < 0 {
		m.Succeeded = 0
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'))
}
