package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// panicJob's trace source panics when opened.
func panicJob(label string) Job {
	return Job{
		Label: label,
		Source: func() (trace.Reader, error) {
			panic("poisoned trace source")
		},
		Schemes: []string{"dir0b"},
		Config:  coherence.Config{Caches: 4},
	}
}

// A panicking job becomes a *JobError wrapping a *PanicError; its
// neighbours still complete, and OnResult/OnError interleave in index
// order.
func TestPanicContainment(t *testing.T) {
	jobs := []Job{job(1), panicJob("poison"), job(2)}
	m := obs.NewMetrics()
	var order []string
	out, err := Run(context.Background(), jobs, Options{
		Workers: 3,
		Metrics: m,
		OnResult: func(i int, rs []sim.Result) {
			order = append(order, fmt.Sprintf("ok %d", i))
		},
		OnError: func(i int, err error) {
			order = append(order, fmt.Sprintf("err %d", i))
		},
	})
	if err == nil {
		t.Fatal("run with a panicking job reported success")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Index != 1 || je.Label != "poison" {
		t.Fatalf("error = %v, want a *JobError for job 1", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want a wrapped *PanicError", err)
	}
	if pe.Value != "poisoned trace source" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %v (stack %d bytes), want the panic value and a stack", pe.Value, len(pe.Stack))
	}
	if out[0] == nil || out[2] == nil {
		t.Error("healthy jobs lost their results")
	}
	want := []string{"ok 0", "err 1", "ok 2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("delivery order = %v, want %v", order, want)
	}
	s := m.Snapshot()
	if s.Panics != 1 || s.Failures != 1 {
		t.Errorf("panics=%d failures=%d, want 1 and 1", s.Panics, s.Failures)
	}
}

// A reader that panics mid-stream (not just at open) is also contained.
type midStreamPanicReader struct{ n int }

func (r *midStreamPanicReader) Next() (trace.Ref, error) {
	r.n++
	if r.n > 100 {
		panic("mid-stream corruption")
	}
	return trace.Ref{CPU: uint8(r.n % 4), Kind: trace.Read, Addr: uint64(r.n * 16)}, nil
}

func TestPanicContainmentMidStream(t *testing.T) {
	jobs := []Job{{
		Label:   "mid-stream",
		Source:  func() (trace.Reader, error) { return &midStreamPanicReader{}, nil },
		Schemes: []string{"dir0b"},
		Config:  coherence.Config{Caches: 4},
	}}
	_, err := Run(context.Background(), jobs, Options{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want a wrapped *PanicError", err)
	}
}

// Transient failures are retried up to Retry.Max attempts with the
// policy's deterministic backoff; the same seed produces the same sleep
// schedule, a different seed a different one.
func TestRetryDeterministicSchedule(t *testing.T) {
	runOnce := func(seed int64) ([]time.Duration, map[int]int, error) {
		var delays []time.Duration
		attemptsByJob := map[int]int{}
		jobs := []Job{job(1), job(2)}
		_, err := Run(context.Background(), jobs, Options{
			Retry: RetryPolicy{Max: 3, Base: time.Millisecond, Seed: seed},
			Sleep: func(d time.Duration) { delays = append(delays, d) },
			TransientFault: func(index, attempt int) error {
				attemptsByJob[index] = attempt
				if attempt <= 2 {
					return Transient(fmt.Errorf("flaky infra (job %d attempt %d)", index, attempt))
				}
				return nil
			},
		})
		return delays, attemptsByJob, err
	}
	d1, attempts, err := runOnce(7)
	if err != nil {
		t.Fatalf("retries should have absorbed the transient faults: %v", err)
	}
	for i, a := range attempts {
		if a != 3 {
			t.Errorf("job %d ran %d attempts, want 3", i, a)
		}
	}
	if len(d1) != 4 { // 2 jobs × 2 retries
		t.Fatalf("%d backoff sleeps, want 4", len(d1))
	}
	d2, _, err := runOnce(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("same seed gave different schedules: %v vs %v", d1, d2)
	}
	d3, _, err := runOnce(8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(d1, d3) {
		t.Errorf("different seeds gave identical schedules: %v", d1)
	}
}

// Permanent failures must not burn retry budget.
func TestPermanentErrorsFailFast(t *testing.T) {
	calls := 0
	jobs := []Job{job(1)}
	_, err := Run(context.Background(), jobs, Options{
		Retry: RetryPolicy{Max: 5, Base: time.Millisecond},
		TransientFault: func(index, attempt int) error {
			calls++
			return errors.New("hard config error")
		},
	})
	var je *JobError
	if !errors.As(err, &je) || je.Attempts != 1 {
		t.Fatalf("error = %v, want a 1-attempt JobError", err)
	}
	if calls != 1 {
		t.Errorf("permanent error attempted %d times, want 1", calls)
	}
}

// Backoff is a pure function of (Seed, index, attempt): exponential with
// jitter in [d/2, d], capped, and zero without a base.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Seed: 3}
	for attempt := 1; attempt <= 4; attempt++ {
		full := p.Base << uint(attempt-1)
		if full > p.Cap {
			full = p.Cap
		}
		d := p.Backoff(9, attempt)
		if d < full/2 || d > full {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, full/2, full)
		}
		if d != p.Backoff(9, attempt) {
			t.Errorf("attempt %d: backoff is not deterministic", attempt)
		}
	}
	if d := (RetryPolicy{Max: 2}).Backoff(0, 1); d != 0 {
		t.Errorf("zero-base backoff = %v, want 0", d)
	}
	if a, b := p.Backoff(1, 1), p.Backoff(2, 1); a == b {
		t.Errorf("distinct jobs share jitter %v; schedules would retry in lockstep", a)
	}
}

// slowReader produces refs normally, then slows to a crawl after n refs —
// the wedged-source shape the stall watchdog exists for.
type slowReader struct {
	n     int
	after int
	delay time.Duration
}

func (r *slowReader) Next() (trace.Ref, error) {
	r.n++
	if r.n > r.after {
		time.Sleep(r.delay)
	}
	return trace.Ref{CPU: uint8(r.n % 4), Kind: trace.Read, Addr: uint64(r.n % 512 * 16)}, nil
}

func TestStallWatchdog(t *testing.T) {
	jobs := []Job{{
		Label: "wedged",
		// Fast for > one 4096-ref batch (so the watchdog resets on real
		// progress at least once), then 20ms per ref — far beyond the
		// stall interval relative to batch time.
		Source:  func() (trace.Reader, error) { return &slowReader{after: 5000, delay: 20 * time.Millisecond}, nil },
		Schemes: []string{"dir0b"},
		Config:  coherence.Config{Caches: 4},
	}}
	start := time.Now()
	_, err := Run(context.Background(), jobs, Options{StallTimeout: 100 * time.Millisecond})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("error = %v, want ErrStalled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stalled job held its worker for %v", elapsed)
	}
}

func TestJobDeadline(t *testing.T) {
	jobs := []Job{{
		Label:   "slow",
		Source:  func() (trace.Reader, error) { return &slowReader{after: 0, delay: 2 * time.Millisecond}, nil },
		Schemes: []string{"dir0b"},
		Config:  coherence.Config{Caches: 4},
	}}
	_, err := Run(context.Background(), jobs, Options{JobTimeout: 50 * time.Millisecond})
	if !errors.Is(err, ErrJobDeadline) {
		t.Fatalf("error = %v, want ErrJobDeadline", err)
	}
}

// Transient and IsTransient must classify through wrapping.
func TestTransientClassification(t *testing.T) {
	base := errors.New("io hiccup")
	if IsTransient(base) {
		t.Error("plain error classified transient")
	}
	wrapped := fmt.Errorf("job 3: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("wrapped transient error not recognised")
	}
	if !errors.Is(wrapped, base) {
		t.Error("Transient broke the error chain")
	}
	je := &JobError{Index: 2, Label: "cell", Attempts: 3, Err: Transient(base)}
	if !IsTransient(je) {
		t.Error("JobError did not forward transience")
	}
	if je.Error() != "cell (after 3 attempts): io hiccup" {
		t.Errorf("JobError message = %q", je.Error())
	}
}

// The manifest round-trips through JSON with counts consistent with its
// failures, and extracts attempt counts from wrapped JobErrors.
func TestManifestWrite(t *testing.T) {
	man := NewManifest("sweep", 6)
	man.Record(1, "", &JobError{Index: 1, Label: "cell b", Attempts: 3, Err: errors.New("boom")})
	man.Record(4, "cell e", errors.New("torn trace"))
	path := filepath.Join(t.TempDir(), "sub", "failures.json")
	if err := man.Write(path); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	path = filepath.Join(t.TempDir(), "failures.json")
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	want := Manifest{
		Command: "sweep", Total: 6, Succeeded: 4, Failed: 2,
		Failures: []Failure{
			{Index: 1, Label: "cell b", Attempts: 3, Error: "boom"},
			{Index: 4, Label: "cell e", Attempts: 1, Error: "torn trace"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("manifest = %+v\nwant %+v", got, want)
	}
}

// An empty manifest still marshals with an empty failures array, not
// null — consumers index into it unconditionally.
func TestManifestEmptyFailuresArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failures.json")
	if err := NewManifest("paper", 3).Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("manifest is not valid JSON")
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["failures"]) != "[]" {
		t.Errorf("failures = %s, want []", raw["failures"])
	}
}
