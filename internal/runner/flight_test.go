package runner

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dirsim/internal/flight"
	"dirsim/internal/obs"
)

// TestTraceForCapturesPerJob wires one recorder per (index, attempt)
// through the pool and checks each job's trace is captured independently
// while results stay identical to an untraced run.
func TestTraceForCapturesPerJob(t *testing.T) {
	jobs := []Job{job(1), job(2), job(3)}
	plain, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	recs := map[int]*flight.Recorder{}
	traced, err := Run(context.Background(), jobs, Options{
		Workers: 2,
		TraceFor: func(index, attempt int) *flight.Recorder {
			rec := flight.New(flight.Options{Sample: 16, Spans: true, Pid: index, Label: jobs[index].Label})
			mu.Lock()
			recs[index] = rec
			mu.Unlock()
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i] {
			if !reflect.DeepEqual(traced[i][j].Stats, plain[i][j].Stats) {
				t.Errorf("job %d: %s stats differ under tracing", i, traced[i][j].Scheme)
			}
		}
	}
	if len(recs) != len(jobs) {
		t.Fatalf("%d recorders created, want %d", len(recs), len(jobs))
	}
	for i, rec := range recs {
		if rec.Pid() != i {
			t.Errorf("job %d recorder pid = %d", i, rec.Pid())
		}
		if len(rec.Events()) == 0 {
			t.Errorf("job %d captured no events", i)
		}
	}
}

// TestRunObservesHistograms: a metrics-instrumented run must populate the
// job-latency and invalidation-burst histograms deterministically.
func TestRunObservesHistograms(t *testing.T) {
	run := func() obs.Snapshot {
		m := obs.NewMetrics()
		if _, err := Run(context.Background(), []Job{job(1), job(2)}, Options{Workers: 2, Metrics: m}); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	s := run()
	byName := map[string]obs.HistogramSnapshot{}
	for _, h := range s.Histograms {
		byName[h.Name] = h
	}
	ticks, ok := byName[obs.HistJobTicks]
	if !ok || ticks.Count != 2 {
		t.Fatalf("job_ticks = %+v, want one observation per job", ticks)
	}
	burst, ok := byName[obs.HistInvalBurst]
	if !ok || burst.Count == 0 {
		t.Fatalf("inval_burst = %+v, want folded fanout observations", burst)
	}
	// Deterministic: a repeat run lands every observation in the same
	// buckets.
	if again := run(); !reflect.DeepEqual(again.Histograms, s.Histograms) {
		t.Error("histograms differ between identical runs")
	}
}
