// Package runner is the shared experiment-orchestration layer. The
// paper's methodology is embarrassingly parallel — independent
// (workload × machine size × scheme × seed) cells — so every run path
// (cmd/paper's tables and figures, cmd/sweep's grid, internal/study's
// replications) describes its work as a list of Jobs and hands them to
// one bounded, deterministic worker pool with context cancellation,
// aggregated errors, ordered result delivery, and obs instrumentation.
package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// Job is one independent simulation cell: a trace source and the scheme
// set to run over it.
type Job struct {
	// Label identifies the job in errors and progress output.
	Label string
	// Source opens the job's trace. It is called once, on the worker
	// goroutine that runs the job, so generators need not be safe for
	// concurrent use across jobs.
	Source func() (trace.Reader, error)
	// Schemes, Config and Opts parameterise sim.RunSchemes.
	Schemes []string
	Config  coherence.Config
	Opts    sim.Options
}

// Options configures a pool run.
type Options struct {
	// Workers bounds the number of concurrently running jobs; values
	// below 1 mean 1 (sequential). Workers are fixed goroutines that
	// claim jobs in index order, so no run ever spawns more goroutines
	// than Workers (plus each job's own sim.Options.Parallel engine
	// workers).
	Workers int
	// Metrics, when non-nil, accumulates refs simulated, jobs done/total
	// and per-engine tallies across the run.
	Metrics *obs.Metrics
	// OnResult, when non-nil, is called once per successful job in job
	// index order (calls are serialised and never run concurrently),
	// enabling streaming consumption of long grids.
	OnResult func(index int, rs []sim.Result)
	// Progress, when non-nil, is called after every metrics update — at
	// reference-batch granularity — from whichever worker made the
	// update. It must be cheap; throttle rendering in the caller (see
	// obs.Throttle).
	Progress func()
}

// Run executes the jobs on a bounded worker pool and returns one result
// slice per job, in job order. Errors from all failed jobs are aggregated
// with errors.Join, each wrapped with its job label; the slice still
// carries every successful job's results. Cancelling the context stops
// the pool within one reference batch.
func Run(ctx context.Context, jobs []Job, opts Options) ([][]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if opts.Metrics != nil {
		opts.Metrics.AddJobs(len(jobs))
	}

	out := make([][]sim.Result, len(jobs))
	errs := make([]error, len(jobs))

	// Ordered delivery: workers mark jobs done under mu; whichever worker
	// fills the gap at nextOut flushes the run of completed jobs, so
	// OnResult sees index order and is never called concurrently.
	var mu sync.Mutex
	done := make([]bool, len(jobs))
	nextOut := 0
	completed := 0
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		completed++
		for nextOut < len(jobs) && done[nextOut] {
			if errs[nextOut] == nil && opts.OnResult != nil {
				opts.OnResult(nextOut, out[nextOut])
			}
			nextOut++
		}
	}

	var claim atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(claim.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				out[i], errs[i] = runJob(ctx, jobs[i], opts)
				finish(i)
			}
		}()
	}
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return out, err
	}
	if completed < len(jobs) {
		// Jobs were skipped because the context ended before they
		// started; none of the started jobs saw it (they would have
		// errored), so surface it here.
		return out, context.Cause(ctx)
	}
	return out, nil
}

// runJob opens one job's trace and runs its schemes, threading the pool's
// instrumentation into the simulation driver.
func runJob(ctx context.Context, j Job, opts Options) ([]sim.Result, error) {
	fail := func(err error) ([]sim.Result, error) {
		if j.Label != "" {
			return nil, fmt.Errorf("%s: %w", j.Label, err)
		}
		return nil, err
	}
	if j.Source == nil {
		return fail(fmt.Errorf("runner: job has no trace source"))
	}
	rd, err := j.Source()
	if err != nil {
		return fail(err)
	}
	simOpts := j.Opts
	if opts.Metrics != nil || opts.Progress != nil {
		prev := simOpts.OnProgress
		simOpts.OnProgress = func(n int) {
			if prev != nil {
				prev(n)
			}
			if opts.Metrics != nil {
				opts.Metrics.AddRefs(uint64(n))
			}
			if opts.Progress != nil {
				opts.Progress()
			}
		}
	}
	rs, err := sim.RunSchemes(ctx, rd, j.Schemes, j.Config, simOpts)
	if err != nil {
		return fail(err)
	}
	if opts.Metrics != nil {
		for _, r := range rs {
			var ops uint64
			for _, n := range r.Stats.Ops {
				ops += n
			}
			opts.Metrics.AddEngine(r.Scheme, obs.EngineTally{
				Refs:         r.Stats.Refs,
				Transactions: r.Stats.Transactions,
				BusOps:       ops,
			})
		}
		opts.Metrics.JobDone()
		if opts.Progress != nil {
			opts.Progress()
		}
	}
	return rs, nil
}
