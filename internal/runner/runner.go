// Package runner is the shared experiment-orchestration layer. The
// paper's methodology is embarrassingly parallel — independent
// (workload × machine size × scheme × seed) cells — so every run path
// (cmd/paper's tables and figures, cmd/sweep's grid, internal/study's
// replications) describes its work as a list of Jobs and hands them to
// one bounded, deterministic worker pool with context cancellation,
// aggregated errors, ordered result delivery, and obs instrumentation.
//
// The pool is also the failure boundary: a panicking job becomes an
// error carrying its identity (never a dead sweep), transient errors are
// retried on a deterministic exponential-backoff-with-jitter schedule,
// and a per-job deadline and stall watchdog bound how long any one cell
// can hold a worker. See resilience.go.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// Job is one independent simulation cell: a trace source and the scheme
// set to run over it.
type Job struct {
	// Label identifies the job in errors and progress output.
	Label string
	// Source opens the job's trace. It is called once per attempt, on
	// the worker goroutine that runs the job, so generators need not be
	// safe for concurrent use across jobs — and a retried attempt starts
	// from a fresh reader.
	Source func() (trace.Reader, error)
	// Schemes, Config and Opts parameterise sim.RunSchemes.
	Schemes []string
	Config  coherence.Config
	Opts    sim.Options
}

// Options configures a pool run.
type Options struct {
	// Workers bounds the number of concurrently running jobs; values
	// below 1 mean 1 (sequential). Workers are fixed goroutines that
	// claim jobs in index order, so no run ever spawns more goroutines
	// than Workers (plus each job's own sim.Options.Parallel engine
	// workers).
	Workers int
	// Metrics, when non-nil, accumulates refs simulated, jobs done/total,
	// retries/failures/panics and per-engine tallies across the run.
	Metrics *obs.Metrics
	// OnResult, when non-nil, is called once per successful job in job
	// index order (calls are serialised and never run concurrently),
	// enabling streaming consumption of long grids.
	OnResult func(index int, rs []sim.Result)
	// OnError, when non-nil, is called once per failed job with its
	// *JobError, interleaved with OnResult in the same serialised job
	// index order — the streaming view a failure manifest is built from.
	OnError func(index int, err error)
	// Progress, when non-nil, is called after every metrics update — at
	// reference-batch granularity — from whichever worker made the
	// update. It must be cheap; throttle rendering in the caller (see
	// obs.Throttle).
	Progress func()
	// Retry bounds how transient job failures are retried. The zero
	// value retries nothing.
	Retry RetryPolicy
	// Sleep, when non-nil, is called with each backoff delay before a
	// retry. Internal packages stay clock-free, so the cmd layer passes
	// time.Sleep; nil applies the (still deterministic) schedule with no
	// actual waiting — what tests want.
	Sleep func(time.Duration)
	// JobTimeout, when positive, bounds each attempt's wall-clock time;
	// an attempt exceeding it fails with ErrJobDeadline.
	JobTimeout time.Duration
	// StallTimeout, when positive, arms a per-attempt watchdog that
	// fails the attempt with ErrStalled when no reference batch
	// completes within the interval — catching wedged trace sources that
	// a generous JobTimeout would let hold a worker. It must comfortably
	// exceed the time one reference batch takes.
	StallTimeout time.Duration
	// TransientFault, when non-nil, is consulted before each attempt of
	// each job with (job index, attempt) and any returned error fails
	// the attempt. It exists to inject transient infrastructure failures
	// deterministically — fault-injection campaigns and retry tests wrap
	// errors with Transient so the retry path is exercised end to end.
	TransientFault func(index, attempt int) error
	// TraceFor, when non-nil, is consulted at the start of each attempt
	// with (job index, attempt) and may return a flight recorder for the
	// attempt's simulation to record into (nil leaves the attempt
	// untraced). Each attempt should get its own recorder — a retried
	// attempt replays the trace from the start, so reusing one would mix
	// two attempts' events. The recorder overrides Job.Opts.Recorder.
	TraceFor func(index, attempt int) *flight.Recorder
}

// Run executes the jobs on a bounded worker pool and returns one result
// slice per job, in job order. A failed job — including one that
// panicked — never stops the others: its error is wrapped in a *JobError
// and aggregated with errors.Join, and the slice still carries every
// successful job's results. Cancelling the context stops the pool within
// one reference batch.
func Run(ctx context.Context, jobs []Job, opts Options) ([][]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if opts.Metrics != nil {
		opts.Metrics.AddJobs(len(jobs))
	}

	out := make([][]sim.Result, len(jobs))
	errs := make([]error, len(jobs))

	// Ordered delivery: workers mark jobs done under mu; whichever worker
	// fills the gap at nextOut flushes the run of completed jobs, so
	// OnResult/OnError see index order and are never called concurrently.
	var mu sync.Mutex
	done := make([]bool, len(jobs))
	nextOut := 0
	completed := 0
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		completed++
		for nextOut < len(jobs) && done[nextOut] {
			if errs[nextOut] == nil {
				if opts.OnResult != nil {
					opts.OnResult(nextOut, out[nextOut])
				}
			} else if opts.OnError != nil {
				opts.OnError(nextOut, errs[nextOut])
			}
			nextOut++
		}
	}

	var claim atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(claim.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				rs, attempts, err := runJob(ctx, i, jobs[i], opts)
				out[i] = rs
				if err != nil {
					errs[i] = &JobError{Index: i, Label: jobs[i].Label, Attempts: attempts, Err: err}
					if opts.Metrics != nil {
						opts.Metrics.AddFailure()
					}
				}
				finish(i)
			}
		}()
	}
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return out, err
	}
	if completed < len(jobs) {
		// Jobs were skipped because the context ended before they
		// started; none of the started jobs saw it (they would have
		// errored), so surface it here.
		return out, context.Cause(ctx)
	}
	return out, nil
}

// runJob runs one job to completion, retrying transient failures on the
// policy's deterministic backoff schedule. It reports how many attempts
// ran.
func runJob(ctx context.Context, index int, j Job, opts Options) ([]sim.Result, int, error) {
	maxAttempts := opts.Retry.Max
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		rs, err := runAttempt(ctx, index, attempt, j, opts)
		if err == nil {
			return rs, attempt, nil
		}
		if attempt >= maxAttempts || !IsTransient(err) || ctx.Err() != nil {
			return nil, attempt, err
		}
		if opts.Metrics != nil {
			opts.Metrics.AddRetry()
		}
		if d := opts.Retry.Backoff(index, attempt); d > 0 && opts.Sleep != nil {
			opts.Sleep(d)
		}
	}
}

// runAttempt opens the job's trace and runs its schemes once, threading
// the pool's instrumentation into the simulation driver. Panics are
// recovered into *PanicError; the per-attempt deadline and stall
// watchdog, when configured, cancel the attempt with their cause.
func runAttempt(ctx context.Context, index, attempt int, j Job, opts Options) (rs []sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			if opts.Metrics != nil {
				opts.Metrics.AddPanic()
			}
			rs, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if opts.TransientFault != nil {
		if ferr := opts.TransientFault(index, attempt); ferr != nil {
			return nil, ferr
		}
	}
	if j.Source == nil {
		return nil, fmt.Errorf("runner: job has no trace source")
	}

	attemptCtx := ctx
	guarded := false
	if opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeoutCause(attemptCtx, opts.JobTimeout, ErrJobDeadline)
		defer cancel()
		guarded = true
	}
	var watchdog *time.Timer
	if opts.StallTimeout > 0 {
		wctx, cancel := context.WithCancelCause(attemptCtx)
		attemptCtx = wctx
		watchdog = time.AfterFunc(opts.StallTimeout, func() { cancel(ErrStalled) })
		defer watchdog.Stop()
		defer cancel(nil)
		guarded = true
	}

	rd, err := j.Source()
	if err != nil {
		return nil, err
	}
	if guarded {
		rd = &guardedReader{ctx: attemptCtx, rd: rd}
	}
	simOpts := j.Opts
	if opts.TraceFor != nil {
		simOpts.Recorder = opts.TraceFor(index, attempt)
	}
	// ticks counts this attempt's progress callbacks — the job's latency
	// in reference batches, a deterministic stand-in for wall clock.
	var ticks uint64
	if opts.Metrics != nil || opts.Progress != nil || watchdog != nil {
		prev := simOpts.OnProgress
		stall := opts.StallTimeout
		simOpts.OnProgress = func(n int) {
			if prev != nil {
				prev(n)
			}
			ticks++
			if watchdog != nil {
				watchdog.Reset(stall)
			}
			if opts.Metrics != nil {
				opts.Metrics.AddRefs(uint64(n))
			}
			if opts.Progress != nil {
				opts.Progress()
			}
		}
	}
	rs, err = sim.RunSchemes(attemptCtx, rd, j.Schemes, j.Config, simOpts)
	if err != nil {
		// When the attempt's own guard fired (not the run-level context),
		// report its cause — ErrStalled or ErrJobDeadline — instead of a
		// bare context error.
		if attemptCtx.Err() != nil && ctx.Err() == nil {
			err = context.Cause(attemptCtx)
		}
		return nil, err
	}
	if opts.Metrics != nil {
		burst := opts.Metrics.Histogram(obs.HistInvalBurst)
		for _, r := range rs {
			var ops uint64
			for _, n := range r.Stats.Ops {
				ops += n
			}
			opts.Metrics.AddEngine(r.Scheme, obs.EngineTally{
				Refs:         r.Stats.Refs,
				Transactions: r.Stats.Transactions,
				BusOps:       ops,
			})
			// Fold the Figure 1 fanout histogram into the run-wide
			// invalidations-per-write burst distribution: exact counts,
			// no per-reference cost.
			for fanout, n := range r.Stats.InvalFanout.Counts {
				burst.ObserveN(uint64(fanout), n)
			}
		}
		opts.Metrics.Histogram(obs.HistJobTicks).Observe(ticks)
		opts.Metrics.JobDone()
		if opts.Progress != nil {
			opts.Progress()
		}
	}
	return rs, nil
}
