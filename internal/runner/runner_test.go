package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

// job returns a small real simulation job over the given seed.
func job(seed int64, schemes ...string) Job {
	if len(schemes) == 0 {
		schemes = []string{"dir0b", "dragon"}
	}
	cfg := tracegen.PERO(5_000)
	cfg.Seed = seed
	return Job{
		Label:   fmt.Sprintf("seed %d", seed),
		Source:  func() (trace.Reader, error) { return tracegen.New(cfg) },
		Schemes: schemes,
		Config:  coherence.Config{Caches: 4},
	}
}

// Results must be identical and in job order whatever the worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := []Job{job(1), job(2), job(3), job(4), job(5)}
	base, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(jobs) {
		t.Fatalf("%d result slices, want %d", len(base), len(jobs))
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range base {
			for j := range base[i] {
				if got[i][j].Scheme != base[i][j].Scheme ||
					!reflect.DeepEqual(got[i][j].Stats, base[i][j].Stats) {
					t.Errorf("workers=%d: job %d result %d differs", workers, i, j)
				}
			}
		}
	}
}

// OnResult must arrive serialised, once per job, in strictly increasing
// index order, even with many workers racing.
func TestOnResultOrdered(t *testing.T) {
	jobs := make([]Job, 9)
	for i := range jobs {
		jobs[i] = job(int64(i + 1))
	}
	var indices []int
	_, err := Run(context.Background(), jobs, Options{
		Workers: 8,
		OnResult: func(index int, rs []sim.Result) {
			// Appends are unguarded on purpose: the ordered-delivery
			// contract serialises calls, so the race detector validates
			// it too.
			indices = append(indices, index)
			if len(rs) != 2 {
				t.Errorf("job %d delivered %d results", index, len(rs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(indices) != len(jobs) {
		t.Fatalf("OnResult fired %d times, want %d", len(indices), len(jobs))
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("delivery order %v, want increasing from 0", indices)
		}
	}
}

// trackingReader decrements the in-flight counter once, when its trace is
// exhausted — i.e. when the job that opened it is done executing.
type trackingReader struct {
	rd       trace.Reader
	inFlight *atomic.Int64
	closed   bool
}

func (r *trackingReader) Next() (trace.Ref, error) {
	ref, err := r.rd.Next()
	if err != nil && !r.closed {
		r.closed = true
		r.inFlight.Add(-1)
	}
	return ref, err
}

// The regression the runner exists to fix: however many jobs are queued,
// no more than Workers may ever be executing at once (the old
// ParallelSeedSweep spawned one goroutine per seed before throttling).
// Source opens count up, trace exhaustion counts down; delivery order is
// irrelevant to the execution bound.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job, 24)
	for i := range jobs {
		seed := int64(i + 1)
		jobs[i] = Job{
			Label: fmt.Sprintf("seed %d", seed),
			Source: func() (trace.Reader, error) {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cfg := tracegen.PERO(2_000)
				cfg.Seed = seed
				rd, err := tracegen.New(cfg)
				if err != nil {
					return nil, err
				}
				return &trackingReader{rd: rd, inFlight: &inFlight}, nil
			},
			Schemes: []string{"dir0b"},
			Config:  coherence.Config{Caches: 4},
			Opts: sim.Options{OnProgress: func(int) {
				time.Sleep(time.Millisecond) // widen the race window
			}},
		}
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight jobs = %d, want ≤ %d", p, workers)
	}
}

// Every failing job must surface in the aggregated error, labelled, while
// successful jobs still deliver results.
func TestErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	fail := func(label string) Job {
		return Job{Label: label, Source: func() (trace.Reader, error) { return nil, boom }}
	}
	jobs := []Job{job(1), fail("first bad"), job(2), fail("second bad")}
	res, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err == nil {
		t.Fatal("failing jobs produced no error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	for _, want := range []string{"first bad", "second bad"} {
		if !containsString(err.Error(), want) {
			t.Errorf("aggregated error missing %q: %v", want, err)
		}
	}
	if res[0] == nil || res[2] == nil {
		t.Error("successful jobs' results dropped")
	}
	if res[1] != nil || res[3] != nil {
		t.Error("failed jobs returned results")
	}
}

func containsString(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// endlessReader never returns EOF, so only cancellation ends its job.
type endlessReader struct{ n uint64 }

func (r *endlessReader) Next() (trace.Ref, error) {
	r.n++
	return trace.Ref{CPU: uint8(r.n % 4), Kind: trace.Read, Addr: (r.n % 256) * 16}, nil
}

// Cancelling the pool must return context.Canceled promptly and leave no
// worker goroutines behind.
func TestRunCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Label:   fmt.Sprintf("endless %d", i),
			Source:  func() (trace.Reader, error) { return &endlessReader{}, nil },
			Schemes: []string{"dir0b"},
			Config:  coherence.Config{Caches: 4},
		}
	}
	var fired atomic.Bool
	opts := Options{
		Workers: 4,
		Metrics: obs.NewMetrics(),
		Progress: func() {
			if !fired.Swap(true) {
				cancel()
			}
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, jobs, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled pool did not return")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d running, baseline %d", n, baseline)
	}
}

// Metrics must account for every reference and job exactly once, with
// per-scheme engine tallies.
func TestMetricsAccounting(t *testing.T) {
	m := obs.NewMetrics()
	jobs := []Job{job(1), job(2), job(3)}
	res, err := Run(context.Background(), jobs, Options{Workers: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.JobsTotal != 3 || s.JobsDone != 3 {
		t.Errorf("jobs = %d/%d, want 3/3", s.JobsDone, s.JobsTotal)
	}
	if s.Refs != 3*5_000 {
		t.Errorf("refs = %d, want %d", s.Refs, 3*5_000)
	}
	var wantRefs uint64
	for _, rs := range res {
		wantRefs += rs[0].Stats.Refs
	}
	if len(s.Engines) != 2 {
		t.Fatalf("engine tallies = %+v", s.Engines)
	}
	if s.Engines[0].Scheme != "Dir0B" || s.Engines[0].Refs != wantRefs {
		t.Errorf("Dir0B tally = %+v, want %d refs", s.Engines[0], wantRefs)
	}
}

// Edge cases: empty job list, missing source, zero workers.
func TestRunEdgeCases(t *testing.T) {
	if res, err := Run(context.Background(), nil, Options{}); err != nil || res != nil {
		t.Errorf("empty run = %v, %v", res, err)
	}
	if _, err := Run(context.Background(), []Job{{Label: "no source"}}, Options{}); err == nil {
		t.Error("job without source accepted")
	} else if !containsString(err.Error(), "no source") {
		t.Errorf("error not labelled: %v", err)
	}
	res, err := Run(context.Background(), []Job{job(1)}, Options{Workers: 0})
	if err != nil || len(res) != 1 {
		t.Errorf("zero-worker run = %v, %v", res, err)
	}
}
