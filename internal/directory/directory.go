// Package directory implements the directory storage organisations the
// paper surveys in Sections 2 and 6.
//
// A directory records, for each block of main memory, which caches may hold
// a copy. The organisations differ in how much they remember and therefore
// in how invalidations must be delivered:
//
//   - the Censier–Feautrier full map (FullMap) keeps one presence bit per
//     cache, so invalidations can be directed messages;
//   - Tang's organisation (Tang) duplicates every cache's tag store at
//     memory — the same information as the full map, but each lookup must
//     search all the duplicate directories;
//   - the Archibald–Baer two-bit scheme (TwoBit) keeps only four states per
//     block and relies on broadcast to invalidate;
//   - limited-pointer schemes (LimitedPointer) keep i cache indices plus,
//     in the Dir_iB variant, a broadcast bit; the Dir_iNB variant instead
//     evicts an existing copy when a pointer is needed;
//   - the Section 6 coded-set scheme (CodedSet) stores a ternary-digit word
//     denoting a superset of the holders in 2·log2(n) bits.
//
// Stores answer the one question coherence engines ask — "whom must I
// invalidate?" — and account for their own storage cost, so the protocol
// engines in internal/coherence are organisation-agnostic.
//
// Blocks are identified by the dense ids of internal/blockid rather than
// raw addresses: the engine interns each referenced block once, and every
// store keeps its per-block memory in plain slices indexed by id. The
// per-reference path therefore performs no hashing and, once the slices
// reach the trace's working-set size, no allocation. A slot whose zero
// value means "nothing remembered" doubles as the deleted state, so Clear
// and Remove never shrink anything.
package directory

import (
	"fmt"
	"math/bits"

	"dirsim/internal/blockid"
)

// Store is a directory organisation tracking, per memory block, which
// caches may hold copies. Implementations trade precision for storage.
//
// The protocol engine owns the ground-truth sharing state; a Store only
// models what the hardware directory would know. Engines must keep the two
// in sync by calling Add when a cache obtains a copy, SetSole after a write
// leaves one holder, Remove when a copy is invalidated or replaced, and
// Clear when no copies remain.
type Store interface {
	// Name identifies the organisation.
	Name() string

	// Add records that cache c obtained a copy of block id. Limited-pointer
	// no-broadcast stores may have to free a pointer by invalidating an
	// existing copy; Add then returns that victim cache and the caller
	// must invalidate it. Otherwise victim is -1.
	Add(id blockid.ID, c int) (victim int)

	// Remove records that cache c no longer holds block id. Organisations
	// that do not track individual holders ignore it.
	Remove(id blockid.ID, c int)

	// SetSole records that cache c is now the only holder (after a
	// write gained exclusive access).
	SetSole(id blockid.ID, c int)

	// Clear records that no cache holds block id.
	Clear(id blockid.ID)

	// Targets reports how to deliver an invalidation to every copy of
	// block id except cache `except` (pass -1 to hit all copies): either a
	// list of directed message targets, or broadcast = true when the
	// organisation does not know the holders. Directed targets are
	// appended to dst and returned, so a caller that reuses the returned
	// slice's capacity pays no allocation on the per-reference path;
	// pass nil when a fresh slice is acceptable.
	Targets(dst []int, id blockid.ID, except int) (targets []int, broadcast bool)

	// Count reports how many caches the directory believes hold block id.
	// When exact is false, n is a lower bound (TwoBit's "clean in an
	// unknown number of caches") or an upper bound superset size
	// (CodedSet); callers must consult broadcast/Targets rather than
	// trusting n.
	Count(id blockid.ID) (n int, exact bool)

	// StorageBits returns the total directory storage the organisation
	// needs for a machine described by p.
	StorageBits(p StorageParams) uint64

	// BlockKey returns a canonical, deterministic encoding of everything
	// the organisation remembers about block id — the directory half of a
	// model-checking state key. Blocks the store tracks nothing for
	// encode as "". Two stores of the same organisation with equal keys
	// answer Targets and Count identically for that block.
	BlockKey(id blockid.ID) string
}

// StorageParams describes the machine for storage accounting.
type StorageParams struct {
	// Caches is the number of processor caches.
	Caches int
	// MemoryBlocks is the number of blocks of main memory.
	MemoryBlocks uint64
	// CacheBlocks is the number of blocks per processor cache (used by
	// Tang's duplicate-directory organisation).
	CacheBlocks uint64
	// TagBits is the width of one cache tag (used by Tang).
	TagBits int
}

// DefaultStorageParams returns a machine comparable to the paper's setting:
// n caches, 16 MB of memory in 16-byte blocks, 64 KB caches, 32-bit tags.
func DefaultStorageParams(caches int) StorageParams {
	return StorageParams{
		Caches:       caches,
		MemoryBlocks: 1 << 20, // 16 MB / 16 B
		CacheBlocks:  1 << 12, // 64 KB / 16 B
		TagBits:      32,
	}
}

// log2Ceil returns ceil(log2(n)) for n ≥ 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// appendExcept copies src to dst, skipping except.
func appendExcept(dst, src []int, except int) []int {
	for _, c := range src {
		if c != except {
			dst = append(dst, c)
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// FullMap: Censier & Feautrier.

// FullMap is the Censier–Feautrier organisation: a dirty bit plus one
// presence ("valid") bit per cache with every memory block, accessed
// directly by block address. It realises Dir_nNB: invalidations are
// directed, sequential messages, never broadcast.
type FullMap struct {
	caches  int
	present [][]int // holder list per block id, insertion-ordered
}

// NewFullMap returns a full-map store for n caches.
func NewFullMap(n int) *FullMap {
	return &FullMap{caches: n}
}

// Name implements Store.
func (f *FullMap) Name() string { return "full-map" }

// ensure grows the per-block slice to cover id (amortized growth).
func (f *FullMap) ensure(id blockid.ID) {
	if int(id) < len(f.present) {
		return
	}
	grown := make([][]int, int(id)+1+len(f.present))
	copy(grown, f.present)
	f.present = grown
}

// Add implements Store.
func (f *FullMap) Add(id blockid.ID, c int) int {
	f.ensure(id)
	hs := f.present[id]
	for _, h := range hs {
		if h == c {
			return -1
		}
	}
	f.present[id] = append(hs, c)
	return -1
}

// Remove implements Store.
func (f *FullMap) Remove(id blockid.ID, c int) {
	if int(id) >= len(f.present) {
		return
	}
	hs := f.present[id]
	for i, h := range hs {
		if h == c {
			f.present[id] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}

// SetSole implements Store.
func (f *FullMap) SetSole(id blockid.ID, c int) {
	f.ensure(id)
	f.present[id] = append(f.present[id][:0], c)
}

// Clear implements Store.
func (f *FullMap) Clear(id blockid.ID) {
	if int(id) < len(f.present) {
		f.present[id] = f.present[id][:0]
	}
}

// Targets implements Store: the exact holders, as directed messages.
func (f *FullMap) Targets(dst []int, id blockid.ID, except int) ([]int, bool) {
	if int(id) >= len(f.present) {
		return dst, false
	}
	return appendExcept(dst, f.present[id], except), false
}

// Count implements Store.
func (f *FullMap) Count(id blockid.ID) (int, bool) {
	if int(id) >= len(f.present) {
		return 0, true
	}
	return len(f.present[id]), true
}

// StorageBits implements Store: presence bits plus a dirty bit per block.
func (f *FullMap) StorageBits(p StorageParams) uint64 {
	return p.MemoryBlocks * uint64(p.Caches+1)
}

// BlockKey implements Store: the holder list in insertion order (the order
// determines the sequence of directed invalidations, so it is state).
func (f *FullMap) BlockKey(id blockid.ID) string {
	if int(id) >= len(f.present) || len(f.present[id]) == 0 {
		return ""
	}
	return fmt.Sprint(f.present[id])
}

// Holders returns the exact holder list (primarily for tests and for
// measuring coded-set waste against the truth).
func (f *FullMap) Holders(id blockid.ID) []int {
	if int(id) >= len(f.present) {
		return nil
	}
	return append([]int(nil), f.present[id]...)
}

// ---------------------------------------------------------------------------
// Tang: duplicate cache directories.

// Tang is Tang's organisation: main memory keeps a copy of every cache's
// tag store and dirty bits. The information content equals the full map, so
// invalidation behaviour is identical; the organisational differences are
// cost ones — every lookup searches all n duplicate directories, and
// storage scales with total cache size rather than memory size.
type Tang struct {
	FullMap
}

// NewTang returns a duplicate-directory store for n caches.
func NewTang(n int) *Tang {
	return &Tang{FullMap: *NewFullMap(n)}
}

// Name implements Store.
func (t *Tang) Name() string { return "tang-duplicate" }

// StorageBits implements Store: one tag plus dirty bit per cache block per
// cache, independent of memory size.
func (t *Tang) StorageBits(p StorageParams) uint64 {
	return uint64(p.Caches) * p.CacheBlocks * uint64(p.TagBits+1)
}

// Probes returns the number of duplicate directories searched per lookup.
func (t *Tang) Probes() int { return t.caches }

// ---------------------------------------------------------------------------
// TwoBit: Archibald & Baer.

type twoBitState uint8

const (
	stUncached  twoBitState = iota
	stCleanOne              // block clean in exactly one cache
	stCleanMany             // block clean in an unknown number of caches
	stDirtyOne              // block dirty in exactly one cache
)

// TwoBit is the Archibald–Baer organisation: two state bits per memory
// block and no cache indices at all. Invalidations and write-back requests
// are broadcast — this is the storage behind Dir_0B. The "clean in exactly
// one cache" state exists to spare a broadcast when the writer is the lone
// holder.
type TwoBit struct {
	state []twoBitState // per block id; stUncached is the zero value
}

// NewTwoBit returns a two-bit store.
func NewTwoBit() *TwoBit { return &TwoBit{} }

// Name implements Store.
func (t *TwoBit) Name() string { return "two-bit" }

// ensure grows the state slice to cover id (amortized growth).
func (t *TwoBit) ensure(id blockid.ID) {
	if int(id) < len(t.state) {
		return
	}
	grown := make([]twoBitState, int(id)+1+len(t.state))
	copy(grown, t.state)
	t.state = grown
}

// get reads the state without growing; out-of-range ids are uncached.
func (t *TwoBit) get(id blockid.ID) twoBitState {
	if int(id) >= len(t.state) {
		return stUncached
	}
	return t.state[id]
}

// Add implements Store.
func (t *TwoBit) Add(id blockid.ID, c int) int {
	t.ensure(id)
	switch t.state[id] {
	case stUncached:
		t.state[id] = stCleanOne
	case stCleanOne:
		t.state[id] = stCleanMany
	case stCleanMany:
		// Already clean in several caches; one more changes nothing.
	case stDirtyOne:
		// The old owner wrote back and retains a clean copy alongside
		// the newcomer.
		t.state[id] = stCleanMany
	}
	return -1
}

// Remove implements Store. The organisation keeps no per-cache state, so a
// replacement hint cannot be recorded.
func (t *TwoBit) Remove(id blockid.ID, c int) {}

// SetSole implements Store.
func (t *TwoBit) SetSole(id blockid.ID, c int) {
	t.ensure(id)
	t.state[id] = stDirtyOne
}

// Clear implements Store.
func (t *TwoBit) Clear(id blockid.ID) {
	if int(id) < len(t.state) {
		t.state[id] = stUncached
	}
}

// Targets implements Store: holders are unknown, so every invalidation is a
// broadcast (unless Count shows none is needed).
func (t *TwoBit) Targets(dst []int, id blockid.ID, except int) ([]int, bool) {
	if t.get(id) == stUncached {
		return dst, false
	}
	return dst, true
}

// Count implements Store.
func (t *TwoBit) Count(id blockid.ID) (int, bool) {
	switch t.get(id) {
	case stUncached:
		return 0, true
	case stCleanOne, stDirtyOne:
		return 1, true
	default:
		return 2, false
	}
}

// StorageBits implements Store: two bits per memory block.
func (t *TwoBit) StorageBits(p StorageParams) uint64 {
	return p.MemoryBlocks * 2
}

// BlockKey implements Store: the two-bit state.
func (t *TwoBit) BlockKey(id blockid.ID) string {
	switch s := t.get(id); s {
	case stUncached:
		return ""
	case stCleanOne:
		return "c1"
	case stCleanMany:
		return "cn"
	case stDirtyOne:
		return "d1"
	default:
		return fmt.Sprintf("?%d", s)
	}
}

// ---------------------------------------------------------------------------
// LimitedPointer: Dir_iB and Dir_iNB.

// LimitedPointer keeps up to i cache indices per block. With Broadcast
// true (Dir_iB) an overflowing copy sets a broadcast bit and invalidations
// fall back to broadcast; with Broadcast false (Dir_iNB) the store frees a
// pointer by evicting the oldest tracked copy, bounding the number of
// simultaneous copies at i and avoiding broadcast entirely.
type LimitedPointer struct {
	i         int
	broadcast bool
	caches    int
	entries   []lpEntry // per block id; the zero value tracks nothing
}

type lpEntry struct {
	ptrs  []int // FIFO order, oldest first
	bcast bool
}

// NewLimitedPointer returns a limited-pointer store with i pointers for n
// caches. broadcast selects the Dir_iB (true) or Dir_iNB (false) variant.
func NewLimitedPointer(i, n int, broadcast bool) (*LimitedPointer, error) {
	if i < 1 {
		return nil, fmt.Errorf("directory: pointer count %d must be at least 1", i)
	}
	if n < 1 {
		return nil, fmt.Errorf("directory: cache count %d must be at least 1", n)
	}
	return &LimitedPointer{i: i, broadcast: broadcast, caches: n}, nil
}

// Name implements Store.
func (l *LimitedPointer) Name() string {
	if l.broadcast {
		return fmt.Sprintf("dir%dB-pointers", l.i)
	}
	return fmt.Sprintf("dir%dNB-pointers", l.i)
}

// Pointers returns i, the pointer budget.
func (l *LimitedPointer) Pointers() int { return l.i }

// Broadcast reports whether this is the Dir_iB variant (overflow sets a
// broadcast bit) rather than Dir_iNB (overflow evicts a copy).
func (l *LimitedPointer) Broadcast() bool { return l.broadcast }

// ensure grows the entry slice to cover id (amortized growth).
func (l *LimitedPointer) ensure(id blockid.ID) {
	if int(id) < len(l.entries) {
		return
	}
	grown := make([]lpEntry, int(id)+1+len(l.entries))
	copy(grown, l.entries)
	l.entries = grown
}

// Add implements Store.
func (l *LimitedPointer) Add(id blockid.ID, c int) int {
	l.ensure(id)
	e := &l.entries[id]
	for _, p := range e.ptrs {
		if p == c {
			return -1
		}
	}
	if e.bcast {
		// Already beyond tracking; the new copy is covered by the
		// broadcast bit.
		return -1
	}
	if len(e.ptrs) < l.i {
		e.ptrs = append(e.ptrs, c)
		return -1
	}
	if l.broadcast {
		e.bcast = true
		return -1
	}
	// Dir_iNB: evict the oldest pointer to make room.
	victim := e.ptrs[0]
	copy(e.ptrs, e.ptrs[1:])
	e.ptrs[len(e.ptrs)-1] = c
	return victim
}

// Remove implements Store.
func (l *LimitedPointer) Remove(id blockid.ID, c int) {
	if int(id) >= len(l.entries) {
		return
	}
	e := &l.entries[id]
	for i, p := range e.ptrs {
		if p == c {
			e.ptrs = append(e.ptrs[:i], e.ptrs[i+1:]...)
			return
		}
	}
}

// SetSole implements Store.
func (l *LimitedPointer) SetSole(id blockid.ID, c int) {
	l.ensure(id)
	e := &l.entries[id]
	e.ptrs = append(e.ptrs[:0], c)
	e.bcast = false
}

// Clear implements Store.
func (l *LimitedPointer) Clear(id blockid.ID) {
	if int(id) < len(l.entries) {
		e := &l.entries[id]
		e.ptrs = e.ptrs[:0]
		e.bcast = false
	}
}

// Targets implements Store.
func (l *LimitedPointer) Targets(dst []int, id blockid.ID, except int) ([]int, bool) {
	if int(id) >= len(l.entries) {
		return dst, false
	}
	e := &l.entries[id]
	if e.bcast {
		return dst, true
	}
	return appendExcept(dst, e.ptrs, except), false
}

// Count implements Store.
func (l *LimitedPointer) Count(id blockid.ID) (int, bool) {
	if int(id) >= len(l.entries) {
		return 0, true
	}
	e := &l.entries[id]
	if e.bcast {
		// At least i+1 copies exist somewhere.
		return l.i + 1, false
	}
	return len(e.ptrs), true
}

// BlockKey implements Store: the pointer list in FIFO order (the order
// picks the Dir_iNB eviction victim, so it is state) plus the broadcast
// bit.
func (l *LimitedPointer) BlockKey(id blockid.ID) string {
	if int(id) >= len(l.entries) {
		return ""
	}
	e := &l.entries[id]
	if len(e.ptrs) == 0 && !e.bcast {
		return ""
	}
	if e.bcast {
		return fmt.Sprintf("%v*", e.ptrs)
	}
	return fmt.Sprint(e.ptrs)
}

// StorageBits implements Store: i pointers of ceil(log2 n) bits, a dirty
// bit, and — in the broadcast variant — the broadcast bit, per block.
func (l *LimitedPointer) StorageBits(p StorageParams) uint64 {
	per := uint64(l.i*log2Ceil(p.Caches) + 1)
	if l.broadcast {
		per++
	}
	return p.MemoryBlocks * per
}

// ---------------------------------------------------------------------------
// CodedSet: Section 6's ternary-digit superset code.

// CodedSet stores, per block, a word of d = ceil(log2 n) digits over
// {0, 1, both}. A digit that is 0 or 1 constrains that bit of the holders'
// cache indices; a digit coded "both" matches either value. The denoted set
// of caches is therefore a superset of the true holders, reached with
// 2·log2(n) bits per block. Invalidations are directed ("limited
// broadcast") to every cache in the superset, so some messages are wasted;
// the engine measures that waste.
type CodedSet struct {
	caches int
	digits int
	codes  []codedEntry // per block id
	// tracked distinguishes an absent code from the valid code denoting
	// cache 0 alone (value 0, both 0).
	tracked []bool
}

type codedEntry struct {
	value uint32 // digit values where both-mask is 0
	both  uint32 // mask of digits coded "both"
}

// NewCodedSet returns a coded-set store for n caches.
func NewCodedSet(n int) (*CodedSet, error) {
	if n < 1 || n > 1<<20 {
		return nil, fmt.Errorf("directory: cache count %d out of range", n)
	}
	return &CodedSet{caches: n, digits: log2Ceil(n)}, nil
}

// Name implements Store.
func (cs *CodedSet) Name() string { return "coded-set" }

// ensure grows the code slices to cover id (amortized growth).
func (cs *CodedSet) ensure(id blockid.ID) {
	if int(id) < len(cs.codes) {
		return
	}
	n := int(id) + 1 + len(cs.codes)
	codes := make([]codedEntry, n)
	copy(codes, cs.codes)
	tracked := make([]bool, n)
	copy(tracked, cs.tracked)
	cs.codes, cs.tracked = codes, tracked
}

// entry reads the code without growing.
func (cs *CodedSet) entry(id blockid.ID) (codedEntry, bool) {
	if int(id) >= len(cs.tracked) || !cs.tracked[id] {
		return codedEntry{}, false
	}
	return cs.codes[id], true
}

// Add implements Store: merge c into the code, widening digits that differ
// to "both".
func (cs *CodedSet) Add(id blockid.ID, c int) int {
	cs.ensure(id)
	if !cs.tracked[id] {
		cs.tracked[id] = true
		cs.codes[id] = codedEntry{value: uint32(c)}
		return -1
	}
	e := cs.codes[id]
	diff := (e.value ^ uint32(c)) &^ e.both
	e.both |= diff
	e.value &^= diff
	cs.codes[id] = e
	return -1
}

// Remove implements Store. The superset code cannot forget a member, so
// replacement hints are ignored (the set only ever widens between writes).
func (cs *CodedSet) Remove(id blockid.ID, c int) {}

// SetSole implements Store.
func (cs *CodedSet) SetSole(id blockid.ID, c int) {
	cs.ensure(id)
	cs.tracked[id] = true
	cs.codes[id] = codedEntry{value: uint32(c)}
}

// Clear implements Store.
func (cs *CodedSet) Clear(id blockid.ID) {
	if int(id) < len(cs.tracked) {
		cs.tracked[id] = false
		cs.codes[id] = codedEntry{}
	}
}

// Targets implements Store: every cache index matching the code, as
// directed messages. This is the paper's "limited broadcast".
//
// The matches are the assignments of the "both" digits, i.e. the values
// value|sub over every submask sub of both. The standard submask walk
// sub' = (sub-both)&both enumerates them in increasing numeric order —
// the same order the engines have always invalidated in — without the
// closure and scratch slice a forEachMatch callback would cost on the
// Access hot path.
func (cs *CodedSet) Targets(dst []int, id blockid.ID, except int) ([]int, bool) {
	e, ok := cs.entry(id)
	if !ok {
		return dst, false
	}
	for sub := uint32(0); ; sub = (sub - e.both) & e.both {
		c := int(e.value | sub)
		if c < cs.caches && c != except {
			dst = append(dst, c)
		}
		if sub == e.both {
			break
		}
	}
	return dst, false
}

func (cs *CodedSet) forEachMatch(e codedEntry, fn func(int)) {
	// Enumerate all assignments of the "both" digits.
	bothBits := make([]uint32, 0, cs.digits)
	for d := 0; d < cs.digits; d++ {
		if e.both&(1<<uint(d)) != 0 {
			bothBits = append(bothBits, 1<<uint(d))
		}
	}
	for m := 0; m < 1<<uint(len(bothBits)); m++ {
		c := e.value
		for j, bit := range bothBits {
			if m&(1<<uint(j)) != 0 {
				c |= bit
			}
		}
		if int(c) < cs.caches {
			fn(int(c))
		}
	}
}

// Count implements Store: the superset size (an upper bound on holders).
func (cs *CodedSet) Count(id blockid.ID) (int, bool) {
	e, ok := cs.entry(id)
	if !ok {
		return 0, true
	}
	if e.both == 0 {
		return 1, true
	}
	n := 0
	cs.forEachMatch(e, func(int) { n++ })
	return n, false
}

// StorageBits implements Store: two bits per digit plus a dirty bit.
func (cs *CodedSet) StorageBits(p StorageParams) uint64 {
	return p.MemoryBlocks * uint64(2*log2Ceil(p.Caches)+1)
}

// BlockKey implements Store: the ternary code word.
func (cs *CodedSet) BlockKey(id blockid.ID) string {
	e, ok := cs.entry(id)
	if !ok {
		return ""
	}
	return fmt.Sprintf("v%x^%x", e.value, e.both)
}
