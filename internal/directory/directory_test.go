package directory

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 64: 6}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

// --- FullMap ---------------------------------------------------------------

func TestFullMapTracksExactHolders(t *testing.T) {
	f := NewFullMap(4)
	if v := f.Add(1, 0); v != -1 {
		t.Fatalf("Add victim = %d", v)
	}
	f.Add(1, 2)
	f.Add(1, 2) // duplicate add is idempotent
	if n, exact := f.Count(1); n != 2 || !exact {
		t.Fatalf("Count = %d,%v want 2,true", n, exact)
	}
	targets, bcast := f.Targets(nil, 1, 2)
	if bcast {
		t.Fatal("full map should never broadcast")
	}
	if !reflect.DeepEqual(sorted(targets), []int{0}) {
		t.Fatalf("Targets = %v, want [0]", targets)
	}
	targets, _ = f.Targets(nil, 1, -1)
	if !reflect.DeepEqual(sorted(targets), []int{0, 2}) {
		t.Fatalf("Targets(-1) = %v", targets)
	}
}

func TestFullMapRemoveSetSoleClear(t *testing.T) {
	f := NewFullMap(4)
	f.Add(7, 0)
	f.Add(7, 1)
	f.Remove(7, 0)
	if n, _ := f.Count(7); n != 1 {
		t.Fatalf("Count after Remove = %d", n)
	}
	f.Remove(7, 3) // absent: no-op
	f.SetSole(7, 2)
	if hs := f.Holders(7); !reflect.DeepEqual(hs, []int{2}) {
		t.Fatalf("Holders after SetSole = %v", hs)
	}
	f.Clear(7)
	if n, exact := f.Count(7); n != 0 || !exact {
		t.Fatalf("Count after Clear = %d,%v", n, exact)
	}
}

func TestFullMapStorage(t *testing.T) {
	f := NewFullMap(16)
	p := DefaultStorageParams(16)
	// 17 bits per block: 16 presence + 1 dirty.
	if got := f.StorageBits(p); got != p.MemoryBlocks*17 {
		t.Fatalf("StorageBits = %d", got)
	}
}

// --- Tang ------------------------------------------------------------------

func TestTangBehavesLikeFullMap(t *testing.T) {
	tg := NewTang(4)
	tg.Add(1, 0)
	tg.Add(1, 3)
	targets, bcast := tg.Targets(nil, 1, 0)
	if bcast || !reflect.DeepEqual(sorted(targets), []int{3}) {
		t.Fatalf("Targets = %v,%v", targets, bcast)
	}
	if tg.Probes() != 4 {
		t.Fatalf("Probes = %d, want 4", tg.Probes())
	}
	if tg.Name() != "tang-duplicate" {
		t.Fatalf("Name = %q", tg.Name())
	}
}

func TestTangStorageScalesWithCachesNotMemory(t *testing.T) {
	tg := NewTang(4)
	small := DefaultStorageParams(4)
	big := small
	big.MemoryBlocks *= 16
	if tg.StorageBits(small) != tg.StorageBits(big) {
		t.Fatal("Tang storage should not depend on memory size")
	}
	want := uint64(4) * small.CacheBlocks * uint64(small.TagBits+1)
	if got := tg.StorageBits(small); got != want {
		t.Fatalf("StorageBits = %d, want %d", got, want)
	}
}

// --- TwoBit ----------------------------------------------------------------

func TestTwoBitStateMachine(t *testing.T) {
	tb := NewTwoBit()
	if n, exact := tb.Count(5); n != 0 || !exact {
		t.Fatalf("initial Count = %d,%v", n, exact)
	}
	tb.Add(5, 0) // uncached → clean-one
	if n, exact := tb.Count(5); n != 1 || !exact {
		t.Fatalf("after one Add: %d,%v", n, exact)
	}
	tb.Add(5, 1) // clean-one → clean-many
	if n, exact := tb.Count(5); n != 2 || exact {
		t.Fatalf("after two Adds: %d,%v want 2,false", n, exact)
	}
	tb.SetSole(5, 1) // write → dirty-one
	if n, exact := tb.Count(5); n != 1 || !exact {
		t.Fatalf("after SetSole: %d,%v", n, exact)
	}
	tb.Add(5, 2) // read miss to dirty block → clean-many
	if n, exact := tb.Count(5); n != 2 || exact {
		t.Fatalf("dirty then Add: %d,%v want 2,false", n, exact)
	}
	tb.Clear(5)
	if n, _ := tb.Count(5); n != 0 {
		t.Fatalf("after Clear: %d", n)
	}
}

func TestTwoBitAlwaysBroadcasts(t *testing.T) {
	tb := NewTwoBit()
	if _, bcast := tb.Targets(nil, 9, -1); bcast {
		t.Fatal("uncached block should need no invalidation")
	}
	tb.Add(9, 0)
	if targets, bcast := tb.Targets(nil, 9, -1); !bcast || targets != nil {
		t.Fatalf("Targets = %v,%v want nil,true", targets, bcast)
	}
}

func TestTwoBitStorage(t *testing.T) {
	p := DefaultStorageParams(64)
	if got := NewTwoBit().StorageBits(p); got != p.MemoryBlocks*2 {
		t.Fatalf("StorageBits = %d", got)
	}
}

// --- LimitedPointer --------------------------------------------------------

func TestLimitedPointerValidation(t *testing.T) {
	if _, err := NewLimitedPointer(0, 4, true); err == nil {
		t.Error("i=0 accepted")
	}
	if _, err := NewLimitedPointer(1, 0, true); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestDir1BSetsBroadcastBitOnOverflow(t *testing.T) {
	lp, err := NewLimitedPointer(1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if v := lp.Add(1, 0); v != -1 {
		t.Fatalf("victim = %d", v)
	}
	targets, bcast := lp.Targets(nil, 1, -1)
	if bcast || !reflect.DeepEqual(targets, []int{0}) {
		t.Fatalf("single holder: %v,%v", targets, bcast)
	}
	if v := lp.Add(1, 2); v != -1 {
		t.Fatalf("Dir_iB overflow should not evict, got victim %d", v)
	}
	if _, bcast := lp.Targets(nil, 1, -1); !bcast {
		t.Fatal("broadcast bit not set after overflow")
	}
	if n, exact := lp.Count(1); exact || n < 2 {
		t.Fatalf("Count after overflow = %d,%v", n, exact)
	}
	// A write resets to a single pointer.
	lp.SetSole(1, 3)
	targets, bcast = lp.Targets(nil, 1, -1)
	if bcast || !reflect.DeepEqual(targets, []int{3}) {
		t.Fatalf("after SetSole: %v,%v", targets, bcast)
	}
}

func TestDiriNBEvictsOldestOnOverflow(t *testing.T) {
	lp, err := NewLimitedPointer(2, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	lp.Add(1, 0)
	lp.Add(1, 1)
	victim := lp.Add(1, 2)
	if victim != 0 {
		t.Fatalf("victim = %d, want 0 (FIFO)", victim)
	}
	targets, bcast := lp.Targets(nil, 1, -1)
	if bcast {
		t.Fatal("Dir_iNB must never broadcast")
	}
	if !reflect.DeepEqual(sorted(targets), []int{1, 2}) {
		t.Fatalf("Targets = %v", targets)
	}
	if n, exact := lp.Count(1); n != 2 || !exact {
		t.Fatalf("Count = %d,%v", n, exact)
	}
}

func TestLimitedPointerDuplicateAddAndRemove(t *testing.T) {
	lp, _ := NewLimitedPointer(2, 4, false)
	lp.Add(3, 1)
	if v := lp.Add(3, 1); v != -1 {
		t.Fatalf("duplicate Add evicted %d", v)
	}
	if n, _ := lp.Count(3); n != 1 {
		t.Fatalf("Count = %d", n)
	}
	lp.Remove(3, 1)
	if n, _ := lp.Count(3); n != 0 {
		t.Fatalf("Count after Remove = %d", n)
	}
	lp.Remove(3, 1) // absent: no-op
}

func TestLimitedPointerStorage(t *testing.T) {
	p := DefaultStorageParams(64) // log2 = 6
	b, _ := NewLimitedPointer(2, 64, true)
	nb, _ := NewLimitedPointer(2, 64, false)
	// B: 2 pointers × 6 bits + dirty + broadcast = 14.
	if got := b.StorageBits(p); got != p.MemoryBlocks*14 {
		t.Fatalf("Dir2B StorageBits = %d", got)
	}
	// NB: 13.
	if got := nb.StorageBits(p); got != p.MemoryBlocks*13 {
		t.Fatalf("Dir2NB StorageBits = %d", got)
	}
}

func TestLimitedPointerNames(t *testing.T) {
	b, _ := NewLimitedPointer(3, 8, true)
	nb, _ := NewLimitedPointer(3, 8, false)
	if b.Name() != "dir3B-pointers" || nb.Name() != "dir3NB-pointers" {
		t.Fatalf("names = %q, %q", b.Name(), nb.Name())
	}
	if b.Pointers() != 3 {
		t.Fatalf("Pointers = %d", b.Pointers())
	}
}

// --- CodedSet ---------------------------------------------------------------

func TestCodedSetValidation(t *testing.T) {
	if _, err := NewCodedSet(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewCodedSet(1 << 21); err == nil {
		t.Error("huge n accepted")
	}
}

func TestCodedSetExactForSingleHolder(t *testing.T) {
	cs, err := NewCodedSet(8)
	if err != nil {
		t.Fatal(err)
	}
	cs.Add(1, 5)
	targets, bcast := cs.Targets(nil, 1, -1)
	if bcast || !reflect.DeepEqual(targets, []int{5}) {
		t.Fatalf("Targets = %v,%v", targets, bcast)
	}
	if n, exact := cs.Count(1); n != 1 || !exact {
		t.Fatalf("Count = %d,%v", n, exact)
	}
}

func TestCodedSetSupersetSemantics(t *testing.T) {
	cs, _ := NewCodedSet(8)
	cs.Add(1, 0b000)
	cs.Add(1, 0b011) // digits 0 and 1 widen to "both"
	targets, bcast := cs.Targets(nil, 1, -1)
	if bcast {
		t.Fatal("coded set should direct, not broadcast")
	}
	if !reflect.DeepEqual(sorted(targets), []int{0, 1, 2, 3}) {
		t.Fatalf("Targets = %v, want the 4-element superset", sorted(targets))
	}
	if n, exact := cs.Count(1); n != 4 || exact {
		t.Fatalf("Count = %d,%v want 4,false", n, exact)
	}
}

func TestCodedSetTargetsExcludeRequester(t *testing.T) {
	cs, _ := NewCodedSet(8)
	cs.Add(2, 4)
	cs.Add(2, 5)
	targets, _ := cs.Targets(nil, 2, 5)
	if !reflect.DeepEqual(sorted(targets), []int{4}) {
		t.Fatalf("Targets = %v", targets)
	}
}

func TestCodedSetClampsToCacheCount(t *testing.T) {
	// 6 caches need 3 digits; codes may denote indices ≥ 6 which do not
	// exist and must not be targeted.
	cs, _ := NewCodedSet(6)
	cs.Add(1, 1) // 001
	cs.Add(1, 7%6)
	cs.Add(1, 5) // 101
	cs.Add(1, 3) // 011 → all three digits both? 1=001,5=101 → digit2 both; +3=011 → digit1 both
	targets, _ := cs.Targets(nil, 1, -1)
	for _, c := range targets {
		if c >= 6 {
			t.Fatalf("target %d beyond cache count", c)
		}
	}
}

func TestCodedSetSetSoleNarrows(t *testing.T) {
	cs, _ := NewCodedSet(8)
	cs.Add(1, 0)
	cs.Add(1, 7)
	if n, exact := cs.Count(1); exact || n != 8 {
		t.Fatalf("widened Count = %d,%v", n, exact)
	}
	cs.SetSole(1, 3)
	targets, _ := cs.Targets(nil, 1, -1)
	if !reflect.DeepEqual(targets, []int{3}) {
		t.Fatalf("after SetSole Targets = %v", targets)
	}
	cs.Clear(1)
	if n, _ := cs.Count(1); n != 0 {
		t.Fatal("Clear failed")
	}
}

func TestCodedSetStorage(t *testing.T) {
	cs, _ := NewCodedSet(64)
	p := DefaultStorageParams(64)
	// 2 bits × 6 digits + dirty = 13 bits per block — the paper's
	// 2·log(n) plus the dirty bit.
	if got := cs.StorageBits(p); got != p.MemoryBlocks*13 {
		t.Fatalf("StorageBits = %d", got)
	}
}

// Property: the coded set always denotes a superset of the caches added
// since the last SetSole/Clear.
func TestQuickCodedSetIsSuperset(t *testing.T) {
	f := func(adds []uint8) bool {
		const n = 16
		cs, err := NewCodedSet(n)
		if err != nil {
			return false
		}
		truth := map[int]bool{}
		for _, a := range adds {
			c := int(a % n)
			cs.Add(1, c)
			truth[c] = true
		}
		targets, bcast := cs.Targets(nil, 1, -1)
		if bcast {
			return false
		}
		got := map[int]bool{}
		for _, c := range targets {
			got[c] = true
		}
		for c := range truth {
			if !got[c] {
				return false
			}
		}
		cnt, exact := cs.Count(1)
		if cnt != len(targets) {
			return false
		}
		if exact && len(truth) > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: full map Targets is always exactly the added-minus-removed set.
func TestQuickFullMapExact(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 8
		fm := NewFullMap(n)
		truth := map[int]bool{}
		for _, op := range ops {
			c := int(op % n)
			if op&0x80 != 0 {
				fm.Remove(1, c)
				delete(truth, c)
			} else {
				if fm.Add(1, c) != -1 {
					return false
				}
				truth[c] = true
			}
		}
		targets, bcast := fm.Targets(nil, 1, -1)
		if bcast || len(targets) != len(truth) {
			return false
		}
		for _, c := range targets {
			if !truth[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dir_iNB never tracks more than i holders and never broadcasts,
// for any add sequence.
func TestQuickDiriNBBounded(t *testing.T) {
	f := func(adds []uint8, iRaw uint8) bool {
		i := 1 + int(iRaw%4)
		lp, err := NewLimitedPointer(i, 16, false)
		if err != nil {
			return false
		}
		for _, a := range adds {
			lp.Add(1, int(a%16))
			if n, exact := lp.Count(1); !exact || n > i {
				return false
			}
			if _, bcast := lp.Targets(nil, 1, -1); bcast {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Storage ordering for large machines: two-bit < coded-set < limited
// pointers < full map (per-memory-block organisations), matching Section
// 6's motivation for reduced directories.
func TestStorageOrdering(t *testing.T) {
	const n = 64
	p := DefaultStorageParams(n)
	twoBit := NewTwoBit().StorageBits(p)
	coded, _ := NewCodedSet(n)
	lp, _ := NewLimitedPointer(4, n, true)
	full := NewFullMap(n).StorageBits(p)
	if !(twoBit < coded.StorageBits(p) && coded.StorageBits(p) < lp.StorageBits(p) && lp.StorageBits(p) < full) {
		t.Fatalf("storage ordering violated: twoBit=%d coded=%d lp=%d full=%d",
			twoBit, coded.StorageBits(p), lp.StorageBits(p), full)
	}
}
