package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Exported trace formats. Timestamps are simulated reference ordinals
// (microseconds in the Chrome form, so Perfetto renders one reference as
// one microsecond); they are deterministic, never wall clock.

// ndjsonRow is one NDJSON line: the event with names resolved.
type ndjsonRow struct {
	Pid   int    `json:"pid"`
	Tid   int    `json:"tid"`
	Track string `json:"track,omitempty"`
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	Dur   uint32 `json:"dur,omitempty"`
	Cache int16  `json:"cache"`
	Block uint64 `json:"block,omitempty"`
	Arg   uint32 `json:"arg,omitempty"`
}

// WriteNDJSON renders every recorder's events as newline-delimited JSON,
// one event per line, in canonical order — recorders first (by Pid),
// events within a recorder by (Seq, Track, …). The output is a
// deterministic function of the recorded events.
func WriteNDJSON(w io.Writer, recs ...*Recorder) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		for _, e := range rec.Events() {
			row := ndjsonRow{
				Pid:   rec.Pid(),
				Tid:   int(e.Track),
				Track: rec.TrackName(e.Track),
				Seq:   e.Seq,
				Kind:  e.Kind.String(),
				Dur:   e.Dur,
				Cache: e.Cache,
				Block: e.Block,
				Arg:   e.Arg,
			}
			if e.Kind.IsSpan() {
				row.Phase = rec.PhaseName(e.Arg)
				row.Arg = 0
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChromeEvent is one Chrome trace-event object. The subset used:
// ph "M" metadata (process_name/thread_name), "X" complete spans,
// "i" instants with thread scope. Exported so internal/otrace can
// splice fabric spans into the same document (see otrace's
// WriteChromeTrace) — one Perfetto view spanning HTTP edge →
// scheduler → protocol events.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   *uint32        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the Chrome trace format.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents renders the recorders' events as Chrome trace events.
// Each recorder is one process (pid = job ordinal), each track one
// thread; ts is the simulated reference ordinal, so per-track
// timestamps are monotonic by construction. Output is deterministic.
func ChromeEvents(recs ...*Recorder) []ChromeEvent {
	events := []ChromeEvent{}
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		pid := rec.Pid()
		if label := rec.Label(); label != "" {
			events = append(events, ChromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": label},
			})
		}
		for tid, name := range rec.Tracks() {
			events = append(events, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, e := range rec.Events() {
			ce := ChromeEvent{Ts: e.Seq, Pid: pid, Tid: int(e.Track)}
			switch {
			case e.Kind == KindSpan:
				dur := e.Dur
				ce.Name = rec.PhaseName(e.Arg)
				ce.Ph = "X"
				ce.Dur = &dur
			case e.Kind == KindMark:
				ce.Name = rec.PhaseName(e.Arg)
				ce.Ph = "i"
				ce.Scope = "t"
			default:
				ce.Name = e.Kind.String()
				ce.Ph = "i"
				ce.Scope = "t"
				args := map[string]any{"block": fmt.Sprintf("%#x", e.Block)}
				if e.Cache >= 0 {
					args["cache"] = e.Cache
				}
				if e.Arg > 0 {
					args["count"] = e.Arg
				}
				ce.Args = args
			}
			events = append(events, ce)
		}
	}
	return events
}

// WriteChromeDoc wraps pre-built events in the Chrome trace-event JSON
// document form (load the file in Perfetto or chrome://tracing).
func WriteChromeDoc(w io.Writer, events []ChromeEvent) error {
	if events == nil {
		events = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace renders the recorders' events in the Chrome
// trace-event JSON format: ChromeEvents wrapped by WriteChromeDoc.
func WriteChromeTrace(w io.Writer, recs ...*Recorder) error {
	return WriteChromeDoc(w, ChromeEvents(recs...))
}

// Write exports recorders in the format implied by the file name:
// ".ndjson" (or ".jsonl") writes NDJSON, anything else the Chrome
// trace-event form — the convention the CLIs' -trace-out flag follows.
func Write(w io.Writer, name string, recs ...*Recorder) error {
	if FormatForPath(name) == "ndjson" {
		return WriteNDJSON(w, recs...)
	}
	return WriteChromeTrace(w, recs...)
}

// FormatForPath reports which trace format a -trace-out path selects:
// "ndjson" for .ndjson/.jsonl, "chrome" otherwise.
func FormatForPath(name string) string {
	if strings.HasSuffix(name, ".ndjson") || strings.HasSuffix(name, ".jsonl") {
		return "ndjson"
	}
	return "chrome"
}
