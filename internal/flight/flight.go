// Package flight is a deterministic, clock-free flight recorder for
// simulation runs: protocol engines' per-reference behaviour, captured as
// typed events in fixed-size per-worker ring buffers, exportable as
// NDJSON or Chrome trace-event JSON (loadable in Perfetto / chrome://
// tracing, one track per engine, spans for run phases).
//
// The paper's whole methodology is event accounting — per-reference
// protocol events weighted by bus costs — but those events normally
// vanish into aggregate coherence.Stats. The recorder makes the event
// stream itself visible: when a scheme misbehaves (an invalidation storm
// in Dir1B, pointer-eviction churn in Dir_iNB) the trace shows *when*
// and *why*, reference by reference.
//
// Determinism: timestamps are simulated reference ordinals, never wall
// clock, and sampling is by reference ordinal (every Nth), never random.
// Replaying the same trace with the same options yields the same events.
// Rings are single-writer (one per driver worker) and read only after
// the run completes, so recording needs no locks and no allocation — the
// obsring lint rule enforces the allocation-free hot path statically.
package flight

import (
	"fmt"
	"sort"
	"sync"

	"dirsim/internal/events"
)

// Kind classifies one recorded event. The first events.NumTypes values
// mirror events.Type (the Table 4 reference classifications); the rest
// are directory-specific protocol actions and structural span records.
type Kind uint8

const (
	// KindInval is a burst of directed invalidation messages (Arg is
	// the number of messages sent).
	KindInval Kind = Kind(events.NumTypes) + iota
	// KindBroadcast is a broadcast-invalidation fallback (Dir0B always;
	// Dir_iB beyond its pointer budget).
	KindBroadcast
	// KindPointerEviction is a Dir_iNB copy invalidated to free a
	// directory pointer (Arg is the count).
	KindPointerEviction
	// KindDirOverflow is a sparse-directory entry eviction: the
	// directory overflowed and every cached copy of the displaced block
	// was invalidated (Arg is the count).
	KindDirOverflow
	// KindSpan is a phase span covering references [Seq, Seq+Dur); Arg
	// is the phase id registered with Recorder.PhaseID.
	KindSpan
	// KindMark is an instant phase marker (Arg is the phase id).
	KindMark

	// NumKinds is the number of event kinds.
	NumKinds = int(KindMark) + 1
)

var kindNames = map[Kind]string{
	KindInval:           "inval-directed",
	KindBroadcast:       "inval-broadcast",
	KindPointerEviction: "pointer-eviction",
	KindDirOverflow:     "dir-overflow",
	KindSpan:            "span",
	KindMark:            "mark",
}

// String returns the event kind's mnemonic; reference-classification
// kinds use the Table 4 mnemonic of the underlying events.Type.
func (k Kind) String() string {
	if int(k) < events.NumTypes {
		return events.Type(k).String()
	}
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsSpan reports whether the kind is a structural record (span or mark)
// rather than a protocol event.
func (k Kind) IsSpan() bool { return k == KindSpan || k == KindMark }

// Event is one fixed-size trace record. It contains no pointers, so
// emitting one into a ring never allocates.
type Event struct {
	// Seq is the simulated reference ordinal the event is keyed to —
	// the deterministic timestamp.
	Seq uint64
	// Block is the referenced memory block (0 for structural records).
	Block uint64
	// Dur is the span length in references (0 for instants).
	Dur uint32
	// Arg carries kind-specific detail: message counts for protocol
	// events, the phase id for spans and marks.
	Arg uint32
	// Track is the recorder track (engine or driver) the event belongs
	// to.
	Track uint16
	// Cache is the issuing cache, or -1 when not applicable.
	Cache int16
	// Kind classifies the event.
	Kind Kind
}

// Ring is a fixed-size single-writer event buffer. When full it wraps,
// keeping the most recent events; Len and Dropped report how much
// survived. Emit is safe for exactly one concurrent writer (each driver
// worker owns one ring) and the buffer may be read only after writing
// has stopped.
type Ring struct {
	buf []Event
	n   uint64
}

// Emit appends one event, overwriting the oldest when the ring is full.
// The hot path: one store and one increment, no allocation.
func (r *Ring) Emit(e Event) {
	r.buf[r.n&uint64(len(r.buf)-1)] = e
	r.n++
}

// Len returns the number of events retained.
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns the number of events overwritten by wrapping.
func (r *Ring) Dropped() uint64 {
	if r.n < uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// events appends the retained events to dst in emission order.
func (r *Ring) events(dst []Event) []Event {
	if r.n > uint64(len(r.buf)) {
		// Oldest surviving event first: the write cursor wrapped.
		start := r.n & uint64(len(r.buf)-1)
		dst = append(dst, r.buf[start:]...)
		dst = append(dst, r.buf[:start]...)
		return dst
	}
	return append(dst, r.buf[:r.n]...)
}

// Options parameterises a Recorder.
type Options struct {
	// Sample records protocol events for one in Sample references
	// (sampled by reference ordinal, so the choice is deterministic);
	// 0 disables protocol-event capture entirely.
	Sample int
	// Capacity bounds each ring's event count; it is rounded up to a
	// power of two. 0 means 1<<16 events per ring.
	Capacity int
	// Spans records run-phase spans (decode, fan-out, per-engine
	// simulate, report) in addition to sampled protocol events.
	Spans bool
	// Pid is the Chrome-trace process id — callers running one recorder
	// per job use the job ordinal, which groups each job's tracks.
	Pid int
	// Label names the process in exported traces (e.g. the job label).
	Label string
}

// DefaultSample is the CLI default sampling interval: cheap enough to
// leave on (one classified reference in 64), dense enough to see storms.
const DefaultSample = 64

const defaultCapacity = 1 << 16

// Recorder owns the rings, the track and phase name tables, and the
// export metadata for one simulation run (or one job of a sweep).
// Setup — AddTrack, PhaseID, NewRing — is mutex-guarded and happens
// before the run; Emit on the returned rings is the lock-free hot path.
type Recorder struct {
	opts Options

	mu      sync.Mutex
	tracks  []string
	phases  []string
	rings   []*Ring
	control *Ring // cmd-layer spans (report phases) land here
}

// New returns a recorder with the given options.
func New(opts Options) *Recorder {
	if opts.Sample < 0 {
		opts.Sample = 0
	}
	if opts.Capacity <= 0 {
		opts.Capacity = defaultCapacity
	}
	opts.Capacity = ceilPow2(opts.Capacity)
	return &Recorder{opts: opts}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Enabled reports whether the recorder captures anything at all.
func (r *Recorder) Enabled() bool {
	return r != nil && (r.opts.Sample > 0 || r.opts.Spans)
}

// SampleEvery returns the protocol-event sampling interval (0 = none).
func (r *Recorder) SampleEvery() int { return r.opts.Sample }

// SpansEnabled reports whether phase spans are recorded.
func (r *Recorder) SpansEnabled() bool { return r.opts.Spans }

// Pid returns the recorder's Chrome-trace process id.
func (r *Recorder) Pid() int { return r.opts.Pid }

// Label returns the recorder's process label.
func (r *Recorder) Label() string { return r.opts.Label }

// AddTrack registers a named track (one per engine, plus the driver) and
// returns its id. Call during setup, before the run.
func (r *Recorder) AddTrack(name string) uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks = append(r.tracks, name)
	return uint16(len(r.tracks) - 1)
}

// TrackName resolves a track id (empty for unknown ids).
func (r *Recorder) TrackName(id uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.tracks) {
		return r.tracks[id]
	}
	return ""
}

// Tracks returns the registered track names in id order.
func (r *Recorder) Tracks() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.tracks...)
}

// PhaseID interns a phase name for span events, returning a stable id.
// Call during setup or from cold paths only.
func (r *Recorder) PhaseID(name string) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.phases {
		if p == name {
			return uint32(i)
		}
	}
	r.phases = append(r.phases, name)
	return uint32(len(r.phases) - 1)
}

// PhaseName resolves a phase id (empty for unknown ids).
func (r *Recorder) PhaseName(id uint32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.phases) {
		return r.phases[id]
	}
	return ""
}

// NewRing allocates and registers one ring. Each driver worker gets its
// own so emission stays single-writer and contention-free.
func (r *Recorder) NewRing() *Ring {
	ring := &Ring{buf: make([]Event, r.opts.Capacity)}
	r.mu.Lock()
	r.rings = append(r.rings, ring)
	r.mu.Unlock()
	return ring
}

// Span records a phase span [start, end) on the given track from a cold
// path (the cmd layer's report phase, the daemon's per-job phases). Not
// for the per-reference hot path — use a Ring there.
func (r *Recorder) Span(track uint16, phase string, start, end uint64) {
	if !r.Enabled() || !r.opts.Spans {
		return
	}
	id := r.PhaseID(phase)
	r.mu.Lock()
	if r.control == nil {
		r.control = &Ring{buf: make([]Event, r.opts.Capacity)}
		r.rings = append(r.rings, r.control)
	}
	ring := r.control
	dur := end - start
	r.mu.Unlock()
	ring.Emit(Event{Seq: start, Dur: uint32(dur), Track: track, Cache: -1, Kind: KindSpan, Arg: id})
}

// Mark records an instant phase marker at seq on the given track (cold
// path, like Span).
func (r *Recorder) Mark(track uint16, phase string, seq uint64) {
	if !r.Enabled() || !r.opts.Spans {
		return
	}
	id := r.PhaseID(phase)
	r.mu.Lock()
	if r.control == nil {
		r.control = &Ring{buf: make([]Event, r.opts.Capacity)}
		r.rings = append(r.rings, r.control)
	}
	ring := r.control
	r.mu.Unlock()
	ring.Emit(Event{Seq: seq, Track: track, Cache: -1, Kind: KindMark, Arg: id})
}

// Events merges every ring and returns the retained events in canonical
// order: ascending Seq, then Track, then Kind, then the remaining fields
// — a total order, so export bytes are a deterministic function of the
// recorded set. Call only after the run has completed.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	rings := append([]*Ring(nil), r.rings...)
	r.mu.Unlock()
	var out []Event
	for _, ring := range rings {
		out = ring.events(out)
	}
	sortEvents(out)
	return out
}

// sortEvents orders events canonically (see Recorder.Events). The
// comparator is a total order over every field, so equal recorded sets
// always export identical bytes.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Cache != b.Cache {
			return a.Cache < b.Cache
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Arg != b.Arg {
			return a.Arg < b.Arg
		}
		return a.Dur < b.Dur
	})
}

// Dropped returns the total number of events lost to ring wrapping
// across all rings.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, ring := range r.rings {
		n += ring.Dropped()
	}
	return n
}
