package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dirsim/internal/events"
)

func TestRingWrapKeepsMostRecent(t *testing.T) {
	rec := New(Options{Sample: 1, Capacity: 4})
	ring := rec.NewRing()
	for i := 0; i < 10; i++ {
		ring.Emit(Event{Seq: uint64(i), Kind: KindInval})
	}
	if ring.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ring.Len())
	}
	if ring.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", ring.Dropped())
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest survivors first)", i, e.Seq, want)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("recorder Dropped = %d, want 6", rec.Dropped())
	}
}

func TestCapacityRoundsUpToPow2(t *testing.T) {
	rec := New(Options{Sample: 1, Capacity: 5})
	ring := rec.NewRing()
	if len(ring.buf) != 8 {
		t.Fatalf("capacity = %d, want 8", len(ring.buf))
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	rec := New(Options{Sample: 1, Capacity: 1024})
	ring := rec.NewRing()
	e := Event{Seq: 1, Block: 0xbeef, Track: 2, Cache: 1, Kind: KindBroadcast}
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Emit(e)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f objects per event, want 0", allocs)
	}
}

func TestEnabled(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if New(Options{}).Enabled() {
		t.Fatal("Sample=0, Spans=false recorder reports enabled")
	}
	if !New(Options{Sample: 8}).Enabled() || !New(Options{Spans: true}).Enabled() {
		t.Fatal("recorder with sampling or spans reports disabled")
	}
}

func TestKindNames(t *testing.T) {
	if got := Kind(events.ReadMissClean).String(); got != "rm-blk-cln" {
		t.Fatalf("classification kind = %q, want Table 4 mnemonic", got)
	}
	if got := KindPointerEviction.String(); got != "pointer-eviction" {
		t.Fatalf("KindPointerEviction = %q", got)
	}
	if !KindSpan.IsSpan() || !KindMark.IsSpan() || KindInval.IsSpan() {
		t.Fatal("IsSpan misclassifies kinds")
	}
}

func TestEventsCanonicalOrder(t *testing.T) {
	rec := New(Options{Sample: 1, Capacity: 16})
	a, b := rec.NewRing(), rec.NewRing()
	// Interleave emission across rings out of seq order.
	b.Emit(Event{Seq: 5, Track: 1, Kind: KindInval})
	a.Emit(Event{Seq: 2, Track: 0, Kind: KindBroadcast})
	b.Emit(Event{Seq: 2, Track: 1, Kind: KindInval})
	a.Emit(Event{Seq: 7, Track: 0, Kind: KindInval})
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		p, c := evs[i-1], evs[i]
		if p.Seq > c.Seq || (p.Seq == c.Seq && p.Track > c.Track) {
			t.Fatalf("events not in canonical (seq, track) order: %+v before %+v", p, c)
		}
	}
}

func TestSpanAndMarkRespectSpansFlag(t *testing.T) {
	off := New(Options{Sample: 4})
	off.Span(0, "report", 0, 100)
	off.Mark(0, "done", 100)
	if n := len(off.Events()); n != 0 {
		t.Fatalf("spans disabled but %d events recorded", n)
	}
	on := New(Options{Spans: true})
	tid := on.AddTrack("driver")
	on.Span(tid, "report", 0, 100)
	on.Mark(tid, "done", 100)
	evs := on.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want span + mark", len(evs))
	}
	if evs[0].Kind != KindSpan || evs[0].Dur != 100 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if on.PhaseName(evs[0].Arg) != "report" {
		t.Fatalf("span phase = %q, want report", on.PhaseName(evs[0].Arg))
	}
}

func TestWriteNDJSONDeterministic(t *testing.T) {
	build := func() *Recorder {
		rec := New(Options{Sample: 1, Capacity: 16, Pid: 3, Label: "cell"})
		rec.AddTrack("driver")
		tid := rec.AddTrack("Dir0B")
		ring := rec.NewRing()
		ring.Emit(Event{Seq: 1, Track: tid, Cache: 2, Block: 0x40, Kind: Kind(events.WriteHitCleanShared)})
		ring.Emit(Event{Seq: 1, Track: tid, Cache: 2, Block: 0x40, Kind: KindBroadcast, Arg: 1})
		return rec
	}
	var b1, b2 bytes.Buffer
	if err := WriteNDJSON(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("NDJSON export is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if row["kind"] != "wh-blk-cln-shared" || row["pid"] != float64(3) {
		t.Fatalf("row = %v", row)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	rec := New(Options{Sample: 1, Spans: true, Capacity: 16, Pid: 0, Label: "run"})
	drv := rec.AddTrack("driver")
	eng := rec.AddTrack("Dragon")
	ring := rec.NewRing()
	ring.Emit(Event{Seq: 0, Track: drv, Cache: -1, Kind: KindSpan, Dur: 64, Arg: rec.PhaseID("decode")})
	ring.Emit(Event{Seq: 3, Track: eng, Cache: 0, Block: 0x80, Kind: Kind(events.ReadMissDirty)})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint32         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var metas, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			spans++
			if e.Name != "decode" || e.Dur != 64 {
				t.Fatalf("span = %+v", e)
			}
		case "i":
			instants++
			if e.Name != "rm-blk-drty" || e.Ts != 3 {
				t.Fatalf("instant = %+v", e)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	// process_name + 2 thread_name rows.
	if metas != 3 || spans != 1 || instants != 1 {
		t.Fatalf("metas=%d spans=%d instants=%d", metas, spans, instants)
	}
}

func TestFormatForPath(t *testing.T) {
	for path, want := range map[string]string{
		"out.ndjson": "ndjson",
		"out.jsonl":  "ndjson",
		"out.json":   "chrome",
		"trace":      "chrome",
	} {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}
