// Package blockid interns 64-bit block addresses into dense uint32 ids.
//
// Every per-block lookup on the simulator's hot path used to be a
// map[uint64] access: the decode stage's first-reference set, each
// engine's ground-truth state table, and each directory store's per-block
// entry. Interning collapses all of them into one hash probe per decoded
// reference — the Table assigns each distinct block address a dense id in
// order of first appearance, and everything downstream indexes plain
// slices with it (struct-of-arrays state, see DESIGN.md §9).
//
// The Table is a custom open-addressing hash (power-of-two capacity,
// Fibonacci multiplicative hashing, linear probing) rather than a Go map:
// the decode stage performs exactly one Intern per data reference, so its
// probe cost bounds single-engine throughput. Growth is guarded and
// doubling, so interning amortizes to O(1) with no per-call allocation —
// the shape internal/lint's enginepurity rule admits on Access paths.
package blockid

// ID is the dense index assigned to a block address in order of first
// appearance among data references. Ids are only meaningful relative to
// the Table that assigned them.
type ID uint32

// hashMul is 2^64 / φ, the Fibonacci hashing constant: consecutive block
// numbers (the common trace pattern) scatter across the table instead of
// clustering into one probe chain.
const hashMul = 0x9E3779B97F4A7C15

// none marks an empty probe slot.
const none = ^ID(0)

// entry is one probe slot: the interned address and its id together, so a
// probe touches a single cache line (16 bytes after alignment) instead of
// one line in a key array plus one in an id array.
type entry struct {
	key uint64
	id  ID // none marks an empty slot
}

// Table interns block addresses. The zero value is not usable; call New.
type Table struct {
	// blocks maps id → address, in first-appearance order.
	blocks []uint64
	// entries is the open-addressing table mapping address → id.
	entries []entry
	// shift turns a 64-bit hash into a table index: 64 - log2(len(entries)).
	shift uint
}

// New returns an empty table.
func New() *Table {
	const initial = 1 << 10
	t := &Table{
		entries: make([]entry, initial),
		shift:   54, // 64 - log2(initial)
	}
	for i := range t.entries {
		t.entries[i].id = none
	}
	return t
}

// Len returns the number of distinct blocks interned.
func (t *Table) Len() int { return len(t.blocks) }

// Block returns the address interned as id. It panics when id was never
// assigned.
func (t *Table) Block(id ID) uint64 { return t.blocks[id] }

// Intern returns the id for block, assigning the next dense id on first
// appearance. fresh reports whether this call created the assignment —
// exactly the "first reference to the block anywhere in the trace"
// predicate the paper's cold-miss exclusion needs.
func (t *Table) Intern(block uint64) (id ID, fresh bool) {
	mask := uint64(len(t.entries) - 1)
	i := (block * hashMul) >> t.shift
	for {
		e := &t.entries[i]
		if e.id == none {
			break
		}
		if e.key == block {
			return e.id, false
		}
		i = (i + 1) & mask
	}
	id = ID(len(t.blocks))
	if id == none {
		panic("blockid: table full (2^32-1 blocks)")
	}
	t.blocks = append(t.blocks, block)
	t.entries[i] = entry{key: block, id: id}
	if uint64(len(t.blocks))*4 >= uint64(len(t.entries))*3 {
		// Grow: double the probe table and re-place every assignment.
		// Ids are positions in blocks, not probe slots, so they are
		// untouched. Inline (not a helper) so the doubling stays behind
		// this length guard — the amortized-growth shape the enginepurity
		// rule admits on Access paths.
		size := len(t.entries) * 2
		entries := make([]entry, size)
		for j := range entries {
			entries[j].id = none
		}
		t.shift--
		m := uint64(size - 1)
		for prev, b := range t.blocks {
			j := (b * hashMul) >> t.shift
			for entries[j].id != none {
				j = (j + 1) & m
			}
			entries[j] = entry{key: b, id: ID(prev)}
		}
		t.entries = entries
	}
	return id, true
}

// Lookup returns the id previously assigned to block, if any. It never
// assigns.
func (t *Table) Lookup(block uint64) (ID, bool) {
	mask := uint64(len(t.entries) - 1)
	i := (block * hashMul) >> t.shift
	for {
		e := &t.entries[i]
		if e.id == none {
			return 0, false
		}
		if e.key == block {
			return e.id, true
		}
		i = (i + 1) & mask
	}
}
