package blockid

import (
	"math/rand"
	"testing"
)

// Ids are assigned densely in first-appearance order, and re-interning
// returns the same id without growing the table.
func TestInternAssignsDenseFirstAppearanceIds(t *testing.T) {
	tab := New()
	blocks := []uint64{42, 0, 1 << 40, 42, 0, 7, 1 << 40}
	wantIDs := []ID{0, 1, 2, 0, 1, 3, 2}
	wantFresh := []bool{true, true, true, false, false, true, false}
	for i, b := range blocks {
		id, fresh := tab.Intern(b)
		if id != wantIDs[i] || fresh != wantFresh[i] {
			t.Errorf("Intern(%d) #%d = (%d, %v), want (%d, %v)", b, i, id, fresh, wantIDs[i], wantFresh[i])
		}
	}
	if tab.Len() != 4 {
		t.Errorf("Len = %d, want 4", tab.Len())
	}
	for id, want := range []uint64{42, 0, 1 << 40, 7} {
		if got := tab.Block(ID(id)); got != want {
			t.Errorf("Block(%d) = %d, want %d", id, got, want)
		}
	}
}

// Lookup finds interned blocks and never assigns.
func TestLookup(t *testing.T) {
	tab := New()
	tab.Intern(5)
	tab.Intern(9)
	if id, ok := tab.Lookup(9); !ok || id != 1 {
		t.Errorf("Lookup(9) = (%d, %v), want (1, true)", id, ok)
	}
	if _, ok := tab.Lookup(6); ok {
		t.Error("Lookup(6) found a block that was never interned")
	}
	if tab.Len() != 2 {
		t.Errorf("Lookup assigned: Len = %d, want 2", tab.Len())
	}
}

// Block 0 is a legal address and must not collide with the empty-slot
// marker.
func TestBlockZero(t *testing.T) {
	tab := New()
	if _, ok := tab.Lookup(0); ok {
		t.Fatal("Lookup(0) on empty table found an assignment")
	}
	id, fresh := tab.Intern(0)
	if id != 0 || !fresh {
		t.Fatalf("Intern(0) = (%d, %v), want (0, true)", id, fresh)
	}
	if id, ok := tab.Lookup(0); !ok || id != 0 {
		t.Fatalf("Lookup(0) = (%d, %v) after interning", id, ok)
	}
}

// Growth across many doublings preserves every assignment, including under
// adversarial keys that collide in the initial table.
func TestGrowthPreservesAssignments(t *testing.T) {
	tab := New()
	const n = 200_000
	for i := 0; i < n; i++ {
		// Strided keys: consecutive multiples of a large power of two all
		// hash near each other under weak hash functions.
		b := uint64(i) << 33
		id, fresh := tab.Intern(b)
		if id != ID(i) || !fresh {
			t.Fatalf("Intern(#%d) = (%d, %v), want (%d, true)", i, id, fresh, i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		b := uint64(i) << 33
		if id, fresh := tab.Intern(b); id != ID(i) || fresh {
			t.Fatalf("re-Intern(#%d) = (%d, %v), want (%d, false)", i, id, fresh, i)
		}
		if tab.Block(ID(i)) != b {
			t.Fatalf("Block(%d) = %d, want %d", i, tab.Block(ID(i)), b)
		}
	}
}

// The table must agree with a reference map implementation over a random
// mixed stream of repeats and fresh keys.
func TestMatchesReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New()
	ref := map[uint64]ID{}
	for i := 0; i < 100_000; i++ {
		var b uint64
		if rng.Intn(3) == 0 && len(ref) > 0 {
			b = uint64(rng.Intn(len(ref))) * 16 // likely repeat
		} else {
			b = rng.Uint64()
		}
		id, fresh := tab.Intern(b)
		want, ok := ref[b]
		if ok {
			if fresh || id != want {
				t.Fatalf("Intern(%d) = (%d, %v), want (%d, false)", b, id, fresh, want)
			}
		} else {
			if !fresh || int(id) != len(ref) {
				t.Fatalf("Intern(%d) = (%d, %v), want (%d, true)", b, id, fresh, len(ref))
			}
			ref[b] = id
		}
	}
}

// FuzzIntern feeds adversarial address streams: the table must stay a
// bijection consistent with first-appearance order whatever the input.
func FuzzIntern(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("collide-collide-collide-collide-"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := New()
		ref := map[uint64]ID{}
		order := []uint64{}
		for len(data) >= 8 {
			b := uint64(data[0]) | uint64(data[1])<<8 | uint64(data[2])<<16 | uint64(data[3])<<24 |
				uint64(data[4])<<32 | uint64(data[5])<<40 | uint64(data[6])<<48 | uint64(data[7])<<56
			data = data[8:]
			id, fresh := tab.Intern(b)
			want, seen := ref[b]
			if seen != !fresh {
				t.Fatalf("Intern(%d): fresh = %v but seen = %v", b, fresh, seen)
			}
			if seen && id != want {
				t.Fatalf("Intern(%d) = %d, want stable id %d", b, id, want)
			}
			if !seen {
				if int(id) != len(order) {
					t.Fatalf("Intern(%d) = %d, want next dense id %d", b, id, len(order))
				}
				ref[b] = id
				order = append(order, b)
			}
		}
		if tab.Len() != len(order) {
			t.Fatalf("Len = %d, want %d", tab.Len(), len(order))
		}
		for id, b := range order {
			if tab.Block(ID(id)) != b {
				t.Fatalf("Block(%d) = %d, want %d", id, tab.Block(ID(id)), b)
			}
			if got, ok := tab.Lookup(b); !ok || got != ID(id) {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", b, got, ok, id)
			}
		}
	})
}

// BenchmarkIntern measures the steady-state probe cost (all hits).
func BenchmarkIntern(b *testing.B) {
	tab := New()
	const blocks = 1 << 16
	for i := uint64(0); i < blocks; i++ {
		tab.Intern(i * 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Intern(uint64(i%blocks) * 16)
	}
}
