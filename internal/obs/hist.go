package obs

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// Standard histogram names used across the orchestration layer. Keeping
// them here means the CLIs, the runner and the daemon all label the same
// distribution the same way.
const (
	// HistJobTicks is per-job latency measured in runner progress ticks
	// (batches of simulated references — deterministic, not wall clock).
	HistJobTicks = "job_ticks"
	// HistQueueDepth is the daemon's pending-job queue depth sampled at
	// each submission.
	HistQueueDepth = "queue_depth"
	// HistInvalBurst is the invalidations-per-write burst size folded
	// from each result's invalidation-fanout histogram.
	HistInvalBurst = "inval_burst"
	// HistAdmitWait is admission-to-first-dispatch latency in
	// milliseconds, sampled per job when the daemon runs with a clock.
	// Per-tenant variants append "_tenant_<name>" (sanitized), as does
	// HistQueueDepth — fairness under contention is read off these.
	HistAdmitWait = "admit_wait_ms"
	// HistSpanMicros is otrace span duration in microseconds (logical
	// ticks/1000 when the tracer runs without a wall clock), one shared
	// distribution across all span kinds per process.
	HistSpanMicros = "span_us"
	// HistPeerFetch is peer cache-fetch latency in milliseconds.
	// Per-peer variants append "_peer_<addr>" (sanitized) — slow or
	// flapping peers are read off these.
	HistPeerFetch = "peer_fetch_ms"
)

// NumHistBuckets is the number of log2 buckets: bucket 0 holds the value
// 0 and bucket i (1..64) holds values in [2^(i-1), 2^i).
const NumHistBuckets = 65

// Histogram is a log2-bucketed distribution with lock-free recording:
// Observe is three atomic adds, cheap enough for per-job and per-batch
// paths. Bucket boundaries are powers of two, which suits the quantities
// tracked here (latencies in ticks, queue depths, invalidation bursts)
// and makes bucketing a single bits.Len64.
type Histogram struct {
	buckets [NumHistBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n equal observations of v in one shot — how callers
// fold a pre-counted distribution (e.g. a fanout histogram) in without
// per-sample cost.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bits.Len64(v)].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// merge folds a snapshot back into the histogram (bucket-wise atomic
// adds), used by Metrics.Merge.
func (h *Histogram) merge(s HistogramSnapshot) {
	for i, n := range s.Buckets {
		if n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(s.Sum)
	h.count.Add(s.Count)
}

// HistogramSnapshot is a point-in-time copy of one named histogram.
type HistogramSnapshot struct {
	Name    string                 `json:"name"`
	Count   uint64                 `json:"count"`
	Sum     uint64                 `json:"sum"`
	Buckets [NumHistBuckets]uint64 `json:"buckets"`
}

// BucketUpper returns bucket i's inclusive upper bound; the last bucket
// is unbounded and reported as the +Inf bucket in expositions.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Histogram returns the named histogram, creating it on first use. The
// same name always returns the same histogram, so concurrent first
// lookups of a brand-new name never drop observations.
func (m *Metrics) Histogram(name string) *Histogram {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if m.hists == nil {
		m.hists = map[string]*Histogram{}
	}
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// histSnapshots copies every registered histogram, sorted by name.
func (m *Metrics) histSnapshots() []HistogramSnapshot {
	m.hmu.Lock()
	names := make([]string, 0, len(m.hists))
	for name := range m.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	hists := make([]*Histogram, 0, len(names))
	for _, name := range names {
		hists = append(hists, m.hists[name])
	}
	m.hmu.Unlock()
	out := make([]HistogramSnapshot, len(hists))
	for i, h := range hists {
		out[i] = h.Snapshot()
		out[i].Name = names[i]
	}
	return out
}
