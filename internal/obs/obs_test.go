package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsCountersAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.AddJobs(3)
	m.AddRefs(1000)
	m.AddRefs(500)
	m.JobDone()
	m.AddRetry()
	m.AddRetry()
	m.AddFailure()
	m.AddPanic()
	m.AddEngine("Dir0B", EngineTally{Refs: 1000, Transactions: 40, BusOps: 55})
	m.AddEngine("Dragon", EngineTally{Refs: 1000, Transactions: 30, BusOps: 35})
	m.AddEngine("Dir0B", EngineTally{Refs: 500, Transactions: 20, BusOps: 25})

	s := m.Snapshot()
	if s.Refs != 1500 || s.JobsDone != 1 || s.JobsTotal != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Retries != 2 || s.Failures != 1 || s.Panics != 1 {
		t.Fatalf("resilience counters = %+v", s)
	}
	if len(s.Engines) != 2 {
		t.Fatalf("engines = %+v", s.Engines)
	}
	// Sorted by scheme name.
	if s.Engines[0].Scheme != "Dir0B" || s.Engines[1].Scheme != "Dragon" {
		t.Fatalf("engine order = %+v", s.Engines)
	}
	if s.Engines[0].Refs != 1500 || s.Engines[0].Transactions != 60 || s.Engines[0].BusOps != 80 {
		t.Fatalf("Dir0B tally = %+v", s.Engines[0])
	}
	if got := s.RefsPerSec(3 * time.Second); got != 500 {
		t.Errorf("RefsPerSec = %v", got)
	}
	if got := s.RefsPerSec(0); got != 0 {
		t.Errorf("RefsPerSec(0) = %v", got)
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics()
	m.AddRefs(7)
	m.AddEngine("WTI", EngineTally{Refs: 7})
	var s Snapshot
	if err := json.Unmarshal([]byte(m.String()), &s); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if s.Refs != 7 || len(s.Engines) != 1 || s.Engines[0].Scheme != "WTI" {
		t.Fatalf("round-tripped snapshot = %+v", s)
	}
	if !strings.Contains(m.String(), `"refs":7`) {
		t.Errorf("String() = %s", m.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddRefs(1)
				m.AddEngine("X", EngineTally{Refs: 1})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Refs != 8000 || s.Engines[0].Refs != 8000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

// Snapshot is read live by the daemon's /metrics endpoint while workers
// update the counters: taking snapshots concurrently with every mutation
// path must be race-free (this test is what `go test -race` exercises).
func TestSnapshotRaceFree(t *testing.T) {
	m := NewMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.AddJobs(1)
				m.AddRefs(3)
				m.AddRetry()
				m.AddFailure()
				m.AddPanic()
				m.AddEngine("Dir0B", EngineTally{Refs: 3, Transactions: 1, BusOps: 2})
				m.JobDone()
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if s.JobsDone > s.JobsTotal {
					t.Error("snapshot shows more jobs done than submitted")
					return
				}
				_ = m.String()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := m.Snapshot()
	if s.Refs != 6000 || s.JobsTotal != 2000 || s.Engines[0].BusOps != 4000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestMerge(t *testing.T) {
	job := NewMetrics()
	job.AddJobs(2)
	job.JobDone()
	job.AddRefs(100)
	job.AddRetry()
	job.AddEngine("Dragon", EngineTally{Refs: 100, Transactions: 5, BusOps: 7})

	global := NewMetrics()
	global.AddRefs(1)
	global.AddEngine("Dragon", EngineTally{Refs: 1})
	global.Merge(job.Snapshot())

	s := global.Snapshot()
	if s.Refs != 101 || s.JobsTotal != 2 || s.JobsDone != 1 || s.Retries != 1 {
		t.Fatalf("merged counters = %+v", s)
	}
	if len(s.Engines) != 1 || s.Engines[0].Refs != 101 || s.Engines[0].BusOps != 7 {
		t.Fatalf("merged engines = %+v", s.Engines)
	}
}

func TestThrottle(t *testing.T) {
	var now int64
	th := NewThrottle(100, func() int64 { return now })
	if !th.Ready() {
		t.Fatal("first call should be ready")
	}
	now = 50
	if th.Ready() {
		t.Fatal("ready again inside the interval")
	}
	now = 120
	if !th.Ready() {
		t.Fatal("not ready after the interval elapsed")
	}
	if th.Ready() {
		t.Fatal("ready twice at the same instant")
	}

	always := NewThrottle(0, func() int64 { return 0 })
	for i := 0; i < 3; i++ {
		if !always.Ready() {
			t.Fatal("zero interval must always be ready")
		}
	}
}
