// Package obs provides lightweight observability for long simulation
// runs: atomic counters and gauges the orchestration layer updates while
// engines churn through references, an expvar-style JSON snapshot, and a
// throttle for progress callbacks.
//
// The package is deliberately clock-free. Internal packages must stay
// deterministic (the nondeterm lint rule bans time.Now under internal/),
// so anything that needs wall-clock time — refs/sec, throttling
// intervals — takes the clock as an injected func or an elapsed duration
// from the caller; the cmd/ layer passes time.Now.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of counters shared by every worker of a run. All
// methods are safe for concurrent use; the hot-path counters are plain
// atomics so instrumentation stays cheap enough to leave on.
type Metrics struct {
	refs      atomic.Uint64
	jobsDone  atomic.Uint64
	jobsTotal atomic.Uint64
	retries   atomic.Uint64
	failures  atomic.Uint64
	panics    atomic.Uint64

	mu      sync.Mutex
	engines map[string]*EngineTally

	hmu   sync.Mutex
	hists map[string]*Histogram

	nmu      sync.Mutex
	counters map[string]uint64
	gauges   map[string]uint64
}

// EngineTally accumulates one scheme's work across all jobs of a run.
type EngineTally struct {
	// Refs is the number of references the scheme's engines processed.
	Refs uint64 `json:"refs"`
	// Transactions counts references that put an operation on the bus.
	Transactions uint64 `json:"transactions"`
	// BusOps is the total number of bus operations emitted.
	BusOps uint64 `json:"bus_ops"`
}

// add accumulates other into t.
func (t *EngineTally) add(other EngineTally) {
	t.Refs += other.Refs
	t.Transactions += other.Transactions
	t.BusOps += other.BusOps
}

// NewMetrics returns an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{engines: map[string]*EngineTally{}}
}

// AddRefs records n more simulated references.
func (m *Metrics) AddRefs(n uint64) { m.refs.Add(n) }

// Refs returns the references simulated so far.
func (m *Metrics) Refs() uint64 { return m.refs.Load() }

// AddJobs grows the total-jobs gauge by n.
func (m *Metrics) AddJobs(n int) { m.jobsTotal.Add(uint64(n)) }

// JobDone records one completed job.
func (m *Metrics) JobDone() { m.jobsDone.Add(1) }

// AddRetry records one retried job attempt (a transient failure the
// runner's backoff policy absorbed).
func (m *Metrics) AddRetry() { m.retries.Add(1) }

// AddFailure records one job that exhausted its attempts and failed.
func (m *Metrics) AddFailure() { m.failures.Add(1) }

// AddPanic records one panic the runner recovered into an error.
func (m *Metrics) AddPanic() { m.panics.Add(1) }

// AddEngine accumulates one finished engine run into the per-scheme
// tallies.
func (m *Metrics) AddEngine(scheme string, t EngineTally) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.engines == nil {
		m.engines = map[string]*EngineTally{}
	}
	cur, ok := m.engines[scheme]
	if !ok {
		cur = &EngineTally{}
		m.engines[scheme] = cur
	}
	cur.add(t)
}

// AddCounter adds n to the named dynamic counter. Named counters are
// for events whose name set is configuration-dependent (per-tenant
// rejections, cluster peering outcomes) — the fixed-field atomics stay
// the hot path. Names must already be in the Prometheus alphabet; the
// exposition renders them as dirsim_<name>_total.
func (m *Metrics) AddCounter(name string, n uint64) {
	m.nmu.Lock()
	defer m.nmu.Unlock()
	if m.counters == nil {
		m.counters = map[string]uint64{}
	}
	m.counters[name] += n
}

// CounterValue reads one named counter (absent reads zero).
func (m *Metrics) CounterValue(name string) uint64 {
	m.nmu.Lock()
	defer m.nmu.Unlock()
	return m.counters[name]
}

// SetGauge sets the named gauge to v — a level, not an accumulation
// (cache bytes per tenant, queue occupancy). Rendered as dirsim_<name>.
func (m *Metrics) SetGauge(name string, v uint64) {
	m.nmu.Lock()
	defer m.nmu.Unlock()
	if m.gauges == nil {
		m.gauges = map[string]uint64{}
	}
	m.gauges[name] = v
}

// GaugeValue reads one named gauge (absent reads zero).
func (m *Metrics) GaugeValue(name string) uint64 {
	m.nmu.Lock()
	defer m.nmu.Unlock()
	return m.gauges[name]
}

// NamedValue is one named counter or gauge inside a Snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// namedSnapshot copies a name→value map into a name-sorted slice.
func namedSnapshot(src map[string]uint64) []NamedValue {
	if len(src) == 0 {
		return nil
	}
	out := make([]NamedValue, 0, len(src))
	for name, v := range src {
		out = append(out, NamedValue{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot is a point-in-time copy of the counters, ready to render or
// marshal. Engines are sorted by scheme name so output is deterministic.
type Snapshot struct {
	Refs       uint64              `json:"refs"`
	JobsDone   uint64              `json:"jobs_done"`
	JobsTotal  uint64              `json:"jobs_total"`
	Retries    uint64              `json:"retries"`
	Failures   uint64              `json:"failures"`
	Panics     uint64              `json:"panics"`
	Engines    []EngineSnapshot    `json:"engines,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Counters   []NamedValue        `json:"counters,omitempty"`
	Gauges     []NamedValue        `json:"gauges,omitempty"`
}

// EngineSnapshot is one scheme's tally inside a Snapshot.
type EngineSnapshot struct {
	Scheme string `json:"scheme"`
	EngineTally
}

// Merge accumulates a snapshot of another metric set into m. The daemon
// gives each job its own Metrics for per-job progress streams, then folds
// the finished job into the server-wide counters with Merge.
func (m *Metrics) Merge(s Snapshot) {
	m.refs.Add(s.Refs)
	m.jobsDone.Add(s.JobsDone)
	m.jobsTotal.Add(s.JobsTotal)
	m.retries.Add(s.Retries)
	m.failures.Add(s.Failures)
	m.panics.Add(s.Panics)
	for _, e := range s.Engines {
		m.AddEngine(e.Scheme, e.EngineTally)
	}
	for _, h := range s.Histograms {
		m.Histogram(h.Name).merge(h)
	}
	for _, c := range s.Counters {
		m.AddCounter(c.Name, c.Value)
	}
	// Gauges are levels owned by one process; merging adopts the
	// incoming level rather than summing.
	for _, g := range s.Gauges {
		m.SetGauge(g.Name, g.Value)
	}
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Refs:      m.refs.Load(),
		JobsDone:  m.jobsDone.Load(),
		JobsTotal: m.jobsTotal.Load(),
		Retries:   m.retries.Load(),
		Failures:  m.failures.Load(),
		Panics:    m.panics.Load(),
	}
	m.mu.Lock()
	if len(m.engines) > 0 {
		s.Engines = make([]EngineSnapshot, 0, len(m.engines))
	}
	for name, t := range m.engines {
		s.Engines = append(s.Engines, EngineSnapshot{Scheme: name, EngineTally: *t})
	}
	m.mu.Unlock()
	sort.Slice(s.Engines, func(i, j int) bool { return s.Engines[i].Scheme < s.Engines[j].Scheme })
	s.Histograms = m.histSnapshots()
	m.nmu.Lock()
	s.Counters = namedSnapshot(m.counters)
	s.Gauges = namedSnapshot(m.gauges)
	m.nmu.Unlock()
	return s
}

// RefsPerSec converts the snapshot's reference count into a rate over the
// given elapsed wall-clock time (measured by the caller).
func (s Snapshot) RefsPerSec(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Refs) / elapsed.Seconds()
}

// String renders the snapshot as JSON, satisfying expvar.Var so a Metrics
// can be published on a debug endpoint with expvar.Publish.
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Throttle coalesces high-frequency progress events: Ready reports true
// at most once per interval, under the injected clock. It is safe for
// concurrent use; concurrent callers race for the single slot per
// interval and all others see false.
type Throttle struct {
	interval int64
	now      func() int64
	last     atomic.Int64
}

// NewThrottle returns a throttle with the given minimum interval between
// Ready=true results. now reports the current time in nanoseconds
// (callers outside internal/ typically pass time.Now().UnixNano via a
// closure); a non-positive interval makes every call ready.
func NewThrottle(interval time.Duration, now func() int64) *Throttle {
	t := &Throttle{interval: int64(interval), now: now}
	t.last.Store(-1)
	return t
}

// Ready reports whether enough time has passed since the last Ready=true
// call. The first call is always ready.
func (t *Throttle) Ready() bool {
	if t.interval <= 0 {
		return true
	}
	n := t.now()
	last := t.last.Load()
	if last >= 0 && n-last < t.interval {
		return false
	}
	return t.last.CompareAndSwap(last, n)
}
