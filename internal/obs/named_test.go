package obs

import (
	"strings"
	"sync"
	"testing"
)

// Named counters accumulate, gauges hold levels, and the snapshot
// renders both name-sorted (deterministic exposition order).
func TestNamedCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.AddCounter("zeta", 2)
	m.AddCounter("alpha", 1)
	m.AddCounter("zeta", 3)
	m.SetGauge("bytes_b", 10)
	m.SetGauge("bytes_a", 7)
	m.SetGauge("bytes_b", 4) // levels overwrite, never accumulate

	if v := m.CounterValue("zeta"); v != 5 {
		t.Errorf("zeta = %d, want 5", v)
	}
	if v := m.CounterValue("absent"); v != 0 {
		t.Errorf("absent counter = %d, want 0", v)
	}
	if v := m.GaugeValue("bytes_b"); v != 4 {
		t.Errorf("bytes_b = %d, want 4 (last set)", v)
	}

	s := m.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Errorf("counters not name-sorted: %+v", s.Counters)
	}
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "bytes_a" || s.Gauges[1].Name != "bytes_b" {
		t.Errorf("gauges not name-sorted: %+v", s.Gauges)
	}
}

// Merge sums counters (they accumulate across sources) but adopts
// gauge levels (a level is owned by one process; summing two readings
// of the same level would double it).
func TestMergeNamedSemantics(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.AddCounter("hits", 3)
	a.SetGauge("bytes", 100)
	b.AddCounter("hits", 4)
	b.SetGauge("bytes", 250)

	a.Merge(b.Snapshot())
	if v := a.CounterValue("hits"); v != 7 {
		t.Errorf("merged counter = %d, want 3+4", v)
	}
	if v := a.GaugeValue("bytes"); v != 250 {
		t.Errorf("merged gauge = %d, want the incoming level 250", v)
	}
}

// Named metrics render as dirsim_<name>_total counters and
// dirsim_<name> gauges, and the whole exposition stays lint-clean.
func TestNamedPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.AddCounter("cluster_peer_fetch_hits", 2)
	m.SetGauge("cache_bytes_tenant_alpha", 4096)

	var buf strings.Builder
	if err := WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dirsim_cluster_peer_fetch_hits_total 2",
		"# TYPE dirsim_cluster_peer_fetch_hits_total counter",
		"dirsim_cache_bytes_tenant_alpha 4096",
		"# TYPE dirsim_cache_bytes_tenant_alpha gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("exposition does not lint: %v", err)
	}
}

func TestNamedConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.AddCounter("n", 1)
				m.SetGauge("g", uint64(j))
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if v := m.CounterValue("n"); v != 800 {
		t.Errorf("n = %d, want 800", v)
	}
}
