package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of a Snapshot, plus
// a minimal validator for it. All metric names carry the dirsim_ prefix;
// histograms render as the standard cumulative-bucket triplet
// (_bucket{le=...}, _sum, _count) with log2 upper bounds.

// lset joins preformatted name="value" label pairs into a {..} label
// set, eliding empty pairs; the empty set renders as no braces at all.
func lset(pairs ...string) string {
	var b strings.Builder
	for _, p := range pairs {
		if p == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Output is a deterministic function of the snapshot: engines
// and histograms are already name-sorted, and empty log2 buckets are
// elided (cumulative values make that lossless; +Inf is always present).
func WritePrometheus(w io.Writer, s Snapshot) error {
	return WritePrometheusLabeled(w, s, "")
}

// WritePrometheusLabeled renders the snapshot with an extra
// preformatted label pair (e.g. `peer="host:8080"`) on every sample —
// how /v1/cluster/metrics stitches per-peer snapshots into one fleet
// exposition. An empty label renders the plain per-process form.
func WritePrometheusLabeled(w io.Writer, s Snapshot, label string) error {
	type counter struct {
		name, help string
		v          uint64
	}
	for _, c := range []counter{
		{"dirsim_refs_total", "Simulated references processed.", s.Refs},
		{"dirsim_jobs_done_total", "Jobs completed.", s.JobsDone},
		{"dirsim_jobs_submitted_total", "Jobs submitted.", s.JobsTotal},
		{"dirsim_job_retries_total", "Transient job failures retried.", s.Retries},
		{"dirsim_job_failures_total", "Jobs failed after exhausting retries.", s.Failures},
		{"dirsim_job_panics_total", "Panics recovered into job errors.", s.Panics},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n",
			c.name, c.help, c.name, c.name, lset(label), c.v); err != nil {
			return err
		}
	}
	for _, c := range s.Counters {
		name := "dirsim_" + c.Name + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Named counter %s.\n# TYPE %s counter\n%s%s %d\n",
			name, c.Name, name, name, lset(label), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := "dirsim_" + g.Name
		if _, err := fmt.Fprintf(w, "# HELP %s Named gauge %s.\n# TYPE %s gauge\n%s%s %d\n",
			name, g.Name, name, name, lset(label), g.Value); err != nil {
			return err
		}
	}
	if len(s.Engines) > 0 {
		type labelled struct {
			name, help string
			v          func(EngineSnapshot) uint64
		}
		for _, l := range []labelled{
			{"dirsim_engine_refs_total", "References processed per scheme.", func(e EngineSnapshot) uint64 { return e.Refs }},
			{"dirsim_engine_transactions_total", "Bus transactions per scheme.", func(e EngineSnapshot) uint64 { return e.Transactions }},
			{"dirsim_engine_bus_ops_total", "Bus operations per scheme.", func(e EngineSnapshot) uint64 { return e.BusOps }},
		} {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", l.name, l.help, l.name); err != nil {
				return err
			}
			for _, e := range s.Engines {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", l.name, lset(label, fmt.Sprintf("scheme=%q", e.Scheme)), l.v(e)); err != nil {
					return err
				}
			}
		}
	}
	for _, h := range s.Histograms {
		name := "dirsim_" + h.Name
		if _, err := fmt.Fprintf(w, "# HELP %s Log2-bucketed distribution of %s.\n# TYPE %s histogram\n", name, h.Name, name); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			if n == 0 || i == len(h.Buckets)-1 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lset(label, fmt.Sprintf("le=\"%d\"", BucketUpper(i))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
			name, lset(label, `le="+Inf"`), h.Count,
			name, lset(label), h.Sum,
			name, lset(label), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// sampleRe matches one exposition sample line: a metric name, an
// optional label set, and a value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?|[+-]Inf|NaN)$`)

// LintPrometheus is a minimal validator for the text exposition format —
// enough for the promscrape smoke to catch real breakage: every
// non-comment line must parse as a sample, every sample's family must
// have a preceding TYPE, histogram families must end with a +Inf bucket
// and carry _sum and _count, and cumulative bucket counts must be
// non-decreasing.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	types := map[string]string{}
	type histState struct {
		sawInf   bool
		sawSum   bool
		sawCount bool
	}
	// Bucket cumulativeness and the +Inf terminator are per series (one
	// histogram family fans out into one series per label set in the
	// federated exposition), keyed by family plus the non-le labels.
	type seriesState struct {
		lastCum uint64
		sawInf  bool
	}
	hists := map[string]*histState{}
	series := map[string]*seriesState{}
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE wants name and kind: %q", line, text)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				types[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					hists[fields[2]] = &histState{}
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		samples++
		name := m[1]
		fam := family(name)
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", line, name)
		}
		if h, ok := hists[fam]; ok {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := labelValue(m[2], "le")
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				cum, err := strconv.ParseUint(m[3], 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bucket count %q: %v", line, m[3], err)
				}
				key := fam + "|" + labelsWithout(m[2], "le")
				st, ok := series[key]
				if !ok {
					st = &seriesState{}
					series[key] = st
				}
				if st.sawInf {
					// A fresh bucket run for the same series would be
					// two expositions of one series; treat the +Inf
					// bucket as the series terminator and reset.
					st.lastCum, st.sawInf = 0, false
				}
				if cum < st.lastCum {
					return fmt.Errorf("line %d: cumulative bucket count decreased (%d after %d)", line, cum, st.lastCum)
				}
				st.lastCum = cum
				if le == "+Inf" {
					st.sawInf = true
					h.sawInf = true
				}
			case strings.HasSuffix(name, "_sum"):
				h.sawSum = true
			case strings.HasSuffix(name, "_count"):
				h.sawCount = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for name, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if !h.sawSum || !h.sawCount {
			return fmt.Errorf("histogram %s is missing _sum or _count", name)
		}
	}
	for key, st := range series {
		if !st.sawInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", key)
		}
	}
	return nil
}

// labelsWithout returns the {k="v",...} set minus one key, braces
// stripped, pairs in original order — a series identity key for the
// validator. (Label values with embedded commas would split wrong;
// dirsim expositions never emit those.)
func labelsWithout(labels, key string) string {
	labels = strings.Trim(labels, "{}")
	if labels == "" {
		return ""
	}
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if k, _, ok := strings.Cut(kv, "="); ok && k == key {
			continue
		}
		kept = append(kept, kv)
	}
	return strings.Join(kept, ",")
}

// labelValue extracts one label's unquoted value from a {k="v",...}
// label set (empty when absent).
func labelValue(labels, key string) string {
	labels = strings.Trim(labels, "{}")
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != key {
			continue
		}
		if u, err := strconv.Unquote(v); err == nil {
			return u
		}
	}
	return ""
}
