package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)        // bucket 0
	h.Observe(1)        // bucket 1
	h.Observe(2)        // bucket 2
	h.Observe(3)        // bucket 2
	h.Observe(4)        // bucket 3
	h.ObserveN(1024, 5) // bucket 11
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("Count = %d, want 10", s.Count)
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 5*1024); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 11: 5} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 || BucketUpper(11) != 2047 {
		t.Fatal("BucketUpper boundaries wrong")
	}
}

func TestHistogramObserveNZero(t *testing.T) {
	var h Histogram
	h.ObserveN(7, 0)
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("ObserveN(_, 0) recorded something: %+v", s)
	}
}

func TestMetricsHistogramRegistryAndMerge(t *testing.T) {
	m := NewMetrics()
	m.Histogram(HistJobTicks).Observe(5)
	m.Histogram(HistQueueDepth).Observe(2)
	if m.Histogram(HistJobTicks) != m.Histogram(HistJobTicks) {
		t.Fatal("same name returned different histograms")
	}
	s := m.Snapshot()
	if len(s.Histograms) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2", len(s.Histograms))
	}
	// Name-sorted: inval... would sort before, but here job_ticks < queue_depth.
	if s.Histograms[0].Name != HistJobTicks || s.Histograms[1].Name != HistQueueDepth {
		t.Fatalf("histogram order = %s, %s", s.Histograms[0].Name, s.Histograms[1].Name)
	}
	other := NewMetrics()
	other.Merge(s)
	other.Histogram(HistJobTicks).Observe(5)
	got := other.Snapshot()
	if got.Histograms[0].Count != 2 || got.Histograms[0].Sum != 10 {
		t.Fatalf("merged histogram = %+v", got.Histograms[0])
	}
}

// TestHistogramConcurrentFirstLookup is the histogram registry's
// equivalent of the engine-tally race contract: concurrent first lookups
// of a brand-new name must converge on one histogram and drop nothing.
func TestHistogramConcurrentFirstLookup(t *testing.T) {
	m := NewMetrics()
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Histogram(fmt.Sprintf("h%d", i)).Observe(1)
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if len(s.Histograms) != perWorker {
		t.Fatalf("%d histograms registered, want %d", len(s.Histograms), perWorker)
	}
	for _, h := range s.Histograms {
		if h.Count != workers {
			t.Fatalf("%s count = %d, want %d (observations dropped)", h.Name, h.Count, workers)
		}
	}
}

// TestSnapshotDuringAddEngineNewNames is the targeted regression for the
// engine-tally map: Snapshot running concurrently with AddEngine on
// brand-new engine names must neither race (run under -race) nor drop a
// tally once AddEngine has returned.
func TestSnapshotDuringAddEngineNewNames(t *testing.T) {
	m := NewMetrics()
	const adders = 4
	const namesPerAdder = 200
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < namesPerAdder; i++ {
				// Every call introduces a brand-new scheme name.
				m.AddEngine(fmt.Sprintf("scheme-%d-%d", a, i), EngineTally{Refs: 1, Transactions: 1, BusOps: 1})
			}
		}(a)
	}
	wg.Wait()
	close(stop)
	<-snapDone
	s := m.Snapshot()
	if len(s.Engines) != adders*namesPerAdder {
		t.Fatalf("%d engine tallies, want %d (tallies dropped)", len(s.Engines), adders*namesPerAdder)
	}
	for _, e := range s.Engines {
		if e.Refs != 1 {
			t.Fatalf("%s refs = %d, want 1", e.Scheme, e.Refs)
		}
	}
}

func TestWritePrometheusLintsClean(t *testing.T) {
	m := NewMetrics()
	m.AddRefs(1234)
	m.AddJobs(3)
	m.JobDone()
	m.AddEngine("Dir1B", EngineTally{Refs: 100, Transactions: 40, BusOps: 55})
	m.AddEngine("WTI", EngineTally{Refs: 100, Transactions: 60, BusOps: 80})
	m.Histogram(HistJobTicks).Observe(17)
	m.Histogram(HistInvalBurst).ObserveN(3, 9)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"dirsim_refs_total 1234",
		`dirsim_engine_refs_total{scheme="Dir1B"} 100`,
		`dirsim_inval_burst_bucket{le="+Inf"} 9`,
		"dirsim_inval_burst_sum 27",
		"dirsim_job_ticks_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Determinism: same snapshot, same bytes.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("exposition is not deterministic")
	}
}

func TestLintPrometheusCatchesBreakage(t *testing.T) {
	cases := map[string]string{
		"no samples":       "# HELP a b\n# TYPE a counter\n",
		"sample sans TYPE": "foo_total 3\n",
		"malformed line":   "# TYPE x counter\nx{ 3\n",
		"bad type":         "# TYPE x countr\nx 3\n",
		"hist no inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n",
		"hist decreasing":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 2\nh_count 3\n",
		"hist no sum":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
	}
	for name, in := range cases {
		if err := LintPrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition", name)
		}
	}
	valid := "# HELP ok fine\n# TYPE ok gauge\nok 1\nok{a=\"b\"} 2\n"
	if err := LintPrometheus(strings.NewReader(valid)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}
